//! Reproduces the paper's worked examples: Figure 3 (one initiation time,
//! per-cluster initiation intervals) and Figure 4 (computing the minimum
//! initiation time of a 5-instruction loop on a 2-cluster machine).
//!
//! ```sh
//! cargo run --example heterogeneous_ii
//! ```

use heterovliw::ir::{DdgBuilder, OpClass};
use heterovliw::machine::{
    ClockedConfig, ClusterDesign, ClusterId, FrequencyMenu, MachineDesign, Time,
};
use heterovliw::sched::timing::{compute_mit, rec_mit, res_mit, LoopClocks};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ----- Figure 3: IT = 3 ns on clusters at 1 ns and 1.5 ns. -----
    let design2 = MachineDesign::new(2, ClusterDesign::PAPER, 1);
    let fig3 = ClockedConfig::heterogeneous(design2, Time::from_ns(1.0), 1, Time::from_ns(1.5));
    let clocks = LoopClocks::select(&fig3, &FrequencyMenu::unrestricted(), Time::from_ns(3.0))
        .expect("3 ns divides both cycle times");
    println!("Figure 3: IT = {}", clocks.it());
    println!("  C1 (1.0 ns): II = {}", clocks.cluster_ii(ClusterId(0)));
    println!("  C2 (1.5 ns): II = {}", clocks.cluster_ii(ClusterId(1)));

    // ----- Figure 4: the 5-instruction DDG with recurrence {A, B, C}. -----
    let mut b = DdgBuilder::new("figure4");
    let a = b.op("A", OpClass::IntArith);
    let bb = b.op("B", OpClass::IntArith);
    let c = b.op("C", OpClass::IntArith);
    let d = b.op("D", OpClass::IntArith);
    let e = b.op("E", OpClass::IntArith);
    b.dep(a, bb, 1); // unit latencies, as in the paper's example
    b.dep(bb, c, 1);
    b.dep_dist(c, a, 1, 1); // loop-carried edge closing the recurrence
    b.dep(a, d, 1);
    b.dep(d, e, 1);
    let ddg = b.build()?;

    let fig4 = ClockedConfig::heterogeneous(design2, Time::from_ns(1.0), 1, Time::from_ns(1.67));
    let menu = FrequencyMenu::unrestricted();
    println!("\nFigure 4: 5 instructions, recurrence {{A,B,C}} of latency 3");
    println!("  recMII  = {} cycles", ddg.rec_mii());
    println!("  recMIT  = {}", rec_mit(&ddg, &fig4));
    println!("  resMIT  = {}", res_mit(&ddg, &fig4, &menu)?);
    println!("  MIT     = {}", compute_mit(&ddg, &fig4, &menu)?);

    // The (IT → II) table from the figure.
    println!(
        "\n  {:>8} {:>6} {:>6} {:>9}",
        "IT", "II_C1", "II_C2", "capacity"
    );
    for it_ns in [1.0, 1.67, 2.0, 3.0, 3.34] {
        let it = Time::from_ns(it_ns);
        match LoopClocks::select(&fig4, &menu, it) {
            Some(k) => {
                let ii1 = k.cluster_ii(ClusterId(0));
                let ii2 = k.cluster_ii(ClusterId(1));
                // One int FU per cluster ⇒ capacity = II slots per cluster.
                println!("  {it_ns:>6}ns {ii1:>6} {ii2:>6} {:>8} slots", ii1 + ii2);
            }
            None => println!("  {it_ns:>6}ns      -      - (cluster 2 cannot start an iteration)"),
        }
    }
    Ok(())
}
