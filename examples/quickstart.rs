//! Quickstart: build a loop, schedule it on a heterogeneous machine, and
//! inspect the kernel.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use heterovliw::ir::{DdgBuilder, OpClass};
use heterovliw::machine::{ClockedConfig, MachineDesign, Time};
use heterovliw::sched::{schedule_loop, ScheduleOptions};
use heterovliw::sim::{simulate, trace, validate};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dot-product style loop body: two streaming loads feed a multiply,
    // which feeds an accumulator recurrence; the result is stored every
    // iteration.
    let mut b = DdgBuilder::new("dot-product");
    let load_a = b.op("load a[i]", OpClass::FpMemory);
    let load_b = b.op("load b[i]", OpClass::FpMemory);
    let mul = b.op("a[i]*b[i]", OpClass::FpMul);
    let acc = b.op("sum +=", OpClass::FpArith);
    let st = b.op("store partial", OpClass::FpMemory);
    b.flow(load_a, mul);
    b.flow(load_b, mul);
    b.flow(mul, acc);
    b.flow_carried(acc, acc, 1); // the recurrence: sum depends on last sum
    b.flow(acc, st);
    let ddg = b.build()?;

    println!(
        "recMII = {} cycles (the accumulator recurrence)\n",
        ddg.rec_mii()
    );

    // The paper's machine: 4 clusters × (1 int FU, 1 fp FU, 1 memory port,
    // 16 registers), one inter-cluster bus. One fast cluster at 0.95 ns,
    // three low-power clusters at 1.25 ns.
    let design = MachineDesign::paper_machine(1);
    let hetero = ClockedConfig::heterogeneous(design, Time::from_ns(0.95), 1, Time::from_ns(1.25));

    let sched = schedule_loop(&ddg, &hetero, None, &ScheduleOptions::default())?;
    println!(
        "scheduled: IT = {}, it_length = {}, {} communication(s)/iter",
        sched.it(),
        sched.it_length(),
        sched.comms_per_iter()
    );
    for c in design.clusters() {
        println!(
            "  {c}: II = {} cycles @ {:.3} ns/cycle",
            sched.clocks().cluster_ii(c),
            sched.it().as_ns() / sched.clocks().cluster_ii(c) as f64,
        );
    }

    // The simulator independently re-checks every dependence, reservation
    // and register file, then executes the loop.
    validate(&ddg, &hetero, &sched).expect("schedule is sound");
    let report = simulate(&ddg, &hetero, &sched, 1000);
    println!(
        "\n1000 iterations: {} in {:.1} ns ({} memory accesses, {} bus transfers)",
        report.instructions,
        report.exec_time.as_ns(),
        report.mem_accesses,
        report.comms
    );

    println!(
        "\nkernel (2 iterations):\n{}",
        trace(&ddg, &hetero, &sched, 2)
    );
    Ok(())
}
