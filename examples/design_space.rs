//! End-to-end design-space exploration on one benchmark: profile the
//! reference machine, calibrate the energy model, pick the optimum
//! homogeneous baseline and the best heterogeneous configuration, then
//! measure the heterogeneous machine for real.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use heterovliw::explore::experiments::{run_benchmark, ExperimentOptions};
use heterovliw::explore::{
    optimum_homogeneous_suite, profile_benchmark, select_heterogeneous, suite_reference,
};
use heterovliw::machine::{FrequencyMenu, MachineDesign};
use heterovliw::power::{EnergyShares, PowerModel};
use heterovliw::sched::ScheduleOptions;
use heterovliw::workloads::{generate, spec_fp2000};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 200.sixtrack: the paper's biggest winner (~99.9 % of its time in
    // recurrence-constrained loops, small critical recurrences).
    let spec = spec_fp2000()[8];
    let bench = generate(&spec, 16);
    println!(
        "benchmark {} with {} synthetic loops",
        bench.name,
        bench.loops.len()
    );

    let design = MachineDesign::paper_machine(1);
    let profile = profile_benchmark(&bench, design, &ScheduleOptions::default())?;
    println!(
        "reference run: {:.0} weighted instructions, {} comms, {} memory accesses",
        profile.reference.weighted_ins, profile.reference.comms, profile.reference.mem_accesses
    );

    let power = PowerModel::calibrate(
        design,
        EnergyShares::PAPER,
        &suite_reference(std::slice::from_ref(&profile)),
    );

    let baseline = optimum_homogeneous_suite(std::slice::from_ref(&profile), design, &power);
    println!(
        "optimum homogeneous: {} per cluster, cluster Vdd {:.2} V",
        baseline.config.fastest_cluster_cycle(),
        baseline.config.voltages().clusters[0]
    );

    let menu = FrequencyMenu::unrestricted();
    let het =
        select_heterogeneous(&profile, design, &power, &menu).expect("selection space is feasible");
    println!(
        "selected heterogeneous: fast {} @ {:.2} V, slow {} @ {:.2} V",
        het.config.fastest_cluster_cycle(),
        het.config.voltages().clusters[0],
        het.config.slowest_cluster_cycle(),
        het.config.voltages().clusters[1],
    );
    println!(
        "model estimate: T = {:.3} ms, E = {:.4} reference units",
        het.estimate.exec_time.as_ns() / 1e6,
        het.estimate.energy
    );

    let result = run_benchmark(
        &bench,
        &profile,
        &baseline.per_benchmark[0],
        design,
        &power,
        &ExperimentOptions::default(),
    )?;
    println!(
        "\nmeasured: ED2(hetero) / ED2(homogeneous optimum) = {:.3}",
        result.ed2_normalized
    );
    println!(
        "  time {:.3} ms vs {:.3} ms; energy {:.4} vs {:.4}",
        result.exec_time_het_ns / 1e6,
        result.exec_time_hom_ns / 1e6,
        result.energy_het,
        result.energy_hom
    );
    Ok(())
}
