//! The §3 energy model in isolation: how voltage/frequency choices move
//! the six energy components, and what the α-power law permits.
//!
//! ```sh
//! cargo run --example energy_model
//! ```

use heterovliw::machine::{ClockedConfig, DomainId, MachineDesign, Time, Voltages};
use heterovliw::power::{
    AlphaPowerModel, EnergyShares, PowerModel, ReferenceProfile, UsageProfile,
};

fn main() {
    let design = MachineDesign::paper_machine(1);
    let reference = ReferenceProfile {
        weighted_ins: 1_000_000.0,
        comms: 80_000,
        mem_accesses: 250_000,
        exec_time: Time::from_ns(400_000.0),
    };
    let power = PowerModel::calibrate(design, EnergyShares::PAPER, &reference);
    let usage = UsageProfile::homogeneous(&reference, design.num_clusters);

    // The α-power law: what threshold voltage does each (f, Vdd) pair get?
    let alpha = AlphaPowerModel::paper_reference();
    println!("α-power thresholds (f in GHz, Vdd in V):");
    for (f, vdd) in [(1.0, 1.0), (1.111, 1.1), (0.8, 0.85), (0.667, 0.75)] {
        match alpha.threshold_for(f, vdd) {
            Some(vth) => println!("  f={f:.3}, Vdd={vdd:.2} -> Vth={vth:.3} V"),
            None => println!("  f={f:.3}, Vdd={vdd:.2} -> infeasible"),
        }
    }

    // Energy of a few configurations for the same work.
    println!("\nenergy for identical work (reference units):");
    let configs = [
        ("reference 1.0 ns / 1.0 V", ClockedConfig::reference(design)),
        (
            "uniform 1.25 ns / 0.85 V",
            ClockedConfig::homogeneous(design, Time::from_ns(1.25)).with_voltages(Voltages {
                clusters: vec![0.85; 4],
                icn: 0.85,
                cache: 1.0,
            }),
        ),
        (
            "hetero 0.95/1.25 ns, hot fast cluster",
            ClockedConfig::heterogeneous(design, Time::from_ns(0.95), 1, Time::from_ns(1.25))
                .with_voltages(Voltages {
                    clusters: vec![1.1, 0.8, 0.8, 0.8],
                    icn: 1.0,
                    cache: 1.1,
                }),
        ),
    ];
    for (name, config) in &configs {
        match power.estimate_energy(config, &usage) {
            Some(e) => {
                println!("  {name:<38} E = {e:.4}");
                for d in [DomainId::Cluster(0.into()), DomainId::Icn, DomainId::Cache] {
                    let s = power.domain_scaling(config, d).expect("feasible");
                    println!(
                        "      {d:<6} delta = {:.3}, sigma = {:.3}, Vth = {:.3} V",
                        s.delta, s.sigma, s.vth
                    );
                }
            }
            None => println!("  {name:<38} infeasible"),
        }
    }
}
