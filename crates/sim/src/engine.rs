//! Schedule validation and execution.
//!
//! The validator consumes the scheduler's dense index space directly: a
//! [`ScheduledLoop`]'s issue arrays are indexed by `OpId` order, the
//! rebuilt [`ExtGraph`] extends that numbering with copy nodes, and
//! resource occupancy is re-derived into dense per-row tables (one row per
//! modulo slot), so validation is allocation-light and reports violations
//! in a deterministic (cluster, kind, row) order.

use vliw_ir::{Ddg, FuKind};
use vliw_machine::{ClockedConfig, DomainId};
use vliw_sched::{max_lives, ExtGraph, NodeId, NodePlace, ScheduledLoop};

use crate::report::{SimReport, Violation};

/// Rebuilds the extended graph and the per-node issue ticks of `sched`,
/// checking the shapes line up.
fn rebuild(
    ddg: &Ddg,
    config: &ClockedConfig,
    sched: &ScheduledLoop,
) -> Result<(ExtGraph, Vec<u64>), Vec<Violation>> {
    let mut violations = Vec::new();
    if sched.assignment().len() != ddg.num_ops() {
        violations.push(Violation::Shape {
            detail: format!(
                "schedule covers {} ops, DDG has {}",
                sched.assignment().len(),
                ddg.num_ops()
            ),
        });
        return Err(violations);
    }
    let graph = ExtGraph::build(ddg, sched.assignment(), config, sched.clocks());
    if graph.copies().len() != sched.copies().len() {
        violations.push(Violation::Shape {
            detail: format!(
                "partition implies {} copies, schedule has {}",
                graph.copies().len(),
                sched.copies().len()
            ),
        });
        return Err(violations);
    }
    for (i, (expect, got)) in graph.copies().iter().zip(sched.copies()).enumerate() {
        if expect.producer != got.producer {
            violations.push(Violation::Shape {
                detail: format!(
                    "copy {i}: expected producer {}, schedule says {}",
                    expect.producer, got.producer
                ),
            });
        }
    }
    if !violations.is_empty() {
        return Err(violations);
    }
    let clocks = sched.clocks();
    let mut ticks = Vec::with_capacity(graph.num_nodes());
    for op in ddg.op_ids() {
        ticks.push(sched.op_tick(op));
    }
    for i in 0..sched.copies().len() {
        ticks.push(sched.copy_tick(i));
    }
    // Cross-check tick/cycle consistency for real ops.
    for op in ddg.op_ids() {
        let domain = DomainId::Cluster(sched.assignment()[op.index()]);
        let expect = sched.op_cycle(op) * clocks.domain_cycle_ticks(domain);
        if expect != sched.op_tick(op) {
            violations.push(Violation::Shape {
                detail: format!(
                    "op {op}: cycle/tick mismatch ({expect} vs {})",
                    sched.op_tick(op)
                ),
            });
        }
    }
    if violations.is_empty() {
        Ok((graph, ticks))
    } else {
        Err(violations)
    }
}

/// Exhaustively validates `sched` against the DDG and machine: dependences
/// (exact ticks, all steady-state instances), modulo resource reservations
/// (cluster FUs, memory ports, buses) and register pressure.
///
/// # Errors
///
/// Returns every violation found, so a broken scheduler can be debugged in
/// one pass.
pub fn validate(
    ddg: &Ddg,
    config: &ClockedConfig,
    sched: &ScheduledLoop,
) -> Result<(), Vec<Violation>> {
    let (graph, ticks) = rebuild(ddg, config, sched)?;
    let clocks = sched.clocks();
    let l = i64::try_from(clocks.ticks_per_it()).expect("L fits i64");
    let mut violations = Vec::new();

    let describe = |n: NodeId| -> String {
        if n.index() < graph.num_real() {
            ddg.op(vliw_ir::OpId(n.0)).name().to_owned()
        } else {
            let c = &graph.copies()[n.index() - graph.num_real()];
            format!("copy({})", c.producer)
        }
    };

    // Dependences: the steady-state inequality covers all instances.
    for e in graph.edges() {
        let src = i64::try_from(ticks[e.src.index()]).expect("tick fits i64");
        let dst = i64::try_from(ticks[e.dst.index()]).expect("tick fits i64");
        let required = src + i64::try_from(e.latency_ticks).expect("latency fits i64")
            - i64::from(e.distance) * l;
        if dst < required {
            violations.push(Violation::Dependence {
                src: describe(e.src),
                dst: describe(e.dst),
                required_tick: required,
                actual_tick: dst,
            });
        }
    }

    // Resources: rebuild occupancy into dense modulo-row tables (indexed
    // `[cluster][kind][row]`), mirroring the scheduler's reservation
    // tables; violations come out in deterministic table order.
    let design = config.design();
    const KINDS: [FuKind; 3] = FuKind::CLUSTER_KINDS;
    let kind_slot = |k: FuKind| KINDS.iter().position(|&x| x == k).expect("cluster kind");
    let mut cluster_rows: Vec<[Vec<u32>; 3]> = design
        .clusters()
        .map(|c| {
            let ii = usize::try_from(clocks.cluster_ii(c)).expect("II fits in memory");
            [vec![0u32; ii], vec![0u32; ii], vec![0u32; ii]]
        })
        .collect();
    for op in ddg.op_ids() {
        let cluster = sched.assignment()[op.index()];
        let ii = clocks.cluster_ii(cluster);
        let row = (sched.op_cycle(op) % ii) as usize;
        cluster_rows[cluster.index()][kind_slot(ddg.op(op).fu_kind())][row] += 1;
    }
    for (c, tables) in cluster_rows.iter().enumerate() {
        for (ki, rows) in tables.iter().enumerate() {
            let kind = KINDS[ki];
            let capacity = design.cluster.fu_count(kind);
            for (row, &used) in rows.iter().enumerate() {
                if used > capacity {
                    violations.push(Violation::Resource {
                        resource: format!("C{c} {kind}"),
                        row: row as u64,
                        used,
                        capacity,
                    });
                }
            }
        }
    }
    let icn_ii = usize::try_from(clocks.icn_ii()).expect("II fits in memory");
    let mut bus_rows = vec![0u32; icn_ii];
    for copy in sched.copies() {
        bus_rows[(copy.cycle % clocks.icn_ii()) as usize] += 1;
    }
    for (row, &used) in bus_rows.iter().enumerate() {
        if used > design.buses {
            violations.push(Violation::Resource {
                resource: "bus".to_owned(),
                row: row as u64,
                used,
                capacity: design.buses,
            });
        }
    }

    // Registers.
    let live = max_lives(&graph, clocks, design.num_clusters, &ticks);
    for (c, &needed) in live.iter().enumerate() {
        if needed > design.cluster.registers {
            violations.push(Violation::Registers {
                cluster: format!("C{c}"),
                needed,
                available: design.cluster.registers,
            });
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Executes `iterations` iterations of `sched`, measuring execution time
/// from the actual last event and counting the energy model's inputs.
///
/// The measurement is independent of
/// [`ScheduledLoop::exec_time`]: the execution end is the maximum over all
/// node instances of `issue + latency` in the final iteration, converted
/// back to wall-clock time.
///
/// # Panics
///
/// Panics if the schedule does not match the DDG (run [`validate`] first
/// for a graceful report).
#[must_use]
pub fn simulate(
    ddg: &Ddg,
    config: &ClockedConfig,
    sched: &ScheduledLoop,
    iterations: u64,
) -> SimReport {
    let (graph, ticks) = match rebuild(ddg, config, sched) {
        Ok(x) => x,
        Err(v) => panic!("schedule/DDG mismatch: {}", v[0]),
    };
    let clocks = sched.clocks();
    let num_clusters = usize::from(config.design().num_clusters);
    if iterations == 0 || ddg.is_empty() {
        return SimReport {
            iterations,
            exec_time: vliw_machine::Time::ZERO,
            instructions: 0,
            weighted_ins_per_cluster: vec![0.0; num_clusters],
            comms: 0,
            mem_accesses: 0,
        };
    }

    // Last event: every node's final-iteration completion.
    let l = clocks.ticks_per_it();
    let last_start = (iterations - 1) * l;
    let end_tick = graph
        .nodes()
        .map(|n| last_start + ticks[n.index()] + graph.result_latency_ticks(n))
        .max()
        .unwrap_or(0);

    let mut weighted = vec![0.0f64; num_clusters];
    for op in ddg.ops() {
        let c = sched.assignment()[op.id().index()];
        weighted[c.index()] += op.class().relative_energy() * iterations as f64;
    }
    let comms = graph
        .nodes()
        .filter(|&n| graph.place(n) == NodePlace::Bus)
        .count() as u64
        * iterations;
    SimReport {
        iterations,
        exec_time: clocks.ticks_to_time(end_tick),
        instructions: ddg.num_ops() as u64 * iterations,
        weighted_ins_per_cluster: weighted,
        comms,
        mem_accesses: ddg.count_memory_ops() as u64 * iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{DdgBuilder, OpClass};
    use vliw_machine::{ClusterId, MachineDesign, Time};
    use vliw_sched::{schedule_loop, schedule_loop_with_partition, Partition, ScheduleOptions};

    fn reference() -> ClockedConfig {
        ClockedConfig::reference(MachineDesign::paper_machine(1))
    }

    fn fir_ddg() -> Ddg {
        let mut b = DdgBuilder::new("fir");
        let l0 = b.op("ld x", OpClass::FpMemory);
        let l1 = b.op("ld c", OpClass::FpMemory);
        let m = b.op("mul", OpClass::FpMul);
        let acc = b.op("acc", OpClass::FpArith);
        let st = b.op("st", OpClass::FpMemory);
        b.flow(l0, m);
        b.flow(l1, m);
        b.flow(m, acc);
        b.flow_carried(acc, acc, 1);
        b.flow(acc, st);
        b.build().unwrap()
    }

    #[test]
    fn scheduler_output_validates() {
        let config = reference();
        let ddg = fir_ddg();
        let s = schedule_loop(&ddg, &config, None, &ScheduleOptions::default()).unwrap();
        validate(&ddg, &config, &s).unwrap();
    }

    #[test]
    fn heterogeneous_schedule_validates() {
        let design = MachineDesign::paper_machine(1);
        let config =
            ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(1.5));
        let ddg = fir_ddg();
        let s = schedule_loop(&ddg, &config, None, &ScheduleOptions::default()).unwrap();
        validate(&ddg, &config, &s).unwrap();
    }

    #[test]
    fn simulation_counts_match_analytic_model() {
        let config = reference();
        let ddg = fir_ddg();
        let s = schedule_loop(&ddg, &config, None, &ScheduleOptions::default()).unwrap();
        let r = simulate(&ddg, &config, &s, 500);
        assert_eq!(r.iterations, 500);
        assert_eq!(r.instructions, 5 * 500);
        assert_eq!(r.mem_accesses, 3 * 500);
        assert_eq!(r.comms, s.comms_per_iter() * 500);
        assert_eq!(
            r.exec_time,
            s.exec_time(500),
            "measured end = analytic (N-1)·IT + it_length"
        );
        let usage = s.usage(500);
        assert_eq!(usage.weighted_ins_per_cluster, r.weighted_ins_per_cluster);
    }

    #[test]
    fn zero_iterations_are_empty() {
        let config = reference();
        let ddg = fir_ddg();
        let s = schedule_loop(&ddg, &config, None, &ScheduleOptions::default()).unwrap();
        let r = simulate(&ddg, &config, &s, 0);
        assert_eq!(r.exec_time, Time::ZERO);
        assert_eq!(r.instructions, 0);
    }

    #[test]
    fn forced_bad_partition_is_caught_by_shape_check() {
        let config = reference();
        let ddg = fir_ddg();
        let s = schedule_loop(&ddg, &config, None, &ScheduleOptions::default()).unwrap();
        // Validate against a *different* DDG: one op fewer.
        let mut b = DdgBuilder::new("other");
        b.op("only", OpClass::IntArith);
        let other = b.build().unwrap();
        let err = validate(&other, &config, &s).unwrap_err();
        assert!(matches!(err[0], Violation::Shape { .. }));
    }

    #[test]
    fn split_assignment_produces_comms_and_still_validates() {
        let config = reference();
        let ddg = fir_ddg();
        // Pin loads away from the consumers to force bus traffic.
        let partition = Partition {
            assignment: vec![
                ClusterId(1),
                ClusterId(2),
                ClusterId(0),
                ClusterId(0),
                ClusterId(3),
            ],
        };
        let s =
            schedule_loop_with_partition(&ddg, &config, &partition, &ScheduleOptions::default())
                .unwrap();
        assert!(s.comms_per_iter() >= 3);
        validate(&ddg, &config, &s).unwrap();
        let r = simulate(&ddg, &config, &s, 10);
        assert_eq!(r.comms, s.comms_per_iter() * 10);
    }

    #[test]
    fn exec_time_grows_linearly_with_iterations() {
        let config = reference();
        let ddg = fir_ddg();
        let s = schedule_loop(&ddg, &config, None, &ScheduleOptions::default()).unwrap();
        let r1 = simulate(&ddg, &config, &s, 100);
        let r2 = simulate(&ddg, &config, &s, 200);
        assert_eq!(r2.exec_time - r1.exec_time, s.it() * 100);
    }
}
