//! Human-readable kernel listings.

use std::fmt::Write as _;

use vliw_ir::Ddg;
use vliw_machine::ClockedConfig;
use vliw_sched::ScheduledLoop;

/// Renders the kernel of `sched` as text: one line per issue event for the
/// first `iterations` iterations, sorted by time, annotated with cluster,
/// local cycle and iteration number.
///
/// Intended for examples, debugging and documentation; the format is not
/// stable.
///
/// # Example
///
/// ```
/// use vliw_ir::{DdgBuilder, OpClass};
/// use vliw_machine::{ClockedConfig, MachineDesign};
/// use vliw_sched::{schedule_loop, ScheduleOptions};
///
/// let mut b = DdgBuilder::new("tiny");
/// let a = b.op("a", OpClass::IntArith);
/// let c = b.op("b", OpClass::IntArith);
/// b.flow(a, c);
/// let ddg = b.build()?;
/// let config = ClockedConfig::reference(MachineDesign::paper_machine(1));
/// let sched = schedule_loop(&ddg, &config, None, &ScheduleOptions::default())?;
/// let listing = vliw_sim::trace(&ddg, &config, &sched, 2);
/// assert!(listing.contains("iter 0"));
/// assert!(listing.contains("iter 1"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn trace(ddg: &Ddg, config: &ClockedConfig, sched: &ScheduledLoop, iterations: u64) -> String {
    let _ = config;
    let clocks = sched.clocks();
    let l = clocks.ticks_per_it();
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Event {
        tick: u64,
        text: String,
    }
    let mut events = Vec::new();
    for iter in 0..iterations {
        for op in ddg.op_ids() {
            let cluster = sched.assignment()[op.index()];
            let tick = sched.op_tick(op) + iter * l;
            events.push(Event {
                tick,
                text: format!(
                    "{} cyc {:>3}  {:<16} ({}, iter {iter})",
                    cluster,
                    sched.op_cycle(op),
                    ddg.op(op).name(),
                    ddg.op(op).class(),
                ),
            });
        }
        for (i, copy) in sched.copies().iter().enumerate() {
            let tick = sched.copy_tick(i) + iter * l;
            events.push(Event {
                tick,
                text: format!(
                    "bus cyc {:>3}  broadcast {} (iter {iter})",
                    copy.cycle, copy.producer
                ),
            });
        }
    }
    events.sort();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "kernel `{}`: IT = {}, it_length = {}",
        ddg.name(),
        sched.it(),
        sched.it_length()
    );
    for e in events {
        let _ = writeln!(
            out,
            "  t={:<10} {}",
            format!("{:.3}ns", clocks.ticks_to_time(e.tick).as_ns()),
            e.text
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{DdgBuilder, OpClass};
    use vliw_machine::MachineDesign;
    use vliw_sched::{schedule_loop, ScheduleOptions};

    #[test]
    fn listing_mentions_every_op() {
        let mut b = DdgBuilder::new("t");
        let a = b.op("alpha", OpClass::FpMul);
        let c = b.op("beta", OpClass::FpArith);
        b.flow(a, c);
        let ddg = b.build().unwrap();
        let config = ClockedConfig::reference(MachineDesign::paper_machine(1));
        let s = schedule_loop(&ddg, &config, None, &ScheduleOptions::default()).unwrap();
        let txt = trace(&ddg, &config, &s, 1);
        assert!(txt.contains("alpha"));
        assert!(txt.contains("beta"));
        assert!(txt.contains("IT ="));
    }

    #[test]
    fn events_are_time_sorted() {
        let mut b = DdgBuilder::new("t");
        let ids: Vec<_> = (0..4)
            .map(|i| b.op(format!("n{i}"), OpClass::IntArith))
            .collect();
        for w in ids.windows(2) {
            b.flow(w[0], w[1]);
        }
        let ddg = b.build().unwrap();
        let config = ClockedConfig::reference(MachineDesign::paper_machine(1));
        let s = schedule_loop(&ddg, &config, None, &ScheduleOptions::default()).unwrap();
        let txt = trace(&ddg, &config, &s, 2);
        let times: Vec<f64> = txt
            .lines()
            .skip(1)
            .map(|l| {
                let t = l.trim_start().trim_start_matches("t=");
                t.split("ns").next().unwrap().parse().unwrap()
            })
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // 4 ops × 2 iterations, plus one line per scheduled copy instance.
        assert_eq!(times.len(), 8 + 2 * s.copies().len());
    }
}
