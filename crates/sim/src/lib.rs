//! Kernel-level simulator for heterogeneous VLIW modulo schedules.
//!
//! This crate plays the role of the simulation infrastructure of the CGO
//! 2007 paper's evaluation (§5): given a [`ScheduledLoop`] produced by
//! `vliw-sched`, it
//!
//! * **validates** the schedule exhaustively — every dependence instance in
//!   exact ticks, every modulo reservation (FU, memory port, bus), the MCD
//!   synchronisation penalties and per-cluster register pressure
//!   ([`validate`]);
//! * **executes** the loop for `N` iterations, measuring the execution time
//!   and counting the events the §3.1 energy model consumes — instructions
//!   per cluster (energy-weighted), bus communications and memory accesses
//!   ([`simulate`]);
//! * renders a human-readable kernel listing for inspection ([`trace`]).
//!
//! The simulator re-derives the extended graph (operations + copies)
//! independently from the scheduler's internal state, so it is a genuine
//! cross-check rather than a replay of the scheduler's own bookkeeping.
//!
//! # Example
//!
//! ```
//! use vliw_ir::{DdgBuilder, OpClass};
//! use vliw_machine::{ClockedConfig, MachineDesign};
//! use vliw_sched::{schedule_loop, ScheduleOptions};
//! use vliw_sim::{simulate, validate};
//!
//! let mut b = DdgBuilder::new("axpy");
//! let lx = b.op("load x", OpClass::FpMemory);
//! let m = b.op("a*x", OpClass::FpMul);
//! let st = b.op("store", OpClass::FpMemory);
//! b.flow(lx, m);
//! b.flow(m, st);
//! let ddg = b.build()?;
//! let config = ClockedConfig::reference(MachineDesign::paper_machine(1));
//! let sched = schedule_loop(&ddg, &config, None, &ScheduleOptions::default())?;
//!
//! validate(&ddg, &config, &sched).expect("scheduler output is sound");
//! let report = simulate(&ddg, &config, &sched, 1000);
//! assert_eq!(report.mem_accesses, 2000);
//! assert_eq!(report.exec_time, sched.exec_time(1000));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod report;
mod tracefmt;

pub use engine::{simulate, validate};
pub use report::{SimReport, Violation};
pub use tracefmt::trace;

// Re-exported so downstream users of the simulator see the scheduled type.
pub use vliw_sched::ScheduledLoop;
