//! Simulation reports and violation diagnostics.

use std::fmt;

use vliw_machine::Time;

/// A constraint broken by a (claimed) schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// A dependence instance is not satisfied.
    Dependence {
        /// Producer node description.
        src: String,
        /// Consumer node description.
        dst: String,
        /// Required earliest consumer tick.
        required_tick: i64,
        /// Actual consumer tick.
        actual_tick: i64,
    },
    /// More operations share a modulo resource row than units exist.
    Resource {
        /// Which resource ("C2 int", "bus", …).
        resource: String,
        /// The overfull modulo row.
        row: u64,
        /// Occupants.
        used: u32,
        /// Units available.
        capacity: u32,
    },
    /// A cluster needs more registers than its file holds.
    Registers {
        /// The cluster.
        cluster: String,
        /// MaxLives measured.
        needed: u32,
        /// Registers available.
        available: u32,
    },
    /// The schedule does not match the DDG (wrong op count, mismatched
    /// copies, …) — indicates caller error rather than scheduler error.
    Shape {
        /// Description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Dependence { src, dst, required_tick, actual_tick } => write!(
                f,
                "dependence {src} -> {dst}: consumer at tick {actual_tick}, needs >= {required_tick}"
            ),
            Violation::Resource { resource, row, used, capacity } => {
                write!(f, "resource {resource}: row {row} holds {used} ops, capacity {capacity}")
            }
            Violation::Registers { cluster, needed, available } => {
                write!(f, "cluster {cluster}: needs {needed} registers, has {available}")
            }
            Violation::Shape { detail } => write!(f, "schedule shape mismatch: {detail}"),
        }
    }
}

/// What `N` iterations of a validated schedule did.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Number of iterations executed.
    pub iterations: u64,
    /// Wall-clock execution time.
    pub exec_time: Time,
    /// Total operations issued (excluding copies).
    pub instructions: u64,
    /// Energy-weighted instruction count per cluster (add-units).
    pub weighted_ins_per_cluster: Vec<f64>,
    /// Bus communications performed.
    pub comms: u64,
    /// Memory-hierarchy accesses performed.
    pub mem_accesses: u64,
}

impl SimReport {
    /// Total energy-weighted instructions across clusters.
    #[must_use]
    pub fn total_weighted_ins(&self) -> f64 {
        self.weighted_ins_per_cluster.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violations_display() {
        let v = Violation::Dependence {
            src: "a".into(),
            dst: "b".into(),
            required_tick: 5,
            actual_tick: 3,
        };
        assert!(v.to_string().contains("needs >= 5"));
        let v = Violation::Resource {
            resource: "C1 mem".into(),
            row: 2,
            used: 3,
            capacity: 1,
        };
        assert!(v.to_string().contains("C1 mem"));
        let v = Violation::Registers {
            cluster: "C0".into(),
            needed: 20,
            available: 16,
        };
        assert!(v.to_string().contains("20"));
        let v = Violation::Shape { detail: "x".into() };
        assert!(!v.to_string().is_empty());
    }

    #[test]
    fn report_totals() {
        let r = SimReport {
            iterations: 10,
            exec_time: Time::from_ns(100.0),
            instructions: 50,
            weighted_ins_per_cluster: vec![10.0, 5.5, 0.0, 4.5],
            comms: 7,
            mem_accesses: 20,
        };
        assert!((r.total_weighted_ins() - 20.0).abs() < 1e-12);
    }
}
