//! The span tracer: structured, newline-JSON trace events with
//! monotonic ordering and explicit parent/child span IDs.
//!
//! Tracing is off until [`init`] installs the process-wide tracer
//! (`--trace FILE` on the CLI and daemon). When off, [`span`] returns
//! an inert guard — the cost is one relaxed atomic load and no
//! allocation. When on, every span emits a `b` (begin) event at
//! construction and an `e` (end) event at drop:
//!
//! ```text
//! {"ev":"b","seq":3,"id":2,"parent":1,"tid":1,"t_ns":8123,"name":"engine.run","kind":"figure6"}
//! {"ev":"e","seq":9,"id":2,"tid":1,"t_ns":104532}
//! ```
//!
//! * `seq` is assigned under the writer lock, so file order equals
//!   `seq` order — a strictly monotonic interleaving across threads.
//! * `id` is unique per span; `parent` is the enclosing span on the
//!   same thread (`0` for roots), maintained by a thread-local stack.
//! * `t_ns` is nanoseconds since the tracer was installed, from the
//!   process monotonic clock.

use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

struct Tracer {
    epoch: Instant,
    next_span: AtomicU64,
    /// Writer state: the sink plus the sequence counter, advanced under
    /// the same lock so emitted `seq` values appear in file order.
    out: Mutex<(BufWriter<File>, u64)>,
}

static TRACER: OnceLock<Tracer> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Enclosing-span stack of the current thread (top = innermost).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Installs the process-wide tracer writing to `path`.
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be created,
/// or `InvalidInput` when a tracer is already installed.
pub fn init(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    let tracer = Tracer {
        epoch: Instant::now(),
        next_span: AtomicU64::new(1),
        out: Mutex::new((BufWriter::new(file), 0)),
    };
    TRACER.set(tracer).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "tracer already installed")
    })
}

/// Whether a tracer is installed.
#[must_use]
pub fn enabled() -> bool {
    TRACER.get().is_some()
}

/// Flushes buffered trace events to the file.
pub fn flush() {
    if let Some(t) = TRACER.get() {
        let mut out = t.out.lock().expect("tracer poisoned");
        let _ = out.0.flush();
    }
}

fn escape_into(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl Tracer {
    /// Writes one event line, assigning its `seq` under the writer lock
    /// so file order equals `seq` order. `tail` is the remainder of the
    /// event object after `"seq":N,` — already valid JSON.
    fn emit(&self, ev: char, tail: &str) {
        let mut out = self.out.lock().expect("tracer poisoned");
        out.1 += 1;
        let seq = out.1;
        let _ = writeln!(out.0, "{{\"ev\":\"{ev}\",\"seq\":{seq},{tail}}}");
    }
}

/// An active span: emits its end event (and pops the thread's parent
/// stack) when dropped. Obtain via [`span`] or [`span_kv`].
#[derive(Debug)]
pub struct Span {
    /// Span ID when tracing is active, `None` for the inert guard.
    id: Option<u64>,
}

impl Span {
    /// This span's ID (0 when tracing is off) — useful for tests.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id.unwrap_or(0)
    }
}

/// Opens a span named `name`; the returned guard ends it on drop.
#[must_use]
pub fn span(name: &str) -> Span {
    span_inner(name, None)
}

/// Opens a span with one `key:value` attribute (e.g. the request kind).
#[must_use]
pub fn span_kv(name: &str, key: &str, value: &str) -> Span {
    span_inner(name, Some((key, value)))
}

fn span_inner(name: &str, attr: Option<(&str, &str)>) -> Span {
    let Some(t) = TRACER.get() else {
        return Span { id: None };
    };
    let id = t.next_span.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied().unwrap_or(0);
        s.push(id);
        parent
    });
    let tid = TID.with(|t| *t);
    let t_ns = t.epoch.elapsed().as_nanos();
    let mut tail =
        format!("\"id\":{id},\"parent\":{parent},\"tid\":{tid},\"t_ns\":{t_ns},\"name\":\"");
    escape_into(&mut tail, name);
    tail.push('"');
    if let Some((k, v)) = attr {
        tail.push_str(",\"");
        escape_into(&mut tail, k);
        tail.push_str("\":\"");
        escape_into(&mut tail, v);
        tail.push('"');
    }
    t.emit('b', &tail);
    Span { id: Some(id) }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        let Some(t) = TRACER.get() else { return };
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards normally drop innermost-first; tolerate manual
            // out-of-order drops by removing by value.
            if s.last() == Some(&id) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|&x| x == id) {
                s.remove(pos);
            }
        });
        let tid = TID.with(|t| *t);
        let t_ns = t.epoch.elapsed().as_nanos();
        t.emit('e', &format!("\"id\":{id},\"tid\":{tid},\"t_ns\":{t_ns}"));
    }
}
