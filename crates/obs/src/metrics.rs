//! The process-wide metrics registry: named counters, gauges and
//! fixed-log-bucket histograms with a byte-stable Prometheus-style text
//! exposition.
//!
//! # Design
//!
//! * **Handles are cheap, registration is not.** [`MetricsRegistry`]
//!   hands out `Arc`s to interned metrics; hot paths cache the handle
//!   (typically in a `OnceLock` at the call site) so the steady-state
//!   cost of an update is a single relaxed atomic operation — no lock,
//!   no allocation, no branch on a registry.
//! * **Deterministic rendering.** Metrics render sorted by name, then
//!   by label value; histogram bucket boundaries are the fixed
//!   power-of-four ladder [`Histogram::BOUNDS`]. Given the same
//!   recorded samples the exposition is byte-identical on every
//!   machine.
//! * **Single optional label.** Every metric carries at most one
//!   `key="value"` label pair (`kind`, `phase`, `worker`, …), which is
//!   all the repo's instrumentation needs and keeps the registry free
//!   of label-set interning machinery.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::percentile::nearest_rank_index;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depth, in-flight connections).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-log-bucket histogram over unsigned samples (typically
/// nanoseconds).
///
/// Bucket upper bounds are the powers of four `4^0 … 4^20` plus `+Inf`
/// — a fixed, machine-independent ladder spanning 1 ns to ~18 minutes
/// at ×4 resolution, so the rendered exposition is byte-stable given
/// the same samples. Recording is lock-free: one relaxed `fetch_add`
/// on the bucket, the sum and the count.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; Histogram::BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Number of buckets including the overflow (`+Inf`) bucket.
    pub const BUCKETS: usize = 22;

    /// The finite bucket upper bounds: `4^i` for `i` in `0..=20`.
    pub const BOUNDS: [u64; Histogram::BUCKETS - 1] = {
        let mut b = [0u64; Histogram::BUCKETS - 1];
        let mut i = 0;
        while i < Histogram::BUCKETS - 1 {
            b[i] = 1u64 << (2 * i);
            i += 1;
        }
        b
    };

    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Index of the bucket a sample lands in: the smallest `i` with
    /// `value <= 4^i`, or the overflow bucket.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value <= 1 {
            return 0;
        }
        // ceil(log2 v) = 64 - clz(v - 1); the bucket ladder is 2^(2i).
        let ceil_log2 = 64 - (value - 1).leading_zeros() as usize;
        let idx = ceil_log2.div_ceil(2);
        idx.min(Histogram::BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[Histogram::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an aggregate of `entries` samples totalling `total`:
    /// each sample is bucketed at the aggregate's mean. This is the
    /// adapter for pre-aggregated sources like the scheduler's
    /// `PhaseProfile`, which keeps per-phase `(nanos, entries)` pairs
    /// rather than individual samples.
    pub fn record_aggregate(&self, total: u64, entries: u64) {
        if entries == 0 {
            return;
        }
        let mean = total / entries;
        self.buckets[Histogram::bucket_index(mean)].fetch_add(entries, Ordering::Relaxed);
        self.sum.fetch_add(total, Ordering::Relaxed);
        self.count.fetch_add(entries, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Nearest-rank quantile estimate: the upper bound of the bucket
    /// holding the rank-`⌈q/100·n⌉` sample (the same rank rule as
    /// [`crate::percentile::nearest_rank`]). Returns `None` when empty
    /// or when the rank lands in the overflow bucket.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = nearest_rank_index(q, usize::try_from(n).unwrap_or(usize::MAX)) as u64 + 1;
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return Histogram::BOUNDS.get(i).copied();
            }
        }
        None
    }

    /// Per-bucket counts (non-cumulative), overflow last.
    #[must_use]
    pub fn bucket_counts(&self) -> [u64; Histogram::BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Metric identity inside a registry: name plus the optional single
/// `key="value"` label pair.
type MetricId = (String, Option<(String, String)>);

/// A registry of named metrics with a deterministic text exposition.
///
/// The process-wide instance is [`crate::registry`]; independent
/// instances exist only for tests.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<MetricId, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<MetricId, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<MetricId, Arc<Histogram>>>,
}

fn intern<M: Default>(
    map: &Mutex<BTreeMap<MetricId, Arc<M>>>,
    name: &str,
    label: Option<(&str, &str)>,
) -> Arc<M> {
    let mut map = map.lock().expect("metrics registry poisoned");
    if let Some(m) = map.get(&(name, label) as &dyn IdKey) {
        return Arc::clone(m);
    }
    let id = (
        name.to_owned(),
        label.map(|(k, v)| (k.to_owned(), v.to_owned())),
    );
    let metric = Arc::new(M::default());
    map.insert(id, Arc::clone(&metric));
    metric
}

/// Borrowed lookup key so interning an already-registered metric does
/// not allocate: `(&str, Option<(&str, &str)>)` compares equal to the
/// owned [`MetricId`].
trait IdKey {
    fn parts(&self) -> (&str, Option<(&str, &str)>);
}

impl IdKey for MetricId {
    fn parts(&self) -> (&str, Option<(&str, &str)>) {
        (
            self.0.as_str(),
            self.1.as_ref().map(|(k, v)| (k.as_str(), v.as_str())),
        )
    }
}

impl IdKey for (&str, Option<(&str, &str)>) {
    fn parts(&self) -> (&str, Option<(&str, &str)>) {
        *self
    }
}

impl PartialEq for dyn IdKey + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.parts() == other.parts()
    }
}

impl Eq for dyn IdKey + '_ {}

impl PartialOrd for dyn IdKey + '_ {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for dyn IdKey + '_ {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.parts().cmp(&other.parts())
    }
}

impl<'a> std::borrow::Borrow<dyn IdKey + 'a> for MetricId {
    fn borrow(&self) -> &(dyn IdKey + 'a) {
        self
    }
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter `name` (registered on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name, None)
    }

    /// The counter `name{key="value"}`.
    pub fn counter_with(&self, name: &str, key: &str, value: &str) -> Arc<Counter> {
        intern(&self.counters, name, Some((key, value)))
    }

    /// The gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name, None)
    }

    /// The gauge `name{key="value"}`.
    pub fn gauge_with(&self, name: &str, key: &str, value: &str) -> Arc<Gauge> {
        intern(&self.gauges, name, Some((key, value)))
    }

    /// The histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name, None)
    }

    /// The histogram `name{key="value"}`.
    pub fn histogram_with(&self, name: &str, key: &str, value: &str) -> Arc<Histogram> {
        intern(&self.histograms, name, Some((key, value)))
    }

    /// Renders the Prometheus-style text exposition: metrics sorted by
    /// name then label value, one `# TYPE` comment per metric family,
    /// histograms as cumulative `_bucket{le=…}` series plus `_sum`,
    /// `_count` and nearest-rank `_p50`/`_p99` estimates.
    #[must_use]
    pub fn render(&self) -> String {
        #[derive(Clone, Copy, PartialEq, Eq)]
        enum Kind {
            Counter,
            Gauge,
            Histogram,
        }
        // (name, label, kind) in BTreeMap order == exposition order.
        let mut families: BTreeMap<String, (Kind, Vec<MetricId>)> = BTreeMap::new();
        let counters = self.counters.lock().expect("metrics registry poisoned");
        let gauges = self.gauges.lock().expect("metrics registry poisoned");
        let histograms = self.histograms.lock().expect("metrics registry poisoned");
        for id in counters.keys() {
            families
                .entry(id.0.clone())
                .or_insert_with(|| (Kind::Counter, Vec::new()))
                .1
                .push(id.clone());
        }
        for id in gauges.keys() {
            families
                .entry(id.0.clone())
                .or_insert_with(|| (Kind::Gauge, Vec::new()))
                .1
                .push(id.clone());
        }
        for id in histograms.keys() {
            families
                .entry(id.0.clone())
                .or_insert_with(|| (Kind::Histogram, Vec::new()))
                .1
                .push(id.clone());
        }
        let mut out = String::new();
        for (name, (kind, ids)) in &families {
            let type_name = match kind {
                Kind::Counter => "counter",
                Kind::Gauge => "gauge",
                Kind::Histogram => "histogram",
            };
            let _ = writeln!(out, "# TYPE {name} {type_name}");
            for id in ids {
                let label =
                    id.1.as_ref()
                        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)));
                match kind {
                    Kind::Counter => {
                        let v = counters[id].get();
                        match &label {
                            Some(l) => {
                                let _ = writeln!(out, "{name}{{{l}}} {v}");
                            }
                            None => {
                                let _ = writeln!(out, "{name} {v}");
                            }
                        }
                    }
                    Kind::Gauge => {
                        let v = gauges[id].get();
                        match &label {
                            Some(l) => {
                                let _ = writeln!(out, "{name}{{{l}}} {v}");
                            }
                            None => {
                                let _ = writeln!(out, "{name} {v}");
                            }
                        }
                    }
                    Kind::Histogram => {
                        let h = &histograms[id];
                        let counts = h.bucket_counts();
                        let mut cumulative = 0u64;
                        for (i, c) in counts.iter().enumerate() {
                            cumulative += c;
                            let le = match Histogram::BOUNDS.get(i) {
                                Some(b) => b.to_string(),
                                None => "+Inf".to_owned(),
                            };
                            match &label {
                                Some(l) => {
                                    let _ = writeln!(
                                        out,
                                        "{name}_bucket{{{l},le=\"{le}\"}} {cumulative}"
                                    );
                                }
                                None => {
                                    let _ =
                                        writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                                }
                            }
                        }
                        let suffix_lines = [
                            ("_sum", h.sum()),
                            ("_count", h.count()),
                            ("_p50", h.quantile(50.0).unwrap_or(0)),
                            ("_p99", h.quantile(99.0).unwrap_or(0)),
                        ];
                        for (suffix, v) in suffix_lines {
                            match &label {
                                Some(l) => {
                                    let _ = writeln!(out, "{name}{suffix}{{{l}}} {v}");
                                }
                                None => {
                                    let _ = writeln!(out, "{name}{suffix} {v}");
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Escapes a label value for the exposition (`\` , `"` and newlines).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry every subsystem records into.
#[must_use]
pub fn registry() -> &'static MetricsRegistry {
    REGISTRY.get_or_init(MetricsRegistry::new)
}

/// Process-wide counter `name` (see [`MetricsRegistry::counter`]).
#[must_use]
pub fn counter(name: &str) -> Arc<Counter> {
    registry().counter(name)
}

/// Process-wide counter `name{key="value"}`.
#[must_use]
pub fn counter_with(name: &str, key: &str, value: &str) -> Arc<Counter> {
    registry().counter_with(name, key, value)
}

/// Process-wide gauge `name`.
#[must_use]
pub fn gauge(name: &str) -> Arc<Gauge> {
    registry().gauge(name)
}

/// Process-wide gauge `name{key="value"}`.
#[must_use]
pub fn gauge_with(name: &str, key: &str, value: &str) -> Arc<Gauge> {
    registry().gauge_with(name, key, value)
}

/// Process-wide histogram `name`.
#[must_use]
pub fn histogram(name: &str) -> Arc<Histogram> {
    registry().histogram(name)
}

/// Process-wide histogram `name{key="value"}`.
#[must_use]
pub fn histogram_with(name: &str, key: &str, value: &str) -> Arc<Histogram> {
    registry().histogram_with(name, key, value)
}

/// Renders the process-wide registry's exposition.
#[must_use]
pub fn render() -> String {
    registry().render()
}

static TIMING: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Turns on timed instrumentation (clock reads on hot paths feeding
/// latency histograms). Counters and gauges are always live — they are
/// single relaxed atomic updates — but clock reads are gated so the
/// default one-shot CLI pays nothing for them. The daemon enables this
/// at startup; `paper --metrics` enables it for one-shot runs.
pub fn enable_timing() {
    TIMING.store(true, Ordering::Relaxed);
}

/// Whether timed instrumentation is on.
#[must_use]
pub fn timing_enabled() -> bool {
    TIMING.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_the_smallest_power_of_four_bound() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(4), 1);
        assert_eq!(Histogram::bucket_index(5), 2);
        assert_eq!(Histogram::bucket_index(16), 2);
        assert_eq!(Histogram::bucket_index(17), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), Histogram::BUCKETS - 1);
        for (i, &b) in Histogram::BOUNDS.iter().enumerate() {
            assert_eq!(Histogram::bucket_index(b), i);
            assert_eq!(Histogram::bucket_index(b + 1), i + 1);
        }
    }

    #[test]
    fn histogram_quantiles_follow_nearest_rank() {
        let h = Histogram::new();
        assert_eq!(h.quantile(50.0), None);
        for v in [1u64, 3, 10, 100, 1000] {
            h.record(v);
        }
        // Ranks: p50 -> 3rd sample (10, bucket bound 16), p99 -> 5th
        // (1000, bucket bound 1024).
        assert_eq!(h.quantile(50.0), Some(16));
        assert_eq!(h.quantile(99.0), Some(1024));
        assert_eq!(h.sum(), 1114);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn record_aggregate_buckets_at_the_mean() {
        let h = Histogram::new();
        h.record_aggregate(1000, 10); // mean 100 -> bucket bound 256
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 1000);
        assert_eq!(h.quantile(50.0), Some(256));
        h.record_aggregate(0, 0); // no-op
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn interning_returns_the_same_metric() {
        let r = MetricsRegistry::new();
        r.counter_with("reqs", "kind", "a").add(2);
        r.counter_with("reqs", "kind", "a").inc();
        r.counter_with("reqs", "kind", "b").inc();
        assert_eq!(r.counter_with("reqs", "kind", "a").get(), 3);
        assert_eq!(r.counter_with("reqs", "kind", "b").get(), 1);
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let r = MetricsRegistry::new();
        r.gauge("z_depth").set(-2);
        r.counter_with("b_reqs", "kind", "t2").add(4);
        r.counter_with("b_reqs", "kind", "f6").add(1);
        r.histogram("a_lat").record(5);
        let text = r.render();
        let again = r.render();
        assert_eq!(text, again, "render must be deterministic");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "# TYPE a_lat histogram");
        assert!(text.contains("a_lat_bucket{le=\"16\"} 1"));
        assert!(text.contains("a_lat_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("a_lat_sum 5"));
        assert!(text.contains("a_lat_count 1"));
        assert!(text.contains("a_lat_p50 16"));
        let b_pos = text.find("# TYPE b_reqs counter").unwrap();
        let z_pos = text.find("# TYPE z_depth gauge").unwrap();
        assert!(b_pos < z_pos, "families sorted by name");
        let f6 = text.find("b_reqs{kind=\"f6\"} 1").unwrap();
        let t2 = text.find("b_reqs{kind=\"t2\"} 4").unwrap();
        assert!(f6 < t2, "samples sorted by label value");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = MetricsRegistry::new();
        r.counter_with("c", "k", "a\"b\\c").inc();
        assert!(r.render().contains("c{k=\"a\\\"b\\\\c\"} 1"));
    }
}
