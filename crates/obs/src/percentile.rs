//! Nearest-rank percentile — the one shared implementation behind
//! loadgen's client-side p50/p99, the daemon's server-side histogram
//! quantiles and the perf gate's derived fields.

/// Zero-based index of the nearest-rank `q`-th percentile in an
/// ascending sample of `n` elements: `⌈q/100 · n⌉` clamped to `1..=n`,
/// minus one.
///
/// # Panics
///
/// Panics when `n == 0` — a percentile of an empty sample is
/// meaningless.
#[must_use]
pub fn nearest_rank_index(q: f64, n: usize) -> usize {
    assert!(n > 0, "percentile of an empty sample");
    let rank = (q / 100.0 * n as f64).ceil() as usize;
    rank.clamp(1, n) - 1
}

/// Nearest-rank percentile of an ascending-sorted sample.
///
/// # Panics
///
/// Panics when `sorted` is empty.
#[must_use]
pub fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    sorted[nearest_rank_index(q, sorted.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let sample: Vec<f64> = (1..=10).map(f64::from).collect();
        assert!((nearest_rank(&sample, 50.0) - 5.0).abs() < f64::EPSILON);
        assert!((nearest_rank(&sample, 99.0) - 10.0).abs() < f64::EPSILON);
        assert!((nearest_rank(&sample, 100.0) - 10.0).abs() < f64::EPSILON);
        assert!((nearest_rank(&sample, 0.0) - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = nearest_rank(&[], 50.0);
    }
}
