//! Dependency-free observability for the `heterovliw` reproduction: a
//! process-wide [`MetricsRegistry`] of counters, gauges and
//! fixed-log-bucket [`Histogram`]s with a byte-stable Prometheus-style
//! text exposition, a structured span [tracer](crate::trace) writing
//! newline-JSON events with monotonic ordering and parent/child span
//! IDs, and the shared [nearest-rank percentile](crate::percentile)
//! used by loadgen, the daemon's server-side quantiles and the perf
//! gate.
//!
//! # Cost model
//!
//! Counters and gauges are always live: an update is one relaxed
//! atomic add, and hot paths cache their `Arc` handle in a `OnceLock`
//! so the steady state allocates nothing and takes no lock. Clock
//! reads feeding latency histograms are gated behind
//! [`enable_timing`] (the daemon turns it on at startup; one-shot
//! runs opt in with `paper --metrics`), and span emission is gated on
//! the tracer being [installed](trace::init) (`--trace FILE`) — with
//! neither consumer active the instrumentation is near-zero-cost and
//! the scheduler's steady-state zero-allocation discipline holds.
//!
//! # Naming conventions
//!
//! Metric names are `<layer>_<what>[_total|_nanos|_bytes]` with at
//! most one label (`kind`, `phase`, `worker`): `engine_requests_total
//! {kind="figure6"}`, `sched_phase_nanos{phase="place"}`,
//! `exec_queue_depth`. The exposition sorts families by name and
//! samples by label value, so rendered output is deterministic given
//! the same recorded samples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod metrics;
pub mod percentile;
pub mod trace;

pub use metrics::{
    counter, counter_with, enable_timing, gauge, gauge_with, histogram, histogram_with, registry,
    render, timing_enabled, Counter, Gauge, Histogram, MetricsRegistry,
};
pub use percentile::{nearest_rank, nearest_rank_index};
pub use trace::{span, span_kv, Span};

/// Reads the monotonic clock only when [`timing_enabled`] — the gate
/// every hot-path latency measurement goes through.
#[must_use]
pub fn timer_start() -> Option<std::time::Instant> {
    if timing_enabled() {
        Some(std::time::Instant::now())
    } else {
        None
    }
}

/// Elapsed nanoseconds since a [`timer_start`] instant (saturating at
/// `u64::MAX`).
#[must_use]
pub fn elapsed_nanos(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}
