//! Concurrency discipline of the registry: N threads hammering the same
//! counters, gauges and histograms must account for exactly the same
//! totals as the serial sum — no lost updates, no torn histograms.

use std::sync::Arc;

use proptest::prelude::*;
use vliw_obs::{Histogram, MetricsRegistry};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Each thread adds its slice of `increments` to one shared counter
    /// and records its slice of `samples` into one shared histogram;
    /// afterwards the counter equals the serial sum and the histogram's
    /// count/sum/buckets equal the serially-computed ones.
    #[test]
    fn threads_hammering_the_registry_equal_the_serial_sum(
        increments in proptest::collection::vec(0u64..1_000, 1..64),
        samples in proptest::collection::vec(0u64..1u64 << 48, 1..64),
        threads in 2usize..8,
    ) {
        let registry = Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for t in 0..threads {
                let registry = Arc::clone(&registry);
                let incs: Vec<u64> =
                    increments.iter().skip(t).step_by(threads).copied().collect();
                let vals: Vec<u64> =
                    samples.iter().skip(t).step_by(threads).copied().collect();
                scope.spawn(move || {
                    // Re-interning per update exercises the registry's
                    // lock path concurrently with the atomic updates.
                    for n in incs {
                        registry.counter("hits").add(n);
                        registry.gauge("depth").inc();
                    }
                    let hist = registry.histogram("lat");
                    for v in vals {
                        hist.record(v);
                    }
                });
            }
        });
        prop_assert_eq!(
            registry.counter("hits").get(),
            increments.iter().sum::<u64>()
        );
        prop_assert_eq!(registry.gauge("depth").get(), increments.len() as i64);

        let serial = Histogram::new();
        for &v in &samples {
            serial.record(v);
        }
        let hist = registry.histogram("lat");
        prop_assert_eq!(hist.count(), serial.count());
        prop_assert_eq!(hist.sum(), serial.sum());
        prop_assert_eq!(hist.bucket_counts(), serial.bucket_counts());
        prop_assert_eq!(hist.quantile(50.0), serial.quantile(50.0));
        prop_assert_eq!(hist.quantile(99.0), serial.quantile(99.0));
    }

    /// The shared nearest-rank helper agrees with a brute-force
    /// "sort and index" reference for every percentile.
    #[test]
    fn nearest_rank_matches_brute_force(
        raw in proptest::collection::vec(-1e9f64..1e9, 1..200),
        q in 0.0f64..100.0,
    ) {
        let mut sample = raw;
        sample.sort_by(f64::total_cmp);
        let got = vliw_obs::nearest_rank(&sample, q);
        // Brute force: smallest element with at least q% of the sample
        // at or below it (nearest-rank definition, rank at least 1).
        let n = sample.len();
        let mut rank = 1;
        while (rank as f64) < q / 100.0 * n as f64 {
            rank += 1;
        }
        let expect = sample[rank.min(n) - 1];
        prop_assert_eq!(got.to_bits(), expect.to_bits());
    }
}
