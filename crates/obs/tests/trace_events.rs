//! Wire format of the span tracer: monotonic `seq`, balanced
//! begin/end events, correct parent/child nesting. Runs in its own
//! test binary because the tracer is process-global.

use std::path::PathBuf;

fn field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn trace_file_is_monotonic_and_nested() {
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("trace_events.jsonl");
    vliw_obs::trace::init(&path).expect("install tracer");
    assert!(vliw_obs::trace::enabled());
    assert!(
        vliw_obs::trace::init(&path).is_err(),
        "double init must fail"
    );

    {
        let _root = vliw_obs::span("root");
        {
            let _child = vliw_obs::span_kv("child", "kind", "figure6");
        }
        let t = std::thread::spawn(|| {
            let _other = vliw_obs::span("other-thread");
        });
        t.join().unwrap();
    }
    vliw_obs::trace::flush();

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 6, "3 spans x begin+end: {text}");

    // seq is strictly monotonic and equals file order.
    let seqs: Vec<u64> = lines.iter().map(|l| field(l, "seq").unwrap()).collect();
    assert_eq!(seqs, (1..=6).collect::<Vec<u64>>());

    let begins: Vec<&&str> = lines
        .iter()
        .filter(|l| l.contains("\"ev\":\"b\""))
        .collect();
    let ends: Vec<&&str> = lines
        .iter()
        .filter(|l| l.contains("\"ev\":\"e\""))
        .collect();
    assert_eq!((begins.len(), ends.len()), (3, 3));

    // Parent/child: root is a root span; child's parent is root's id;
    // the other thread's span is a root again (its own stack).
    let root_b = begins
        .iter()
        .find(|l| l.contains("\"name\":\"root\""))
        .unwrap();
    let child_b = begins
        .iter()
        .find(|l| l.contains("\"name\":\"child\""))
        .unwrap();
    let other_b = begins
        .iter()
        .find(|l| l.contains("\"name\":\"other-thread\""))
        .unwrap();
    assert_eq!(field(root_b, "parent"), Some(0));
    assert_eq!(field(child_b, "parent"), field(root_b, "id"));
    assert_eq!(field(other_b, "parent"), Some(0));
    assert!(child_b.contains("\"kind\":\"figure6\""), "{child_b}");
    assert_ne!(
        field(other_b, "tid"),
        field(root_b, "tid"),
        "thread ids distinguish stacks"
    );

    // t_ns is monotonic per thread between begin and end.
    let root_e = ends
        .iter()
        .find(|l| field(l, "id") == field(root_b, "id"))
        .unwrap();
    assert!(field(root_e, "t_ns").unwrap() >= field(root_b, "t_ns").unwrap());
}
