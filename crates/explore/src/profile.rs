//! Reference-machine profiling (the paper's §3 "profile data").

use vliw_ir::FuKind;
use vliw_machine::{ClockedConfig, MachineDesign, Time};
use vliw_power::ReferenceProfile;
use vliw_sched::{schedule_loop_ws, SchedError, SchedWorkspace, ScheduleOptions, ScheduledLoop};
use vliw_workloads::Benchmark;

/// Nominal whole-program execution time on the reference machine. Loop
/// invocation counts are scaled so each loop's share of this time equals
/// its profile weight; all model outputs are ratios, so the absolute value
/// is arbitrary.
pub const T_TOTAL: Time = Time::from_fs(1_000_000 * Time::FS_PER_NS); // 1 ms

/// Everything the §3 models need to know about one loop, measured on the
/// reference homogeneous machine.
#[derive(Debug, Clone)]
pub struct LoopProfile {
    /// Loop name.
    pub name: String,
    /// Fraction of program time this loop accounts for.
    pub weight: f64,
    /// Iterations per invocation.
    pub trips: u64,
    /// Recurrence-constrained minimum II (cycles).
    pub rec_mii: u32,
    /// Operations per FU kind `[int, fp, mem]`.
    pub fu_counts: [u64; 3],
    /// Inter-cluster communications per iteration in the reference
    /// schedule.
    pub comms: u64,
    /// Sum of register lifetimes per iteration (time).
    pub lifetime_time: Time,
    /// Iteration length of the reference schedule.
    pub it_length: Time,
    /// Initiation time of the reference schedule.
    pub it_ref: Time,
    /// Energy-weighted instructions per iteration (whole loop).
    pub weighted_ins: f64,
    /// Energy-weighted instructions per iteration on non-trivial
    /// recurrences (the critical subset the fast cluster must host).
    pub rec_weighted_ins: f64,
    /// Memory accesses per iteration.
    pub mem_accesses: u64,
    /// Execution time of one invocation (`trips` iterations).
    pub exec_time_ref: Time,
    /// Invocation multiplier: `weight · T_TOTAL / exec_time_ref`.
    pub invocations: f64,
}

/// A profiled benchmark: per-loop profiles plus the aggregate reference
/// profile that calibrates the energy model.
#[derive(Debug, Clone)]
pub struct BenchmarkProfile {
    /// Benchmark name.
    pub name: String,
    /// Per-loop measurements.
    pub loops: Vec<LoopProfile>,
    /// Aggregate reference-run profile (total energy normalisation point).
    pub reference: ReferenceProfile,
}

/// Aggregates per-benchmark reference profiles into one suite-level
/// profile: each benchmark contributes the same nominal time
/// ([`T_TOTAL`]), so the suite runs for `n · T_TOTAL` and its event counts
/// are the per-benchmark sums.
///
/// The paper's §5 energy shares describe the reference machine running the
/// *whole* workload, so the energy units are calibrated once on this
/// aggregate; per-benchmark dynamic/static mixes then differ with their
/// IPC, exactly the effect §5.2 discusses for swim/mgrid.
///
/// # Panics
///
/// Panics if `profiles` is empty.
#[must_use]
pub fn suite_reference(profiles: &[BenchmarkProfile]) -> ReferenceProfile {
    assert!(!profiles.is_empty(), "cannot aggregate an empty suite");
    ReferenceProfile {
        weighted_ins: profiles.iter().map(|p| p.reference.weighted_ins).sum(),
        comms: profiles.iter().map(|p| p.reference.comms).sum(),
        mem_accesses: profiles.iter().map(|p| p.reference.mem_accesses).sum(),
        exec_time: T_TOTAL * profiles.len() as u64,
    }
}

/// The §3.1 usage profile of one benchmark's reference run at a scaled
/// cycle time (homogeneous machines keep their schedules, so counts are
/// invariant and time scales linearly).
#[must_use]
pub fn reference_usage_scaled(
    profile: &BenchmarkProfile,
    num_clusters: u8,
    time_factor: f64,
) -> vliw_power::UsageProfile {
    let exec_time = Time::from_ns(profile.reference.exec_time.as_ns() * time_factor);
    let per = profile.reference.weighted_ins / f64::from(num_clusters);
    vliw_power::UsageProfile {
        weighted_ins_per_cluster: vec![per; usize::from(num_clusters)],
        comms: profile.reference.comms,
        mem_accesses: profile.reference.mem_accesses,
        exec_time,
    }
}

/// Schedules and simulates every loop of `bench` on the reference
/// homogeneous machine, producing the profile the §3 models start from.
///
/// # Errors
///
/// Propagates scheduling failures (which indicate a malformed workload —
/// generated suites always schedule).
pub fn profile_benchmark(
    bench: &Benchmark,
    design: MachineDesign,
    sched_opts: &ScheduleOptions,
) -> Result<BenchmarkProfile, SchedError> {
    profile_benchmark_ws(bench, design, sched_opts, &mut SchedWorkspace::new())
}

/// [`profile_benchmark`] with a caller-provided scheduling workspace,
/// reused across every loop of the benchmark (and across benchmarks when
/// the caller keeps one workspace per worker thread). Results are
/// identical.
///
/// # Errors
///
/// As [`profile_benchmark`].
pub fn profile_benchmark_ws(
    bench: &Benchmark,
    design: MachineDesign,
    sched_opts: &ScheduleOptions,
    ws: &mut SchedWorkspace,
) -> Result<BenchmarkProfile, SchedError> {
    let config = ClockedConfig::reference(design);
    let mut loops = Vec::with_capacity(bench.loops.len());
    let mut agg_ins = 0.0f64;
    let mut agg_comms = 0.0f64;
    let mut agg_mem = 0.0f64;

    for l in &bench.loops {
        let ddg = l.ddg();
        let mut opts = sched_opts.clone();
        opts.trip_count = l.trip_count();
        let sched: ScheduledLoop = schedule_loop_ws(ddg, &config, None, &opts, ws)?;
        let exec_time_ref = sched.exec_time(l.trip_count());
        let invocations = l.weight() * T_TOTAL.as_ns() / exec_time_ref.as_ns();

        let rec_weighted_ins: f64 = ddg
            .recurrences()
            .iter()
            .flat_map(|r| r.ops.iter())
            .map(|&op| ddg.op(op).class().relative_energy())
            .sum();

        let lifetime_time = sched.clocks().ticks_to_time(sched.lifetime_sum_ticks());
        loops.push(LoopProfile {
            name: ddg.name().to_owned(),
            weight: l.weight(),
            trips: l.trip_count(),
            rec_mii: ddg.rec_mii(),
            fu_counts: [
                ddg.count_fu(FuKind::Int) as u64,
                ddg.count_fu(FuKind::Fp) as u64,
                ddg.count_fu(FuKind::Mem) as u64,
            ],
            comms: sched.comms_per_iter(),
            lifetime_time,
            it_length: sched.it_length(),
            it_ref: sched.it(),
            weighted_ins: ddg.iteration_energy(),
            rec_weighted_ins,
            mem_accesses: sched.mem_accesses_per_iter(),
            exec_time_ref,
            invocations,
        });
        let trips = l.trip_count() as f64;
        agg_ins += invocations * ddg.iteration_energy() * trips;
        agg_comms += invocations * sched.comms_per_iter() as f64 * trips;
        agg_mem += invocations * sched.mem_accesses_per_iter() as f64 * trips;
    }

    Ok(BenchmarkProfile {
        name: bench.name.clone(),
        loops,
        reference: ReferenceProfile {
            weighted_ins: agg_ins,
            comms: agg_comms.round() as u64,
            mem_accesses: agg_mem.round() as u64,
            exec_time: T_TOTAL,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_workloads::{generate, spec_fp2000};

    #[test]
    fn profile_shares_reconstruct_t_total() {
        let bench = generate(&spec_fp2000()[1], 8); // swim
        let design = MachineDesign::paper_machine(1);
        let p = profile_benchmark(&bench, design, &ScheduleOptions::default()).unwrap();
        assert_eq!(p.loops.len(), bench.loops.len());
        // Σ invocations · exec_time = T_TOTAL by construction.
        let total: f64 = p
            .loops
            .iter()
            .map(|l| l.invocations * l.exec_time_ref.as_ns())
            .sum();
        assert!((total - T_TOTAL.as_ns()).abs() / T_TOTAL.as_ns() < 1e-9);
        assert_eq!(p.reference.exec_time, T_TOTAL);
        assert!(p.reference.weighted_ins > 0.0);
    }

    #[test]
    fn recurrence_heavy_benchmarks_report_rec_ins() {
        let bench = generate(&spec_fp2000()[8], 6); // sixtrack
        let design = MachineDesign::paper_machine(1);
        let p = profile_benchmark(&bench, design, &ScheduleOptions::default()).unwrap();
        let with_recs = p.loops.iter().filter(|l| l.rec_weighted_ins > 0.0).count();
        assert!(
            with_recs >= p.loops.len() - 1,
            "sixtrack loops are recurrence bound"
        );
        for l in &p.loops {
            assert!(l.rec_weighted_ins <= l.weighted_ins + 1e-9);
        }
    }
}
