//! Metaheuristic design-space search over machine configurations.
//!
//! The §3.3/§5 selection scheme sweeps a 20-point `(cycle factor,
//! slow/fast ratio)` grid exhaustively. This module plugs the
//! `vliw-search` optimizers into the exploration pipeline so much larger
//! spaces stay tractable:
//!
//! * [`SpaceKind::Paper`] — exactly the paper's grid
//!   ([`candidate_grid`](crate::candidate_grid) order), with per-group
//!   supply voltages derived by the same coordinate descent the §3.3
//!   selection uses. Small enough to enumerate, which is what the
//!   validation leans on: every strategy with budget ≥ 20 must recover
//!   the [`Exhaustive`](vliw_search::Exhaustive) winner.
//! * [`SpaceKind::Extended`] — a much larger gene space: wider cycle
//!   factor and slow/fast ratio menus, the fast/slow *split* (1–3 fast
//!   clusters), the bus width, and explicit per-speed-group, ICN and
//!   cache supply voltages (the GA crosses over these genes directly).
//!
//! Every candidate is **measured, not estimated**: the selected
//! configuration re-schedules every loop of every benchmark through the
//! §4 heterogeneous modulo scheduler, routed through the suite's
//! [`MeasureCache`](crate::experiments::MeasureCache) so repeated
//! configurations (and repeated runs on one suite) cost nothing.
//! Candidates that fail to schedule or cannot sustain their frequencies
//! electrically are infeasible, not errors.
//!
//! Objectives are suite totals — `Σ exec time`, `Σ energy`,
//! `Σ energy·time²` over the benchmarks — so the Pareto archive trades
//! whole-workload time against whole-workload energy with the paper's
//! ED² as the scalar tie-breaker.

use serde::Serialize;

use vliw_exec::Executor;
use vliw_machine::{ClockedConfig, Time, Voltages};
use vliw_power::{PowerModel, UsageProfile};
use vliw_search::{ArchiveEntry, GridSpace, Objectives, SearchSpace, Strategy};

use crate::estimate::estimate_usage;
use crate::experiments::{ExperimentOptions, ProfiledSuite};
use crate::homog::optimise_voltages_grouped;
use crate::profile::{reference_usage_scaled, suite_reference};
use crate::select::{FAST_FACTORS, SLOW_RATIOS};

/// Extended fast-cluster cycle-time factors (×reference cycle).
pub const EXT_FAST_FACTORS: [f64; 7] = [0.85, 0.90, 0.95, 1.00, 1.05, 1.10, 1.15];

/// Extended slow/fast cycle-time ratios.
pub const EXT_SLOW_RATIOS: [f64; 6] = [1.0, 1.1, 1.25, 1.33, 1.5, 1.75];

/// Extended fast-cluster counts (the speed-group split; the paper fixes
/// this at 1).
pub const EXT_NUM_FAST: [u8; 3] = [1, 2, 3];

/// Extended per-speed-group cluster supply menu (spans the paper's legal
/// 0.7–1.2 V cluster range).
pub const EXT_CLUSTER_VDDS: [f64; 6] = [0.7, 0.8, 0.9, 1.0, 1.1, 1.2];

/// Extended ICN supply menu (0.8–1.1 V).
pub const EXT_ICN_VDDS: [f64; 4] = [0.8, 0.9, 1.0, 1.1];

/// Extended cache supply menu (1.0–1.4 V).
pub const EXT_CACHE_VDDS: [f64; 5] = [1.0, 1.1, 1.2, 1.3, 1.4];

/// Which configuration space a search explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpaceKind {
    /// The paper's own 20-point §3.3 grid (voltages derived by descent).
    Paper,
    /// The enlarged gene space (frequencies × split × buses × explicit
    /// voltages).
    Extended,
}

impl SpaceKind {
    /// The stable CLI/JSON name (`paper` | `extended`).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            SpaceKind::Paper => "paper",
            SpaceKind::Extended => "extended",
        }
    }

    /// Parses a CLI name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "paper" => Some(SpaceKind::Paper),
            "extended" => Some(SpaceKind::Extended),
            _ => None,
        }
    }
}

/// The machine-configuration search space: a mixed-radix gene grid plus
/// the menus the genes index into.
///
/// Gene layout (dimension 0 fastest in the canonical index):
///
/// * paper: `[fast factor, slow/fast ratio]`;
/// * extended: `[fast factor, slow/fast ratio, num_fast, bus slot,
///   fast-group Vdd, slow-group Vdd, ICN Vdd, cache Vdd]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSpace {
    kind: SpaceKind,
    grid: GridSpace,
    fast_factors: Vec<f64>,
    slow_ratios: Vec<f64>,
    num_fast: Vec<u8>,
}

impl ConfigSpace {
    /// The paper's §3.3 grid over one machine shape.
    #[must_use]
    pub fn paper() -> Self {
        ConfigSpace {
            kind: SpaceKind::Paper,
            grid: GridSpace::new(vec![FAST_FACTORS.len() as u32, SLOW_RATIOS.len() as u32]),
            fast_factors: FAST_FACTORS.to_vec(),
            slow_ratios: SLOW_RATIOS.to_vec(),
            num_fast: vec![1],
        }
    }

    /// The extended gene space over `bus_slots` machine shapes (one per
    /// profiled bus count).
    ///
    /// # Panics
    ///
    /// Panics if `bus_slots == 0`.
    #[must_use]
    pub fn extended(bus_slots: usize) -> Self {
        assert!(bus_slots > 0, "the space needs at least one bus slot");
        ConfigSpace {
            kind: SpaceKind::Extended,
            grid: GridSpace::new(vec![
                EXT_FAST_FACTORS.len() as u32,
                EXT_SLOW_RATIOS.len() as u32,
                EXT_NUM_FAST.len() as u32,
                u32::try_from(bus_slots).expect("bus slots fit in u32"),
                EXT_CLUSTER_VDDS.len() as u32,
                EXT_CLUSTER_VDDS.len() as u32,
                EXT_ICN_VDDS.len() as u32,
                EXT_CACHE_VDDS.len() as u32,
            ]),
            fast_factors: EXT_FAST_FACTORS.to_vec(),
            slow_ratios: EXT_SLOW_RATIOS.to_vec(),
            num_fast: EXT_NUM_FAST.to_vec(),
        }
    }

    /// The space kind.
    #[must_use]
    pub fn kind(&self) -> SpaceKind {
        self.kind
    }

    /// Decodes the frequency-shape genes shared by both kinds.
    fn decode_shape(&self, genes: &[u32]) -> (f64, f64, u8, usize) {
        let fast_factor = self.fast_factors[genes[0] as usize];
        let slow_ratio = self.slow_ratios[genes[1] as usize];
        let (num_fast, bus_slot) = match self.kind {
            SpaceKind::Paper => (self.num_fast[0], 0),
            SpaceKind::Extended => (self.num_fast[genes[2] as usize], genes[3] as usize),
        };
        (fast_factor, slow_ratio, num_fast, bus_slot)
    }

    /// Decodes the extended space's explicit voltage genes.
    fn decode_voltages(&self, genes: &[u32], num_clusters: u8, num_fast: u8) -> Voltages {
        debug_assert_eq!(self.kind, SpaceKind::Extended);
        let fast_vdd = EXT_CLUSTER_VDDS[genes[4] as usize];
        let slow_vdd = EXT_CLUSTER_VDDS[genes[5] as usize];
        let mut voltages = Voltages::reference(num_clusters);
        for (c, vdd) in voltages.clusters.iter_mut().enumerate() {
            *vdd = if c < usize::from(num_fast) {
                fast_vdd
            } else {
                slow_vdd
            };
        }
        voltages.icn = EXT_ICN_VDDS[genes[6] as usize];
        voltages.cache = EXT_CACHE_VDDS[genes[7] as usize];
        voltages
    }
}

impl SearchSpace for ConfigSpace {
    type Point = Vec<u32>;

    fn size(&self) -> u64 {
        self.grid.size()
    }

    fn point(&self, index: u64) -> Vec<u32> {
        self.grid.point(index)
    }

    fn index(&self, point: &Vec<u32>) -> u64 {
        self.grid.index(point)
    }

    fn neighbors(&self, point: &Vec<u32>, out: &mut Vec<Vec<u32>>) {
        self.grid.neighbors(point, out);
    }

    fn mutate(&self, point: &Vec<u32>, rng: &mut rand::rngs::SmallRng) -> Vec<u32> {
        self.grid.mutate(point, rng)
    }

    fn crossover(&self, a: &Vec<u32>, b: &Vec<u32>, rng: &mut rand::rngs::SmallRng) -> Vec<u32> {
        self.grid.crossover(a, b, rng)
    }
}

/// One profiled machine shape the search can place candidates on.
struct BusContext<'a> {
    suite: &'a ProfiledSuite,
    power: PowerModel,
}

/// Everything a candidate evaluation needs: the space, one calibrated
/// power model per profiled bus count, and the scheduler options.
pub struct SearchContext<'a> {
    space: ConfigSpace,
    buses: Vec<BusContext<'a>>,
    opts: ExperimentOptions,
}

impl std::fmt::Debug for SearchContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchContext")
            .field("space", &self.space)
            .field("buses", &self.buses.len())
            .finish_non_exhaustive()
    }
}

impl<'a> SearchContext<'a> {
    /// Builds the evaluation context for `kind` over the profiled suites
    /// (one per bus count; the paper space uses only the first).
    ///
    /// The power model is calibrated per suite exactly as
    /// [`figure6_with`](crate::experiments::figure6_with) does, and the
    /// scheduler options inherit `opts.menu` so measurement matches the
    /// experiment pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `suites` is empty.
    #[must_use]
    pub fn new(kind: SpaceKind, suites: &[&'a ProfiledSuite], opts: &ExperimentOptions) -> Self {
        assert!(!suites.is_empty(), "the search needs a profiled suite");
        let used = match kind {
            SpaceKind::Paper => &suites[..1],
            SpaceKind::Extended => suites,
        };
        let buses = used
            .iter()
            .map(|suite| BusContext {
                suite,
                power: PowerModel::calibrate(
                    suite.design,
                    opts.shares,
                    &suite_reference(&suite.profiles),
                ),
            })
            .collect::<Vec<_>>();
        let space = match kind {
            SpaceKind::Paper => ConfigSpace::paper(),
            SpaceKind::Extended => ConfigSpace::extended(buses.len()),
        };
        let mut opts = opts.clone();
        opts.sched.menu = opts.menu.clone();
        SearchContext { space, buses, opts }
    }

    /// The candidate space.
    #[must_use]
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// Decodes a gene vector into its machine shape and fully clocked
    /// configuration (paper-space voltages run the §3.3 coordinate
    /// descent). `None` when the candidate is infeasible.
    #[must_use]
    pub fn decode(&self, genes: &[u32]) -> Option<(u32, ClockedConfig)> {
        let (fast_factor, slow_ratio, num_fast, bus_slot) = self.space.decode_shape(genes);
        let bus = &self.buses[bus_slot];
        let design = bus.suite.design;
        let fast = Time::from_ns(ClockedConfig::REFERENCE_CYCLE.as_ns() * fast_factor);
        let slow = Time::from_ns(fast.as_ns() * slow_ratio);
        let config = match self.space.kind {
            SpaceKind::Paper => {
                let base = ClockedConfig::heterogeneous(design, fast, num_fast, slow);
                let voltages = self.descend_voltages(bus, &base, slow_ratio, fast_factor)?;
                base.with_voltages(voltages)
            }
            SpaceKind::Extended => {
                // A ratio of 1 collapses the speed groups: the split and
                // the slow-group supply are meaningless, so they are
                // canonicalised away (the archive keeps the lowest index
                // among gene vectors that alias to one configuration).
                let base = if slow_ratio == 1.0 {
                    ClockedConfig::homogeneous(design, fast)
                } else {
                    ClockedConfig::heterogeneous(design, fast, num_fast, slow)
                };
                let effective_fast = if slow_ratio == 1.0 {
                    design.num_clusters
                } else {
                    num_fast
                };
                let voltages =
                    self.space
                        .decode_voltages(genes, design.num_clusters, effective_fast);
                if !voltages.in_range() {
                    return None;
                }
                base.with_voltages(voltages)
            }
        };
        if !electrically_feasible(&bus.power, &config) {
            return None;
        }
        Some((design.buses, config))
    }

    /// Evaluates one candidate: decode, (derive voltages,) measure every
    /// benchmark through the suite's memo cache, and total the
    /// objectives. `None` for infeasible candidates — voltages out of
    /// range, frequencies a supply cannot sustain, estimation or
    /// scheduling failure. Serial shorthand for
    /// [`SearchContext::evaluate_with`].
    #[must_use]
    pub fn evaluate(&self, genes: &[u32]) -> Option<Objectives> {
        self.evaluate_with(genes, &Executor::serial())
    }

    /// [`SearchContext::evaluate`] with the per-loop measurement fanned
    /// out across `exec` — the search engine passes the run's pool here
    /// whenever candidates are evaluated one at a time (annealing
    /// proposals, hill-climb starts), so sequential strategies still
    /// parallelise. Results are identical for every worker count.
    #[must_use]
    pub fn evaluate_with(&self, genes: &[u32], exec: &Executor) -> Option<Objectives> {
        let (_, config) = self.decode(genes)?;
        let bus_slot = match self.space.kind {
            SpaceKind::Paper => 0,
            SpaceKind::Extended => genes[3] as usize,
        };
        self.measure_config(&self.buses[bus_slot], &config, exec)
    }

    /// The paper space's voltage rule: the §3.3/§5.1 grouped coordinate
    /// descent minimising model-estimated *suite* energy (exact
    /// reference-scaled usage for frequency-homogeneous candidates, §3.2
    /// estimates otherwise).
    fn descend_voltages(
        &self,
        bus: &BusContext<'a>,
        base: &ClockedConfig,
        slow_ratio: f64,
        fast_factor: f64,
    ) -> Option<Voltages> {
        let design = bus.suite.design;
        let usages: Option<Vec<UsageProfile>> = bus
            .suite
            .profiles
            .iter()
            .map(|profile| {
                if slow_ratio == 1.0 {
                    Some(reference_usage_scaled(
                        profile,
                        design.num_clusters,
                        fast_factor,
                    ))
                } else {
                    estimate_usage(profile, base, &self.opts.menu)
                }
            })
            .collect();
        let usages = usages?;
        let groups: Vec<Vec<usize>> = if slow_ratio > 1.0 {
            vec![vec![0], (1..usize::from(design.num_clusters)).collect()]
        } else {
            vec![(0..usize::from(design.num_clusters)).collect()]
        };
        optimise_voltages_grouped(design, &groups, |voltages| {
            if !voltages.in_range() {
                return None;
            }
            let candidate = base.clone().with_voltages(voltages);
            let mut total = 0.0;
            for usage in &usages {
                total += bus.power.estimate_energy(&candidate, usage)?;
            }
            Some(total)
        })
    }

    /// Measures `config` on every benchmark of `bus`'s suite and totals
    /// time, energy and ED². Frequency-homogeneous configurations use
    /// the exact §5.1 reference scaling (their schedules are the
    /// reference schedules); everything else re-schedules through the
    /// suite's memo cache.
    fn measure_config(
        &self,
        bus: &BusContext<'a>,
        config: &ClockedConfig,
        exec: &Executor,
    ) -> Option<Objectives> {
        let design = bus.suite.design;
        let mut total_time_ns = 0.0f64;
        let mut total_energy = 0.0f64;
        let mut total_ed2 = 0.0f64;
        for (i, profile) in bus.suite.profiles.iter().enumerate() {
            let usage = if config.is_homogeneous() {
                let factor =
                    config.fastest_cluster_cycle().as_ns() / ClockedConfig::REFERENCE_CYCLE.as_ns();
                reference_usage_scaled(profile, design.num_clusters, factor)
            } else {
                bus.suite
                    .measure_memoised(i, config, &bus.power, &self.opts.sched, exec)
                    .ok()?
            };
            let energy = bus.power.estimate_energy(config, &usage)?;
            let secs = usage.exec_time.as_secs();
            total_time_ns += usage.exec_time.as_ns();
            total_energy += energy;
            total_ed2 += energy * secs * secs;
        }
        Some(Objectives {
            exec_time_ns: total_time_ns,
            energy: total_energy,
            ed2: total_ed2,
        })
    }

    /// Stable content address of this search's *evaluation function*:
    /// everything that determines `evaluate(point(i))` for a canonical
    /// index `i` — the space kind, its menus and gene grid, every
    /// profiled machine shape with its benchmark content hashes and
    /// calibrated power model, and the scheduler options.
    ///
    /// Two contexts with equal fingerprints agree on every candidate's
    /// objectives, so persisted evaluations keyed by
    /// `(fingerprint, index)` are shareable across processes, shards,
    /// strategies and seeds. Anything that changes a measurement — suite
    /// scale or seed, bus counts, menus, energy shares (via the
    /// calibrated model), scheduler knobs — changes the fingerprint.
    #[must_use]
    pub fn space_fingerprint(&self) -> u64 {
        let mut h = vliw_store::StableHasher::new();
        h.write_str(self.space.kind.name());
        h.write_u64(self.space.grid.size());
        h.write_u64(self.space.fast_factors.len() as u64);
        for &v in &self.space.fast_factors {
            h.write_f64(v);
        }
        h.write_u64(self.space.slow_ratios.len() as u64);
        for &v in &self.space.slow_ratios {
            h.write_f64(v);
        }
        h.write_u64(self.space.num_fast.len() as u64);
        for &n in &self.space.num_fast {
            h.write_u8(n);
        }
        if self.space.kind == SpaceKind::Extended {
            for menu in [
                &EXT_CLUSTER_VDDS[..],
                &EXT_ICN_VDDS[..],
                &EXT_CACHE_VDDS[..],
            ] {
                h.write_u64(menu.len() as u64);
                for &v in menu {
                    h.write_f64(v);
                }
            }
        }
        h.write_u64(self.buses.len() as u64);
        for bus in &self.buses {
            let design = bus.suite.design;
            h.write_u8(design.num_clusters);
            h.write_u32(design.buses);
            h.write_u32(design.cluster.int_fus);
            h.write_u32(design.cluster.fp_fus);
            h.write_u32(design.cluster.mem_ports);
            h.write_u32(design.cluster.registers);
            h.write_u64(bus.suite.content().len() as u64);
            for &c in bus.suite.content() {
                h.write_u64(c);
            }
            crate::store_keys::hash_power(&mut h, &bus.power);
        }
        crate::store_keys::hash_sched(&mut h, &self.opts.sched);
        h.finish()
    }

    pub(crate) fn frontier_row(&self, entry: &ArchiveEntry<Vec<u32>>) -> FrontierRow {
        let (buses, config) = self
            .decode(&entry.point)
            .expect("archived candidates are feasible by construction");
        let fast = config.fastest_cluster_cycle();
        let slow = config.slowest_cluster_cycle();
        let design = config.design();
        let num_fast = design
            .clusters()
            .filter(|&c| config.cluster_cycle(c) == fast)
            .count() as u8;
        let vdd_fast = config.voltages().clusters[0];
        let vdd_slow = *config
            .voltages()
            .clusters
            .last()
            .expect("designs have clusters");
        FrontierRow {
            index: entry.index,
            buses,
            num_fast,
            fast_cycle_ns: fast.as_ns(),
            slow_cycle_ns: slow.as_ns(),
            vdd_fast,
            vdd_slow,
            vdd_icn: config.voltages().icn,
            vdd_cache: config.voltages().cache,
            exec_time_ns: entry.objectives.exec_time_ns,
            energy: entry.objectives.energy,
            ed2: entry.objectives.ed2,
        }
    }
}

/// Cheap electrical-feasibility probe: whether every domain's supply can
/// sustain its frequency (the expensive measurement is skipped for
/// candidates that fail it).
fn electrically_feasible(power: &PowerModel, config: &ClockedConfig) -> bool {
    let probe = UsageProfile {
        weighted_ins_per_cluster: vec![0.0; usize::from(config.design().num_clusters)],
        comms: 0,
        mem_accesses: 0,
        exec_time: Time::from_ns(1.0),
    };
    power.estimate_energy(config, &probe).is_some()
}

/// One Pareto-frontier row of a search report: the decoded configuration
/// plus its measured suite-level objectives.
#[derive(Debug, Clone, Serialize)]
pub struct FrontierRow {
    /// Canonical index in the search space.
    pub index: u64,
    /// Buses on the machine.
    pub buses: u32,
    /// Clusters running at the fastest cycle time.
    pub num_fast: u8,
    /// Fast-cluster cycle time (ns).
    pub fast_cycle_ns: f64,
    /// Slow-cluster cycle time (ns).
    pub slow_cycle_ns: f64,
    /// Supply of the fast cluster group (V).
    pub vdd_fast: f64,
    /// Supply of the slow cluster group (V).
    pub vdd_slow: f64,
    /// ICN supply (V).
    pub vdd_icn: f64,
    /// Cache supply (V).
    pub vdd_cache: f64,
    /// Measured suite execution time (ns, summed over benchmarks).
    pub exec_time_ns: f64,
    /// Measured suite energy (reference units, summed).
    pub energy: f64,
    /// Measured suite ED² (summed per-benchmark `energy · time²`).
    pub ed2: f64,
}

/// One convergence-trace row: the best ED² improved at this evaluation.
#[derive(Debug, Clone, Serialize)]
pub struct TraceRow {
    /// Distinct candidate evaluations spent when the improvement landed.
    pub evaluations: u64,
    /// Canonical index of the new best candidate.
    pub index: u64,
    /// Its suite ED².
    pub ed2: f64,
}

/// The byte-stable JSON artefact of one search run: the frontier, the
/// scalar winner and the convergence trace. Contains no wall-clock
/// measurements, so it is identical across machines and `--jobs` counts.
#[derive(Debug, Clone, Serialize)]
pub struct SearchReport {
    /// Strategy name (`hillclimb` | `anneal` | `ga` | `exhaustive`).
    pub strategy: String,
    /// Space name (`paper` | `extended`).
    pub space: String,
    /// Requested distinct-evaluation budget.
    pub budget: u64,
    /// Search seed.
    pub seed: u64,
    /// Size of the candidate space.
    pub space_size: u64,
    /// Distinct candidate evaluations actually spent.
    pub evaluations: u64,
    /// The scalar (minimum-ED²) winner, if any candidate was feasible.
    pub best: Option<FrontierRow>,
    /// The non-dominated `(time, energy, ED²)` frontier, sorted by
    /// execution time.
    pub frontier: Vec<FrontierRow>,
    /// Every improvement of the best ED².
    pub trace: Vec<TraceRow>,
}

/// Runs one seeded search over the profiled suites and returns the
/// serialisable report.
///
/// `suites` holds one [`ProfiledSuite`] per bus count the space may
/// place candidates on; the paper space uses only the first. The result
/// is deterministic for fixed `(kind, strategy, budget, seed)` and
/// identical for every worker count of `exec` (candidate batches are
/// fanned out with input-ordered reduction, and the evaluation itself is
/// deterministic).
///
/// When the first suite carries a persistent store, evaluations are
/// persisted and replayed runs warm-start from them — a replay of the
/// same arguments produces the same bytes without re-measuring (see
/// [`run_search_scaled`](crate::scale::run_search_scaled) for the
/// racing and sharding variants).
///
/// # Panics
///
/// Panics if `suites` is empty.
#[must_use]
pub fn run_search(
    kind: SpaceKind,
    strategy: Strategy,
    budget: u64,
    seed: u64,
    suites: &[&ProfiledSuite],
    opts: &ExperimentOptions,
    exec: &Executor,
) -> SearchReport {
    crate::scale::run_search_scaled(kind, strategy, budget, seed, suites, opts, exec, false).report
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_sched::ScheduleOptions;
    use vliw_workloads::{generate, spec_fp2000, Benchmark};

    use crate::experiments::profile_suite;

    fn small_suite() -> Vec<Benchmark> {
        // One recurrence-bound and one resource-bound benchmark, as the
        // experiment tests use.
        vec![
            generate(&spec_fp2000()[8], 4),
            generate(&spec_fp2000()[1], 4),
        ]
    }

    fn profiled() -> ProfiledSuite {
        profile_suite(&small_suite(), 1, &ScheduleOptions::default()).unwrap()
    }

    /// Satellite: grid-equivalence regression. On the paper's own §3.3
    /// menu, every metaheuristic with budget ≥ the grid size recovers
    /// the exhaustive sweep's ED² winner exactly.
    #[test]
    fn every_strategy_recovers_the_exhaustive_optimum_on_the_paper_grid() {
        let suite = profiled();
        let suites = [&suite];
        let opts = ExperimentOptions::default();
        let truth = run_search(
            SpaceKind::Paper,
            Strategy::Exhaustive,
            u64::MAX,
            0,
            &suites,
            &opts,
            &Executor::serial(),
        );
        assert_eq!(truth.evaluations, truth.space_size, "full sweep");
        let best = truth.best.as_ref().expect("feasible grid");
        for strategy in Strategy::METAHEURISTICS {
            let report = run_search(
                SpaceKind::Paper,
                strategy,
                truth.space_size + 12,
                3,
                &suites,
                &opts,
                &Executor::serial(),
            );
            let got = report.best.as_ref().expect("feasible");
            assert_eq!(got.index, best.index, "{strategy}");
            assert_eq!(got.ed2.to_bits(), best.ed2.to_bits(), "{strategy}");
            assert_eq!(
                serde_json::to_string(&report.frontier).unwrap(),
                serde_json::to_string(&truth.frontier).unwrap(),
                "{strategy}: full coverage implies the exhaustive frontier"
            );
        }
    }

    /// Satellite: seeded determinism. Each strategy's report serialises
    /// byte-identically at one worker and at four.
    #[test]
    fn search_reports_are_byte_identical_across_worker_counts() {
        let suite = profiled();
        let suites = [&suite];
        let opts = ExperimentOptions::default();
        for strategy in Strategy::ALL {
            let serial = run_search(
                SpaceKind::Paper,
                strategy,
                12,
                42,
                &suites,
                &opts,
                &Executor::serial(),
            );
            let parallel = run_search(
                SpaceKind::Paper,
                strategy,
                12,
                42,
                &suites,
                &opts,
                &Executor::new(4),
            );
            assert_eq!(
                serde_json::to_string_pretty(&serial).unwrap(),
                serde_json::to_string_pretty(&parallel).unwrap(),
                "{strategy}: --jobs must not change the report"
            );
        }
    }

    /// The extended space runs end to end: candidates decode, infeasible
    /// voltage corners are skipped, and the frontier is mutually
    /// non-dominated with finite objectives.
    #[test]
    fn extended_space_search_produces_a_clean_frontier() {
        let suite = profiled();
        let suites = [&suite];
        let opts = ExperimentOptions::default();
        let report = run_search(
            SpaceKind::Extended,
            Strategy::Genetic,
            24,
            7,
            &suites,
            &opts,
            &Executor::serial(),
        );
        assert_eq!(report.space, "extended");
        // 7 factors × 6 ratios × 3 splits × 1 bus × 6² cluster supplies
        // × 4 ICN × 5 cache supplies = 90 720 candidates.
        assert_eq!(report.space_size, 90_720, "extended space is large");
        assert!(report.evaluations > 0 && report.evaluations <= 24);
        let frontier = &report.frontier;
        assert!(!frontier.is_empty(), "some candidate must be feasible");
        for row in frontier {
            assert!(row.ed2.is_finite() && row.ed2 > 0.0);
            assert!(row.exec_time_ns.is_finite() && row.exec_time_ns > 0.0);
            assert!(row.energy.is_finite() && row.energy > 0.0);
            assert!((1..=4).contains(&row.num_fast));
            assert!(row.vdd_fast >= 0.7 && row.vdd_fast <= 1.2);
        }
        for (i, a) in frontier.iter().enumerate() {
            for (j, b) in frontier.iter().enumerate() {
                if i != j {
                    let dominates = a.exec_time_ns <= b.exec_time_ns
                        && a.energy <= b.energy
                        && a.ed2 <= b.ed2
                        && (a.exec_time_ns < b.exec_time_ns
                            || a.energy < b.energy
                            || a.ed2 < b.ed2);
                    assert!(!dominates, "frontier rows {i} and {j} are ordered");
                }
            }
        }
        // The convergence trace improves monotonically.
        for w in report.trace.windows(2) {
            assert!(w[0].ed2 >= w[1].ed2);
        }
    }

    /// The paper space's evaluation agrees with the section-3.3 pipeline
    /// shape: the all-reference candidate (factor 1.0, ratio 1.0) is
    /// feasible and homogeneous.
    #[test]
    fn paper_space_reference_point_is_feasible_and_homogeneous() {
        let suite = profiled();
        let suites = [&suite];
        let ctx = SearchContext::new(SpaceKind::Paper, &suites, &ExperimentOptions::default());
        // FAST_FACTORS[2] = 1.00, SLOW_RATIOS[0] = 1.0.
        let genes = vec![2u32, 0u32];
        let (buses, config) = ctx.decode(&genes).expect("reference point is feasible");
        assert_eq!(buses, 1);
        assert!(config.is_homogeneous());
        let obj = ctx.evaluate(&genes).expect("reference point evaluates");
        assert!(obj.ed2 > 0.0 && obj.ed2.is_finite());
    }
}
