//! Scaled design-space search: racing, store-warmed archives, and
//! sharded runs with deterministic merges.
//!
//! Three orthogonal levers let one search cover spaces far beyond the
//! paper's 20-point grid without giving up the byte-stable artefact
//! discipline:
//!
//! * **Racing** — a successive-halving evaluator
//!   ([`ScaledEvaluator`]) scores fresh
//!   candidate batches on a cheap *screening* suite
//!   ([`ProfiledSuite::screen_subset`]) and promotes only the most
//!   promising rung to the full-suite measurement. Screens never reach
//!   the archive, so with a budget covering the whole space the frontier
//!   is *identical* to the non-racing frontier (the differential tests
//!   below pin this per strategy).
//! * **Warm starts** — when the suite carries a persistent
//!   [`MeasureStore`], every full evaluation is persisted under
//!   `(space fingerprint, canonical index)` and replayed runs pre-seed
//!   the Pareto archive and evaluation memo from disk before the first
//!   optimizer step. A warm replay of the same arguments reproduces the
//!   cold run byte for byte while skipping every measurement.
//! * **Sharding** — `--shard i/n` restricts the walk to the round-robin
//!   residue class `index % n == i-1`
//!   ([`ShardedSpace`]) and emits a
//!   mergeable [`ShardReport`]; [`merge_shard_reports`] folds any
//!   full set of shard artefacts into one [`MergedReport`] whose bytes
//!   are independent of shard count and merge order.
//!
//! ```text
//!                 gene grid (space_size candidates)
//!        ┌───────────────┬───────────────┬───────────────┐
//!        │ shard 1/n     │ shard 2/n     │ … shard n/n   │  idx % n
//!        └──────┬────────┴──────┬────────┴──────┬────────┘
//!               ▼               ▼               ▼
//!        racing evaluator  (screen rung → promote survivors)
//!               │ full measurements persisted to --store
//!               ▼               ▼               ▼
//!        ShardReport 1    ShardReport 2    ShardReport n
//!               └───────────────┴───────────────┘
//!                               ▼
//!                    merge_shard_reports (order-free)
//!                               ▼
//!                        MergedReport == unsharded frontier
//! ```

use std::sync::Arc;

use serde::Serialize;
use serde_json::Value;

use vliw_exec::Executor;
use vliw_search::{
    ArchiveEntry, Objectives, ParetoArchive, RacingPlan, ScaledEvaluator, SearchOutcome,
    SearchSpace, ShardedSpace, Strategy,
};
use vliw_store::{EvalObjectives, EvalRecord, MeasureStore, StoreKey};

use crate::experiments::{ExperimentOptions, ProfiledSuite};
use crate::search::{FrontierRow, SearchContext, SearchReport, SpaceKind, TraceRow};

/// Side-channel counters of one scaled run — everything the byte-stable
/// [`SearchReport`] deliberately omits.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScaleStats {
    /// Distinct candidates screened by racing (0 when racing is off).
    pub screened: u64,
    /// Persisted evaluations the run warm-started from.
    pub warm_entries: u64,
}

/// A full-space scaled search: the ordinary report plus scale counters.
#[derive(Debug, Clone)]
pub struct ScaledSearch {
    /// The byte-stable artefact, identical to a plain
    /// [`run_search`](crate::search::run_search) of the same arguments
    /// whenever the budget covers the space.
    pub report: SearchReport,
    /// Racing / warm-start counters (never serialised into the report).
    pub stats: ScaleStats,
}

/// One shard of a sharded scaled search.
#[derive(Debug, Clone)]
pub struct ShardSearch {
    /// The mergeable shard artefact.
    pub report: ShardReport,
    /// Racing / warm-start counters for this shard.
    pub stats: ScaleStats,
}

/// Maps a persisted evaluation back to engine objectives.
fn record_objectives(rec: &EvalRecord) -> Option<Objectives> {
    rec.objectives.map(|o| Objectives {
        exec_time_ns: o.exec_time_ns,
        energy: o.energy,
        ed2: o.ed2,
    })
}

/// Persists one evaluation under `(content, index)` unless already
/// present. Feasible results with non-finite objectives are not
/// persistable (the wire format carries finite numbers only) and are
/// simply skipped; store write failures degrade to a warning, exactly
/// like the measurement path.
fn persist_eval(store: &MeasureStore, content: u64, index: u64, obj: Option<Objectives>) {
    let key = StoreKey {
        content,
        config: index,
    };
    if store.get_eval(key).is_some() {
        return;
    }
    let objectives = match obj {
        None => None,
        Some(o) if o.is_finite() => Some(EvalObjectives {
            exec_time_ns: o.exec_time_ns,
            energy: o.energy,
            ed2: o.ed2,
        }),
        Some(_) => return,
    };
    if let Err(err) = store.put_eval(key, EvalRecord { objectives }) {
        eprintln!("warning: failed to persist evaluation: {err}");
    }
}

/// Every persisted evaluation of `fp`, as the engine's warm-entry table.
fn warm_entries(store: &MeasureStore, fp: u64, size: u64) -> Vec<(u64, Option<Objectives>)> {
    store
        .warm_evals(fp, size)
        .into_iter()
        .map(|(idx, rec)| (idx, record_objectives(&rec)))
        .collect()
}

/// Runs one strategy over `space` with the scaling levers wired in: the
/// full measurement persists to `store` under `fp`, racing (when on)
/// screens on truncated suites persisted under the screening context's
/// own fingerprint, and `warm` pre-seeds the engine.
#[allow(clippy::too_many_arguments)]
fn drive<S: SearchSpace<Point = Vec<u32>>>(
    ctx: &SearchContext<'_>,
    kind: SpaceKind,
    strategy: Strategy,
    budget: u64,
    seed: u64,
    suites: &[&ProfiledSuite],
    opts: &ExperimentOptions,
    exec: &Executor,
    space: &S,
    racing: bool,
    warm: Vec<(u64, Option<Objectives>)>,
    fp: u64,
    store: Option<Arc<MeasureStore>>,
) -> SearchOutcome<Vec<u32>> {
    let full_store = store.clone();
    let full = move |genes: &Vec<u32>, inner: &Executor| {
        let obj = ctx.evaluate_with(genes, inner);
        if let Some(store) = &full_store {
            persist_eval(store, fp, ctx.space().index(genes), obj);
        }
        obj
    };
    if !racing {
        let evaluator = ScaledEvaluator::full(full).with_warm(warm);
        return strategy.run_with(space, &evaluator, budget, seed, exec);
    }
    // The screening context: every benchmark truncated to its heaviest
    // loops, with its own power calibration and its own store
    // fingerprint so persisted screens can never alias full
    // measurements.
    let screen_suites: Vec<ProfiledSuite> = suites.iter().map(|s| s.screen_subset()).collect();
    let screen_refs: Vec<&ProfiledSuite> = screen_suites.iter().collect();
    let screen_ctx = SearchContext::new(kind, &screen_refs, opts);
    let sfp = screen_ctx.space_fingerprint();
    let screen_store = store;
    let screen = move |genes: &Vec<u32>, inner: &Executor| {
        let index = screen_ctx.space().index(genes);
        if let Some(store) = &screen_store {
            let key = StoreKey {
                content: sfp,
                config: index,
            };
            if let Some(rec) = store.get_eval(key) {
                return record_objectives(&rec);
            }
        }
        let obj = screen_ctx.evaluate_with(genes, inner);
        if let Some(store) = &screen_store {
            persist_eval(store, sfp, index, obj);
        }
        obj
    };
    let evaluator = ScaledEvaluator::new(full, screen)
        .with_racing(RacingPlan::from_budget(budget.min(space.size())))
        .with_warm(warm);
    strategy.run_with(space, &evaluator, budget, seed, exec)
}

/// Builds the byte-stable report exactly as the original search runner
/// did — the report schema gains nothing from scaling.
fn report_from(
    ctx: &SearchContext<'_>,
    kind: SpaceKind,
    outcome: &SearchOutcome<Vec<u32>>,
) -> SearchReport {
    // Decoding a paper-space row repeats the voltage descent, so each
    // frontier entry is decoded once; the scalar winner is one of them.
    let frontier: Vec<FrontierRow> = outcome
        .archive
        .entries()
        .iter()
        .map(|e| ctx.frontier_row(e))
        .collect();
    let best = outcome
        .best()
        .map(|e| e.index)
        .and_then(|idx| frontier.iter().find(|row| row.index == idx))
        .cloned();
    SearchReport {
        strategy: outcome.strategy.to_owned(),
        space: kind.name().to_owned(),
        budget: outcome.budget,
        seed: outcome.seed,
        space_size: outcome.space_size,
        evaluations: outcome.evaluations,
        best,
        frontier,
        trace: outcome
            .trace
            .iter()
            .map(|t| TraceRow {
                evaluations: t.evaluations,
                index: t.index,
                ed2: t.ed2,
            })
            .collect(),
    }
}

/// Runs one seeded search with the scaling levers: warm starts whenever
/// the first suite carries a store, racing when `racing` is set.
///
/// With `racing` off and no store attached this is exactly
/// [`run_search`](crate::search::run_search) (which delegates here). The
/// report is deterministic for fixed `(kind, strategy, budget, seed)`
/// and identical for every worker count; racing changes *which*
/// candidates are measured under a partial budget but leaves a
/// full-coverage frontier byte-identical.
///
/// # Panics
///
/// Panics if `suites` is empty.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_search_scaled(
    kind: SpaceKind,
    strategy: Strategy,
    budget: u64,
    seed: u64,
    suites: &[&ProfiledSuite],
    opts: &ExperimentOptions,
    exec: &Executor,
    racing: bool,
) -> ScaledSearch {
    let ctx = SearchContext::new(kind, suites, opts);
    let fp = ctx.space_fingerprint();
    let store = suites[0].store().cloned();
    let warm = store
        .as_ref()
        .map_or_else(Vec::new, |s| warm_entries(s, fp, ctx.space().size()));
    let warm_count = warm.len() as u64;
    let outcome = drive(
        &ctx,
        kind,
        strategy,
        budget,
        seed,
        suites,
        opts,
        exec,
        ctx.space(),
        racing,
        warm,
        fp,
        store,
    );
    let report = report_from(&ctx, kind, &outcome);
    ScaledSearch {
        report,
        stats: ScaleStats {
            screened: outcome.screened,
            warm_entries: warm_count,
        },
    }
}

/// Runs shard `shard` (1-based) of an `shard_count`-way sharded search:
/// the walk is confined to the round-robin residue class
/// `index % shard_count == shard - 1`, warm entries are filtered to the
/// shard, and the artefact is a [`ShardReport`] whose frontier rows
/// carry *global* canonical indices so shard artefacts merge without
/// translation.
///
/// # Panics
///
/// Panics if `suites` is empty, if `shard` is not in
/// `1..=shard_count`, or if `shard_count` exceeds the space size (some
/// shard would be empty).
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_search_shard(
    kind: SpaceKind,
    strategy: Strategy,
    budget: u64,
    seed: u64,
    suites: &[&ProfiledSuite],
    opts: &ExperimentOptions,
    exec: &Executor,
    racing: bool,
    shard: u32,
    shard_count: u32,
) -> ShardSearch {
    assert!(
        shard >= 1 && shard <= shard_count,
        "shard must be 1..=shard_count"
    );
    let ctx = SearchContext::new(kind, suites, opts);
    let fp = ctx.space_fingerprint();
    let store = suites[0].store().cloned();
    let k = u64::from(shard - 1);
    let count = u64::from(shard_count);
    let sharded = ShardedSpace::new(ctx.space(), k, count);
    // Warm entries are keyed by the *engine's* index space, which is
    // shard-local here; the store always speaks global indices.
    let warm: Vec<(u64, Option<Objectives>)> = store
        .as_ref()
        .map_or_else(Vec::new, |s| warm_entries(s, fp, ctx.space().size()))
        .into_iter()
        .filter(|(g, _)| g % count == k)
        .map(|(g, obj)| (g / count, obj))
        .collect();
    let warm_count = warm.len() as u64;
    let outcome = drive(
        &ctx, kind, strategy, budget, seed, suites, opts, exec, &sharded, racing, warm, fp, store,
    );
    let frontier: Vec<FrontierRow> = outcome
        .archive
        .entries()
        .iter()
        .map(|e| {
            ctx.frontier_row(&ArchiveEntry {
                index: sharded.global_index(e.index),
                point: e.point.clone(),
                objectives: e.objectives,
            })
        })
        .collect();
    let best = outcome
        .best()
        .map(|e| sharded.global_index(e.index))
        .and_then(|idx| frontier.iter().find(|row| row.index == idx))
        .cloned();
    let report = ShardReport {
        strategy: outcome.strategy.to_owned(),
        space: kind.name().to_owned(),
        budget: outcome.budget,
        seed: outcome.seed,
        space_size: ctx.space().size(),
        shard,
        shard_count,
        shard_size: sharded.size(),
        evaluations: outcome.evaluations,
        best,
        frontier,
    };
    ShardSearch {
        report,
        stats: ScaleStats {
            screened: outcome.screened,
            warm_entries: warm_count,
        },
    }
}

/// The mergeable artefact of one search shard. Frontier rows carry
/// global canonical indices; there is no convergence trace (traces are
/// shard-local and deliberately dropped so merged output cannot depend
/// on shard count).
#[derive(Debug, Clone, Serialize)]
pub struct ShardReport {
    /// Strategy name (`hillclimb` | `anneal` | `ga` | `exhaustive`).
    pub strategy: String,
    /// Space name (`paper` | `extended`).
    pub space: String,
    /// Requested distinct-evaluation budget for this shard.
    pub budget: u64,
    /// Search seed.
    pub seed: u64,
    /// Size of the *whole* candidate space.
    pub space_size: u64,
    /// This shard's 1-based number.
    pub shard: u32,
    /// Total number of shards.
    pub shard_count: u32,
    /// Number of candidates in this shard.
    pub shard_size: u64,
    /// Distinct candidate evaluations spent in this shard.
    pub evaluations: u64,
    /// The shard's scalar (minimum-ED²) winner, if any was feasible.
    pub best: Option<FrontierRow>,
    /// The shard's non-dominated frontier (global indices).
    pub frontier: Vec<FrontierRow>,
}

/// The merged artefact of a full set of shard runs. Contains no
/// shard-count or per-shard fields: merging `n` full-coverage shard
/// reports yields the same bytes for every `n` and every merge order.
#[derive(Debug, Clone, Serialize)]
pub struct MergedReport {
    /// Strategy name the shards ran.
    pub strategy: String,
    /// Space name.
    pub space: String,
    /// Size of the whole candidate space.
    pub space_size: u64,
    /// Total distinct evaluations across all merged shards.
    pub evaluations: u64,
    /// The global scalar (minimum-ED²) winner.
    pub best: Option<FrontierRow>,
    /// The global non-dominated frontier, sorted by execution time.
    pub frontier: Vec<FrontierRow>,
}

/// Folds shard artefacts into one global frontier.
///
/// Shards must agree on strategy, space and space size; a candidate
/// index appearing in two shards with different row bytes is a hard
/// error (evaluation is deterministic, so honest shard artefacts can
/// only duplicate a row identically). The result is independent of the
/// order and grouping of `reports`.
///
/// # Errors
///
/// Returns a description of the first inconsistency: empty input,
/// mismatched run parameters, or conflicting duplicate rows.
pub fn merge_shard_reports(reports: &[ShardReport]) -> Result<MergedReport, String> {
    let first = reports
        .first()
        .ok_or_else(|| "no shard reports to merge".to_owned())?;
    let mut rows: std::collections::BTreeMap<u64, &FrontierRow> = std::collections::BTreeMap::new();
    let mut evaluations = 0u64;
    for report in reports {
        if report.strategy != first.strategy
            || report.space != first.space
            || report.space_size != first.space_size
        {
            return Err(format!(
                "shard {}/{} ran {} on {} (size {}), but shard {}/{} ran {} on {} (size {})",
                first.shard,
                first.shard_count,
                first.strategy,
                first.space,
                first.space_size,
                report.shard,
                report.shard_count,
                report.strategy,
                report.space,
                report.space_size,
            ));
        }
        evaluations += report.evaluations;
        for row in &report.frontier {
            if let Some(existing) = rows.get(&row.index) {
                let a = serde_json::to_string(existing).map_err(|e| e.to_string())?;
                let b = serde_json::to_string(&row).map_err(|e| e.to_string())?;
                if a != b {
                    return Err(format!(
                        "conflicting rows for candidate {}: {a} vs {b}",
                        row.index
                    ));
                }
            } else {
                rows.insert(row.index, row);
            }
        }
    }
    // Re-running the archive over the union in ascending-index order
    // reproduces the unsharded frontier exactly: insertion handles
    // domination, and index order makes objective ties collapse to the
    // lowest index just as one run would.
    let mut archive: ParetoArchive<u64> = ParetoArchive::new();
    for (&index, row) in &rows {
        archive.insert(ArchiveEntry {
            index,
            point: index,
            objectives: Objectives {
                exec_time_ns: row.exec_time_ns,
                energy: row.energy,
                ed2: row.ed2,
            },
        });
    }
    let frontier: Vec<FrontierRow> = archive
        .entries()
        .iter()
        .map(|e| (*rows[&e.index]).clone())
        .collect();
    let best = archive.best().map(|e| (*rows[&e.index]).clone());
    Ok(MergedReport {
        strategy: first.strategy.clone(),
        space: first.space.clone(),
        space_size: first.space_size,
        evaluations,
        best,
        frontier,
    })
}

// ---------------------------------------------------------------------
// Strict wire parsing for shard artefacts. The vendored serde layer is
// serialise-only for domain types, so the merge subcommand re-reads its
// own artefacts through a hand parser with the same discipline the
// request wire uses: every field required, unknown fields rejected.
// ---------------------------------------------------------------------

fn object<'a>(v: &'a Value, what: &str) -> Result<&'a [(String, Value)], String> {
    v.as_object()
        .ok_or_else(|| format!("{what} must be an object, got {}", v.type_name()))
}

fn check_keys(v: &Value, what: &str, allowed: &[&str]) -> Result<(), String> {
    for (key, _) in object(v, what)? {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown {what} field {key:?}"));
        }
    }
    Ok(())
}

fn field<'a>(v: &'a Value, what: &str, key: &str) -> Result<&'a Value, String> {
    object(v, what)?;
    v.get(key)
        .ok_or_else(|| format!("{what} is missing field {key:?}"))
}

fn str_field(v: &Value, what: &str, key: &str) -> Result<String, String> {
    field(v, what, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("{what} field {key:?} must be a string"))
}

fn u64_field(v: &Value, what: &str, key: &str) -> Result<u64, String> {
    field(v, what, key)?
        .as_u64()
        .ok_or_else(|| format!("{what} field {key:?} must be an unsigned integer"))
}

fn u32_field(v: &Value, what: &str, key: &str) -> Result<u32, String> {
    u32::try_from(u64_field(v, what, key)?)
        .map_err(|_| format!("{what} field {key:?} is out of range"))
}

fn u8_field(v: &Value, what: &str, key: &str) -> Result<u8, String> {
    u8::try_from(u64_field(v, what, key)?)
        .map_err(|_| format!("{what} field {key:?} is out of range"))
}

fn f64_field(v: &Value, what: &str, key: &str) -> Result<f64, String> {
    field(v, what, key)?
        .as_f64()
        .ok_or_else(|| format!("{what} field {key:?} must be a number"))
}

const ROW_FIELDS: [&str; 12] = [
    "index",
    "buses",
    "num_fast",
    "fast_cycle_ns",
    "slow_cycle_ns",
    "vdd_fast",
    "vdd_slow",
    "vdd_icn",
    "vdd_cache",
    "exec_time_ns",
    "energy",
    "ed2",
];

fn parse_row(v: &Value) -> Result<FrontierRow, String> {
    let what = "frontier row";
    check_keys(v, what, &ROW_FIELDS)?;
    Ok(FrontierRow {
        index: u64_field(v, what, "index")?,
        buses: u32_field(v, what, "buses")?,
        num_fast: u8_field(v, what, "num_fast")?,
        fast_cycle_ns: f64_field(v, what, "fast_cycle_ns")?,
        slow_cycle_ns: f64_field(v, what, "slow_cycle_ns")?,
        vdd_fast: f64_field(v, what, "vdd_fast")?,
        vdd_slow: f64_field(v, what, "vdd_slow")?,
        vdd_icn: f64_field(v, what, "vdd_icn")?,
        vdd_cache: f64_field(v, what, "vdd_cache")?,
        exec_time_ns: f64_field(v, what, "exec_time_ns")?,
        energy: f64_field(v, what, "energy")?,
        ed2: f64_field(v, what, "ed2")?,
    })
}

impl ShardReport {
    /// Parses a shard artefact exactly as the binary wrote it: every
    /// field required, unknown fields rejected, `best` either `null` or
    /// a full frontier row. Round-trips byte-identically through
    /// `serde_json::to_string_pretty`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntactic or structural
    /// problem.
    pub fn from_json_str(s: &str) -> Result<Self, String> {
        let v = serde_json::from_str(s).map_err(|e| format!("shard report: {e}"))?;
        let what = "shard report";
        check_keys(
            &v,
            what,
            &[
                "strategy",
                "space",
                "budget",
                "seed",
                "space_size",
                "shard",
                "shard_count",
                "shard_size",
                "evaluations",
                "best",
                "frontier",
            ],
        )?;
        let best = match field(&v, what, "best")? {
            Value::Null => None,
            row => Some(parse_row(row)?),
        };
        let frontier = field(&v, what, "frontier")?
            .as_array()
            .ok_or_else(|| format!("{what} field \"frontier\" must be an array"))?
            .iter()
            .map(parse_row)
            .collect::<Result<Vec<_>, _>>()?;
        let report = ShardReport {
            strategy: str_field(&v, what, "strategy")?,
            space: str_field(&v, what, "space")?,
            budget: u64_field(&v, what, "budget")?,
            seed: u64_field(&v, what, "seed")?,
            space_size: u64_field(&v, what, "space_size")?,
            shard: u32_field(&v, what, "shard")?,
            shard_count: u32_field(&v, what, "shard_count")?,
            shard_size: u64_field(&v, what, "shard_size")?,
            evaluations: u64_field(&v, what, "evaluations")?,
            best,
            frontier,
        };
        if report.shard < 1 || report.shard > report.shard_count {
            return Err(format!(
                "shard {} is not in 1..={}",
                report.shard, report.shard_count
            ));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_sched::ScheduleOptions;
    use vliw_workloads::{generate, spec_fp2000, Benchmark};

    use crate::experiments::{profile_suite, profile_suite_stored};
    use crate::search::run_search;

    fn small_suite() -> Vec<Benchmark> {
        vec![
            generate(&spec_fp2000()[8], 4),
            generate(&spec_fp2000()[1], 4),
        ]
    }

    fn profiled() -> ProfiledSuite {
        profile_suite(&small_suite(), 1, &ScheduleOptions::default()).unwrap()
    }

    /// Tentpole differential: with full coverage, the racing frontier is
    /// byte-identical to the plain full-measurement frontier for every
    /// strategy — screening reorders *when* candidates are measured,
    /// never *what* the archive records.
    #[test]
    fn racing_report_is_byte_identical_to_full_measurement() {
        let suite = profiled();
        let suites = [&suite];
        let opts = ExperimentOptions::default();
        for strategy in Strategy::ALL {
            let plain = run_search(
                SpaceKind::Paper,
                strategy,
                64,
                9,
                &suites,
                &opts,
                &Executor::serial(),
            );
            let raced = run_search_scaled(
                SpaceKind::Paper,
                strategy,
                64,
                9,
                &suites,
                &opts,
                &Executor::serial(),
                true,
            );
            assert_eq!(raced.report.evaluations, plain.evaluations, "{strategy}");
            assert_eq!(
                serde_json::to_string_pretty(&plain.frontier).unwrap(),
                serde_json::to_string_pretty(&raced.report.frontier).unwrap(),
                "{strategy}: racing must not change a full-coverage frontier"
            );
            assert_eq!(
                serde_json::to_string(&plain.best).unwrap(),
                serde_json::to_string(&raced.report.best).unwrap(),
                "{strategy}: racing must not change the winner"
            );
            if strategy == Strategy::Exhaustive || strategy == Strategy::Genetic {
                // These two always form batches of ≥ 4 fresh candidates
                // on this grid (index chunks, generational populations);
                // hill climbing and annealing walk in steps too small to
                // rung on 20 points.
                assert!(raced.stats.screened > 0, "{strategy}: racing engaged");
            }
        }
    }

    /// Tentpole differential: a 3-way shard split with full per-shard
    /// coverage merges to exactly the unsharded report (frontier, best
    /// and evaluation total), in either merge order.
    #[test]
    fn sharded_search_merges_to_the_unsharded_report() {
        let suite = profiled();
        let suites = [&suite];
        let opts = ExperimentOptions::default();
        let whole = run_search(
            SpaceKind::Paper,
            Strategy::Exhaustive,
            u64::MAX,
            5,
            &suites,
            &opts,
            &Executor::serial(),
        );
        let shards: Vec<ShardReport> = (1..=3)
            .map(|i| {
                run_search_shard(
                    SpaceKind::Paper,
                    Strategy::Exhaustive,
                    u64::MAX,
                    5,
                    &suites,
                    &opts,
                    &Executor::serial(),
                    false,
                    i,
                    3,
                )
                .report
            })
            .collect();
        for report in &shards {
            assert_eq!(report.evaluations, report.shard_size, "full coverage");
            assert_eq!(report.space_size, whole.space_size);
        }
        let mut reversed = shards.clone();
        reversed.reverse();
        let merged = merge_shard_reports(&shards).unwrap();
        let merged_rev = merge_shard_reports(&reversed).unwrap();
        assert_eq!(
            serde_json::to_string_pretty(&merged).unwrap(),
            serde_json::to_string_pretty(&merged_rev).unwrap(),
            "merge order must not change the artefact"
        );
        assert_eq!(merged.evaluations, whole.evaluations);
        assert_eq!(
            serde_json::to_string(&merged.frontier).unwrap(),
            serde_json::to_string(&whole.frontier).unwrap(),
            "merged frontier equals the unsharded frontier"
        );
        assert_eq!(
            serde_json::to_string(&merged.best).unwrap(),
            serde_json::to_string(&whole.best).unwrap(),
        );
    }

    /// Satellite: a warm replay over a persistent store reproduces the
    /// cold report byte for byte without re-measuring, and reports how
    /// many persisted evaluations it started from.
    #[test]
    fn warm_replay_reproduces_the_cold_report() {
        let dir = std::env::temp_dir().join(format!("scale-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ExperimentOptions::default();
        let store = Arc::new(MeasureStore::open(&dir).unwrap());
        let cold_suite = profile_suite_stored(
            &small_suite(),
            1,
            &ScheduleOptions::default(),
            &Executor::serial(),
            Some(store.clone()),
        )
        .unwrap();
        let cold = run_search_scaled(
            SpaceKind::Paper,
            Strategy::Genetic,
            12,
            4,
            &[&cold_suite],
            &opts,
            &Executor::serial(),
            false,
        );
        assert_eq!(cold.stats.warm_entries, 0, "first run starts cold");
        let warm_suite = profile_suite_stored(
            &small_suite(),
            1,
            &ScheduleOptions::default(),
            &Executor::serial(),
            Some(store.clone()),
        )
        .unwrap();
        let warm = run_search_scaled(
            SpaceKind::Paper,
            Strategy::Genetic,
            12,
            4,
            &[&warm_suite],
            &opts,
            &Executor::serial(),
            false,
        );
        assert_eq!(
            serde_json::to_string_pretty(&cold.report).unwrap(),
            serde_json::to_string_pretty(&warm.report).unwrap(),
            "warm replay must be byte-identical"
        );
        assert_eq!(warm.stats.warm_entries, cold.report.evaluations);
        assert_eq!(
            warm_suite.cache().misses() - warm_suite.disk_hits(),
            0,
            "the warm replay must not re-measure anything"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite: shard artefacts round-trip the wire byte-identically,
    /// and the strict parser rejects malformed input.
    #[test]
    fn shard_artifacts_round_trip_and_parse_strictly() {
        let suite = profiled();
        let suites = [&suite];
        let opts = ExperimentOptions::default();
        let shard = run_search_shard(
            SpaceKind::Paper,
            Strategy::HillClimb,
            u64::MAX,
            1,
            &suites,
            &opts,
            &Executor::serial(),
            false,
            2,
            2,
        )
        .report;
        let text = serde_json::to_string_pretty(&shard).unwrap();
        let parsed = ShardReport::from_json_str(&text).unwrap();
        assert_eq!(
            serde_json::to_string_pretty(&parsed).unwrap(),
            text,
            "parse ∘ serialise must be the identity on artefact bytes"
        );
        for (broken, needle) in [
            ("{}", "missing field"),
            ("[1,2]", "must be an object"),
            (&text.replacen("\"seed\"", "\"sead\"", 1), "unknown"),
            (&text.replacen(": 1,", ": -1,", 1), "unsigned"),
        ] {
            let err = ShardReport::from_json_str(broken).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }

    /// Satellite: merging is defensive — empty input, mismatched runs
    /// and conflicting duplicate rows are hard errors, identical
    /// duplicates are collapsed.
    #[test]
    fn merge_rejects_conflicts_and_mismatches() {
        let suite = profiled();
        let suites = [&suite];
        let opts = ExperimentOptions::default();
        let shard = |i, n| {
            run_search_shard(
                SpaceKind::Paper,
                Strategy::Exhaustive,
                u64::MAX,
                0,
                &suites,
                &opts,
                &Executor::serial(),
                false,
                i,
                n,
            )
            .report
        };
        assert!(merge_shard_reports(&[]).unwrap_err().contains("no shard"));

        let a = shard(1, 2);
        let b = shard(2, 2);
        let mut wrong_space = b.clone();
        wrong_space.space = "extended".to_owned();
        wrong_space.space_size = 90_720;
        let err = merge_shard_reports(&[a.clone(), wrong_space]).unwrap_err();
        assert!(err.contains("extended"), "{err:?}");

        // The same artefact twice is a benign duplicate …
        let twice = merge_shard_reports(&[a.clone(), a.clone(), b.clone()]).unwrap();
        let once = merge_shard_reports(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(
            serde_json::to_string(&twice.frontier).unwrap(),
            serde_json::to_string(&once.frontier).unwrap(),
        );

        // … but the same index with different bytes is corruption.
        let mut corrupt = a.clone();
        assert!(!corrupt.frontier.is_empty(), "shard has frontier rows");
        corrupt.frontier[0].energy += 1.0;
        let err = merge_shard_reports(&[a, corrupt]).unwrap_err();
        assert!(err.contains("conflicting"), "{err:?}");
    }
}
