//! Content addresses for the persistent measurement store.
//!
//! The store (`vliw-store`) is domain-blind; this module is the bridge:
//! it hashes benchmarks and machine configurations into
//! [`StoreKey`](vliw_store::StoreKey) halves and converts between the
//! domain types ([`UsageProfile`],
//! [`BenchmarkProfile`]) and the store's plain-number records.
//!
//! Both hashes use [`StableHasher`], extending the
//! `PowerModel::fingerprint` discipline — exact bit patterns, no
//! epsilon classes — to digests that are stable across processes,
//! machines and compiler releases (the in-memory fingerprint uses
//! `DefaultHasher`, which is documented unstable across Rust releases
//! and therefore never touches disk).

use vliw_machine::{ClockedConfig, Time};
use vliw_power::{PowerModel, ReferenceProfile, UsageProfile};
use vliw_sched::ScheduleOptions;
use vliw_store::{LoopProfileRecord, MeasureRecord, ProfileRecord, StableHasher};
use vliw_workloads::Benchmark;

use crate::profile::{BenchmarkProfile, LoopProfile};

/// Structural hash of a benchmark: its name plus, per loop, the DDG
/// (op classes and latencies in `OpId` order, edges in `EdgeId` order),
/// the trip count and the profile weight. Everything a measurement of
/// this benchmark can depend on, and nothing about where the benchmark
/// came from (generator seed, corpus file, …).
///
/// Names are included deliberately: stored reference profiles carry
/// loop names, so the address must pin them too.
#[must_use]
pub fn benchmark_content_hash(bench: &Benchmark) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(&bench.name);
    h.write_u64(bench.loops.len() as u64);
    for l in &bench.loops {
        let ddg = l.ddg();
        h.write_str(ddg.name());
        h.write_u64(ddg.num_ops() as u64);
        for op in ddg.ops() {
            h.write_str(op.class().as_str());
            h.write_u32(op.latency());
        }
        h.write_u64(ddg.num_edges() as u64);
        for e in ddg.edges() {
            h.write_u32(e.src().0);
            h.write_u32(e.dst().0);
            h.write_u32(e.latency());
            h.write_u32(e.distance());
            h.write_str(e.kind().as_str());
        }
        h.write_u64(l.trip_count());
        h.write_f64(l.weight());
    }
    h.finish()
}

/// Fingerprint of everything on the machine side that determines a
/// measurement: the machine design, every domain's cycle time and
/// supply voltage, the scheduler options (menu included; the per-loop
/// trip count is overwritten while measuring and deliberately left
/// out, as in `MeasureKey`), and — when measuring heterogeneous
/// configurations — the calibrated power model driving the
/// partitioner's ED² objective.
///
/// Reference profiling passes `power: None` (profiles are taken before
/// the model is calibrated and do not depend on it).
#[must_use]
pub fn config_fingerprint(
    config: &ClockedConfig,
    power: Option<&PowerModel>,
    sched: &ScheduleOptions,
) -> u64 {
    let mut h = StableHasher::new();
    let design = config.design();
    h.write_u8(design.num_clusters);
    h.write_u32(design.buses);
    h.write_u32(design.cluster.int_fus);
    h.write_u32(design.cluster.fp_fus);
    h.write_u32(design.cluster.mem_ports);
    h.write_u32(design.cluster.registers);
    for c in design.clusters() {
        h.write_u64(config.cluster_cycle(c).as_fs());
    }
    h.write_u64(config.icn_cycle().as_fs());
    h.write_u64(config.cache_cycle().as_fs());
    for &vdd in &config.voltages().clusters {
        h.write_f64(vdd);
    }
    h.write_f64(config.voltages().icn);
    h.write_f64(config.voltages().cache);
    hash_sched(&mut h, sched);
    match power {
        None => h.write_u8(0),
        Some(p) => {
            h.write_u8(1);
            hash_power(&mut h, p);
        }
    }
    h.finish()
}

/// Absorbs the measurement-relevant scheduler options: budget ratio, IT
/// retry cap, and the frequency menu (the per-loop trip count is
/// overwritten while measuring and deliberately left out).
pub(crate) fn hash_sched(h: &mut StableHasher, sched: &ScheduleOptions) {
    h.write_u32(sched.budget_ratio);
    h.write_u32(sched.max_it_attempts);
    match sched.menu.cycle_times_at_least(Time::from_fs(1)) {
        // Unrestricted menus have no cycle-time list; tag the variant.
        None => h.write_u64(u64::MAX),
        Some(cts) => {
            h.write_u64(cts.len() as u64);
            for ct in &cts {
                h.write_u64(ct.as_fs());
            }
        }
    }
}

/// Absorbs every stable parameter of a calibrated power model — the
/// exact list `PowerModel::fingerprint` digests in memory, hashed with
/// the on-disk discipline.
pub(crate) fn hash_power(h: &mut StableHasher, p: &PowerModel) {
    let s = p.shares();
    let u = p.units();
    let a = p.alpha_model();
    for v in [
        s.icn,
        s.cache,
        s.leak_cluster,
        s.leak_icn,
        s.leak_cache,
        u.e_ins,
        u.e_comm,
        u.e_access,
        u.e_static_cluster_per_s,
        u.e_static_icn_per_s,
        u.e_static_cache_per_s,
        a.alpha(),
        a.vdd_ref(),
        a.vth_ref(),
        a.freq_ref_ghz(),
        a.swing(),
    ] {
        h.write_f64(v);
    }
}

pub(crate) fn usage_to_record(usage: &UsageProfile) -> MeasureRecord {
    MeasureRecord {
        weighted_ins_per_cluster: usage.weighted_ins_per_cluster.clone(),
        comms: usage.comms,
        mem_accesses: usage.mem_accesses,
        exec_time_fs: usage.exec_time.as_fs(),
    }
}

pub(crate) fn record_to_usage(record: &MeasureRecord) -> UsageProfile {
    UsageProfile {
        weighted_ins_per_cluster: record.weighted_ins_per_cluster.clone(),
        comms: record.comms,
        mem_accesses: record.mem_accesses,
        exec_time: Time::from_fs(record.exec_time_fs),
    }
}

pub(crate) fn profile_to_record(profile: &BenchmarkProfile) -> ProfileRecord {
    ProfileRecord {
        name: profile.name.clone(),
        loops: profile
            .loops
            .iter()
            .map(|l| LoopProfileRecord {
                name: l.name.clone(),
                weight: l.weight,
                trips: l.trips,
                rec_mii: l.rec_mii,
                fu_counts: l.fu_counts,
                comms: l.comms,
                lifetime_fs: l.lifetime_time.as_fs(),
                it_length_fs: l.it_length.as_fs(),
                it_ref_fs: l.it_ref.as_fs(),
                weighted_ins: l.weighted_ins,
                rec_weighted_ins: l.rec_weighted_ins,
                mem_accesses: l.mem_accesses,
                exec_time_fs: l.exec_time_ref.as_fs(),
                invocations: l.invocations,
            })
            .collect(),
        ref_weighted_ins: profile.reference.weighted_ins,
        ref_comms: profile.reference.comms,
        ref_mem_accesses: profile.reference.mem_accesses,
        ref_exec_time_fs: profile.reference.exec_time.as_fs(),
    }
}

pub(crate) fn record_to_profile(record: &ProfileRecord) -> BenchmarkProfile {
    BenchmarkProfile {
        name: record.name.clone(),
        loops: record
            .loops
            .iter()
            .map(|l| LoopProfile {
                name: l.name.clone(),
                weight: l.weight,
                trips: l.trips,
                rec_mii: l.rec_mii,
                fu_counts: l.fu_counts,
                comms: l.comms,
                lifetime_time: Time::from_fs(l.lifetime_fs),
                it_length: Time::from_fs(l.it_length_fs),
                it_ref: Time::from_fs(l.it_ref_fs),
                weighted_ins: l.weighted_ins,
                rec_weighted_ins: l.rec_weighted_ins,
                mem_accesses: l.mem_accesses,
                exec_time_ref: Time::from_fs(l.exec_time_fs),
                invocations: l.invocations,
            })
            .collect(),
        reference: ReferenceProfile {
            weighted_ins: record.ref_weighted_ins,
            comms: record.ref_comms,
            mem_accesses: record.ref_mem_accesses,
            exec_time: Time::from_fs(record.ref_exec_time_fs),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_machine::MachineDesign;
    use vliw_workloads::{generate, spec_fp2000};

    #[test]
    fn content_hash_is_stable_and_structure_sensitive() {
        let a = generate(&spec_fp2000()[1], 4);
        let b = generate(&spec_fp2000()[1], 4);
        assert_eq!(
            benchmark_content_hash(&a),
            benchmark_content_hash(&b),
            "generation is deterministic, so the address must repeat"
        );
        let c = generate(&spec_fp2000()[1], 5); // one more loop
        assert_ne!(benchmark_content_hash(&a), benchmark_content_hash(&c));
        let d = generate(&spec_fp2000()[2], 4); // different benchmark
        assert_ne!(benchmark_content_hash(&a), benchmark_content_hash(&d));
    }

    #[test]
    fn config_fingerprint_separates_configs_menus_and_power() {
        let design = MachineDesign::paper_machine(1);
        let reference = ClockedConfig::reference(design);
        let sched = ScheduleOptions::default();
        let base = config_fingerprint(&reference, None, &sched);
        assert_eq!(
            base,
            config_fingerprint(&reference, None, &sched),
            "pure function of its inputs"
        );

        let faster = ClockedConfig::homogeneous(design, Time::from_fs(900_000));
        assert_ne!(base, config_fingerprint(&faster, None, &sched));

        let mut menu16 = sched.clone();
        menu16.menu = vliw_machine::FrequencyMenu::from_kind(vliw_machine::MenuKind::Uniform(16));
        assert_ne!(base, config_fingerprint(&reference, None, &menu16));

        let design2 = MachineDesign::paper_machine(2);
        let reference2 = ClockedConfig::reference(design2);
        assert_ne!(
            base,
            config_fingerprint(&reference2, None, &sched),
            "the bus count is part of the machine"
        );

        let power = PowerModel::calibrate(
            design,
            vliw_power::EnergyShares::PAPER,
            &ReferenceProfile {
                weighted_ins: 1000.0,
                comms: 10,
                mem_accesses: 20,
                exec_time: Time::from_ns(1000.0),
            },
        );
        assert_ne!(base, config_fingerprint(&reference, Some(&power), &sched));
    }

    #[test]
    fn trip_count_is_not_part_of_the_config_fingerprint() {
        // It is overwritten per loop while measuring, exactly like in
        // the in-memory MeasureKey.
        let design = MachineDesign::paper_machine(1);
        let reference = ClockedConfig::reference(design);
        let a = ScheduleOptions::default();
        let mut b = a.clone();
        b.trip_count = a.trip_count + 1;
        assert_eq!(
            config_fingerprint(&reference, None, &a),
            config_fingerprint(&reference, None, &b)
        );
    }
}
