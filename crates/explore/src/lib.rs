//! Frequency/voltage design-space exploration and the CGO 2007 paper's
//! experiment runners.
//!
//! This crate closes the loop of the paper's methodology:
//!
//! 1. **Profile** a benchmark on the reference homogeneous machine
//!    ([`profile_benchmark`]) — every loop is actually modulo scheduled and
//!    simulated, yielding the dynamic information (§3) the models consume;
//! 2. **Estimate** execution time and energy of *any* candidate
//!    configuration from that profile alone (§3.2's IT / `it_length`
//!    estimation combined with §3.1's energy model, [`estimate_program`]);
//! 3. Search the **optimum homogeneous** baseline (§5.1,
//!    [`optimum_homogeneous`]) and **select** the best heterogeneous
//!    configuration (§3.3, [`select_heterogeneous`]);
//! 4. **Run** the selected configuration for real — every loop is
//!    re-scheduled with the heterogeneous modulo scheduler and ED² is
//!    measured, not estimated ([`experiments`]).
//!
//! The [`experiments`] module regenerates every table and figure of the
//! paper's evaluation (Table 2, Figures 6–9); `vliw-bench` wraps them as
//! benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod estimate;
pub mod experiments;
mod homog;
mod profile;
pub mod scale;
pub mod search;
mod select;
pub mod store_keys;

pub use estimate::{estimate_loop_it, estimate_program, estimate_usage, price_usage, HetEstimate};
pub use homog::{
    optimum_homogeneous, optimum_homogeneous_suite, optimum_homogeneous_suite_with,
    optimum_homogeneous_with, HomogChoice, SuiteBaseline,
};
pub use profile::{
    profile_benchmark, profile_benchmark_ws, reference_usage_scaled, suite_reference,
    BenchmarkProfile, LoopProfile, T_TOTAL,
};
pub use scale::{
    merge_shard_reports, run_search_scaled, run_search_shard, MergedReport, ScaleStats,
    ScaledSearch, ShardReport, ShardSearch,
};
pub use search::{run_search, ConfigSpace, SearchContext, SearchReport, SpaceKind};
pub use select::{candidate_grid, select_heterogeneous, select_heterogeneous_with, HeteroChoice};
pub use store_keys::{benchmark_content_hash, config_fingerprint};

// Everything the parallel experiment runners share across worker threads.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<BenchmarkProfile>();
    _assert_send_sync::<LoopProfile>();
    _assert_send_sync::<HeteroChoice>();
    _assert_send_sync::<HomogChoice>();
    _assert_send_sync::<SuiteBaseline>();
    _assert_send_sync::<HetEstimate>();
    _assert_send_sync::<experiments::ProfiledSuite>();
    _assert_send_sync::<experiments::ExperimentOptions>();
    _assert_send_sync::<experiments::MeasureCache>();
    _assert_send_sync::<ConfigSpace>();
    _assert_send_sync::<SearchReport>();
    _assert_send_sync::<ShardReport>();
    _assert_send_sync::<MergedReport>();
    _assert_send_sync::<ScaleStats>();
};
