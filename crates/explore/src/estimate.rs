//! Compile-time estimation of a configuration's execution time and energy
//! from the reference profile (§3.2 of the paper).

use vliw_machine::{ClockedConfig, ClusterId, FrequencyMenu, Time};
use vliw_power::{PowerModel, UsageProfile};
use vliw_sched::timing::{next_it_candidate, LoopClocks};

use crate::profile::{BenchmarkProfile, LoopProfile};

/// Model-estimated behaviour of one configuration on one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HetEstimate {
    /// Estimated program execution time.
    pub exec_time: Time,
    /// Estimated energy (reference-run units).
    pub energy: f64,
    /// Estimated ED².
    pub ed2: f64,
}

/// §3.2's per-loop `IT` estimate: the smallest synchronisable initiation
/// time such that
///
/// * `IT ≥ MIT` — slots for every instruction and room for the longest
///   recurrence (paced by the fastest cluster);
/// * the buses fit the communications of the *reference* schedule;
/// * the register files fit the summed value lifetimes of the reference
///   schedule.
///
/// Returns `None` when no `IT` within the search horizon qualifies.
#[must_use]
pub fn estimate_loop_it(
    profile: &LoopProfile,
    config: &ClockedConfig,
    menu: &FrequencyMenu,
) -> Option<Time> {
    let design = config.design();
    let rec_mit = config.fastest_cluster_cycle() * u64::from(profile.rec_mii);
    let mut it = rec_mit.max(config.fastest_cluster_cycle());
    for _ in 0..10_000u32 {
        if let Some(clocks) = LoopClocks::select(config, menu, it) {
            if capacity_fits(profile, design, &clocks)
                && comms_fit(profile, design, &clocks)
                && lifetimes_fit(profile, design, it)
            {
                return Some(it);
            }
        }
        it = next_it_candidate(config, menu, it);
    }
    None
}

fn capacity_fits(
    profile: &LoopProfile,
    design: vliw_machine::MachineDesign,
    clocks: &LoopClocks,
) -> bool {
    use vliw_ir::FuKind;
    for (i, kind) in [FuKind::Int, FuKind::Fp, FuKind::Mem]
        .into_iter()
        .enumerate()
    {
        let capacity: u64 = design
            .clusters()
            .map(|c| u64::from(design.cluster.fu_count(kind)) * clocks.cluster_ii(c))
            .sum();
        if profile.fu_counts[i] > capacity {
            return false;
        }
    }
    true
}

fn comms_fit(
    profile: &LoopProfile,
    design: vliw_machine::MachineDesign,
    clocks: &LoopClocks,
) -> bool {
    profile.comms <= u64::from(design.buses) * clocks.icn_ii()
}

fn lifetimes_fit(profile: &LoopProfile, design: vliw_machine::MachineDesign, it: Time) -> bool {
    // Register files provide `registers · IT` register-time per iteration.
    let provided_fs = u128::from(design.total_registers()) * u128::from(it.as_fs());
    u128::from(profile.lifetime_time.as_fs()) <= provided_fs
}

/// The §3.2 `it_length` approximation: the reference iteration's cycle
/// count priced at the arithmetic mean of the heterogeneous cluster cycle
/// times ("half the iteration executes on fast clusters, half on slow").
#[must_use]
pub fn estimate_it_length(profile: &LoopProfile, config: &ClockedConfig) -> Time {
    let design = config.design();
    let cycles = profile.it_length.as_ns() / ClockedConfig::REFERENCE_CYCLE.as_ns();
    let mean_ct_ns = design
        .clusters()
        .map(|c| config.cluster_cycle(c).as_ns())
        .sum::<f64>()
        / f64::from(design.num_clusters);
    Time::from_ns(cycles * mean_ct_ns)
}

/// Estimates the *usage profile* (per-cluster instruction distribution,
/// event counts, execution time) of a whole benchmark on `config` — the
/// voltage-independent half of [`estimate_program`].
///
/// Cycle times and the frequency menu fully determine the result; supply
/// voltages only enter the energy model afterwards. The selection scheme
/// exploits that split: one usage estimate per candidate configuration is
/// shared across the entire voltage-descent grid.
///
/// Returns `None` when some loop cannot synchronise within the search
/// horizon.
#[must_use]
pub fn estimate_usage(
    profile: &BenchmarkProfile,
    config: &ClockedConfig,
    menu: &FrequencyMenu,
) -> Option<UsageProfile> {
    let design = config.design();
    let fastest = config.fastest_cluster_cycle();
    let fast_clusters: Vec<ClusterId> = design
        .clusters()
        .filter(|&c| config.cluster_cycle(c) == fastest)
        .collect();
    let slow_clusters: Vec<ClusterId> = design
        .clusters()
        .filter(|&c| config.cluster_cycle(c) != fastest)
        .collect();

    let mut total_ns = 0.0f64;
    let mut weighted = vec![0.0f64; usize::from(design.num_clusters)];
    let mut comms = 0.0f64;
    let mut mems = 0.0f64;
    for l in &profile.loops {
        let it = estimate_loop_it(l, config, menu)?;
        let itlen = estimate_it_length(l, config);
        let t_loop = it.as_ns() * (l.trips.saturating_sub(1)) as f64 + itlen.as_ns();
        total_ns += l.invocations * t_loop;

        // Instruction distribution: critical-recurrence work must sit on
        // the fast cluster(s); the remainder spreads across *all* clusters
        // proportionally to their slot capacity (their II), which is how
        // the partitioner actually balances resource-bound work.
        let per_iter = l.weighted_ins * l.invocations * l.trips as f64;
        let rec_share = if l.weighted_ins > 0.0 {
            (l.rec_weighted_ins / l.weighted_ins).min(1.0)
        } else {
            0.0
        };
        if slow_clusters.is_empty() {
            for c in design.clusters() {
                weighted[c.index()] += per_iter / f64::from(design.num_clusters);
            }
        } else {
            let rec_part = per_iter * rec_share / fast_clusters.len() as f64;
            for &c in &fast_clusters {
                weighted[c.index()] += rec_part;
            }
            // Capacity ∝ 1 / cycle time (II per unit of IT).
            let inv_ct: Vec<f64> = design
                .clusters()
                .map(|c| 1.0 / config.cluster_cycle(c).as_ns())
                .collect();
            let total_cap: f64 = inv_ct.iter().sum();
            let rest = per_iter * (1.0 - rec_share);
            for c in design.clusters() {
                weighted[c.index()] += rest * inv_ct[c.index()] / total_cap;
            }
        }
        comms += l.invocations * l.comms as f64 * l.trips as f64;
        mems += l.invocations * l.mem_accesses as f64 * l.trips as f64;
    }

    Some(UsageProfile {
        weighted_ins_per_cluster: weighted,
        comms: comms.round() as u64,
        mem_accesses: mems.round() as u64,
        exec_time: Time::from_ns(total_ns),
    })
}

/// Turns a usage estimate into a full [`HetEstimate`] by pricing it with
/// the §3.1 energy model at `config`'s voltages.
///
/// Returns `None` when a domain's (frequency, voltage) pair is
/// electrically infeasible.
#[must_use]
pub fn price_usage(
    usage: &UsageProfile,
    config: &ClockedConfig,
    power: &PowerModel,
) -> Option<HetEstimate> {
    let energy = power.estimate_energy(config, usage)?;
    let secs = usage.exec_time.as_secs();
    Some(HetEstimate {
        exec_time: usage.exec_time,
        energy,
        ed2: energy * secs * secs,
    })
}

/// Estimates a whole benchmark on `config`: execution time via
/// [`estimate_loop_it`] + the `it_length` approximation, energy via the §3.1 model
/// with the critical-recurrence instructions attributed to the fastest
/// cluster(s) and the rest to the remaining clusters.
///
/// Returns `None` when some loop cannot synchronise or a domain's
/// (frequency, voltage) pair is electrically infeasible.
#[must_use]
pub fn estimate_program(
    profile: &BenchmarkProfile,
    config: &ClockedConfig,
    menu: &FrequencyMenu,
    power: &PowerModel,
) -> Option<HetEstimate> {
    price_usage(&estimate_usage(profile, config, menu)?, config, power)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_machine::MachineDesign;
    use vliw_power::EnergyShares;
    use vliw_sched::ScheduleOptions;
    use vliw_workloads::{generate, spec_fp2000};

    use crate::profile::profile_benchmark;

    fn profiled(spec_idx: usize, n: usize) -> (BenchmarkProfile, MachineDesign) {
        let design = MachineDesign::paper_machine(1);
        let bench = generate(&spec_fp2000()[spec_idx], n);
        let p = profile_benchmark(&bench, design, &ScheduleOptions::default()).unwrap();
        (p, design)
    }

    #[test]
    fn reference_estimate_is_consistent_with_profile() {
        let (p, design) = profiled(1, 8); // swim
        let config = ClockedConfig::reference(design);
        let power = PowerModel::calibrate(design, EnergyShares::PAPER, &p.reference);
        let est = estimate_program(&p, &config, &FrequencyMenu::unrestricted(), &power).unwrap();
        // The IT estimator lower-bounds the scheduler (it ignores schedule
        // imperfection), so estimated time is within ~2× of the measured
        // T_TOTAL and energy is near 1.
        let ratio = est.exec_time.as_ns() / crate::profile::T_TOTAL.as_ns();
        assert!(ratio > 0.3 && ratio < 1.5, "time ratio {ratio}");
        assert!(
            est.energy > 0.5 && est.energy < 1.5,
            "energy {}",
            est.energy
        );
    }

    #[test]
    fn recurrence_loops_speed_up_with_a_fast_cluster() {
        let (p, design) = profiled(8, 6); // sixtrack
        let menu = FrequencyMenu::unrestricted();
        let reference = ClockedConfig::reference(design);
        let fast =
            ClockedConfig::heterogeneous(design, Time::from_ns(0.9), 1, Time::from_ns(0.9 * 1.25));
        for l in &p.loops {
            let it_ref = estimate_loop_it(l, &reference, &menu).unwrap();
            let it_fast = estimate_loop_it(l, &fast, &menu).unwrap();
            if l.rec_mii >= 4 {
                assert!(
                    it_fast < it_ref,
                    "loop {}: recurrence paced by the 0.9 ns cluster ({it_fast} vs {it_ref})",
                    l.name
                );
            }
        }
    }

    #[test]
    fn resource_loops_slow_down_when_clusters_slow_down() {
        let (p, design) = profiled(1, 6); // swim: resource constrained
        let menu = FrequencyMenu::unrestricted();
        let reference = ClockedConfig::reference(design);
        // One fast cluster at the reference speed, three at 1.5 ns: slot
        // capacity shrinks, so resource-bound ITs must grow.
        let hetero =
            ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(1.5));
        let mut grew = 0;
        for l in &p.loops {
            let a = estimate_loop_it(l, &reference, &menu).unwrap();
            let b = estimate_loop_it(l, &hetero, &menu).unwrap();
            assert!(b >= a);
            if b > a {
                grew += 1;
            }
        }
        assert!(grew > 0, "capacity loss must bite somewhere");
    }

    #[test]
    fn it_length_estimate_uses_mean_cycle_time() {
        let (p, design) = profiled(0, 4);
        let hetero =
            ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 2, Time::from_ns(2.0));
        let l = &p.loops[0];
        let est = estimate_it_length(l, &hetero);
        // Mean cycle time = (1+1+2+2)/4 = 1.5 ⇒ itlen scales by 1.5.
        let expect = l.it_length.as_ns() * 1.5;
        assert!((est.as_ns() - expect).abs() < 1e-6);
    }
}
