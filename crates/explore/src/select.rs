//! Heterogeneous configuration selection (§3.3 of the paper).
//!
//! Explores the paper's design alternatives — fast-cluster cycle times of
//! {0.9, 0.95, 1, 1.05, 1.1}× the reference, slow/fast ratios of
//! {1, 1.25, 1.33, 1.5}, one fast cluster — and per-component supply
//! voltages, estimating every candidate's ED² with the §3 models and
//! returning the minimiser.

use vliw_exec::Executor;
use vliw_machine::{ClockedConfig, FrequencyMenu, MachineDesign, Time};
use vliw_power::{PowerModel, UsageProfile};

use crate::estimate::{estimate_usage, price_usage, HetEstimate};
use crate::homog::optimise_voltages_grouped;
use crate::profile::BenchmarkProfile;

/// The fast-cluster cycle-time factors explored (×reference cycle), §5.
pub const FAST_FACTORS: [f64; 5] = [0.90, 0.95, 1.00, 1.05, 1.10];

/// The slow/fast cycle-time ratios explored, §5. Ratio 1 covers the
/// "all clusters at the same frequency" outcome the paper reports for
/// register- and resource-constrained programs.
pub const SLOW_RATIOS: [f64; 4] = [1.0, 1.25, 1.33, 1.5];

/// The configuration the §3.3 selection scheme picked, with its model
/// estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroChoice {
    /// The chosen clocked configuration (cycle times + voltages).
    pub config: ClockedConfig,
    /// Model-estimated time/energy/ED².
    pub estimate: HetEstimate,
}

/// The `(fast cycle factor, slow/fast ratio)` grid of §5, in the
/// deterministic order every caller (serial or parallel) evaluates it.
#[must_use]
pub fn candidate_grid() -> Vec<(f64, f64)> {
    let mut grid = Vec::with_capacity(FAST_FACTORS.len() * SLOW_RATIOS.len());
    for fast_factor in FAST_FACTORS {
        for slow_ratio in SLOW_RATIOS {
            grid.push((fast_factor, slow_ratio));
        }
    }
    grid
}

/// Selects frequencies and voltages for the heterogeneous machine: the
/// candidate minimising *estimated* ED². Serial shorthand for
/// [`select_heterogeneous_with`].
///
/// Returns `None` only if no candidate is feasible (cannot happen for the
/// paper's ranges, where the all-reference candidate always qualifies).
#[must_use]
pub fn select_heterogeneous(
    profile: &BenchmarkProfile,
    design: MachineDesign,
    power: &PowerModel,
    menu: &FrequencyMenu,
) -> Option<HeteroChoice> {
    select_heterogeneous_with(profile, design, power, menu, &Executor::serial())
}

/// [`select_heterogeneous`] with the candidate grid fanned out across
/// `exec`'s worker pool.
///
/// Each of the 20 `(fast factor, slow ratio)` candidates is evaluated
/// independently — usage estimation once, then voltage coordinate descent
/// on energy alone — and the minimiser is reduced in grid order, so the
/// result is identical for every worker count.
#[must_use]
pub fn select_heterogeneous_with(
    profile: &BenchmarkProfile,
    design: MachineDesign,
    power: &PowerModel,
    menu: &FrequencyMenu,
    exec: &Executor,
) -> Option<HeteroChoice> {
    let grid = candidate_grid();
    let evaluated = exec.map(&grid, |_, &(fast_factor, slow_ratio)| {
        evaluate_candidate(profile, design, power, menu, fast_factor, slow_ratio)
    });
    // Reduce in input order with a strict `<`: the first minimum wins,
    // exactly as the original nested loops behaved.
    let mut best: Option<HeteroChoice> = None;
    for choice in evaluated.into_iter().flatten() {
        if best
            .as_ref()
            .is_none_or(|b| choice.estimate.ed2 < b.estimate.ed2)
        {
            best = Some(choice);
        }
    }
    best
}

/// Evaluates one `(fast factor, slow ratio)` candidate: usage estimate,
/// voltage coordinate descent, final pricing.
fn evaluate_candidate(
    profile: &BenchmarkProfile,
    design: MachineDesign,
    power: &PowerModel,
    menu: &FrequencyMenu,
    fast_factor: f64,
    slow_ratio: f64,
) -> Option<HeteroChoice> {
    let fast = Time::from_ns(ClockedConfig::REFERENCE_CYCLE.as_ns() * fast_factor);
    let slow = Time::from_ns(fast.as_ns() * slow_ratio);
    let base = ClockedConfig::heterogeneous(design, fast, 1, slow);
    // Voltages do not change the time estimate, only energy — so the usage
    // profile is computed once per candidate and the coordinate descent
    // below prices voltages against it, with independent supplies for the
    // fast and slow groups.
    let groups: Vec<Vec<usize>> = if slow_ratio > 1.0 {
        vec![vec![0], (1..usize::from(design.num_clusters)).collect()]
    } else {
        vec![(0..usize::from(design.num_clusters)).collect()]
    };
    // Homogeneous candidates are evaluated with the *exact* model (§5.1:
    // the schedule is the reference schedule, so counts are known);
    // heterogeneous ones use the §3.2 estimators.
    let usage: UsageProfile = if slow_ratio == 1.0 {
        let factor = fast.as_ns() / ClockedConfig::REFERENCE_CYCLE.as_ns();
        crate::profile::reference_usage_scaled(profile, design.num_clusters, factor)
    } else {
        estimate_usage(profile, &base, menu)?
    };
    let evaluate = |voltages: vliw_machine::Voltages| {
        if !voltages.in_range() {
            return None;
        }
        let candidate = base.clone().with_voltages(voltages);
        power.estimate_energy(&candidate, &usage)
    };
    let voltages = optimise_voltages_grouped(design, &groups, evaluate)?;
    let config = base.with_voltages(voltages);
    let estimate = price_usage(&usage, &config, power)?;
    Some(HeteroChoice { config, estimate })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_power::EnergyShares;
    use vliw_sched::ScheduleOptions;
    use vliw_workloads::{generate, spec_fp2000};

    use crate::profile::profile_benchmark;

    fn setup(idx: usize, n: usize) -> (BenchmarkProfile, MachineDesign, PowerModel) {
        let design = MachineDesign::paper_machine(1);
        let bench = generate(&spec_fp2000()[idx], n);
        let p = profile_benchmark(&bench, design, &ScheduleOptions::default()).unwrap();
        let power = PowerModel::calibrate(design, EnergyShares::PAPER, &p.reference);
        (p, design, power)
    }

    #[test]
    fn recurrence_benchmark_gets_a_speed_gap() {
        // sixtrack: the selection should pick a fast cluster strictly
        // faster than the slow ones (big recurrence wins, §5.2).
        let (p, design, power) = setup(8, 8);
        let choice =
            select_heterogeneous(&p, design, &power, &FrequencyMenu::unrestricted()).unwrap();
        let fast = choice.config.fastest_cluster_cycle();
        let slow = choice.config.slowest_cluster_cycle();
        assert!(
            slow > fast,
            "sixtrack wants heterogeneity: fast {fast}, slow {slow}"
        );
        assert!(choice.config.voltages().in_range());
    }

    #[test]
    fn estimated_ed2_beats_reference_homogeneous() {
        let (p, design, power) = setup(6, 6); // lucas
        let choice =
            select_heterogeneous(&p, design, &power, &FrequencyMenu::unrestricted()).unwrap();
        let secs = p.reference.exec_time.as_secs();
        let reference_ed2 = secs * secs; // energy 1 by calibration
        assert!(
            choice.estimate.ed2 < reference_ed2,
            "selection must not regress the reference point"
        );
    }

    #[test]
    fn resource_benchmark_prefers_uniform_frequencies() {
        // swim: 100 % resource constrained — slowing 3 clusters shrinks
        // slot capacity and hurts time, so the model should keep the
        // frequency gap small (ratio 1) and save energy with voltage.
        let (p, design, power) = setup(1, 8);
        let choice =
            select_heterogeneous(&p, design, &power, &FrequencyMenu::unrestricted()).unwrap();
        let ratio = choice.config.slowest_cluster_cycle().as_ns()
            / choice.config.fastest_cluster_cycle().as_ns();
        assert!(
            ratio < 1.26,
            "swim should avoid large frequency gaps, got ratio {ratio}"
        );
    }
}
