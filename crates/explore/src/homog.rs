//! The optimum homogeneous baseline (§5.1 of the paper).
//!
//! Before crediting heterogeneity, the paper normalises against the *best*
//! homogeneous design: the frequency and per-component voltages that
//! minimise ED² for the same workload. For homogeneous machines the model
//! is exact — every loop's schedule is identical at any frequency, so the
//! cycle count is invariant and execution time scales linearly with the
//! cycle time, while energy follows §3.1 directly.

use vliw_exec::Executor;
use vliw_machine::{ClockedConfig, MachineDesign, Time, Voltages};
use vliw_power::{PowerModel, UsageProfile};

use crate::profile::BenchmarkProfile;

/// The chosen homogeneous baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct HomogChoice {
    /// The winning configuration (cycle time + voltages).
    pub config: ClockedConfig,
    /// Its (exact) execution time.
    pub exec_time: Time,
    /// Its (exact) energy in reference units.
    pub energy: f64,
    /// Its ED².
    pub ed2: f64,
}

/// Cycle-time grid explored for the homogeneous baseline, as multiples of
/// the reference cycle.
const CYCLE_FACTORS: [f64; 17] = [
    0.80, 0.85, 0.90, 0.95, 1.00, 1.05, 1.10, 1.15, 1.20, 1.25, 1.30, 1.35, 1.40, 1.45, 1.50, 1.55,
    1.60,
];

/// Voltage-grid step (volts).
const V_STEP: f64 = 0.025;

/// Searches cycle times and per-component supply voltages for the
/// homogeneous configuration minimising ED² on this profile.
///
/// # Panics
///
/// Panics if no feasible homogeneous configuration exists (cannot happen
/// for the paper's reference machine, whose own operating point is always
/// a candidate).
#[must_use]
pub fn optimum_homogeneous(
    profile: &BenchmarkProfile,
    design: MachineDesign,
    power: &PowerModel,
) -> HomogChoice {
    optimum_homogeneous_with(profile, design, power, &Executor::serial())
}

/// [`optimum_homogeneous`] with the cycle-time grid fanned out across
/// `exec`'s worker pool; the minimiser is reduced in grid order, so the
/// result is identical for every worker count.
///
/// # Panics
///
/// Panics if no feasible homogeneous configuration exists (cannot happen
/// for the paper's reference machine).
#[must_use]
pub fn optimum_homogeneous_with(
    profile: &BenchmarkProfile,
    design: MachineDesign,
    power: &PowerModel,
    exec: &Executor,
) -> HomogChoice {
    let candidates = exec.map(&CYCLE_FACTORS, |_, &factor| {
        homogeneous_candidate(profile, design, power, factor)
    });
    let mut best: Option<HomogChoice> = None;
    for choice in candidates.into_iter().flatten() {
        if best.as_ref().is_none_or(|b| choice.ed2 < b.ed2) {
            best = Some(choice);
        }
    }
    best.expect("the reference operating point is always feasible")
}

/// Evaluates one homogeneous cycle factor: voltage descent + exact pricing.
fn homogeneous_candidate(
    profile: &BenchmarkProfile,
    design: MachineDesign,
    power: &PowerModel,
    factor: f64,
) -> Option<HomogChoice> {
    let cycle = Time::from_ns(ClockedConfig::REFERENCE_CYCLE.as_ns() * factor);
    // Same schedules, scaled cycle time ⇒ exact time scaling.
    let exec_time = Time::from_ns(profile.reference.exec_time.as_ns() * factor);
    let usage = UsageProfile {
        weighted_ins_per_cluster: vec![
            profile.reference.weighted_ins
                / f64::from(design.num_clusters);
            usize::from(design.num_clusters)
        ],
        comms: profile.reference.comms,
        mem_accesses: profile.reference.mem_accesses,
        exec_time,
    };
    let evaluate = |voltages: Voltages| -> Option<f64> {
        if !voltages.in_range() {
            return None;
        }
        let config = ClockedConfig::homogeneous(design, cycle).with_voltages(voltages);
        power.estimate_energy(&config, &usage)
    };
    let voltages = optimise_voltages(design, evaluate)?;
    let config = ClockedConfig::homogeneous(design, cycle).with_voltages(voltages);
    let energy = power.estimate_energy(&config, &usage)?;
    let secs = exec_time.as_secs();
    let ed2 = energy * secs * secs;
    Some(HomogChoice {
        config,
        exec_time,
        energy,
        ed2,
    })
}

/// A suite-wide homogeneous baseline: one configuration for the whole
/// workload (§5.1 picks a single optimum homogeneous design per machine
/// shape), with its exact per-benchmark time/energy/ED².
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteBaseline {
    /// The chosen configuration.
    pub config: ClockedConfig,
    /// Per-benchmark baselines at that configuration (same order as the
    /// input profiles).
    pub per_benchmark: Vec<HomogChoice>,
    /// Suite-level ED² (sum over benchmarks).
    pub suite_ed2: f64,
}

/// Searches one homogeneous configuration minimising the *suite's* total
/// ED² — the paper's baseline is global, while heterogeneous selection is
/// per program, which is precisely where part of heterogeneity's advantage
/// comes from.
///
/// # Panics
///
/// Panics if `profiles` is empty or no configuration is feasible.
#[must_use]
pub fn optimum_homogeneous_suite(
    profiles: &[BenchmarkProfile],
    design: MachineDesign,
    power: &PowerModel,
) -> SuiteBaseline {
    optimum_homogeneous_suite_with(profiles, design, power, &Executor::serial())
}

/// [`optimum_homogeneous_suite`] with the cycle-time grid fanned out
/// across `exec`'s worker pool; the minimiser is reduced in grid order, so
/// the result is identical for every worker count.
///
/// # Panics
///
/// Panics if `profiles` is empty or no configuration is feasible.
#[must_use]
pub fn optimum_homogeneous_suite_with(
    profiles: &[BenchmarkProfile],
    design: MachineDesign,
    power: &PowerModel,
    exec: &Executor,
) -> SuiteBaseline {
    assert!(!profiles.is_empty(), "empty suite");
    let candidates = exec.map(&CYCLE_FACTORS, |_, &factor| {
        suite_candidate(profiles, design, power, factor)
    });
    let mut best: Option<SuiteBaseline> = None;
    for choice in candidates.into_iter().flatten() {
        if best.as_ref().is_none_or(|b| choice.suite_ed2 < b.suite_ed2) {
            best = Some(choice);
        }
    }
    best.expect("the reference operating point is always feasible")
}

/// Evaluates one suite-wide homogeneous cycle factor.
fn suite_candidate(
    profiles: &[BenchmarkProfile],
    design: MachineDesign,
    power: &PowerModel,
    factor: f64,
) -> Option<SuiteBaseline> {
    let cycle = Time::from_ns(ClockedConfig::REFERENCE_CYCLE.as_ns() * factor);
    let usages: Vec<_> = profiles
        .iter()
        .map(|p| crate::profile::reference_usage_scaled(p, design.num_clusters, factor))
        .collect();
    let evaluate = |voltages: Voltages| -> Option<f64> {
        if !voltages.in_range() {
            return None;
        }
        let config = ClockedConfig::homogeneous(design, cycle).with_voltages(voltages);
        let mut total = 0.0;
        for usage in &usages {
            total += power.estimate_energy(&config, usage)?;
        }
        Some(total)
    };
    let voltages = optimise_voltages(design, evaluate)?;
    let config = ClockedConfig::homogeneous(design, cycle).with_voltages(voltages);
    let mut per_benchmark = Vec::with_capacity(profiles.len());
    let mut suite_ed2 = 0.0;
    for usage in &usages {
        let energy = power.estimate_energy(&config, usage)?;
        let secs = usage.exec_time.as_secs();
        let ed2 = energy * secs * secs;
        suite_ed2 += ed2;
        per_benchmark.push(HomogChoice {
            config: config.clone(),
            exec_time: usage.exec_time,
            energy,
            ed2,
        });
    }
    Some(SuiteBaseline {
        config,
        per_benchmark,
        suite_ed2,
    })
}

/// Coordinate-descent voltage optimisation for a *homogeneous* machine:
/// all clusters share one frequency, hence one optimal supply.
pub(crate) fn optimise_voltages(
    design: MachineDesign,
    evaluate: impl Fn(Voltages) -> Option<f64>,
) -> Option<Voltages> {
    let all: Vec<usize> = (0..usize::from(design.num_clusters)).collect();
    optimise_voltages_grouped(design, &[all], evaluate)
}

/// Coordinate-descent voltage optimisation with independent supplies per
/// cluster *speed group* (fast clusters want high voltage, slow clusters
/// low voltage — the heterogeneous design's central lever). Energy is
/// separable per clock domain, so sweeping each group, the ICN and the
/// cache independently is exact.
pub(crate) fn optimise_voltages_grouped(
    design: MachineDesign,
    cluster_groups: &[Vec<usize>],
    evaluate: impl Fn(Voltages) -> Option<f64>,
) -> Option<Voltages> {
    let grid = |(lo, hi): (f64, f64)| -> Vec<f64> {
        let mut v = Vec::new();
        let mut x = lo;
        while x <= hi + 1e-9 {
            v.push(x);
            x += V_STEP;
        }
        v
    };
    let mut current = Voltages::reference(design.num_clusters);
    // Ensure a feasible starting point exists at all.
    let mut current_e = evaluate(current.clone());
    // Fall back to the highest supplies if the reference point is
    // infeasible (very fast cycle times need more voltage).
    if current_e.is_none() {
        let mut v = Voltages::reference(design.num_clusters);
        for c in &mut v.clusters {
            *c = Voltages::CLUSTER_RANGE.1;
        }
        v.icn = Voltages::ICN_RANGE.1;
        v.cache = Voltages::CACHE_RANGE.1;
        current_e = evaluate(v.clone());
        current = v;
    }
    current_e?;

    // One pass per component family is exact by separability; a second
    // pass guards the (non-separable) corner cases defensively.
    for _ in 0..2 {
        // Clusters within one speed group share a frequency, hence one
        // optimal supply; different groups are swept independently.
        for group in cluster_groups {
            for vdd in grid(Voltages::CLUSTER_RANGE) {
                let mut cand = current.clone();
                for &c in group {
                    cand.clusters[c] = vdd;
                }
                if let Some(e) = evaluate(cand.clone()) {
                    if current_e.is_none_or(|c| e < c) {
                        current = cand;
                        current_e = Some(e);
                    }
                }
            }
        }
        for vdd in grid(Voltages::ICN_RANGE) {
            let mut cand = current.clone();
            cand.icn = vdd;
            if let Some(e) = evaluate(cand.clone()) {
                if current_e.is_none_or(|c| e < c) {
                    current = cand;
                    current_e = Some(e);
                }
            }
        }
        for vdd in grid(Voltages::CACHE_RANGE) {
            let mut cand = current.clone();
            cand.cache = vdd;
            if let Some(e) = evaluate(cand.clone()) {
                if current_e.is_none_or(|c| e < c) {
                    current = cand;
                    current_e = Some(e);
                }
            }
        }
    }
    current_e.map(|_| current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_power::EnergyShares;
    use vliw_sched::ScheduleOptions;
    use vliw_workloads::{generate, spec_fp2000};

    use crate::profile::profile_benchmark;

    #[test]
    fn optimum_beats_or_matches_the_reference_design() {
        let design = MachineDesign::paper_machine(1);
        let bench = generate(&spec_fp2000()[2], 6); // mgrid
        let p = profile_benchmark(&bench, design, &ScheduleOptions::default()).unwrap();
        let power = PowerModel::calibrate(design, EnergyShares::PAPER, &p.reference);
        let choice = optimum_homogeneous(&p, design, &power);

        // The raw reference machine: energy 1, time T_TOTAL.
        let secs = p.reference.exec_time.as_secs();
        let reference_ed2 = 1.0 * secs * secs;
        assert!(
            choice.ed2 <= reference_ed2 * (1.0 + 1e-9),
            "optimum {} vs reference {reference_ed2}",
            choice.ed2
        );
        assert!(choice.config.is_homogeneous());
        assert!(choice.config.voltages().in_range());
    }

    #[test]
    fn choice_is_on_the_grid_and_feasible() {
        let design = MachineDesign::paper_machine(1);
        let bench = generate(&spec_fp2000()[5], 6); // facerec
        let p = profile_benchmark(&bench, design, &ScheduleOptions::default()).unwrap();
        let power = PowerModel::calibrate(design, EnergyShares::PAPER, &p.reference);
        let choice = optimum_homogeneous(&p, design, &power);
        let factor = choice.config.fastest_cluster_cycle().as_ns();
        assert!(
            CYCLE_FACTORS.iter().any(|f| (f - factor).abs() < 1e-9),
            "cycle factor {factor} comes from the grid"
        );
        assert!(choice.energy > 0.0);
    }
}
