//! Runners regenerating every table and figure of the paper's evaluation
//! (§5): Table 2 and Figures 6, 7, 8, 9.
//!
//! The pipeline for each benchmark mirrors the paper end to end:
//!
//! 1. schedule every loop on the **reference homogeneous** machine and
//!    profile it;
//! 2. calibrate the §3.1 energy model on that profile;
//! 3. find the **optimum homogeneous** baseline (§5.1);
//! 4. **select** the heterogeneous frequencies/voltages with the §3 models
//!    (§3.3);
//! 5. **re-schedule every loop** on the selected configuration with the
//!    heterogeneous modulo scheduler (§4) and *measure* ED²;
//! 6. report `ED²(hetero, measured) / ED²(homogeneous optimum)`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::Serialize;

use vliw_exec::{Executor, MemoCache};
use vliw_machine::{ClockedConfig, FrequencyMenu, MachineDesign, MenuKind, Time};
use vliw_power::{EnergyShares, PowerModel, UsageProfile};
use vliw_sched::{schedule_loop_ws, SchedError, SchedWorkspace, ScheduleOptions};
use vliw_store::{MeasureStore, StoreKey};
use vliw_workloads::{classify, Benchmark, LoopClass};

use crate::homog::{optimum_homogeneous_suite_with, HomogChoice};
use crate::profile::{profile_benchmark_ws, suite_reference, BenchmarkProfile, T_TOTAL};
use crate::select::select_heterogeneous_with;
use crate::store_keys::{
    benchmark_content_hash, config_fingerprint, profile_to_record, record_to_profile,
    record_to_usage, usage_to_record,
};

/// Options shared by all experiment runners.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Frequency menu for heterogeneous selection *and* scheduling
    /// (Figure 7 varies this; everything else uses unrestricted).
    pub menu: FrequencyMenu,
    /// Energy shares calibrating the reference model (Figures 8/9 vary
    /// these).
    pub shares: EnergyShares,
    /// Scheduler knobs.
    pub sched: ScheduleOptions,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            menu: FrequencyMenu::unrestricted(),
            shares: EnergyShares::PAPER,
            sched: ScheduleOptions::default(),
        }
    }
}

/// The memoisation key of one *measured* heterogeneous evaluation: the
/// benchmark plus everything that determines its schedules — the clocked
/// configuration (cycle times and voltages), the scheduler options
/// (including the frequency menu) and the power model driving the
/// partitioner's ED² objective.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MeasureKey {
    benchmark: String,
    power_fingerprint: u64,
    config: Vec<u64>,
    sched: Vec<u64>,
}

impl MeasureKey {
    pub(crate) fn new(
        bench: &Benchmark,
        config: &ClockedConfig,
        power: &PowerModel,
        sched: &ScheduleOptions,
    ) -> Self {
        let design = config.design();
        let mut fp = Vec::with_capacity(2 * usize::from(design.num_clusters) + 4);
        for c in design.clusters() {
            fp.push(config.cluster_cycle(c).as_fs());
        }
        fp.push(config.icn_cycle().as_fs());
        fp.push(config.cache_cycle().as_fs());
        for &vdd in &config.voltages().clusters {
            fp.push(vdd.to_bits());
        }
        fp.push(config.voltages().icn.to_bits());
        fp.push(config.voltages().cache.to_bits());
        // Scheduler options field by field — exact values, no lossy digest.
        // The per-loop trip count is overwritten from the benchmark while
        // measuring, so it is deliberately left out of the key.
        let mut sched_fp = vec![
            u64::from(sched.budget_ratio),
            u64::from(sched.max_it_attempts),
        ];
        match sched.menu.cycle_times_at_least(Time::from_fs(1)) {
            // Unrestricted menus have no cycle-time list; tag the variant.
            None => sched_fp.push(u64::MAX),
            Some(cts) => {
                sched_fp.push(cts.len() as u64);
                sched_fp.extend(cts.iter().map(|ct| ct.as_fs()));
            }
        }
        MeasureKey {
            benchmark: bench.name.clone(),
            power_fingerprint: power.fingerprint(),
            config: fp,
            sched: sched_fp,
        }
    }
}

/// Memoisation table mapping a [`MeasureKey`] to the measured usage
/// profile of that configuration (the expensive part: re-scheduling every
/// loop with the heterogeneous modulo scheduler). Scheduling errors are
/// memoised too — they are just as deterministic as successes.
///
/// Hits require the *whole* key to repeat — benchmark, configuration,
/// scheduler options (menu included) and power model — because any of
/// those can change the schedules. That happens when the same sweep runs
/// twice on one [`ProfiledSuite`], and across experiments sharing one
/// suite under identical options (the `paper` binary reuses one suite per
/// bus count, so Figure 7's unrestricted-menu variant reuses Figure 6's
/// measurements outright). Figure 8/9 variants recalibrate the power
/// model, which can change partitions, so they correctly miss.
pub type MeasureCache = MemoCache<MeasureKey, Result<UsageProfile, SchedError>>;

/// A reference-profiled suite for one bus count; reusable across variant
/// sweeps (profiling is share- and menu-independent).
#[derive(Debug)]
pub struct ProfiledSuite {
    /// The machine shape (4 clusters, `buses` buses).
    pub design: MachineDesign,
    /// Per-benchmark reference profiles.
    pub profiles: Vec<BenchmarkProfile>,
    /// The benchmarks themselves (needed to re-schedule loops).
    pub benches: Vec<Benchmark>,
    /// Measured-configuration memoisation shared by every experiment run
    /// on this suite (the key embeds the power model and scheduler
    /// options, so cross-variant reuse is sound).
    cache: MeasureCache,
    /// The persistent store behind the memo cache, when attached
    /// ([`profile_suite_stored`]). Checked only on memo misses.
    store: Option<Arc<MeasureStore>>,
    /// Per-benchmark structural content hashes (the first half of every
    /// store key), computed once at profiling time.
    content: Vec<u64>,
    /// Memo misses that were answered by the disk store instead of an
    /// actual measurement. `cache.misses() − disk_hits` is the number of
    /// configurations this process truly re-scheduled.
    disk_hits: AtomicU64,
}

impl ProfiledSuite {
    /// The measurement memoisation cache (for hit/miss statistics).
    #[must_use]
    pub fn cache(&self) -> &MeasureCache {
        &self.cache
    }

    /// The attached persistent store, if any.
    #[must_use]
    pub fn store(&self) -> Option<&Arc<MeasureStore>> {
        self.store.as_ref()
    }

    /// Memo misses served from the disk store (no scheduling happened).
    #[must_use]
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Measures benchmark `index` on `config`, memoised in this suite's
    /// cache and — on memo misses — in the attached persistent store.
    /// The expensive path (re-scheduling every loop) only runs when both
    /// layers miss; the freshly measured profile is then persisted.
    ///
    /// Results are identical with and without a store: stored records
    /// round-trip bit-exactly and measurements are deterministic.
    ///
    /// # Errors
    ///
    /// Propagates heterogeneous scheduling failures (memoised, but never
    /// persisted — errors are cheap to reproduce and builds may fix
    /// them).
    pub fn measure_memoised(
        &self,
        index: usize,
        config: &ClockedConfig,
        power: &PowerModel,
        sched_opts: &ScheduleOptions,
        exec: &Executor,
    ) -> Result<UsageProfile, SchedError> {
        let bench = &self.benches[index];
        let profile = &self.profiles[index];
        let key = MeasureKey::new(bench, config, power, sched_opts);
        self.cache.get_or_compute(key, || {
            let skey = self.store.as_ref().map(|_| StoreKey {
                content: self.content[index],
                config: config_fingerprint(config, Some(power), sched_opts),
            });
            if let (Some(store), Some(skey)) = (&self.store, skey) {
                if let Some(rec) = store.get_measure(skey) {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(record_to_usage(&rec));
                }
            }
            let usage =
                measure_usage(bench, profile, config, power, sched_opts, self.design, exec)?;
            if let (Some(store), Some(skey)) = (&self.store, skey) {
                if let Err(e) = store.put_measure(skey, usage_to_record(&usage)) {
                    eprintln!("[store] warning: failed to persist measurement: {e}");
                }
            }
            Ok(usage)
        })
    }

    /// Per-benchmark structural content hashes, in suite order (the first
    /// half of every store key).
    pub(crate) fn content(&self) -> &[u64] {
        &self.content
    }

    /// A cheap *screening* copy of this suite for racing: every benchmark
    /// keeps only its first `max(1, n / SCREEN_LOOPS_DIVISOR)` loops, with
    /// the kept loops' weights renormalised to sum to 1.
    ///
    /// Renormalising keeps the truncated suite on the same scale as the
    /// full one: invocation counts still reconstruct [`T_TOTAL`] per
    /// benchmark, so the recomputed per-benchmark
    /// [`vliw_power::ReferenceProfile`]s —
    /// and the power model calibrated on them — stay commensurable with
    /// the full-suite pipeline, and homogeneous candidates (measured off
    /// the reference profile, not by re-scheduling) rank consistently
    /// against heterogeneous ones.
    ///
    /// The screening suite shares the attached persistent store but owns
    /// a fresh memo cache and *distinct* content hashes (truncated
    /// benchmarks hash differently), so screening measurements never
    /// pollute full-fidelity records.
    #[must_use]
    pub fn screen_subset(&self) -> ProfiledSuite {
        let mut benches = Vec::with_capacity(self.benches.len());
        let mut profiles = Vec::with_capacity(self.profiles.len());
        for (bench, profile) in self.benches.iter().zip(&self.profiles) {
            let keep = (bench.loops.len() / SCREEN_LOOPS_DIVISOR).max(1);
            let kept_weight: f64 = bench.loops[..keep].iter().map(vliw_ir::Loop::weight).sum();
            benches.push(Benchmark {
                name: bench.name.clone(),
                loops: bench.loops[..keep]
                    .iter()
                    .map(|l| {
                        vliw_ir::Loop::new(
                            l.ddg().clone(),
                            l.trip_count(),
                            l.weight() / kept_weight,
                        )
                    })
                    .collect(),
            });
            let mut loops: Vec<_> = profile.loops[..keep].to_vec();
            let mut agg_ins = 0.0f64;
            let mut agg_comms = 0.0f64;
            let mut agg_mem = 0.0f64;
            for lp in &mut loops {
                lp.weight /= kept_weight;
                lp.invocations /= kept_weight;
                let trips = lp.trips as f64;
                agg_ins += lp.invocations * lp.weighted_ins * trips;
                agg_comms += lp.invocations * lp.comms as f64 * trips;
                agg_mem += lp.invocations * lp.mem_accesses as f64 * trips;
            }
            profiles.push(BenchmarkProfile {
                name: profile.name.clone(),
                loops,
                reference: vliw_power::ReferenceProfile {
                    weighted_ins: agg_ins,
                    comms: agg_comms.round() as u64,
                    mem_accesses: agg_mem.round() as u64,
                    exec_time: T_TOTAL,
                },
            });
        }
        let content = benches.iter().map(benchmark_content_hash).collect();
        ProfiledSuite {
            design: self.design,
            profiles,
            benches,
            cache: MeasureCache::new(),
            store: self.store.clone(),
            content,
            disk_hits: AtomicU64::new(0),
        }
    }
}

/// Loop-count divisor for [`ProfiledSuite::screen_subset`]: screening
/// suites keep the first `max(1, n / SCREEN_LOOPS_DIVISOR)` loops of each
/// benchmark.
pub const SCREEN_LOOPS_DIVISOR: usize = 8;

/// Profiles `suite` on the paper's machine with `buses` buses. Serial
/// shorthand for [`profile_suite_with`].
///
/// # Errors
///
/// Propagates scheduling failures from the reference runs.
pub fn profile_suite(
    suite: &[Benchmark],
    buses: u32,
    sched: &ScheduleOptions,
) -> Result<ProfiledSuite, SchedError> {
    profile_suite_with(suite, buses, sched, &Executor::serial())
}

/// [`profile_suite`] with per-benchmark profiling fanned out across
/// `exec`'s worker pool (profiles come back in suite order). Each worker
/// thread owns one [`SchedWorkspace`] reused across every benchmark it
/// profiles.
///
/// # Errors
///
/// Propagates scheduling failures from the reference runs (the
/// lowest-indexed failing benchmark, matching the serial path).
pub fn profile_suite_with(
    suite: &[Benchmark],
    buses: u32,
    sched: &ScheduleOptions,
    exec: &Executor,
) -> Result<ProfiledSuite, SchedError> {
    profile_suite_stored(suite, buses, sched, exec, None)
}

/// [`profile_suite_with`] backed by a persistent store: reference
/// profiles already on disk are loaded instead of re-scheduled, fresh
/// ones are persisted, and the resulting suite keeps the store attached
/// so [`ProfiledSuite::measure_memoised`] checks it on every memo miss.
///
/// Profile records are keyed by (benchmark content hash, fingerprint of
/// the reference configuration + scheduler options); the power model is
/// not part of the profile key because profiling precedes calibration
/// and does not depend on it.
///
/// # Errors
///
/// Propagates scheduling failures from the reference runs (the
/// lowest-indexed failing benchmark, matching the serial path). Store
/// *write* failures are downgraded to warnings — persistence is an
/// optimisation, never a correctness requirement.
pub fn profile_suite_stored(
    suite: &[Benchmark],
    buses: u32,
    sched: &ScheduleOptions,
    exec: &Executor,
    store: Option<Arc<MeasureStore>>,
) -> Result<ProfiledSuite, SchedError> {
    let design = MachineDesign::paper_machine(buses);
    let content: Vec<u64> = suite.iter().map(benchmark_content_hash).collect();
    let profile_keys: Option<Vec<StoreKey>> = store.as_ref().map(|_| {
        let reference = ClockedConfig::reference(design);
        let config = config_fingerprint(&reference, None, sched);
        content
            .iter()
            .map(|&c| StoreKey { content: c, config })
            .collect()
    });

    // Resolve from disk first, then schedule only the missing ones (in
    // parallel, preserving suite order and the serial error order).
    let mut profiles: Vec<Option<BenchmarkProfile>> = match (&store, &profile_keys) {
        (Some(store), Some(keys)) => keys
            .iter()
            .map(|&k| store.get_profile(k).map(|r| record_to_profile(&r)))
            .collect(),
        _ => vec![None; suite.len()],
    };
    let missing: Vec<usize> = (0..suite.len())
        .filter(|&i| profiles[i].is_none())
        .collect();
    let jobs: Vec<&Benchmark> = missing.iter().map(|&i| &suite[i]).collect();
    let fresh = exec.try_map_init(&jobs, SchedWorkspace::new, |ws, _, bench| {
        profile_benchmark_ws(bench, design, sched, ws)
    })?;
    for (&i, profile) in missing.iter().zip(fresh) {
        if let (Some(store), Some(keys)) = (&store, &profile_keys) {
            if let Err(e) = store.put_profile(keys[i], profile_to_record(&profile)) {
                eprintln!("[store] warning: failed to persist profile: {e}");
            }
        }
        profiles[i] = Some(profile);
    }
    Ok(ProfiledSuite {
        design,
        profiles: profiles
            .into_iter()
            .map(|p| p.expect("all filled"))
            .collect(),
        benches: suite.to_vec(),
        cache: MeasureCache::new(),
        store,
        content,
        disk_hits: AtomicU64::new(0),
    })
}

/// One Figure 6 bar: a benchmark's heterogeneous ED², measured and
/// normalised to the optimum homogeneous baseline.
#[derive(Debug, Clone, Serialize)]
pub struct BenchmarkResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Buses on the machine.
    pub buses: u32,
    /// `ED²(hetero) / ED²(homogeneous optimum)` — the paper's y-axis.
    pub ed2_normalized: f64,
    /// Measured heterogeneous ED² (absolute, reference units × s²).
    pub ed2_hetero: f64,
    /// Optimum homogeneous ED².
    pub ed2_homog_opt: f64,
    /// Measured heterogeneous execution time (ns).
    pub exec_time_het_ns: f64,
    /// Optimum homogeneous execution time (ns).
    pub exec_time_hom_ns: f64,
    /// Measured heterogeneous energy (reference units).
    pub energy_het: f64,
    /// Optimum homogeneous energy.
    pub energy_hom: f64,
    /// Chosen fast-cluster cycle time (ns).
    pub fast_cycle_ns: f64,
    /// Chosen slow-cluster cycle time (ns).
    pub slow_cycle_ns: f64,
}

/// Runs the measurement pipeline for one profiled benchmark against a
/// suite-level baseline. Serial, uncached shorthand for
/// [`run_benchmark_with`].
///
/// # Errors
///
/// Propagates heterogeneous scheduling failures.
pub fn run_benchmark(
    bench: &Benchmark,
    profile: &BenchmarkProfile,
    hom: &HomogChoice,
    design: MachineDesign,
    power: &PowerModel,
    opts: &ExperimentOptions,
) -> Result<BenchmarkResult, SchedError> {
    run_benchmark_with(
        bench,
        profile,
        hom,
        design,
        power,
        opts,
        &Executor::serial(),
        None,
    )
}

/// [`run_benchmark`] with the §3.3 candidate sweep and the per-loop
/// measurement fanned out across `exec`'s worker pool, and the measured
/// usage optionally memoised through `suite` (the suite's in-memory
/// cache plus, when attached, its persistent store); `suite` is the
/// profiled suite and this benchmark's index in it.
///
/// The result is identical for every worker count and with or without
/// the memo layers: candidates are reduced in grid order and per-loop
/// contributions are folded in loop order.
///
/// # Errors
///
/// Propagates heterogeneous scheduling failures.
#[allow(clippy::too_many_arguments)]
pub fn run_benchmark_with(
    bench: &Benchmark,
    profile: &BenchmarkProfile,
    hom: &HomogChoice,
    design: MachineDesign,
    power: &PowerModel,
    opts: &ExperimentOptions,
    exec: &Executor,
    suite: Option<(&ProfiledSuite, usize)>,
) -> Result<BenchmarkResult, SchedError> {
    let het = select_heterogeneous_with(profile, design, power, &opts.menu, exec)
        .expect("the selection space contains feasible points");

    // When the selection lands on a *homogeneous* configuration (the paper
    // reports this outcome for register/resource-constrained programs),
    // §5.1's argument applies exactly: the schedule is the reference
    // schedule, time scales with the cycle time, and energy follows the
    // model — no re-scheduling noise.
    if het.config.is_homogeneous() {
        let factor =
            het.config.fastest_cluster_cycle().as_ns() / ClockedConfig::REFERENCE_CYCLE.as_ns();
        let usage = crate::profile::reference_usage_scaled(profile, design.num_clusters, factor);
        let energy_het = power
            .estimate_energy(&het.config, &usage)
            .expect("selected configuration is electrically feasible");
        let secs = usage.exec_time.as_secs();
        let ed2_hetero = energy_het * secs * secs;
        return Ok(BenchmarkResult {
            benchmark: bench.name.clone(),
            buses: design.buses,
            ed2_normalized: ed2_hetero / hom.ed2,
            ed2_hetero,
            ed2_homog_opt: hom.ed2,
            exec_time_het_ns: usage.exec_time.as_ns(),
            exec_time_hom_ns: hom.exec_time.as_ns(),
            energy_het,
            energy_hom: hom.energy,
            fast_cycle_ns: het.config.fastest_cluster_cycle().as_ns(),
            slow_cycle_ns: het.config.slowest_cluster_cycle().as_ns(),
        });
    }

    // Measure the selected configuration by actually scheduling every
    // loop (memoised when a cache is supplied).
    let mut sched_opts = opts.sched.clone();
    sched_opts.menu = opts.menu.clone();
    let usage = match suite {
        Some((suite, index)) => {
            suite.measure_memoised(index, &het.config, power, &sched_opts, exec)?
        }
        None => measure_usage(
            bench,
            profile,
            &het.config,
            power,
            &sched_opts,
            design,
            exec,
        )?,
    };
    let exec_time_het = usage.exec_time;
    let energy_het = power
        .estimate_energy(&het.config, &usage)
        .expect("selected configuration is electrically feasible");
    let secs = exec_time_het.as_secs();
    let ed2_hetero = energy_het * secs * secs;

    Ok(BenchmarkResult {
        benchmark: bench.name.clone(),
        buses: design.buses,
        ed2_normalized: ed2_hetero / hom.ed2,
        ed2_hetero,
        ed2_homog_opt: hom.ed2,
        exec_time_het_ns: exec_time_het.as_ns(),
        exec_time_hom_ns: hom.exec_time.as_ns(),
        energy_het,
        energy_hom: hom.energy,
        fast_cycle_ns: het.config.fastest_cluster_cycle().as_ns(),
        slow_cycle_ns: het.config.slowest_cluster_cycle().as_ns(),
    })
}

/// Schedules every loop of `bench` on `config` and aggregates the
/// invocation-weighted usage profile. Per-loop scheduling fans out across
/// `exec` with one [`SchedWorkspace`] per worker thread; contributions are
/// folded in loop order, so the result is bit-identical for every worker
/// count.
pub(crate) fn measure_usage(
    bench: &Benchmark,
    profile: &BenchmarkProfile,
    config: &ClockedConfig,
    power: &PowerModel,
    sched_opts: &ScheduleOptions,
    design: MachineDesign,
    exec: &Executor,
) -> Result<UsageProfile, SchedError> {
    let per_loop = exec.try_map_init(&bench.loops, SchedWorkspace::new, |ws, _, l| {
        let mut o = sched_opts.clone();
        o.trip_count = l.trip_count();
        let s = schedule_loop_ws(l.ddg(), config, Some(power), &o, ws)?;
        Ok(s.usage(l.trip_count()))
    })?;
    let mut total_ns = 0.0f64;
    let mut weighted = vec![0.0f64; usize::from(design.num_clusters)];
    let mut comms = 0.0f64;
    let mut mems = 0.0f64;
    for (usage, lp) in per_loop.iter().zip(&profile.loops) {
        total_ns += lp.invocations * usage.exec_time.as_ns();
        for (w, u) in weighted.iter_mut().zip(&usage.weighted_ins_per_cluster) {
            *w += lp.invocations * u;
        }
        comms += lp.invocations * usage.comms as f64;
        mems += lp.invocations * usage.mem_accesses as f64;
    }
    Ok(UsageProfile {
        weighted_ins_per_cluster: weighted,
        comms: comms.round() as u64,
        mem_accesses: mems.round() as u64,
        exec_time: Time::from_ns(total_ns),
    })
}

/// Figure 6: per-benchmark normalised ED² of the heterogeneous approach.
/// Serial shorthand for [`figure6_with`].
///
/// Calibrates the energy model once on the whole suite's reference run and
/// normalises every benchmark against one suite-wide optimum homogeneous
/// baseline, exactly as the paper's §5 does.
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn figure6(
    profiled: &ProfiledSuite,
    opts: &ExperimentOptions,
) -> Result<Vec<BenchmarkResult>, SchedError> {
    figure6_with(profiled, opts, &Executor::serial())
}

/// [`figure6`] with the per-benchmark measurement pipeline fanned out
/// across `exec`'s worker pool.
///
/// Each benchmark (selection + heterogeneous re-scheduling) is one job;
/// the homogeneous baseline search fans its cycle-time grid out first.
/// Rows come back in suite order and measured configurations are memoised
/// in the suite's [`MeasureCache`], so repeated calls (Figures 7–9's
/// variant sweeps) skip re-measuring configurations they have seen.
///
/// # Errors
///
/// Propagates scheduling failures (the lowest-indexed failing benchmark,
/// matching the serial path).
pub fn figure6_with(
    profiled: &ProfiledSuite,
    opts: &ExperimentOptions,
    exec: &Executor,
) -> Result<Vec<BenchmarkResult>, SchedError> {
    let power = PowerModel::calibrate(
        profiled.design,
        opts.shares,
        &suite_reference(&profiled.profiles),
    );
    let baseline =
        optimum_homogeneous_suite_with(&profiled.profiles, profiled.design, &power, exec);
    let jobs: Vec<(usize, &Benchmark, &BenchmarkProfile, &HomogChoice)> = profiled
        .benches
        .iter()
        .zip(&profiled.profiles)
        .zip(&baseline.per_benchmark)
        .enumerate()
        .map(|(i, ((bench, profile), hom))| (i, bench, profile, hom))
        .collect();
    // One worker per benchmark; the per-candidate/per-loop fan-out inside
    // run_benchmark_with stays serial to avoid oversubscribing the pool.
    exec.try_map(&jobs, |_, &(i, bench, profile, hom)| {
        run_benchmark_with(
            bench,
            profile,
            hom,
            profiled.design,
            &power,
            opts,
            &Executor::serial(),
            Some((profiled, i)),
        )
    })
}

/// Arithmetic mean of the normalised ED² column.
#[must_use]
pub fn mean_normalized(rows: &[BenchmarkResult]) -> f64 {
    if rows.is_empty() {
        return f64::NAN;
    }
    rows.iter().map(|r| r.ed2_normalized).sum::<f64>() / rows.len() as f64
}

/// One Table 2 row: where a benchmark's execution time goes.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Benchmark name.
    pub benchmark: String,
    /// % time in loops with `recMII < resMII`.
    pub resource_pct: f64,
    /// % time in loops with `resMII ≤ recMII < 1.3·resMII`.
    pub borderline_pct: f64,
    /// % time in loops with `1.3·resMII ≤ recMII`.
    pub recurrence_pct: f64,
}

/// Table 2: classifies every loop of the suite and aggregates execution-
/// time weights per constraint class. Serial shorthand for
/// [`table2_with`].
#[must_use]
pub fn table2(suite: &[Benchmark]) -> Vec<Table2Row> {
    table2_with(suite, &Executor::serial())
}

/// [`table2`] with per-benchmark classification fanned out across `exec`'s
/// worker pool (rows come back in suite order).
#[must_use]
pub fn table2_with(suite: &[Benchmark], exec: &Executor) -> Vec<Table2Row> {
    let design = MachineDesign::paper_machine(1);
    exec.map(suite, |_, bench| {
        let mut shares = [0.0f64; 3];
        for l in &bench.loops {
            let class = classify(l.ddg(), design);
            let idx = LoopClass::ALL
                .iter()
                .position(|&c| c == class)
                .expect("3 classes");
            shares[idx] += l.weight();
        }
        Table2Row {
            benchmark: bench.name.clone(),
            resource_pct: shares[0] * 100.0,
            borderline_pct: shares[1] * 100.0,
            recurrence_pct: shares[2] * 100.0,
        }
    })
}

/// One Figure 7 bar: mean normalised ED² for a frequency-menu size.
#[derive(Debug, Clone, Serialize)]
pub struct Figure7Row {
    /// Menu description ("any freq", "16 freqs", …).
    pub menu: String,
    /// Buses on the machine.
    pub buses: u32,
    /// Mean normalised ED² across benchmarks.
    pub mean_ed2_normalized: f64,
}

/// The menu variants of Figure 7.
#[must_use]
pub fn figure7_menus() -> Vec<(String, FrequencyMenu)> {
    vec![
        ("any freq".to_owned(), FrequencyMenu::unrestricted()),
        (
            "16 freqs".to_owned(),
            FrequencyMenu::from_kind(MenuKind::Uniform(16)),
        ),
        (
            "8 freqs".to_owned(),
            FrequencyMenu::from_kind(MenuKind::Uniform(8)),
        ),
        (
            "4 freqs".to_owned(),
            FrequencyMenu::from_kind(MenuKind::Uniform(4)),
        ),
    ]
}

/// Figure 7: sensitivity to the number of supported frequencies. Serial
/// shorthand for [`figure7_with`].
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn figure7(
    profiled: &ProfiledSuite,
    base: &ExperimentOptions,
) -> Result<Vec<Figure7Row>, SchedError> {
    figure7_with(profiled, base, &Executor::serial())
}

/// [`figure7`] with every menu variant's benchmark sweep fanned out across
/// `exec`'s worker pool (variants run in sequence; each fans out across
/// benchmarks and shares the suite's measurement cache).
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn figure7_with(
    profiled: &ProfiledSuite,
    base: &ExperimentOptions,
    exec: &Executor,
) -> Result<Vec<Figure7Row>, SchedError> {
    let mut rows = Vec::new();
    for (name, menu) in figure7_menus() {
        let opts = ExperimentOptions {
            menu,
            ..base.clone()
        };
        let results = figure6_with(profiled, &opts, exec)?;
        rows.push(Figure7Row {
            menu: name,
            buses: profiled.design.buses,
            mean_ed2_normalized: mean_normalized(&results),
        });
    }
    Ok(rows)
}

/// One Figure 8 bar: mean normalised ED² for an ICN/cache energy-share
/// assumption.
#[derive(Debug, Clone, Serialize)]
pub struct Figure8Row {
    /// ICN share of total reference energy.
    pub icn_share: f64,
    /// Cache share of total reference energy.
    pub cache_share: f64,
    /// Buses on the machine.
    pub buses: u32,
    /// Mean normalised ED² across benchmarks.
    pub mean_ed2_normalized: f64,
}

/// The (ICN, cache) share variants of Figure 8.
pub const FIGURE8_SHARES: [(f64, f64); 5] = [
    (0.10, 0.25),
    (0.10, 1.0 / 3.0),
    (0.15, 0.30),
    (0.20, 0.25),
    (0.20, 0.30),
];

/// Figure 8: sensitivity to the ICN/cache energy shares of the reference
/// machine. A fresh optimum homogeneous baseline is computed per variant,
/// as in the paper. Serial shorthand for [`figure8_with`].
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn figure8(
    profiled: &ProfiledSuite,
    base: &ExperimentOptions,
) -> Result<Vec<Figure8Row>, SchedError> {
    figure8_with(profiled, base, &Executor::serial())
}

/// [`figure8`] with every share variant's benchmark sweep fanned out
/// across `exec`'s worker pool.
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn figure8_with(
    profiled: &ProfiledSuite,
    base: &ExperimentOptions,
    exec: &Executor,
) -> Result<Vec<Figure8Row>, SchedError> {
    let mut rows = Vec::new();
    for (icn, cache) in FIGURE8_SHARES {
        let opts = ExperimentOptions {
            shares: EnergyShares::with_component_shares(icn, cache),
            ..base.clone()
        };
        let results = figure6_with(profiled, &opts, exec)?;
        rows.push(Figure8Row {
            icn_share: icn,
            cache_share: cache,
            buses: profiled.design.buses,
            mean_ed2_normalized: mean_normalized(&results),
        });
    }
    Ok(rows)
}

/// One Figure 9 bar: mean normalised ED² for a leakage-share assumption.
#[derive(Debug, Clone, Serialize)]
pub struct Figure9Row {
    /// Cluster leakage fraction.
    pub leak_cluster: f64,
    /// ICN leakage fraction.
    pub leak_icn: f64,
    /// Cache leakage fraction.
    pub leak_cache: f64,
    /// Buses on the machine.
    pub buses: u32,
    /// Mean normalised ED² across benchmarks.
    pub mean_ed2_normalized: f64,
}

/// The (cluster, ICN, cache) leakage variants of Figure 9.
pub const FIGURE9_LEAKS: [(f64, f64, f64); 4] = [
    (0.25, 0.05, 0.60),
    (1.0 / 3.0, 0.10, 2.0 / 3.0),
    (0.40, 0.15, 0.70),
    (0.20, 0.10, 0.75),
];

/// Figure 9: sensitivity to the leakage fractions of the reference
/// machine. Serial shorthand for [`figure9_with`].
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn figure9(
    profiled: &ProfiledSuite,
    base: &ExperimentOptions,
) -> Result<Vec<Figure9Row>, SchedError> {
    figure9_with(profiled, base, &Executor::serial())
}

/// [`figure9`] with every leakage variant's benchmark sweep fanned out
/// across `exec`'s worker pool.
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn figure9_with(
    profiled: &ProfiledSuite,
    base: &ExperimentOptions,
    exec: &Executor,
) -> Result<Vec<Figure9Row>, SchedError> {
    let mut rows = Vec::new();
    for (lc, li, lca) in FIGURE9_LEAKS {
        let opts = ExperimentOptions {
            shares: EnergyShares::with_leakage(lc, li, lca),
            ..base.clone()
        };
        let results = figure6_with(profiled, &opts, exec)?;
        rows.push(Figure9Row {
            leak_cluster: lc,
            leak_icn: li,
            leak_cache: lca,
            buses: profiled.design.buses,
            mean_ed2_normalized: mean_normalized(&results),
        });
    }
    Ok(rows)
}

/// One `familysweep` row: a generator family's measured, normalised ED²
/// under one figure-6/7 configuration (bus count × frequency menu).
#[derive(Debug, Clone, Serialize)]
pub struct FamilyRow {
    /// Generator family name (`membound`, `ilpwide`, `multirec`, `stress`).
    pub family: String,
    /// Frequency-menu description ("any freq", "16 freqs", …).
    pub menu: String,
    /// Buses on the machine.
    pub buses: u32,
    /// `ED²(hetero) / ED²(homogeneous optimum)` for this family.
    pub ed2_normalized: f64,
    /// Measured heterogeneous execution time (ns).
    pub exec_time_het_ns: f64,
    /// Measured heterogeneous energy (reference units).
    pub energy_het: f64,
    /// Chosen fast-cluster cycle time (ns).
    pub fast_cycle_ns: f64,
    /// Chosen slow-cluster cycle time (ns).
    pub slow_cycle_ns: f64,
}

/// `familysweep`: the sensitivity experiment over the non-SPEC generator
/// families. Serial shorthand for [`familysweep_with`].
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn familysweep(
    profiled: &ProfiledSuite,
    base: &ExperimentOptions,
) -> Result<Vec<FamilyRow>, SchedError> {
    familysweep_with(profiled, base, &Executor::serial())
}

/// Sweeps the paper's figure-6/7 configurations over a profiled *family*
/// suite (see `vliw_workloads::family_suite`): for every Figure 7
/// frequency menu, the full Figure 6 measurement pipeline (calibrate →
/// homogeneous baseline → select → re-schedule → measure) runs across the
/// family benchmarks, one row per `(family, menu)`.
///
/// `profiled` is a family suite profiled with [`profile_suite_with`]; the
/// caller sweeps bus counts by profiling one suite per bus count, exactly
/// as the `paper` binary does for Figures 6–9. Rows come back in
/// menu-major, family-minor order and are identical for every worker
/// count.
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn familysweep_with(
    profiled: &ProfiledSuite,
    base: &ExperimentOptions,
    exec: &Executor,
) -> Result<Vec<FamilyRow>, SchedError> {
    let mut rows = Vec::new();
    for (menu_name, menu) in figure7_menus() {
        let opts = ExperimentOptions {
            menu,
            ..base.clone()
        };
        let results = figure6_with(profiled, &opts, exec)?;
        rows.extend(results.into_iter().map(|r| FamilyRow {
            family: r.benchmark,
            menu: menu_name.clone(),
            buses: r.buses,
            ed2_normalized: r.ed2_normalized,
            exec_time_het_ns: r.exec_time_het_ns,
            energy_het: r.energy_het,
            fast_cycle_ns: r.fast_cycle_ns,
            slow_cycle_ns: r.slow_cycle_ns,
        }));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_workloads::{generate, spec_fp2000};

    fn small_suite() -> Vec<Benchmark> {
        // One strongly recurrence-bound and one resource-bound benchmark.
        vec![
            generate(&spec_fp2000()[8], 6),
            generate(&spec_fp2000()[1], 6),
        ]
    }

    #[test]
    fn figure6_pipeline_runs_and_hetero_wins_on_sixtrack() {
        let suite = small_suite();
        let profiled = profile_suite(&suite, 1, &ScheduleOptions::default()).unwrap();
        let rows = figure6(&profiled, &ExperimentOptions::default()).unwrap();
        assert_eq!(rows.len(), 2);
        let sixtrack = &rows[0];
        assert_eq!(sixtrack.benchmark, "200.sixtrack");
        assert!(
            sixtrack.ed2_normalized < 1.0,
            "heterogeneity must win on sixtrack, got {}",
            sixtrack.ed2_normalized
        );
        for r in &rows {
            assert!(r.ed2_normalized > 0.0 && r.ed2_normalized.is_finite());
            assert!(r.ed2_hetero > 0.0 && r.ed2_homog_opt > 0.0);
        }
        let mean = mean_normalized(&rows);
        assert!(mean > 0.0 && mean < 1.2);
    }

    #[test]
    fn table2_matches_generation_targets() {
        let suite = small_suite();
        let rows = table2(&suite);
        assert!((rows[0].recurrence_pct - 99.92).abs() < 1e-6);
        assert!((rows[1].resource_pct - 100.0).abs() < 1e-6);
    }

    #[test]
    fn serde_rows_serialize() {
        let suite = small_suite();
        let rows = table2(&suite);
        let json = serde_json::to_string(&rows).unwrap();
        assert!(json.contains("200.sixtrack"));
    }

    /// The acceptance property of the parallel engine: fanning the whole
    /// pipeline (profiling, baseline search, selection, measurement)
    /// across a worker pool produces **byte-identical JSON** to the serial
    /// path.
    #[test]
    fn parallel_pipeline_is_byte_identical_to_serial() {
        let suite = small_suite();
        let opts = ExperimentOptions::default();

        let serial_profiled = profile_suite(&suite, 1, &opts.sched).unwrap();
        let serial7 = figure7(&serial_profiled, &opts).unwrap();
        let serial6 = figure6(&serial_profiled, &opts).unwrap();

        let pool = Executor::new(4);
        let par_profiled = profile_suite_with(&suite, 1, &opts.sched, &pool).unwrap();
        let par7 = figure7_with(&par_profiled, &opts, &pool).unwrap();
        let par6 = figure6_with(&par_profiled, &opts, &pool).unwrap();

        assert_eq!(
            serde_json::to_string(&serial7).unwrap(),
            serde_json::to_string(&par7).unwrap(),
            "figure7 must not depend on the worker count"
        );
        assert_eq!(
            serde_json::to_string(&serial6).unwrap(),
            serde_json::to_string(&par6).unwrap(),
            "figure6 must not depend on the worker count"
        );
    }

    /// The acceptance criterion of the corpus/family subsystem: the
    /// sensitivity sweep emits rows for **all four** generator families,
    /// under every Figure 7 menu, with finite positive ED².
    #[test]
    fn familysweep_emits_rows_for_all_four_families() {
        let suite = vliw_workloads::family_suite(3);
        let profiled = profile_suite(&suite, 1, &ScheduleOptions::default()).unwrap();
        let rows = familysweep(&profiled, &ExperimentOptions::default()).unwrap();
        let menus = figure7_menus().len();
        assert_eq!(rows.len(), 4 * menus);
        for family in ["membound", "ilpwide", "multirec", "stress"] {
            let family_rows: Vec<_> = rows.iter().filter(|r| r.family == family).collect();
            assert_eq!(family_rows.len(), menus, "{family}");
            for r in family_rows {
                assert!(
                    r.ed2_normalized.is_finite() && r.ed2_normalized > 0.0,
                    "{family}/{}: ED² {}",
                    r.menu,
                    r.ed2_normalized
                );
            }
        }
    }

    /// A second process (simulated by a fresh suite over the same store
    /// directory) performs zero measurements and zero reference
    /// profiling runs: everything comes from disk, and the rows are
    /// byte-identical.
    #[test]
    fn warm_store_eliminates_measurements_and_preserves_bytes() {
        let dir =
            std::env::temp_dir().join(format!("vliw-explore-warm-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let suite = small_suite();
        let opts = ExperimentOptions::default();

        let cold_store = Arc::new(MeasureStore::open(&dir).unwrap());
        let cold = profile_suite_stored(
            &suite,
            1,
            &opts.sched,
            &Executor::serial(),
            Some(cold_store),
        )
        .unwrap();
        let first = figure6(&cold, &opts).unwrap();
        let cold_measured = cold.cache().misses() - cold.disk_hits();
        assert!(cold_measured > 0, "the cold run must actually measure");
        drop(cold); // close the writer log

        let warm_store = Arc::new(MeasureStore::open(&dir).unwrap());
        let warm = profile_suite_stored(
            &suite,
            1,
            &opts.sched,
            &Executor::serial(),
            Some(warm_store.clone()),
        )
        .unwrap();
        assert_eq!(
            warm_store.stats().unwrap().misses,
            0,
            "profiles must come from disk on the warm run"
        );
        let second = figure6(&warm, &opts).unwrap();
        assert_eq!(
            warm.cache().misses() - warm.disk_hits(),
            0,
            "the warm run must not measure anything"
        );
        assert_eq!(
            serde_json::to_string(&first).unwrap(),
            serde_json::to_string(&second).unwrap(),
            "store hits must reproduce the rows byte for byte"
        );
        drop(warm);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Repeating a sweep on the same profiled suite hits the measurement
    /// cache instead of re-scheduling, without changing the rows.
    #[test]
    fn measurement_cache_collapses_repeated_sweeps() {
        let suite = small_suite();
        let opts = ExperimentOptions::default();
        let profiled = profile_suite(&suite, 1, &opts.sched).unwrap();

        let first = figure6(&profiled, &opts).unwrap();
        let misses_after_first = profiled.cache().misses();
        let second = figure6(&profiled, &opts).unwrap();

        assert_eq!(
            serde_json::to_string(&first).unwrap(),
            serde_json::to_string(&second).unwrap(),
            "cache hits must not change results"
        );
        assert_eq!(
            profiled.cache().misses(),
            misses_after_first,
            "the second sweep must be served from the cache"
        );
        assert!(
            profiled.cache().hits() > 0,
            "repeated configurations must hit"
        );
    }
}
