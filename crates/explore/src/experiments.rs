//! Runners regenerating every table and figure of the paper's evaluation
//! (§5): Table 2 and Figures 6, 7, 8, 9.
//!
//! The pipeline for each benchmark mirrors the paper end to end:
//!
//! 1. schedule every loop on the **reference homogeneous** machine and
//!    profile it;
//! 2. calibrate the §3.1 energy model on that profile;
//! 3. find the **optimum homogeneous** baseline (§5.1);
//! 4. **select** the heterogeneous frequencies/voltages with the §3 models
//!    (§3.3);
//! 5. **re-schedule every loop** on the selected configuration with the
//!    heterogeneous modulo scheduler (§4) and *measure* ED²;
//! 6. report `ED²(hetero, measured) / ED²(homogeneous optimum)`.

use serde::Serialize;

use vliw_machine::{ClockedConfig, FrequencyMenu, MachineDesign, MenuKind, Time};
use vliw_power::{EnergyShares, PowerModel, UsageProfile};
use vliw_sched::{schedule_loop, SchedError, ScheduleOptions};
use vliw_workloads::{classify, Benchmark, LoopClass};

use crate::homog::{optimum_homogeneous_suite, HomogChoice};
use crate::profile::{profile_benchmark, suite_reference, BenchmarkProfile};
use crate::select::select_heterogeneous;

/// Options shared by all experiment runners.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Frequency menu for heterogeneous selection *and* scheduling
    /// (Figure 7 varies this; everything else uses unrestricted).
    pub menu: FrequencyMenu,
    /// Energy shares calibrating the reference model (Figures 8/9 vary
    /// these).
    pub shares: EnergyShares,
    /// Scheduler knobs.
    pub sched: ScheduleOptions,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            menu: FrequencyMenu::unrestricted(),
            shares: EnergyShares::PAPER,
            sched: ScheduleOptions::default(),
        }
    }
}

/// A reference-profiled suite for one bus count; reusable across variant
/// sweeps (profiling is share- and menu-independent).
#[derive(Debug)]
pub struct ProfiledSuite {
    /// The machine shape (4 clusters, `buses` buses).
    pub design: MachineDesign,
    /// Per-benchmark reference profiles.
    pub profiles: Vec<BenchmarkProfile>,
    /// The benchmarks themselves (needed to re-schedule loops).
    pub benches: Vec<Benchmark>,
}

/// Profiles `suite` on the paper's machine with `buses` buses.
///
/// # Errors
///
/// Propagates scheduling failures from the reference runs.
pub fn profile_suite(
    suite: &[Benchmark],
    buses: u32,
    sched: &ScheduleOptions,
) -> Result<ProfiledSuite, SchedError> {
    let design = MachineDesign::paper_machine(buses);
    let mut profiles = Vec::with_capacity(suite.len());
    for bench in suite {
        profiles.push(profile_benchmark(bench, design, sched)?);
    }
    Ok(ProfiledSuite {
        design,
        profiles,
        benches: suite.to_vec(),
    })
}

/// One Figure 6 bar: a benchmark's heterogeneous ED², measured and
/// normalised to the optimum homogeneous baseline.
#[derive(Debug, Clone, Serialize)]
pub struct BenchmarkResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Buses on the machine.
    pub buses: u32,
    /// `ED²(hetero) / ED²(homogeneous optimum)` — the paper's y-axis.
    pub ed2_normalized: f64,
    /// Measured heterogeneous ED² (absolute, reference units × s²).
    pub ed2_hetero: f64,
    /// Optimum homogeneous ED².
    pub ed2_homog_opt: f64,
    /// Measured heterogeneous execution time (ns).
    pub exec_time_het_ns: f64,
    /// Optimum homogeneous execution time (ns).
    pub exec_time_hom_ns: f64,
    /// Measured heterogeneous energy (reference units).
    pub energy_het: f64,
    /// Optimum homogeneous energy.
    pub energy_hom: f64,
    /// Chosen fast-cluster cycle time (ns).
    pub fast_cycle_ns: f64,
    /// Chosen slow-cluster cycle time (ns).
    pub slow_cycle_ns: f64,
}

/// Runs the measurement pipeline for one profiled benchmark against a
/// suite-level baseline.
///
/// # Errors
///
/// Propagates heterogeneous scheduling failures.
pub fn run_benchmark(
    bench: &Benchmark,
    profile: &BenchmarkProfile,
    hom: &HomogChoice,
    design: MachineDesign,
    power: &PowerModel,
    opts: &ExperimentOptions,
) -> Result<BenchmarkResult, SchedError> {
    let het = select_heterogeneous(profile, design, power, &opts.menu)
        .expect("the selection space contains feasible points");

    // When the selection lands on a *homogeneous* configuration (the paper
    // reports this outcome for register/resource-constrained programs),
    // §5.1's argument applies exactly: the schedule is the reference
    // schedule, time scales with the cycle time, and energy follows the
    // model — no re-scheduling noise.
    if het.config.is_homogeneous() {
        let factor =
            het.config.fastest_cluster_cycle().as_ns() / ClockedConfig::REFERENCE_CYCLE.as_ns();
        let usage = crate::profile::reference_usage_scaled(profile, design.num_clusters, factor);
        let energy_het = power
            .estimate_energy(&het.config, &usage)
            .expect("selected configuration is electrically feasible");
        let secs = usage.exec_time.as_secs();
        let ed2_hetero = energy_het * secs * secs;
        return Ok(BenchmarkResult {
            benchmark: bench.name.clone(),
            buses: design.buses,
            ed2_normalized: ed2_hetero / hom.ed2,
            ed2_hetero,
            ed2_homog_opt: hom.ed2,
            exec_time_het_ns: usage.exec_time.as_ns(),
            exec_time_hom_ns: hom.exec_time.as_ns(),
            energy_het,
            energy_hom: hom.energy,
            fast_cycle_ns: het.config.fastest_cluster_cycle().as_ns(),
            slow_cycle_ns: het.config.slowest_cluster_cycle().as_ns(),
        });
    }

    // Measure the selected configuration by actually scheduling every loop.
    let mut sched_opts = opts.sched.clone();
    sched_opts.menu = opts.menu.clone();
    let mut total_ns = 0.0f64;
    let mut weighted = vec![0.0f64; usize::from(design.num_clusters)];
    let mut comms = 0.0f64;
    let mut mems = 0.0f64;
    for (l, lp) in bench.loops.iter().zip(&profile.loops) {
        sched_opts.trip_count = l.trip_count();
        let s = schedule_loop(l.ddg(), &het.config, Some(power), &sched_opts)?;
        let usage = s.usage(l.trip_count());
        total_ns += lp.invocations * usage.exec_time.as_ns();
        for (w, u) in weighted.iter_mut().zip(&usage.weighted_ins_per_cluster) {
            *w += lp.invocations * u;
        }
        comms += lp.invocations * usage.comms as f64;
        mems += lp.invocations * usage.mem_accesses as f64;
    }
    let exec_time_het = Time::from_ns(total_ns);
    let usage = UsageProfile {
        weighted_ins_per_cluster: weighted,
        comms: comms.round() as u64,
        mem_accesses: mems.round() as u64,
        exec_time: exec_time_het,
    };
    let energy_het = power
        .estimate_energy(&het.config, &usage)
        .expect("selected configuration is electrically feasible");
    let secs = exec_time_het.as_secs();
    let ed2_hetero = energy_het * secs * secs;

    Ok(BenchmarkResult {
        benchmark: bench.name.clone(),
        buses: design.buses,
        ed2_normalized: ed2_hetero / hom.ed2,
        ed2_hetero,
        ed2_homog_opt: hom.ed2,
        exec_time_het_ns: exec_time_het.as_ns(),
        exec_time_hom_ns: hom.exec_time.as_ns(),
        energy_het,
        energy_hom: hom.energy,
        fast_cycle_ns: het.config.fastest_cluster_cycle().as_ns(),
        slow_cycle_ns: het.config.slowest_cluster_cycle().as_ns(),
    })
}

/// Figure 6: per-benchmark normalised ED² of the heterogeneous approach.
///
/// Calibrates the energy model once on the whole suite's reference run and
/// normalises every benchmark against one suite-wide optimum homogeneous
/// baseline, exactly as the paper's §5 does.
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn figure6(
    profiled: &ProfiledSuite,
    opts: &ExperimentOptions,
) -> Result<Vec<BenchmarkResult>, SchedError> {
    let power = PowerModel::calibrate(
        profiled.design,
        opts.shares,
        &suite_reference(&profiled.profiles),
    );
    let baseline = optimum_homogeneous_suite(&profiled.profiles, profiled.design, &power);
    profiled
        .benches
        .iter()
        .zip(&profiled.profiles)
        .zip(&baseline.per_benchmark)
        .map(|((bench, profile), hom)| {
            run_benchmark(bench, profile, hom, profiled.design, &power, opts)
        })
        .collect()
}

/// Arithmetic mean of the normalised ED² column.
#[must_use]
pub fn mean_normalized(rows: &[BenchmarkResult]) -> f64 {
    if rows.is_empty() {
        return f64::NAN;
    }
    rows.iter().map(|r| r.ed2_normalized).sum::<f64>() / rows.len() as f64
}

/// One Table 2 row: where a benchmark's execution time goes.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Benchmark name.
    pub benchmark: String,
    /// % time in loops with `recMII < resMII`.
    pub resource_pct: f64,
    /// % time in loops with `resMII ≤ recMII < 1.3·resMII`.
    pub borderline_pct: f64,
    /// % time in loops with `1.3·resMII ≤ recMII`.
    pub recurrence_pct: f64,
}

/// Table 2: classifies every loop of the suite and aggregates execution-
/// time weights per constraint class.
#[must_use]
pub fn table2(suite: &[Benchmark]) -> Vec<Table2Row> {
    let design = MachineDesign::paper_machine(1);
    suite
        .iter()
        .map(|bench| {
            let mut shares = [0.0f64; 3];
            for l in &bench.loops {
                let class = classify(l.ddg(), design);
                let idx = LoopClass::ALL
                    .iter()
                    .position(|&c| c == class)
                    .expect("3 classes");
                shares[idx] += l.weight();
            }
            Table2Row {
                benchmark: bench.name.clone(),
                resource_pct: shares[0] * 100.0,
                borderline_pct: shares[1] * 100.0,
                recurrence_pct: shares[2] * 100.0,
            }
        })
        .collect()
}

/// One Figure 7 bar: mean normalised ED² for a frequency-menu size.
#[derive(Debug, Clone, Serialize)]
pub struct Figure7Row {
    /// Menu description ("any freq", "16 freqs", …).
    pub menu: String,
    /// Buses on the machine.
    pub buses: u32,
    /// Mean normalised ED² across benchmarks.
    pub mean_ed2_normalized: f64,
}

/// The menu variants of Figure 7.
#[must_use]
pub fn figure7_menus() -> Vec<(String, FrequencyMenu)> {
    vec![
        ("any freq".to_owned(), FrequencyMenu::unrestricted()),
        (
            "16 freqs".to_owned(),
            FrequencyMenu::from_kind(MenuKind::Uniform(16)),
        ),
        (
            "8 freqs".to_owned(),
            FrequencyMenu::from_kind(MenuKind::Uniform(8)),
        ),
        (
            "4 freqs".to_owned(),
            FrequencyMenu::from_kind(MenuKind::Uniform(4)),
        ),
    ]
}

/// Figure 7: sensitivity to the number of supported frequencies.
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn figure7(
    profiled: &ProfiledSuite,
    base: &ExperimentOptions,
) -> Result<Vec<Figure7Row>, SchedError> {
    let mut rows = Vec::new();
    for (name, menu) in figure7_menus() {
        let opts = ExperimentOptions {
            menu,
            ..base.clone()
        };
        let results = figure6(profiled, &opts)?;
        rows.push(Figure7Row {
            menu: name,
            buses: profiled.design.buses,
            mean_ed2_normalized: mean_normalized(&results),
        });
    }
    Ok(rows)
}

/// One Figure 8 bar: mean normalised ED² for an ICN/cache energy-share
/// assumption.
#[derive(Debug, Clone, Serialize)]
pub struct Figure8Row {
    /// ICN share of total reference energy.
    pub icn_share: f64,
    /// Cache share of total reference energy.
    pub cache_share: f64,
    /// Buses on the machine.
    pub buses: u32,
    /// Mean normalised ED² across benchmarks.
    pub mean_ed2_normalized: f64,
}

/// The (ICN, cache) share variants of Figure 8.
pub const FIGURE8_SHARES: [(f64, f64); 5] = [
    (0.10, 0.25),
    (0.10, 1.0 / 3.0),
    (0.15, 0.30),
    (0.20, 0.25),
    (0.20, 0.30),
];

/// Figure 8: sensitivity to the ICN/cache energy shares of the reference
/// machine. A fresh optimum homogeneous baseline is computed per variant,
/// as in the paper.
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn figure8(
    profiled: &ProfiledSuite,
    base: &ExperimentOptions,
) -> Result<Vec<Figure8Row>, SchedError> {
    let mut rows = Vec::new();
    for (icn, cache) in FIGURE8_SHARES {
        let opts = ExperimentOptions {
            shares: EnergyShares::with_component_shares(icn, cache),
            ..base.clone()
        };
        let results = figure6(profiled, &opts)?;
        rows.push(Figure8Row {
            icn_share: icn,
            cache_share: cache,
            buses: profiled.design.buses,
            mean_ed2_normalized: mean_normalized(&results),
        });
    }
    Ok(rows)
}

/// One Figure 9 bar: mean normalised ED² for a leakage-share assumption.
#[derive(Debug, Clone, Serialize)]
pub struct Figure9Row {
    /// Cluster leakage fraction.
    pub leak_cluster: f64,
    /// ICN leakage fraction.
    pub leak_icn: f64,
    /// Cache leakage fraction.
    pub leak_cache: f64,
    /// Buses on the machine.
    pub buses: u32,
    /// Mean normalised ED² across benchmarks.
    pub mean_ed2_normalized: f64,
}

/// The (cluster, ICN, cache) leakage variants of Figure 9.
pub const FIGURE9_LEAKS: [(f64, f64, f64); 4] = [
    (0.25, 0.05, 0.60),
    (1.0 / 3.0, 0.10, 2.0 / 3.0),
    (0.40, 0.15, 0.70),
    (0.20, 0.10, 0.75),
];

/// Figure 9: sensitivity to the leakage fractions of the reference
/// machine.
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn figure9(
    profiled: &ProfiledSuite,
    base: &ExperimentOptions,
) -> Result<Vec<Figure9Row>, SchedError> {
    let mut rows = Vec::new();
    for (lc, li, lca) in FIGURE9_LEAKS {
        let opts = ExperimentOptions {
            shares: EnergyShares::with_leakage(lc, li, lca),
            ..base.clone()
        };
        let results = figure6(profiled, &opts)?;
        rows.push(Figure9Row {
            leak_cluster: lc,
            leak_icn: li,
            leak_cache: lca,
            buses: profiled.design.buses,
            mean_ed2_normalized: mean_normalized(&results),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_workloads::{generate, spec_fp2000};

    fn small_suite() -> Vec<Benchmark> {
        // One strongly recurrence-bound and one resource-bound benchmark.
        vec![
            generate(&spec_fp2000()[8], 6),
            generate(&spec_fp2000()[1], 6),
        ]
    }

    #[test]
    fn figure6_pipeline_runs_and_hetero_wins_on_sixtrack() {
        let suite = small_suite();
        let profiled = profile_suite(&suite, 1, &ScheduleOptions::default()).unwrap();
        let rows = figure6(&profiled, &ExperimentOptions::default()).unwrap();
        assert_eq!(rows.len(), 2);
        let sixtrack = &rows[0];
        assert_eq!(sixtrack.benchmark, "200.sixtrack");
        assert!(
            sixtrack.ed2_normalized < 1.0,
            "heterogeneity must win on sixtrack, got {}",
            sixtrack.ed2_normalized
        );
        for r in &rows {
            assert!(r.ed2_normalized > 0.0 && r.ed2_normalized.is_finite());
            assert!(r.ed2_hetero > 0.0 && r.ed2_homog_opt > 0.0);
        }
        let mean = mean_normalized(&rows);
        assert!(mean > 0.0 && mean < 1.2);
    }

    #[test]
    fn table2_matches_generation_targets() {
        let suite = small_suite();
        let rows = table2(&suite);
        assert!((rows[0].recurrence_pct - 99.92).abs() < 1e-6);
        assert!((rows[1].resource_pct - 100.0).abs() < 1e-6);
    }

    #[test]
    fn serde_rows_serialize() {
        let suite = small_suite();
        let rows = table2(&suite);
        let json = serde_json::to_string(&rows).unwrap();
        assert!(json.contains("200.sixtrack"));
    }
}
