//! End-to-end reproduction of *"Heterogeneous Clustered VLIW
//! Microarchitectures"* (Aletà, Codina, González, Kaeli — CGO 2007).
//!
//! This crate is the front door of the `heterovliw` workspace. It
//! re-exports every layer —
//!
//! * [`ir`] — loop data-dependence graphs and recurrence analysis,
//! * [`machine`] — the clustered VLIW machine and MCD clocking model,
//! * [`power`] — the §3.1 energy model, scaling laws and ED²,
//! * [`sched`] — the §4 heterogeneous modulo scheduler,
//! * [`search`] — metaheuristic design-space optimizers and the Pareto
//!   archive,
//! * [`sim`] — schedule validation, execution and profiling,
//! * [`store`] — the persistent content-addressed measurement store,
//! * [`workloads`] — the synthetic SPECfp2000 loop suites,
//! * [`explore`] — §3.2/§3.3 estimation, configuration selection, the
//!   paper's experiment runners, and the measured design-space search
//!   built on [`search`],
//! * [`api`] — the request/response service core: a serialisable
//!   request per experiment, the shared caching engine, the Unix-socket
//!   daemon and its client/load-generator,
//! * [`obs`] — the observability layer: the process-wide metrics
//!   registry behind `Request::Metrics` / `paper metrics` and the
//!   `--trace` span tracer,
//!
//! — and offers [`Study`], a builder that strings the whole pipeline
//! together the way the paper's evaluation does.
//!
//! # Quickstart
//!
//! ```no_run
//! use heterovliw_core::Study;
//!
//! // Reproduce Figure 6 (1 bus) on a reduced suite.
//! let study = Study::new().with_loops_per_benchmark(12).with_buses(1);
//! let rows = study.figure6()?;
//! for row in &rows {
//!     println!("{:<14} ED2 = {:.3}", row.benchmark, row.ed2_normalized);
//! }
//! println!("mean = {:.3}", heterovliw_core::explore::experiments::mean_normalized(&rows));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use vliw_api as api;
pub use vliw_exec as exec;
pub use vliw_explore as explore;
pub use vliw_ir as ir;
pub use vliw_machine as machine;
pub use vliw_obs as obs;
pub use vliw_power as power;
pub use vliw_sched as sched;
pub use vliw_search as search;
pub use vliw_sim as sim;
pub use vliw_store as store;
pub use vliw_workloads as workloads;

use vliw_exec::Executor;
use vliw_explore::experiments::{
    self, BenchmarkResult, ExperimentOptions, Figure7Row, Figure8Row, Figure9Row, ProfiledSuite,
    Table2Row,
};
use vliw_explore::search::SearchReport;
use vliw_explore::SpaceKind;
use vliw_machine::FrequencyMenu;
use vliw_power::EnergyShares;
use vliw_sched::{SchedError, ScheduleOptions};
use vliw_search::Strategy;
use vliw_workloads::{suite_seeded, Benchmark, DEFAULT_LOOPS_PER_BENCHMARK};

/// A configured reproduction study: the synthetic suite plus every knob
/// the paper's evaluation turns.
///
/// Construction is cheap; the suite is generated lazily per call and is
/// deterministic for a given configuration.
#[derive(Debug, Clone)]
pub struct Study {
    loops_per_benchmark: usize,
    buses: u32,
    seed: u64,
    options: ExperimentOptions,
    exec: Executor,
}

impl Study {
    /// A study with the paper's defaults: 4-cluster machine, one bus,
    /// unrestricted frequencies, the §5 energy shares, the default
    /// (10× reduced) suite size, and serial execution (see
    /// [`Study::with_jobs`]).
    #[must_use]
    pub fn new() -> Self {
        Study {
            loops_per_benchmark: DEFAULT_LOOPS_PER_BENCHMARK,
            buses: 1,
            seed: 0,
            options: ExperimentOptions::default(),
            exec: Executor::serial(),
        }
    }

    /// Sets the number of loops generated per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_loops_per_benchmark(mut self, n: usize) -> Self {
        assert!(n > 0, "a study needs loops");
        self.loops_per_benchmark = n;
        self
    }

    /// Sets the number of inter-cluster buses (the paper reports 1 and 2).
    ///
    /// # Panics
    ///
    /// Panics if `buses == 0`.
    #[must_use]
    pub fn with_buses(mut self, buses: u32) -> Self {
        assert!(buses > 0, "at least one bus");
        self.buses = buses;
        self
    }

    /// Sets the global generation seed threaded into workload generation
    /// (and, via [`Study::search`], the search strategies).
    ///
    /// The default seed `0` reproduces the historical fixed-seed suites
    /// bit for bit; any other value derives an independent, equally
    /// deterministic suite.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the frequency menu (Figure 7's knob).
    #[must_use]
    pub fn with_menu(mut self, menu: FrequencyMenu) -> Self {
        self.options.menu = menu;
        self
    }

    /// Sets the reference energy shares (Figures 8/9's knob).
    #[must_use]
    pub fn with_shares(mut self, shares: EnergyShares) -> Self {
        self.options.shares = shares;
        self
    }

    /// Sets the scheduler options.
    #[must_use]
    pub fn with_sched_options(mut self, sched: ScheduleOptions) -> Self {
        self.options.sched = sched;
        self
    }

    /// Sets how many worker threads the exploration pipeline fans out
    /// across (`0` means "use the machine's available parallelism").
    ///
    /// Results are **identical for every job count** — candidate grids and
    /// benchmark sweeps are reduced in deterministic input order — so this
    /// knob only changes wall-clock time.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.exec = Executor::new(jobs);
        self
    }

    /// The executor the experiment runners will fan out across.
    #[must_use]
    pub fn executor(&self) -> Executor {
        self.exec
    }

    /// The experiment options this study will use.
    #[must_use]
    pub fn options(&self) -> &ExperimentOptions {
        &self.options
    }

    /// Generates the study's (deterministic) benchmark suite.
    #[must_use]
    pub fn suite(&self) -> Vec<Benchmark> {
        suite_seeded(self.loops_per_benchmark, self.seed)
    }

    /// Runs a seeded metaheuristic design-space search over this study's
    /// profiled suite (see [`explore::search`]): `budget` distinct
    /// candidate evaluations of `strategy` over `kind`, seeded with the
    /// study's seed. The report is byte-stable across job counts.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures from the reference profiling runs.
    pub fn search(
        &self,
        kind: SpaceKind,
        strategy: Strategy,
        budget: u64,
    ) -> Result<SearchReport, SchedError> {
        let profiled = self.profile()?;
        Ok(vliw_explore::run_search(
            kind,
            strategy,
            budget,
            self.seed,
            &[&profiled],
            &self.options,
            &self.exec,
        ))
    }

    /// Profiles the suite on the reference homogeneous machine.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures from the reference runs.
    pub fn profile(&self) -> Result<ProfiledSuite, SchedError> {
        experiments::profile_suite_with(&self.suite(), self.buses, &self.options.sched, &self.exec)
    }

    /// Figure 6: per-benchmark normalised ED².
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures.
    pub fn figure6(&self) -> Result<Vec<BenchmarkResult>, SchedError> {
        experiments::figure6_with(&self.profile()?, &self.options, &self.exec)
    }

    /// Table 2: constraint-class time shares per benchmark.
    #[must_use]
    pub fn table2(&self) -> Vec<Table2Row> {
        experiments::table2_with(&self.suite(), &self.exec)
    }

    /// Figure 7: frequency-menu sensitivity.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures.
    pub fn figure7(&self) -> Result<Vec<Figure7Row>, SchedError> {
        experiments::figure7_with(&self.profile()?, &self.options, &self.exec)
    }

    /// Figure 8: ICN/cache energy-share sensitivity.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures.
    pub fn figure8(&self) -> Result<Vec<Figure8Row>, SchedError> {
        experiments::figure8_with(&self.profile()?, &self.options, &self.exec)
    }

    /// Figure 9: leakage-share sensitivity.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures.
    pub fn figure9(&self) -> Result<Vec<Figure9Row>, SchedError> {
        experiments::figure9_with(&self.profile()?, &self.options, &self.exec)
    }
}

impl Default for Study {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let s = Study::new()
            .with_loops_per_benchmark(4)
            .with_buses(2)
            .with_menu(FrequencyMenu::uniform(8));
        assert_eq!(s.suite().len(), 10);
        assert_eq!(s.options().menu.len(), Some(8));
    }

    #[test]
    fn table2_via_study() {
        let rows = Study::new().with_loops_per_benchmark(6).table2();
        assert_eq!(rows.len(), 10);
        let sum: f64 = rows
            .iter()
            .map(|r| r.resource_pct + r.borderline_pct + r.recurrence_pct)
            .sum();
        assert!((sum - 1000.0).abs() < 1e-6, "each row sums to 100%");
    }

    #[test]
    #[should_panic(expected = "needs loops")]
    fn zero_loops_panics() {
        let _ = Study::new().with_loops_per_benchmark(0);
    }
}
