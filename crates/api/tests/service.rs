//! End-to-end tests of the service core: the daemon loop, the client,
//! batching, error responses, artefact persistence and the load
//! generator, all in-process over a temp-dir Unix socket.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vliw_api::{
    loadgen, Client, Engine, LoadgenOptions, Request, Response, RunParams, SearchParams,
    ServeOptions, StoreConfig,
};

/// A unique socket path per test (tests in one binary run in parallel).
fn socket_path() -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("vliw-api-{}-{n}.sock", std::process::id()))
}

/// Polls until the daemon accepts connections. Checking the socket file
/// is not enough: a stale file can predate the listener.
fn connect_ready(socket: &std::path::Path) -> Client {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(client) = Client::connect(socket) {
            return client;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never listened on {socket:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Runs `body` against a live in-process daemon, always shutting the
/// daemon down afterwards. The serve thread is unscoped (the engine
/// rides in an [`Arc`]) so a failed assertion panics the test instead of
/// hanging the harness on a scope join.
fn with_daemon<T>(
    opts_for: impl FnOnce(PathBuf) -> ServeOptions,
    body: impl FnOnce(&ServeOptions) -> T,
) -> T {
    let opts = opts_for(socket_path());
    let engine = Arc::new(Engine::new(2).with_default_store(opts.store.clone()));
    let server = {
        let engine = Arc::clone(&engine);
        let opts = opts.clone();
        std::thread::spawn(move || vliw_api::serve(&engine, &opts))
    };
    drop(connect_ready(&opts.socket));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&opts)));
    let mut client = Client::connect(&opts.socket).expect("connect for shutdown");
    let down = client.request(&Request::Shutdown).expect("shutdown");
    assert!(down.ok);
    server.join().expect("serve thread").expect("serve result");
    assert!(!opts.socket.exists(), "socket removed on shutdown");
    match result {
        Ok(v) => v,
        Err(panic) => std::panic::resume_unwind(panic),
    }
}

fn small() -> RunParams {
    RunParams {
        loops: 2,
        buses: vliw_api::BusSel::One,
        seed: 0,
        store: StoreConfig::none(),
        profile: false,
    }
}

#[test]
fn request_response_and_batch_round_trip() {
    with_daemon(
        |socket| ServeOptions {
            socket,
            results: None,
            store: StoreConfig::none(),
        },
        |opts| {
            let mut client = Client::connect(&opts.socket).expect("connect");
            let pong = client.request(&Request::Ping).expect("ping");
            assert!(pong.ok);
            assert_eq!(pong.text, "pong\n");

            // A batch fans out through the engine and comes back in
            // request order.
            let reqs = vec![
                Request::Table1,
                Request::Table2(small()),
                Request::Figure6(small()),
            ];
            let resps = client.request_batch(&reqs).expect("batch");
            assert_eq!(resps.len(), 3);
            for (req, resp) in reqs.iter().zip(&resps) {
                assert!(resp.ok, "{}: {:?}", req.kind(), resp.error);
                assert_eq!(resp.kind, req.kind());
                assert!(resp.body.is_some());
            }

            // Cache reuse is visible across requests of one daemon: a
            // warm repeat does no new measurements.
            let warm = client.request(&Request::Figure6(small())).expect("warm");
            assert!(warm.ok);
            assert_eq!(
                warm.cache.measure_misses, resps[2].cache.measure_misses,
                "a warm figure6 re-measures nothing"
            );
            assert_eq!(warm.body, resps[2].body, "and its body is byte-identical");

            // Shutdown inside a batch is rejected as a whole.
            let err = client
                .request_batch(&[Request::Ping, Request::Shutdown])
                .expect_err("shutdown in a batch");
            assert!(err.contains("standalone"), "{err}");
        },
    );
}

#[test]
fn malformed_lines_get_error_responses_and_the_connection_survives() {
    with_daemon(
        |socket| ServeOptions {
            socket,
            results: None,
            store: StoreConfig::none(),
        },
        |opts| {
            let mut raw = UnixStream::connect(&opts.socket).expect("connect");
            let mut reader = BufReader::new(raw.try_clone().expect("clone"));
            for (line, needle) in [
                ("this is not json", "malformed request"),
                ("{\"kind\":\"frobnicate\"}", "unknown request kind"),
                ("{\"kind\":\"figure6\",\"budget\":3}", "search"),
                ("[{\"kind\":\"ping\"},42]", "request must be a JSON object"),
            ] {
                raw.write_all(line.as_bytes()).expect("send");
                raw.write_all(b"\n").expect("send newline");
                let mut reply = String::new();
                reader.read_line(&mut reply).expect("receive");
                let resp = Response::from_json_str(reply.trim_end()).expect("parse");
                assert!(!resp.ok, "{line} must fail");
                let err = resp.error.expect("error message");
                assert!(err.contains(needle), "{line}: {err}");
            }
            // The same connection still serves good requests.
            raw.write_all(b"{\"kind\":\"ping\"}\n").expect("send ping");
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("receive pong");
            let resp = Response::from_json_str(reply.trim_end()).expect("parse pong");
            assert!(resp.ok);
        },
    );
}

#[test]
fn daemon_persists_artifacts_when_given_a_results_dir() {
    let dir = std::env::temp_dir().join(format!("vliw-api-results-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    with_daemon(
        |socket| ServeOptions {
            socket,
            results: Some(dir.clone()),
            store: StoreConfig::none(),
        },
        |opts| {
            let mut client = Client::connect(&opts.socket).expect("connect");
            let resp = client.request(&Request::Table2(small())).expect("table2");
            assert!(resp.ok);
            let body = std::fs::read_to_string(dir.join("table2.json")).expect("body persisted");
            assert_eq!(Some(body), resp.body, "daemon wrote the response body");
            let meta = std::fs::read_to_string(dir.join("table2.meta.json")).expect("sidecar");
            assert_eq!(Some(meta), resp.meta, "daemon wrote the sidecar");
        },
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn loadgen_reports_latency_percentiles_and_throughput() {
    with_daemon(
        |socket| ServeOptions {
            socket,
            results: None,
            store: StoreConfig::none(),
        },
        |opts| {
            let report = loadgen(
                &opts.socket,
                &LoadgenOptions {
                    clients: 3,
                    requests_per_client: 5,
                    request: Request::Ping,
                },
            )
            .expect("loadgen");
            assert_eq!(report.total_requests, 15);
            assert!(report.p50_ms > 0.0);
            assert!(report.p99_ms >= report.p50_ms);
            assert!(report.max_ms >= report.min_ms);
            assert!(report.serve_requests_per_second > 0.0);
            assert_eq!(report.kind, "ping");
        },
    );
}

#[test]
fn daemon_default_store_makes_a_second_daemon_warm() {
    let dir = std::env::temp_dir().join(format!("vliw-api-daemon-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let req = Request::Search {
        params: small(),
        search: SearchParams {
            budget: 8,
            ..SearchParams::default()
        },
    };

    let run_once = || {
        with_daemon(
            |socket| ServeOptions {
                socket,
                results: None,
                store: StoreConfig::at(&dir),
            },
            |opts| {
                let mut client = Client::connect(&opts.socket).expect("connect");
                client.request(&req).expect("search")
            },
        )
    };
    let cold = run_once();
    assert!(cold.ok, "cold daemon run failed: {:?}", cold.error);
    assert!(cold.cache.measure_misses > 0, "the first daemon measured");
    assert!(cold.cache.store_entries > 0, "and persisted to its store");

    // A brand-new daemon process state (fresh engine) over the same
    // store directory serves the identical request without a single
    // re-measurement — the tentpole's warm-run guarantee, through the
    // daemon transport.
    let warm = run_once();
    assert!(warm.ok, "warm daemon run failed: {:?}", warm.error);
    assert_eq!(
        warm.cache.measure_misses, 0,
        "the second daemon re-scheduled nothing: {:?}",
        warm.cache
    );
    assert!(warm.cache.store_hits > 0, "it was served from the store");
    assert_eq!(warm.text, cold.text, "stdout rendering is byte-stable");
    assert_eq!(warm.body, cold.body, "search.json is byte-stable");
    assert_eq!(warm.meta, cold.meta, "the sidecar is byte-stable");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn stale_socket_files_are_recovered() {
    let socket = socket_path();
    // A crashed daemon leaves the socket file behind; a fresh bind must
    // detect that nobody is listening and replace it.
    drop(std::os::unix::net::UnixListener::bind(&socket).expect("first bind"));
    assert!(socket.exists(), "stale socket file left behind");
    let engine = Arc::new(Engine::new(1));
    let opts = ServeOptions {
        socket: socket.clone(),
        results: None,
        store: StoreConfig::none(),
    };
    let server = std::thread::spawn(move || vliw_api::serve(&engine, &opts));
    // `connect_ready` may race the recovery (hitting the stale file
    // before it is replaced), so it must keep retrying until the real
    // listener answers.
    let mut client = connect_ready(&socket);
    assert!(client.request(&Request::Ping).expect("ping").ok);
    assert!(client.request(&Request::Shutdown).expect("shutdown").ok);
    server.join().expect("serve thread").expect("serve result");
}
