//! Request/response service core for the `heterovliw` experiment layer.
//!
//! Every entry point of the reproduction — the paper's tables and
//! figures, the throughput benches, the corpus analyses and the
//! design-space search — is expressed here as a serialisable
//! [`Request`]. One shared [`Engine`] executes requests against
//! process-lifetime caches (reference profiles and the measurement memo
//! cache survive across requests), and every [`Response`] wraps the
//! exact byte-stable text and JSON artefacts the one-shot `paper` CLI
//! has always produced, plus [`CacheStats`] so cache reuse is
//! observable.
//!
//! On top of the engine sit three thin transports:
//!
//! * the `paper` CLI builds a [`Request`], runs it in-process and
//!   persists the response's artefacts ([`artifacts`]);
//! * [`serve`](crate::serve::serve) exposes the same engine as a daemon
//!   speaking newline-delimited JSON over a Unix socket
//!   (`std::os::unix::net`, no external dependencies) with concurrent
//!   connections, request batching, per-request error responses and
//!   graceful shutdown;
//! * [`client`] holds the matching client plus the [`loadgen`] harness
//!   reporting p50/p99 latency and requests per second.
//!
//! The wire format is one JSON value per line: a request object (or an
//! array of request objects, executed as one batch through the shared
//! engine) going in, a [`Response`] object (or array) coming back.
//! Responses serialise compactly — JSON string escaping keeps embedded
//! newlines out of the framing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod artifacts;
pub mod client;
pub mod engine;
pub mod request;
pub mod response;
pub mod serve;

pub use artifacts::{format_bar, persist_response, write_atomic};
pub use client::{loadgen, Client, LoadgenOptions, LoadgenReport};
pub use engine::Engine;
pub use request::{BusSel, Request, RequestBuilder, RunParams, SearchParams};
pub use response::{CacheStats, Response, FORMAT_VERSION};
pub use serve::{serve, ServeOptions};
pub use vliw_store::StoreConfig;
