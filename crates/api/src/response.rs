//! The [`Response`] type: everything one experiment run produced.
//!
//! A response carries the exact bytes the one-shot CLI has always
//! produced — the human-readable stdout rendering in [`Response::text`]
//! and the pretty-printed JSON artefact(s) in [`Response::body`] /
//! [`Response::meta`] — so transports (CLI printing, daemon persistence)
//! only decide *where* those bytes go, never *what* they are. Cache
//! statistics ride along on every response so cross-request reuse of the
//! engine's profile and measurement caches is observable.

use serde_json::Value;

use crate::request::Request;

/// A snapshot of the engine's caches, taken after the request ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct CacheStats {
    /// Reference-profiled suites held by the engine (one per distinct
    /// suite scale × seed × bus count × family selection).
    pub profiled_suites: usize,
    /// Memoised candidate measurements across all profiled suites.
    pub measure_entries: usize,
    /// Lifetime measurement-cache hits across all profiled suites.
    pub measure_hits: u64,
    /// Lifetime measurement-cache misses across all profiled suites.
    pub measure_misses: u64,
}

/// The result of running one [`Request`] through the engine.
///
/// Serialises as one compact JSON object (JSON string escaping keeps the
/// embedded newlines of `text`/`body` out of the line framing).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Response {
    /// Whether the request succeeded. A failed request still yields a
    /// response (with [`Response::error`] set) — the engine never turns
    /// one bad request into a process exit.
    pub ok: bool,
    /// The request's kind name, echoed back.
    pub kind: String,
    /// Artefact stem the body/meta should be persisted under
    /// (`<stem>.json`, `<stem>.meta.json`), if the kind produces one.
    pub artifact: Option<String>,
    /// The human-readable rendering: byte-identical to what the one-shot
    /// CLI prints on stdout (minus the `[rows written to …]` lines the
    /// persistence step appends).
    pub text: String,
    /// Pretty-printed JSON rows: byte-identical to the `<stem>.json`
    /// artefact the one-shot CLI writes.
    pub body: Option<String>,
    /// Pretty-printed sidecar metadata: byte-identical to the
    /// `<stem>.meta.json` artefact, for kinds that write one.
    pub meta: Option<String>,
    /// The failure message, when `ok` is false.
    pub error: Option<String>,
    /// Engine cache statistics after this request.
    pub cache: CacheStats,
}

impl Response {
    /// A successful response for `req`.
    #[must_use]
    pub fn success(
        req: &Request,
        text: String,
        body: Option<String>,
        meta: Option<String>,
        cache: CacheStats,
    ) -> Self {
        Response {
            ok: true,
            kind: req.kind().to_owned(),
            artifact: req.artifact().map(str::to_owned),
            text,
            body,
            meta,
            error: None,
            cache,
        }
    }

    /// A failed response for `req`. Any text rendered before the failure
    /// is kept, so transports can reproduce the CLI's partial output.
    #[must_use]
    pub fn failure(req: &Request, text: String, error: String, cache: CacheStats) -> Self {
        Response {
            ok: false,
            kind: req.kind().to_owned(),
            artifact: req.artifact().map(str::to_owned),
            text,
            body: None,
            meta: None,
            error: Some(error),
            cache,
        }
    }

    /// A failed response for a request that never parsed (no kind known).
    #[must_use]
    pub fn protocol_error(error: String) -> Self {
        Response {
            ok: false,
            kind: "error".to_owned(),
            artifact: None,
            text: String::new(),
            body: None,
            meta: None,
            error: Some(error),
            cache: CacheStats::default(),
        }
    }

    /// Serialises the response as one compact JSON line (no trailing
    /// newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("response serialises")
    }

    /// Parses a response from its JSON wire form (the client side).
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or a shape mismatch.
    pub fn from_json_str(s: &str) -> Result<Self, String> {
        let value = serde_json::from_str(s).map_err(|e| format!("malformed response: {e}"))?;
        Self::from_json_value(&value)
    }

    /// Parses a response from an already-parsed JSON tree.
    ///
    /// # Errors
    ///
    /// Returns a message on a shape mismatch.
    pub fn from_json_value(value: &Value) -> Result<Self, String> {
        let obj = |key: &str| -> Result<&Value, String> {
            value
                .get(key)
                .ok_or_else(|| format!("response is missing the {key} key"))
        };
        let string = |key: &str| -> Result<String, String> {
            obj(key)?
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("response key {key} must be a string"))
        };
        let opt_string = |key: &str| -> Result<Option<String>, String> {
            match obj(key)? {
                Value::Null => Ok(None),
                Value::String(s) => Ok(Some(s.clone())),
                other => Err(format!(
                    "response key {key} must be a string or null, got {}",
                    other.type_name()
                )),
            }
        };
        let ok = match obj("ok")? {
            Value::Bool(b) => *b,
            other => {
                return Err(format!(
                    "response key ok must be a boolean, got {}",
                    other.type_name()
                ))
            }
        };
        let count = |key: &str| -> Result<u64, String> {
            obj("cache")?
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("response cache.{key} must be an integer"))
        };
        let cache = CacheStats {
            profiled_suites: usize::try_from(count("profiled_suites")?)
                .map_err(|e| e.to_string())?,
            measure_entries: usize::try_from(count("measure_entries")?)
                .map_err(|e| e.to_string())?,
            measure_hits: count("measure_hits")?,
            measure_misses: count("measure_misses")?,
        };
        Ok(Response {
            ok,
            kind: string("kind")?,
            artifact: opt_string("artifact")?,
            text: string("text")?,
            body: opt_string("body")?,
            meta: opt_string("meta")?,
            error: opt_string("error")?,
            cache,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip_preserves_newlines() {
        let resp = Response::success(
            &Request::Table1,
            "line one\nline two\n".to_owned(),
            Some("[\n  1\n]".to_owned()),
            None,
            CacheStats {
                profiled_suites: 1,
                measure_entries: 2,
                measure_hits: 3,
                measure_misses: 4,
            },
        );
        let line = resp.to_json_line();
        assert!(!line.contains('\n'), "framing stays single-line: {line}");
        let back = Response::from_json_str(&line).expect("round trip");
        assert_eq!(back, resp);
    }

    #[test]
    fn protocol_errors_parse_back() {
        let line = Response::protocol_error("bad line".to_owned()).to_json_line();
        let back = Response::from_json_str(&line).unwrap();
        assert!(!back.ok);
        assert_eq!(back.error.as_deref(), Some("bad line"));
    }
}
