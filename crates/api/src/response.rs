//! The [`Response`] type: everything one experiment run produced.
//!
//! A response carries the exact bytes the one-shot CLI has always
//! produced — the human-readable stdout rendering in [`Response::text`]
//! and the pretty-printed JSON artefact(s) in [`Response::body`] /
//! [`Response::meta`] — so transports (CLI printing, daemon persistence)
//! only decide *where* those bytes go, never *what* they are. Cache
//! statistics ride along on every response so cross-request reuse of the
//! engine's profile and measurement caches — and of the persistent
//! measurement store behind them — is observable.
//!
//! The envelope is versioned: every response carries
//! [`FORMAT_VERSION`] as its `format_version` key, and the client-side
//! parser rejects a missing or mismatching version with an error that
//! names both versions instead of silently misreading fields.

use serde_json::Value;

use crate::request::Request;

/// The response envelope version this build speaks.
///
/// Version 1 is the original, retroactively numbered envelope without a
/// `format_version` key; version 2 added the key itself plus the store
/// fields of [`CacheStats`]. Bump it whenever the envelope changes
/// shape incompatibly.
pub const FORMAT_VERSION: u64 = 2;

/// A snapshot of the engine's caches, taken after the request ran.
///
/// The `measure_*` fields count the in-memory measurement memo caches;
/// `measure_misses` counts configurations the process actually
/// re-scheduled, so a memo miss answered by the persistent store moves
/// from `measure_misses` to `measure_hits` (and shows up in
/// `store_hits`). The `store_*` fields aggregate every store the engine
/// has opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct CacheStats {
    /// Reference-profiled suites held by the engine (one per distinct
    /// suite scale × seed × bus count × family selection × store).
    pub profiled_suites: usize,
    /// Memoised candidate measurements across all profiled suites.
    pub measure_entries: usize,
    /// Lifetime measurement-cache hits across all profiled suites,
    /// including memo misses answered by the persistent store.
    pub measure_hits: u64,
    /// Configurations actually re-scheduled by this process (memo
    /// misses the store could not answer).
    pub measure_misses: u64,
    /// Measurements and profiles served from the persistent store.
    pub store_hits: u64,
    /// Store lookups that fell through to an actual measurement.
    pub store_misses: u64,
    /// Records (measurements + profiles) held across all open stores.
    pub store_entries: u64,
    /// Total on-disk log bytes across all open stores.
    pub store_bytes: u64,
    /// Truncated trailing log lines skipped (and warned about) while
    /// loading the open stores.
    pub store_skipped_lines: u64,
}

/// The result of running one [`Request`] through the engine.
///
/// Serialises as one compact JSON object (JSON string escaping keeps the
/// embedded newlines of `text`/`body` out of the line framing).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Response {
    /// Envelope version; always [`FORMAT_VERSION`] for responses built
    /// by this process. The parser rejects other versions.
    pub format_version: u64,
    /// Whether the request succeeded. A failed request still yields a
    /// response (with [`Response::error`] set) — the engine never turns
    /// one bad request into a process exit.
    pub ok: bool,
    /// The request's kind name, echoed back.
    pub kind: String,
    /// Artefact stem the body/meta should be persisted under
    /// (`<stem>.json`, `<stem>.meta.json`), if the kind produces one.
    pub artifact: Option<String>,
    /// The human-readable rendering: byte-identical to what the one-shot
    /// CLI prints on stdout (minus the `[rows written to …]` lines the
    /// persistence step appends).
    pub text: String,
    /// Pretty-printed JSON rows: byte-identical to the `<stem>.json`
    /// artefact the one-shot CLI writes.
    pub body: Option<String>,
    /// Pretty-printed sidecar metadata: byte-identical to the
    /// `<stem>.meta.json` artefact, for kinds that write one.
    pub meta: Option<String>,
    /// The failure message, when `ok` is false.
    pub error: Option<String>,
    /// Engine cache statistics after this request.
    pub cache: CacheStats,
}

impl Response {
    /// A successful response for `req`.
    #[must_use]
    pub fn success(
        req: &Request,
        text: String,
        body: Option<String>,
        meta: Option<String>,
        cache: CacheStats,
    ) -> Self {
        Response {
            format_version: FORMAT_VERSION,
            ok: true,
            kind: req.kind().to_owned(),
            artifact: req.artifact().map(str::to_owned),
            text,
            body,
            meta,
            error: None,
            cache,
        }
    }

    /// A failed response for `req`. Any text rendered before the failure
    /// is kept, so transports can reproduce the CLI's partial output.
    #[must_use]
    pub fn failure(req: &Request, text: String, error: String, cache: CacheStats) -> Self {
        Response {
            format_version: FORMAT_VERSION,
            ok: false,
            kind: req.kind().to_owned(),
            artifact: req.artifact().map(str::to_owned),
            text,
            body: None,
            meta: None,
            error: Some(error),
            cache,
        }
    }

    /// A failed response for a request that never parsed (no kind known).
    #[must_use]
    pub fn protocol_error(error: String) -> Self {
        Response {
            format_version: FORMAT_VERSION,
            ok: false,
            kind: "error".to_owned(),
            artifact: None,
            text: String::new(),
            body: None,
            meta: None,
            error: Some(error),
            cache: CacheStats::default(),
        }
    }

    /// Serialises the response as one compact JSON line (no trailing
    /// newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("response serialises")
    }

    /// Parses a response from its JSON wire form (the client side).
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a shape mismatch, or an
    /// envelope version this build does not speak.
    pub fn from_json_str(s: &str) -> Result<Self, String> {
        let value = serde_json::from_str(s).map_err(|e| format!("malformed response: {e}"))?;
        Self::from_json_value(&value)
    }

    /// Parses a response from an already-parsed JSON tree.
    ///
    /// # Errors
    ///
    /// Returns a message on a shape mismatch or an envelope version this
    /// build does not speak (including the missing `format_version` of a
    /// pre-versioning daemon).
    pub fn from_json_value(value: &Value) -> Result<Self, String> {
        let format_version = value
            .get("format_version")
            .and_then(Value::as_u64)
            .ok_or_else(|| {
                format!(
                    "response has no format_version key: the daemon speaks envelope \
                     version 1, this client requires version {FORMAT_VERSION} — \
                     restart the daemon from the same build as the client"
                )
            })?;
        if format_version != FORMAT_VERSION {
            return Err(format!(
                "response format_version is {format_version} but this client speaks \
                 {FORMAT_VERSION} — restart the daemon from the same build as the client"
            ));
        }
        let obj = |key: &str| -> Result<&Value, String> {
            value
                .get(key)
                .ok_or_else(|| format!("response is missing the {key} key"))
        };
        let string = |key: &str| -> Result<String, String> {
            obj(key)?
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("response key {key} must be a string"))
        };
        let opt_string = |key: &str| -> Result<Option<String>, String> {
            match obj(key)? {
                Value::Null => Ok(None),
                Value::String(s) => Ok(Some(s.clone())),
                other => Err(format!(
                    "response key {key} must be a string or null, got {}",
                    other.type_name()
                )),
            }
        };
        let ok = match obj("ok")? {
            Value::Bool(b) => *b,
            other => {
                return Err(format!(
                    "response key ok must be a boolean, got {}",
                    other.type_name()
                ))
            }
        };
        let count = |key: &str| -> Result<u64, String> {
            obj("cache")?
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("response cache.{key} must be an integer"))
        };
        let cache = CacheStats {
            profiled_suites: usize::try_from(count("profiled_suites")?)
                .map_err(|e| e.to_string())?,
            measure_entries: usize::try_from(count("measure_entries")?)
                .map_err(|e| e.to_string())?,
            measure_hits: count("measure_hits")?,
            measure_misses: count("measure_misses")?,
            store_hits: count("store_hits")?,
            store_misses: count("store_misses")?,
            store_entries: count("store_entries")?,
            store_bytes: count("store_bytes")?,
            store_skipped_lines: count("store_skipped_lines")?,
        };
        Ok(Response {
            format_version,
            ok,
            kind: string("kind")?,
            artifact: opt_string("artifact")?,
            text: string("text")?,
            body: opt_string("body")?,
            meta: opt_string("meta")?,
            error: opt_string("error")?,
            cache,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip_preserves_newlines() {
        let resp = Response::success(
            &Request::Table1,
            "line one\nline two\n".to_owned(),
            Some("[\n  1\n]".to_owned()),
            None,
            CacheStats {
                profiled_suites: 1,
                measure_entries: 2,
                measure_hits: 3,
                measure_misses: 4,
                store_hits: 5,
                store_misses: 6,
                store_entries: 7,
                store_bytes: 8,
                store_skipped_lines: 9,
            },
        );
        let line = resp.to_json_line();
        assert!(!line.contains('\n'), "framing stays single-line: {line}");
        let back = Response::from_json_str(&line).expect("round trip");
        assert_eq!(back, resp);
    }

    #[test]
    fn protocol_errors_parse_back() {
        let line = Response::protocol_error("bad line".to_owned()).to_json_line();
        let back = Response::from_json_str(&line).unwrap();
        assert!(!back.ok);
        assert_eq!(back.error.as_deref(), Some("bad line"));
    }

    #[test]
    fn envelope_version_mismatches_are_rejected() {
        let good = Response::protocol_error("x".to_owned()).to_json_line();

        // A future daemon speaking a newer envelope.
        let newer = good.replace(
            &format!("\"format_version\":{FORMAT_VERSION}"),
            &format!("\"format_version\":{}", FORMAT_VERSION + 1),
        );
        assert_ne!(newer, good, "the substitution must have happened");
        let err = Response::from_json_str(&newer).unwrap_err();
        assert!(err.contains("format_version"), "{err}");
        assert!(
            err.contains(&FORMAT_VERSION.to_string()),
            "names the client's version: {err}"
        );

        // A pre-versioning daemon (no key at all).
        let older = good.replace(&format!("\"format_version\":{FORMAT_VERSION},"), "");
        assert_ne!(older, good);
        let err = Response::from_json_str(&older).unwrap_err();
        assert!(err.contains("version 1"), "{err}");
    }
}
