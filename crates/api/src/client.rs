//! Client side of the daemon protocol, plus the `loadgen` harness.
//!
//! [`Client`] speaks the newline-delimited JSON protocol of
//! [`serve`](crate::serve::serve) over a Unix socket; [`loadgen`]
//! drives N concurrent clients against a daemon and reports p50/p99
//! latency and requests per second (the perf gate's
//! `serve_requests_per_second` metric).

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Instant;

use crate::request::Request;
use crate::response::Response;

/// One connection to a `paper serve` daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to the daemon listening on `socket`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures (no daemon, permissions, …).
    pub fn connect(socket: &Path) -> std::io::Result<Self> {
        let writer = UnixStream::connect(socket)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// Returns a message if the connection drops or the reply does not
    /// parse. A request the *daemon* rejected still comes back as
    /// `Ok(response)` with `response.ok == false`.
    pub fn request(&mut self, req: &Request) -> Result<Response, String> {
        let line = self.round_trip(&req.to_json_string())?;
        Response::from_json_str(&line)
    }

    /// Sends several requests as one batch line, executed through the
    /// engine's worker pool; responses come back in request order.
    ///
    /// # Errors
    ///
    /// Returns a message if the connection drops, the reply does not
    /// parse, or the daemon rejected the batch as a whole (e.g. a
    /// `shutdown` element).
    pub fn request_batch(&mut self, reqs: &[Request]) -> Result<Vec<Response>, String> {
        let wire: Vec<String> = reqs.iter().map(Request::to_json_string).collect();
        let line = self.round_trip(&format!("[{}]", wire.join(",")))?;
        let value = serde_json::from_str(&line).map_err(|e| format!("malformed reply: {e}"))?;
        if let Some(items) = value.as_array() {
            return items.iter().map(Response::from_json_value).collect();
        }
        // A whole-batch rejection comes back as a single error object.
        let resp = Response::from_json_value(&value)?;
        Err(resp
            .error
            .unwrap_or_else(|| "daemon rejected the batch".to_owned()))
    }

    fn round_trip(&mut self, line: &str) -> Result<String, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .map_err(|e| format!("send failed: {e}"))?;
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .map_err(|e| format!("receive failed: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection".to_owned());
        }
        Ok(reply.trim_end().to_owned())
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client sends sequentially.
    pub requests_per_client: usize,
    /// The request every client repeats.
    pub request: Request,
}

/// What one `loadgen` run measured. Like the throughput benches this
/// carries wall-clock numbers, so it is not byte-stable; it feeds the
/// perf gate's `serve_requests_per_second` metric.
#[derive(Debug, Clone, serde::Serialize)]
pub struct LoadgenReport {
    /// Always `"loadgen"` (artefact self-description).
    pub experiment: String,
    /// Kind of the request that was repeated.
    pub kind: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client sent.
    pub requests_per_client: usize,
    /// Total requests completed (clients × requests_per_client).
    pub total_requests: usize,
    /// Median request latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency in milliseconds.
    pub p99_ms: f64,
    /// Mean request latency in milliseconds.
    pub mean_ms: f64,
    /// Fastest request in milliseconds.
    pub min_ms: f64,
    /// Slowest request in milliseconds.
    pub max_ms: f64,
    /// Wall time of the whole run in seconds.
    pub wall_time_s: f64,
    /// Aggregate throughput: total_requests / wall_time_s.
    pub serve_requests_per_second: f64,
}

/// Drives `clients` concurrent connections against the daemon on
/// `socket`, each sending `requests_per_client` copies of the request
/// sequentially, and aggregates the latency distribution.
///
/// # Errors
///
/// Returns the first connection/protocol failure, or the daemon's error
/// if any response came back with `ok == false`.
///
/// # Panics
///
/// Panics if `clients` or `requests_per_client` is zero.
pub fn loadgen(socket: &Path, opts: &LoadgenOptions) -> Result<LoadgenReport, String> {
    assert!(opts.clients > 0, "loadgen needs at least one client");
    assert!(
        opts.requests_per_client > 0,
        "loadgen needs at least one request per client"
    );
    let start = Instant::now();
    let per_client: Vec<Result<Vec<f64>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients)
            .map(|_| scope.spawn(|| run_client(socket, opts)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("client panicked".to_owned()))
            })
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();
    let mut latencies_ms = Vec::with_capacity(opts.clients * opts.requests_per_client);
    for result in per_client {
        latencies_ms.extend(result?);
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let total = latencies_ms.len();
    let rps = if wall > 0.0 {
        total as f64 / wall
    } else {
        f64::INFINITY
    };
    Ok(LoadgenReport {
        experiment: "loadgen".to_owned(),
        kind: opts.request.kind().to_owned(),
        clients: opts.clients,
        requests_per_client: opts.requests_per_client,
        total_requests: total,
        p50_ms: vliw_obs::nearest_rank(&latencies_ms, 50.0),
        p99_ms: vliw_obs::nearest_rank(&latencies_ms, 99.0),
        mean_ms: latencies_ms.iter().sum::<f64>() / total as f64,
        min_ms: latencies_ms[0],
        max_ms: latencies_ms[total - 1],
        wall_time_s: wall,
        serve_requests_per_second: rps,
    })
}

/// One loadgen client: a connection sending the request N times,
/// returning per-request latencies in milliseconds.
fn run_client(socket: &Path, opts: &LoadgenOptions) -> Result<Vec<f64>, String> {
    let mut client = Client::connect(socket).map_err(|e| format!("connect failed: {e}"))?;
    let mut latencies = Vec::with_capacity(opts.requests_per_client);
    for _ in 0..opts.requests_per_client {
        let sent = Instant::now();
        let resp = client.request(&opts.request)?;
        if !resp.ok {
            return Err(resp
                .error
                .unwrap_or_else(|| format!("{} request failed", resp.kind)));
        }
        latencies.push(sent.elapsed().as_secs_f64() * 1e3);
    }
    Ok(latencies)
}

#[cfg(test)]
mod tests {
    #[test]
    fn nearest_rank_percentiles() {
        // The report's quantiles come from the shared obs helper; keep
        // loadgen's historical semantics pinned at the call site.
        let sample = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert!((vliw_obs::nearest_rank(&sample, 50.0) - 5.0).abs() < f64::EPSILON);
        assert!((vliw_obs::nearest_rank(&sample, 99.0) - 10.0).abs() < f64::EPSILON);
        assert!((vliw_obs::nearest_rank(&sample, 100.0) - 10.0).abs() < f64::EPSILON);
        assert!((vliw_obs::nearest_rank(&sample, 0.0) - 1.0).abs() < f64::EPSILON);
    }
}
