//! The `paper serve` daemon: the shared [`Engine`] behind a Unix
//! socket.
//!
//! The wire protocol is newline-delimited JSON over
//! [`std::os::unix::net`] (no external dependencies):
//!
//! * one [`Request`] object per line → one compact [`Response`] object
//!   per line;
//! * a JSON **array** of request objects on one line is a batch: it
//!   fans out across the engine's worker pool ([`Engine::run_batch`])
//!   and the reply is one array of responses in request order;
//! * a malformed line yields a per-request error response — the
//!   connection (and the daemon) stay up;
//! * `{"kind":"shutdown"}` is acknowledged, then the daemon stops
//!   accepting, unblocks every open connection and exits the serve loop
//!   once all handler threads have drained (graceful shutdown).
//!
//! Because every connection shares one engine, cache hits persist
//! across requests and clients: the first `figure6` profiles the suite,
//! the hundredth is served from the measurement memo cache — exactly
//! what the per-response [`CacheStats`](crate::response::CacheStats)
//! makes observable.

use std::fs;
use std::io::{self, BufRead, BufReader, Write};
use std::net::Shutdown;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::artifacts::persist_response;
use crate::engine::Engine;
use crate::request::Request;
use crate::response::Response;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Filesystem path of the Unix socket to listen on.
    pub socket: PathBuf,
    /// When set, the daemon also persists each successful response's
    /// artefacts under this directory (the same shared write path the
    /// CLI uses), logging the written files on stderr.
    pub results: Option<PathBuf>,
    /// The daemon's default persistent measurement store (`--store`):
    /// applied to every request that does not carry its own. The
    /// engine must be built with the same default
    /// ([`Engine::with_default_store`]); the CLI wires both from one
    /// flag.
    pub store: vliw_store::StoreConfig,
}

/// Runs the daemon until a `shutdown` request arrives. Blocks the
/// calling thread; connection handlers run on scoped threads sharing
/// `engine`.
///
/// # Errors
///
/// Returns an error if the socket cannot be bound (a stale socket file
/// left by a crashed daemon is detected and replaced; a *live* daemon
/// on the same path is reported instead of hijacked).
pub fn serve(engine: &Engine, opts: &ServeOptions) -> io::Result<()> {
    // A daemon always has a potential metrics consumer (any client can
    // send {"kind":"metrics"}), so latency histograms are live for the
    // whole serve lifetime.
    vliw_obs::enable_timing();
    let listener = bind(&opts.socket)?;
    eprintln!("[serve] listening on {}", opts.socket.display());
    if let Some(dir) = &opts.store.dir {
        eprintln!("[serve] measurement store at {}", dir.display());
    }
    let shutdown = AtomicBool::new(false);
    let conns: Mutex<Vec<UnixStream>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("[serve] accept failed: {e}");
                    continue;
                }
            };
            if let Ok(clone) = stream.try_clone() {
                conns.lock().expect("connection list poisoned").push(clone);
            }
            let shutdown = &shutdown;
            let conns = &conns;
            scope.spawn(move || {
                handle_connection(engine, stream, opts, shutdown, conns);
            });
        }
    });
    let _ = fs::remove_file(&opts.socket);
    eprintln!("[serve] shutdown complete");
    Ok(())
}

/// Binds the socket, recovering from a stale file left by a crashed
/// daemon (bind fails with `AddrInUse`, but nobody answers a probe
/// connect).
fn bind(path: &Path) -> io::Result<UnixListener> {
    match UnixListener::bind(path) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
            if UnixStream::connect(path).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("a daemon is already serving on {}", path.display()),
                ));
            }
            eprintln!("[serve] removing stale socket {}", path.display());
            fs::remove_file(path)?;
            UnixListener::bind(path)
        }
        Err(e) => Err(e),
    }
}

/// Serves one connection: a line of requests in, a line of responses
/// out, until the peer hangs up or a shutdown request arrives.
fn handle_connection(
    engine: &Engine,
    stream: UnixStream,
    opts: &ServeOptions,
    shutdown: &AtomicBool,
    conns: &Mutex<Vec<UnixStream>>,
) {
    let Ok(read_half) = stream.try_clone() else {
        eprintln!("[serve] could not clone connection");
        return;
    };
    let _span = vliw_obs::span("serve.connection");
    let _in_flight = InFlightConnection::new();
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else {
            break; // peer vanished or the daemon is shutting down
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (reply, stop) = answer_line(engine, line, opts);
        if writer
            .write_all(reply.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .is_err()
        {
            break;
        }
        if stop {
            initiate_shutdown(&opts.socket, shutdown, conns);
            return;
        }
    }
}

/// Produces the reply line for one request line, plus whether the
/// daemon should shut down after sending it.
fn answer_line(engine: &Engine, line: &str, opts: &ServeOptions) -> (String, bool) {
    if line.starts_with('[') {
        return (answer_batch(engine, line, opts), false);
    }
    match Request::from_json_str(line) {
        Ok(req) => {
            let resp = run_logged(engine, &req, opts);
            let stop = matches!(req, Request::Shutdown);
            (resp.to_json_line(), stop)
        }
        Err(e) => {
            vliw_obs::counter("serve_errors_total").inc();
            (Response::protocol_error(e).to_json_line(), false)
        }
    }
}

/// Runs a whole-line batch (a JSON array of requests). The batch is
/// all-or-nothing at the parse stage: one malformed element rejects the
/// line with a single error response, so the caller never has to guess
/// which array positions ran.
fn answer_batch(engine: &Engine, line: &str, opts: &ServeOptions) -> String {
    let parsed: Result<Vec<Request>, String> = serde_json::from_str(line)
        .map_err(|e| format!("malformed batch: {e}"))
        .and_then(|value| {
            let items = value
                .as_array()
                .ok_or_else(|| "a batch must be a JSON array of requests".to_owned())?;
            items.iter().map(Request::from_json_value).collect()
        });
    let reqs = match parsed {
        Ok(reqs) => reqs,
        Err(e) => {
            vliw_obs::counter("serve_errors_total").inc();
            return Response::protocol_error(e).to_json_line();
        }
    };
    if reqs.iter().any(|r| matches!(r, Request::Shutdown)) {
        vliw_obs::counter("serve_errors_total").inc();
        return Response::protocol_error(
            "shutdown must be a standalone request, not part of a batch".to_owned(),
        )
        .to_json_line();
    }
    let _span = vliw_obs::span("serve.batch");
    for req in &reqs {
        vliw_obs::counter_with("serve_requests_total", "kind", req.kind()).inc();
    }
    let start = Instant::now();
    let resps = engine.run_batch(&reqs);
    eprintln!(
        "[serve] batch of {}: {:.3} s",
        reqs.len(),
        start.elapsed().as_secs_f64()
    );
    for resp in &resps {
        if !resp.ok {
            vliw_obs::counter("serve_errors_total").inc();
        }
        persist_if_configured(resp, opts);
    }
    let lines: Vec<String> = resps.iter().map(Response::to_json_line).collect();
    format!("[{}]", lines.join(","))
}

/// Runs one request, logging its wall-time like the CLI's `[time]`
/// lines, and persists its artefacts when the daemon was given a
/// results directory.
fn run_logged(engine: &Engine, req: &Request, opts: &ServeOptions) -> Response {
    let kind = req.kind();
    let _span = vliw_obs::span_kv("serve.request", "kind", kind);
    vliw_obs::counter_with("serve_requests_total", "kind", kind).inc();
    let start = Instant::now();
    let resp = engine.run(req);
    let elapsed = start.elapsed();
    // The daemon's log line already read the clock, so the server-side
    // latency histogram costs nothing extra.
    vliw_obs::histogram_with("serve_request_nanos", "kind", kind)
        .record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    if !resp.ok {
        vliw_obs::counter("serve_errors_total").inc();
    }
    eprintln!(
        "[serve] {}: {} ({:.3} s)",
        kind,
        if resp.ok { "ok" } else { "error" },
        elapsed.as_secs_f64()
    );
    persist_if_configured(&resp, opts);
    resp
}

fn persist_if_configured(resp: &Response, opts: &ServeOptions) {
    let Some(dir) = opts.results.as_deref() else {
        return;
    };
    if !resp.ok {
        return;
    }
    match persist_response(dir, resp) {
        Ok(written) => {
            for path in written {
                eprintln!("[serve] wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("[serve] could not persist {}: {e}", resp.kind),
    }
}

/// RAII hold on the `serve_connections_in_flight` gauge: incremented
/// while a connection handler is live, decremented on every exit path
/// (including panics unwinding through the handler).
#[derive(Debug)]
struct InFlightConnection(std::sync::Arc<vliw_obs::Gauge>);

impl InFlightConnection {
    fn new() -> Self {
        let gauge = vliw_obs::gauge("serve_connections_in_flight");
        gauge.inc();
        InFlightConnection(gauge)
    }
}

impl Drop for InFlightConnection {
    fn drop(&mut self) {
        self.0.dec();
    }
}

/// Graceful shutdown: stop accepting (a self-connect unblocks the
/// accept loop) and wake every open connection so its handler thread
/// sees EOF and drains.
fn initiate_shutdown(socket: &Path, shutdown: &AtomicBool, conns: &Mutex<Vec<UnixStream>>) {
    shutdown.store(true, Ordering::SeqCst);
    let _ = UnixStream::connect(socket);
    for conn in conns.lock().expect("connection list poisoned").iter() {
        let _ = conn.shutdown(Shutdown::Both);
    }
}
