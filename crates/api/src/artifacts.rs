//! Shared artefact persistence: one atomic write path for every
//! transport.
//!
//! The one-shot CLI, the `corpus dump` subcommand and the daemon all
//! funnel their JSON artefacts (row dumps and `<name>.meta.json`
//! sidecars) through [`write_atomic`] / [`persist_response`], so the
//! temp-file-plus-rename discipline lives in exactly one place instead
//! of being repeated per experiment. A concurrent reader never observes
//! a truncated artefact — several `paper` processes and daemon worker
//! threads may write at once under the test harness or CI.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::response::Response;

/// Writes `contents` to `path` atomically: the bytes land in a temp file
/// in the same directory (suffixed with the writer's pid, so concurrent
/// processes never collide) and are renamed into place.
///
/// # Errors
///
/// Propagates I/O failures from the write or the rename.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

/// Persists a response's artefacts under `dir`: the body to
/// `<stem>.json`, the sidecar (if any) to `<stem>.meta.json`, both
/// atomically. Returns the paths written, in write order, so callers can
/// report them (`[rows written to …]` on the CLI, the daemon's stderr
/// log). A response without an artefact stem writes nothing.
///
/// # Errors
///
/// Propagates I/O failures; on failure earlier artefacts of the same
/// response may already have been published (each write is individually
/// atomic).
pub fn persist_response(dir: &Path, resp: &Response) -> io::Result<Vec<PathBuf>> {
    let mut written = Vec::new();
    let Some(stem) = resp.artifact.as_deref() else {
        return Ok(written);
    };
    fs::create_dir_all(dir)?;
    if let Some(body) = resp.body.as_deref() {
        let path = dir.join(format!("{stem}.json"));
        write_atomic(&path, body)?;
        written.push(path);
    }
    if let Some(meta) = resp.meta.as_deref() {
        let path = dir.join(format!("{stem}.meta.json"));
        write_atomic(&path, meta)?;
        written.push(path);
    }
    Ok(written)
}

/// Renders a simple aligned two-column bar-chart row, exactly as the
/// paper figures print (`label value ####…`).
#[must_use]
pub fn format_bar(label: &str, value: f64) -> String {
    let width = (value * 50.0).clamp(0.0, 60.0) as usize;
    format!("{label:<16} {value:>7.3}  {}", "#".repeat(width))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use crate::response::CacheStats;

    #[test]
    fn persists_body_and_meta() {
        let dir = std::env::temp_dir().join(format!("vliw-api-art-{}", std::process::id()));
        let resp = Response::success(
            &Request::Table2(crate::request::RunParams::default()),
            String::new(),
            Some("[1]".to_owned()),
            Some("{\"a\":2}".to_owned()),
            CacheStats::default(),
        );
        let written = persist_response(&dir, &resp).unwrap();
        assert_eq!(written.len(), 2);
        assert_eq!(fs::read_to_string(&written[0]).unwrap(), "[1]");
        assert_eq!(written[1].file_name().unwrap(), "table2.meta.json");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn control_responses_write_nothing() {
        let resp = Response::success(
            &Request::Ping,
            "pong\n".to_owned(),
            None,
            None,
            CacheStats::default(),
        );
        let written = persist_response(Path::new("/nonexistent-never-created"), &resp).unwrap();
        assert!(written.is_empty());
    }

    #[test]
    fn bar_formatting_matches_the_figures() {
        let s = format_bar("x", 0.8);
        assert!(s.contains("0.800"));
        assert!(s.contains('#'));
    }
}
