//! The serialisable [`Request`] type: every experiment entry point as a
//! value.
//!
//! A request is one JSON object on the wire, keyed by `kind` plus the
//! knobs that apply to it:
//!
//! ```json
//! {"kind":"figure6","loops":5,"buses":"1","seed":0}
//! {"kind":"search","loops":2,"buses":"1","seed":1,"strategy":"hillclimb","budget":8,"space":"paper"}
//! {"kind":"search","strategy":"ga","budget":200,"space":"extended","racing":true,"shard":"2/3"}
//! {"kind":"figure6","store":"target/paper-store"}
//! {"kind":"store_stats"}
//! {"kind":"corpus_stats","input":"target/paper-results/corpus.json"}
//! ```
//!
//! Parsing is strict, mirroring the CLI's flag validation: unknown keys
//! are rejected, and a knob that does not apply to the requested kind
//! (`budget` on `figure6`, `input` on `search`, `store` on `ping`, …)
//! is an error rather than a silent no-op — dropping a caller's path
//! would misreport what ran. Omitted knobs take the CLI defaults, so
//! `{"kind":"figure6"}` and a bare `paper figure6` run identically.
//!
//! Both the wire parser and the programmatic [`RequestBuilder`]
//! assemble through one validation path ([`RequestBuilder::build`]), so
//! "which knob applies to which kind" is defined exactly once.
//!
//! The vendored serde derive has no enum support, so [`Request`]
//! serialises by hand ([`Request::to_json_string`]) and parses through
//! the [`serde_json::Value`] tree ([`Request::from_json_str`]).

use std::path::PathBuf;

use serde_json::Value;
use vliw_explore::SpaceKind;
use vliw_search::Strategy;
use vliw_store::StoreConfig;
use vliw_workloads::DEFAULT_LOOPS_PER_BENCHMARK;

/// Which bus configurations an experiment runs (the CLI's `--buses`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusSel {
    /// One inter-cluster bus.
    One,
    /// Two inter-cluster buses.
    Two,
    /// Both configurations, in order (the default).
    Both,
}

impl BusSel {
    /// The bus counts this selection expands to, in run order.
    #[must_use]
    pub fn list(self) -> &'static [u32] {
        match self {
            BusSel::One => &[1],
            BusSel::Two => &[2],
            BusSel::Both => &[1, 2],
        }
    }

    /// The selection's stable wire/CLI name (`1`, `2` or `both`).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            BusSel::One => "1",
            BusSel::Two => "2",
            BusSel::Both => "both",
        }
    }

    /// Parses a wire/CLI name produced by [`BusSel::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "1" => Some(BusSel::One),
            "2" => Some(BusSel::Two),
            "both" => Some(BusSel::Both),
            _ => None,
        }
    }
}

/// The global knobs shared by every experiment request: suite scale,
/// bus selection, generation seed, the persistent measurement store
/// backing the run and the scheduler phase-profiling switch (the CLI's
/// `--loops-per-benchmark`, `--buses`, `--seed`, `--store` and
/// `--profile`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunParams {
    /// Loops generated per benchmark (default 40, the interactive
    /// 10× scale-down).
    pub loops: usize,
    /// Bus configurations to run.
    pub buses: BusSel,
    /// Global generation seed (0 reproduces the committed fixtures).
    pub seed: u64,
    /// Persistent measurement store backing the run. Disabled by
    /// default (everything stays in memory); the wire key is `store`,
    /// omitted when disabled so pre-store wire lines stay valid.
    pub store: StoreConfig,
    /// Collect and report a per-phase timing breakdown of the scheduler
    /// (`schedbench` only; the CLI's `--profile`). The wire key is
    /// `profile`, omitted when false so pre-profile wire lines stay
    /// valid.
    pub profile: bool,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            loops: DEFAULT_LOOPS_PER_BENCHMARK,
            buses: BusSel::Both,
            seed: 0,
            store: StoreConfig::none(),
            profile: false,
        }
    }
}

/// The knobs of the `search` experiment (the CLI's `--strategy`,
/// `--budget`, `--space`, `--racing` and `--shard`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SearchParams {
    /// The optimizer to run.
    pub strategy: Strategy,
    /// Distinct candidate evaluations the search may spend.
    pub budget: u64,
    /// The configuration space to search.
    pub space: SpaceKind,
    /// Successive-halving racing: screen fresh candidate batches on a
    /// truncated suite and promote only the most promising rung to the
    /// full measurement. The wire key is `racing`, omitted when false
    /// so pre-racing wire lines stay valid.
    pub racing: bool,
    /// Run only shard `i` of an `n`-way round-robin split of the gene
    /// grid, as 1-based `(i, n)`. The wire key is `shard` with value
    /// `"i/n"`, omitted when unsharded.
    pub shard: Option<(u32, u32)>,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            strategy: Strategy::HillClimb,
            budget: 64,
            space: SpaceKind::Paper,
            racing: false,
            shard: None,
        }
    }
}

/// One experiment invocation as a value: what the `paper` CLI's
/// subcommand dispatch used to encode in control flow.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; the engine answers without doing any work.
    Ping,
    /// Ask the daemon to shut down gracefully. The engine treats it as a
    /// no-op; the serve loop intercepts it after responding.
    Shutdown,
    /// Table 1: per-class latency and relative energy (scale-free).
    Table1,
    /// Table 2: constraint-class time shares per benchmark.
    Table2(RunParams),
    /// Figure 6: per-benchmark normalised ED².
    Figure6(RunParams),
    /// Figure 7: frequency-menu sensitivity.
    Figure7(RunParams),
    /// Figure 8: ICN/cache energy-share sensitivity.
    Figure8(RunParams),
    /// Figure 9: leakage-share sensitivity.
    Figure9(RunParams),
    /// Scheduler-throughput bench (wall-clock; not byte-stable).
    SchedBench(RunParams),
    /// Generator-family sensitivity sweep.
    FamilySweep(RunParams),
    /// Seeded metaheuristic design-space search.
    Search {
        /// Suite scale, buses, seed and store.
        params: RunParams,
        /// Strategy, budget and space.
        search: SearchParams,
    },
    /// Search-throughput bench (wall-clock; not byte-stable). The bench
    /// deliberately bypasses any configured store: it measures
    /// cold-path candidate-evaluation throughput.
    SearchBench(RunParams),
    /// Schedule and validate every loop of a corpus.
    CorpusSchedule {
        /// Suite scale and seed (buses is not a corpus knob).
        params: RunParams,
        /// Corpus file to load; `None` uses the in-memory suite.
        input: Option<PathBuf>,
    },
    /// Per-benchmark structural summary of a corpus.
    CorpusStats {
        /// Suite scale and seed (buses is not a corpus knob).
        params: RunParams,
        /// Corpus file to load; `None` uses the in-memory suite.
        input: Option<PathBuf>,
    },
    /// Admin: statistics of a persistent measurement store.
    StoreStats {
        /// The store to inspect; disabled falls back to the daemon's
        /// default store (an error when there is none).
        store: StoreConfig,
    },
    /// Admin: merge a persistent measurement store's writer logs into
    /// one compact log.
    StoreCompact {
        /// The store to compact; disabled falls back to the daemon's
        /// default store (an error when there is none).
        store: StoreConfig,
    },
    /// Admin: the process-wide metrics registry rendered as
    /// Prometheus-style text exposition (stable sort order; values are
    /// live process state, so not byte-stable).
    Metrics,
}

impl Request {
    /// Every kind name, in canonical order (the wire `kind` values).
    pub const KINDS: [&'static str; 17] = [
        "ping",
        "shutdown",
        "table1",
        "table2",
        "figure6",
        "figure7",
        "figure8",
        "figure9",
        "schedbench",
        "familysweep",
        "search",
        "searchbench",
        "corpus_schedule",
        "corpus_stats",
        "store_stats",
        "store_compact",
        "metrics",
    ];

    /// Starts building a request of the given kind; knobs are added
    /// with the [`RequestBuilder`]'s setters and validated by
    /// [`RequestBuilder::build`] under exactly the wire parser's rules.
    #[must_use]
    pub fn builder(kind: &str) -> RequestBuilder {
        RequestBuilder {
            kind: kind.to_owned(),
            ..RequestBuilder::default()
        }
    }

    /// The request's stable kind name.
    #[must_use]
    pub const fn kind(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Shutdown => "shutdown",
            Request::Table1 => "table1",
            Request::Table2(_) => "table2",
            Request::Figure6(_) => "figure6",
            Request::Figure7(_) => "figure7",
            Request::Figure8(_) => "figure8",
            Request::Figure9(_) => "figure9",
            Request::SchedBench(_) => "schedbench",
            Request::FamilySweep(_) => "familysweep",
            Request::Search { .. } => "search",
            Request::SearchBench(_) => "searchbench",
            Request::CorpusSchedule { .. } => "corpus_schedule",
            Request::CorpusStats { .. } => "corpus_stats",
            Request::StoreStats { .. } => "store_stats",
            Request::StoreCompact { .. } => "store_compact",
            Request::Metrics => "metrics",
        }
    }

    /// The artefact stem this request's rows are persisted under
    /// (`<stem>.json`, plus `<stem>.meta.json` when the response carries
    /// a sidecar), or `None` for control and admin requests.
    #[must_use]
    pub const fn artifact(&self) -> Option<&'static str> {
        match self {
            Request::Ping
            | Request::Shutdown
            | Request::Metrics
            | Request::StoreStats { .. }
            | Request::StoreCompact { .. } => None,
            // Shard runs produce a mergeable shard artefact, not a
            // plain search report — keep the stems distinct so a shard
            // can never clobber a full search result.
            Request::Search { search, .. } => {
                if search.shard.is_some() {
                    Some("search_shard")
                } else {
                    Some("search")
                }
            }
            _ => Some(self.kind()),
        }
    }

    /// Whether the response body is byte-stable across runs, machines
    /// and job counts. The two throughput benches embed wall-clock
    /// measurements, the store admin requests report mutable disk
    /// state and `metrics` reports live process state, so they are the
    /// exceptions.
    #[must_use]
    pub const fn is_byte_stable(&self) -> bool {
        !matches!(
            self,
            Request::SchedBench(_)
                | Request::SearchBench(_)
                | Request::StoreStats { .. }
                | Request::StoreCompact { .. }
                | Request::Metrics
        )
    }

    /// The run params, for kinds that have them.
    #[must_use]
    pub const fn params(&self) -> Option<&RunParams> {
        match self {
            Request::Ping
            | Request::Shutdown
            | Request::Table1
            | Request::Metrics
            | Request::StoreStats { .. }
            | Request::StoreCompact { .. } => None,
            Request::Table2(p)
            | Request::Figure6(p)
            | Request::Figure7(p)
            | Request::Figure8(p)
            | Request::Figure9(p)
            | Request::SchedBench(p)
            | Request::FamilySweep(p)
            | Request::SearchBench(p)
            | Request::Search { params: p, .. }
            | Request::CorpusSchedule { params: p, .. }
            | Request::CorpusStats { params: p, .. } => Some(p),
        }
    }

    /// The store configuration this request carries: the shared run
    /// params' store for experiment kinds, the admin variants' own, and
    /// `None` for kinds no store can apply to (`ping`, `shutdown`,
    /// `table1`).
    #[must_use]
    pub fn store(&self) -> Option<&StoreConfig> {
        match self {
            Request::StoreStats { store } | Request::StoreCompact { store } => Some(store),
            _ => self.params().map(|p| &p.store),
        }
    }

    /// Serialises the request as one compact JSON object (the wire
    /// format; always a single line).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"kind\":\"");
        out.push_str(self.kind());
        out.push('"');
        if let Some(p) = self.params() {
            out.push_str(&format!(
                ",\"loops\":{},\"buses\":\"{}\",\"seed\":{}",
                p.loops,
                p.buses.name(),
                p.seed
            ));
        }
        if let Some(dir) = self.store().and_then(|s| s.dir.as_ref()) {
            let mut encoded = String::new();
            serde::write_json_str(&dir.display().to_string(), &mut encoded);
            out.push_str(&format!(",\"store\":{encoded}"));
        }
        if self.params().is_some_and(|p| p.profile) {
            out.push_str(",\"profile\":true");
        }
        if let Request::Search { search, .. } = self {
            out.push_str(&format!(
                ",\"strategy\":\"{}\",\"budget\":{},\"space\":\"{}\"",
                search.strategy.name(),
                search.budget,
                search.space.name()
            ));
            if search.racing {
                out.push_str(",\"racing\":true");
            }
            if let Some((shard, count)) = search.shard {
                out.push_str(&format!(",\"shard\":\"{shard}/{count}\""));
            }
        }
        if let Request::CorpusSchedule {
            input: Some(path), ..
        }
        | Request::CorpusStats {
            input: Some(path), ..
        } = self
        {
            let mut encoded = String::new();
            serde::write_json_str(&path.display().to_string(), &mut encoded);
            out.push_str(&format!(",\"input\":{encoded}"));
        }
        out.push('}');
        out
    }

    /// Parses a request from its JSON wire form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending key or value on malformed
    /// JSON, an unknown `kind`, an unknown key, or a knob that does not
    /// apply to the requested kind.
    pub fn from_json_str(s: &str) -> Result<Self, String> {
        let value = serde_json::from_str(s).map_err(|e| format!("malformed request: {e}"))?;
        Self::from_json_value(&value)
    }

    /// Parses a request from an already-parsed JSON tree (see
    /// [`Request::from_json_str`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Request::from_json_str`].
    pub fn from_json_value(value: &Value) -> Result<Self, String> {
        let Value::Object(pairs) = value else {
            return Err(format!(
                "a request must be a JSON object, got {}",
                value.type_name()
            ));
        };
        let mut kind = None;
        let mut b = RequestBuilder::default();
        for (key, v) in pairs {
            match key.as_str() {
                "kind" => {
                    kind = Some(
                        v.as_str()
                            .ok_or_else(|| format!("kind must be a string, got {}", v.type_name()))?
                            .to_owned(),
                    );
                }
                "loops" => {
                    b = b.loops(
                        v.as_u64()
                            .filter(|&n| n > 0)
                            .and_then(|n| usize::try_from(n).ok())
                            .ok_or("loops must be a positive integer")?,
                    );
                }
                "buses" => {
                    let name = match v {
                        Value::String(s) => s.clone(),
                        _ => v
                            .as_u64()
                            .ok_or_else(|| {
                                format!("buses takes 1, 2 or both, got {}", v.type_name())
                            })?
                            .to_string(),
                    };
                    b = b.buses(BusSel::from_name(&name).ok_or("buses takes 1, 2 or both")?);
                }
                "seed" => {
                    b = b.seed(v.as_u64().ok_or("seed must be a non-negative integer")?);
                }
                "store" => {
                    let path = v.as_str().ok_or_else(|| {
                        format!("store must be a string path, got {}", v.type_name())
                    })?;
                    b = b.store(StoreConfig::at(path));
                }
                "profile" => {
                    b =
                        b.profile(v.as_bool().ok_or_else(|| {
                            format!("profile must be a bool, got {}", v.type_name())
                        })?);
                }
                "strategy" => {
                    let name = v.as_str().ok_or_else(|| {
                        format!("strategy must be a string, got {}", v.type_name())
                    })?;
                    b = b.strategy(name.parse()?);
                }
                "budget" => {
                    b = b.budget(
                        v.as_u64()
                            .filter(|&n| n > 0)
                            .ok_or("budget must be a positive integer")?,
                    );
                }
                "space" => {
                    let name = v
                        .as_str()
                        .ok_or_else(|| format!("space must be a string, got {}", v.type_name()))?;
                    b = b.space(SpaceKind::from_name(name).ok_or("space takes paper or extended")?);
                }
                "racing" => {
                    b =
                        b.racing(v.as_bool().ok_or_else(|| {
                            format!("racing must be a bool, got {}", v.type_name())
                        })?);
                }
                "shard" => {
                    let text = v.as_str().ok_or_else(|| {
                        format!("shard must be a string \"i/n\", got {}", v.type_name())
                    })?;
                    let (i, n) = text
                        .split_once('/')
                        .and_then(|(i, n)| Some((i.parse().ok()?, n.parse().ok()?)))
                        .ok_or("shard must be \"i/n\" with positive integers")?;
                    b = b.shard(i, n);
                }
                "input" => {
                    let path = v.as_str().ok_or_else(|| {
                        format!("input must be a string path, got {}", v.type_name())
                    })?;
                    b = b.input(path);
                }
                other => return Err(format!("unknown request key {other:?}")),
            }
        }
        b.kind = kind.ok_or("request is missing the kind key")?;
        b.build()
    }
}

/// Incremental, programmatic construction of a [`Request`].
///
/// The builder and the JSON wire parser share this one assembly point:
/// [`Request::from_json_value`] fills a builder key by key and calls
/// [`RequestBuilder::build`], so the "which knob applies to which
/// kind" rules cannot drift between the two paths, and the per-variant
/// shared knobs (loops/buses/seed/store) are defined once instead of
/// being repeated per constructor.
#[derive(Debug, Clone, Default)]
pub struct RequestBuilder {
    kind: String,
    params: RunParams,
    params_seen: bool,
    store_seen: bool,
    profile_seen: bool,
    search: SearchParams,
    search_seen: bool,
    input: Option<PathBuf>,
}

impl RequestBuilder {
    /// Loops generated per benchmark.
    #[must_use]
    pub fn loops(mut self, loops: usize) -> Self {
        self.params.loops = loops;
        self.params_seen = true;
        self
    }

    /// Bus configurations to run.
    #[must_use]
    pub fn buses(mut self, buses: BusSel) -> Self {
        self.params.buses = buses;
        self.params_seen = true;
        self
    }

    /// Global generation seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self.params_seen = true;
        self
    }

    /// The persistent measurement store backing the run (or, for the
    /// store admin kinds, the store to operate on).
    #[must_use]
    pub fn store(mut self, store: StoreConfig) -> Self {
        self.params.store = store;
        self.store_seen = true;
        self
    }

    /// Whether to collect the scheduler's per-phase timing breakdown
    /// (`schedbench` only).
    #[must_use]
    pub fn profile(mut self, profile: bool) -> Self {
        self.params.profile = profile;
        self.profile_seen = true;
        self
    }

    /// The search strategy (`search` only).
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.search.strategy = strategy;
        self.search_seen = true;
        self
    }

    /// The search evaluation budget (`search` only).
    #[must_use]
    pub fn budget(mut self, budget: u64) -> Self {
        self.search.budget = budget;
        self.search_seen = true;
        self
    }

    /// The configuration space to search (`search` only).
    #[must_use]
    pub fn space(mut self, space: SpaceKind) -> Self {
        self.search.space = space;
        self.search_seen = true;
        self
    }

    /// Enables successive-halving racing (`search` only).
    #[must_use]
    pub fn racing(mut self, racing: bool) -> Self {
        self.search.racing = racing;
        self.search_seen = true;
        self
    }

    /// Runs only 1-based shard `shard` of a `count`-way round-robin
    /// split of the gene grid (`search` only).
    #[must_use]
    pub fn shard(mut self, shard: u32, count: u32) -> Self {
        self.search.shard = Some((shard, count));
        self.search_seen = true;
        self
    }

    /// The corpus file to load (`corpus_schedule`/`corpus_stats` only).
    #[must_use]
    pub fn input(mut self, path: impl Into<PathBuf>) -> Self {
        self.input = Some(path.into());
        self
    }

    /// Assembles the request, validating that every knob that was set
    /// applies to the kind — the same rules, word for word, that the
    /// wire parser enforces.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending knob on an unknown kind
    /// or a knob that does not apply to it.
    pub fn build(self) -> Result<Request, String> {
        let RequestBuilder {
            kind,
            params,
            params_seen,
            store_seen,
            profile_seen,
            search,
            search_seen,
            input,
        } = self;
        if search_seen && kind != "search" {
            return Err(
                "strategy/budget/space/racing/shard only apply to the search kind".to_owned(),
            );
        }
        if let Some((i, n)) = search.shard {
            if i < 1 || i > n {
                return Err(format!("shard {i}/{n} is not \"i/n\" with 1 <= i <= n"));
            }
        }
        if profile_seen && kind != "schedbench" {
            return Err("profile only applies to the schedbench kind".to_owned());
        }
        if input.is_some() && !kind.starts_with("corpus_") {
            return Err(
                "input only applies to the corpus_schedule and corpus_stats kinds".to_owned(),
            );
        }
        let reject_params = |what: &str| -> Result<(), String> {
            if params_seen {
                Err(format!("loops/buses/seed do not apply to the {what} kind"))
            } else {
                Ok(())
            }
        };
        let reject_store = |what: &str| -> Result<(), String> {
            if store_seen {
                Err(format!("store does not apply to the {what} kind"))
            } else {
                Ok(())
            }
        };
        let store = params.store.clone();
        match kind.as_str() {
            "ping" => {
                reject_params("ping")?;
                reject_store("ping")?;
                Ok(Request::Ping)
            }
            "shutdown" => {
                reject_params("shutdown")?;
                reject_store("shutdown")?;
                Ok(Request::Shutdown)
            }
            "table1" => {
                reject_params("table1")?;
                reject_store("table1")?;
                Ok(Request::Table1)
            }
            "table2" => Ok(Request::Table2(params)),
            "figure6" => Ok(Request::Figure6(params)),
            "figure7" => Ok(Request::Figure7(params)),
            "figure8" => Ok(Request::Figure8(params)),
            "figure9" => Ok(Request::Figure9(params)),
            "schedbench" => Ok(Request::SchedBench(params)),
            "familysweep" => Ok(Request::FamilySweep(params)),
            "search" => Ok(Request::Search { params, search }),
            "searchbench" => Ok(Request::SearchBench(params)),
            "corpus_schedule" => Ok(Request::CorpusSchedule { params, input }),
            "corpus_stats" => Ok(Request::CorpusStats { params, input }),
            "store_stats" => {
                reject_params("store_stats")?;
                Ok(Request::StoreStats { store })
            }
            "store_compact" => {
                reject_params("store_compact")?;
                Ok(Request::StoreCompact { store })
            }
            "metrics" => {
                reject_params("metrics")?;
                reject_store("metrics")?;
                Ok(Request::Metrics)
            }
            "" => Err("request is missing the kind key".to_owned()),
            other => Err(format!("unknown request kind {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_kind() {
        let params = RunParams {
            loops: 5,
            buses: BusSel::One,
            seed: 3,
            store: StoreConfig::none(),
            profile: false,
        };
        let stored = RunParams {
            store: StoreConfig::at("/tmp/paper store"),
            ..params.clone()
        };
        let profiled = RunParams {
            profile: true,
            ..params.clone()
        };
        let reqs = [
            Request::Ping,
            Request::Shutdown,
            Request::Table1,
            Request::Table2(params.clone()),
            Request::Figure6(params.clone()),
            Request::Figure6(stored.clone()),
            Request::Figure7(params.clone()),
            Request::Figure8(params.clone()),
            Request::Figure9(params.clone()),
            Request::SchedBench(params.clone()),
            Request::SchedBench(profiled),
            Request::FamilySweep(params.clone()),
            Request::Search {
                params: stored.clone(),
                search: SearchParams {
                    strategy: Strategy::Anneal,
                    budget: 8,
                    space: SpaceKind::Extended,
                    racing: false,
                    shard: None,
                },
            },
            Request::Search {
                params: stored,
                search: SearchParams {
                    strategy: Strategy::Genetic,
                    budget: 200,
                    space: SpaceKind::Extended,
                    racing: true,
                    shard: Some((2, 3)),
                },
            },
            Request::SearchBench(params.clone()),
            Request::CorpusSchedule {
                params: params.clone(),
                input: Some(PathBuf::from("/tmp/a corpus.json")),
            },
            Request::CorpusStats {
                params,
                input: None,
            },
            Request::StoreStats {
                store: StoreConfig::none(),
            },
            Request::StoreStats {
                store: StoreConfig::at("/tmp/paper store"),
            },
            Request::StoreCompact {
                store: StoreConfig::at("/tmp/paper store"),
            },
            Request::Metrics,
        ];
        for req in reqs {
            let wire = req.to_json_string();
            assert!(!wire.contains('\n'), "wire form is one line: {wire}");
            let back = Request::from_json_str(&wire).expect("round trip");
            assert_eq!(back, req, "through {wire}");
        }
    }

    #[test]
    fn defaults_match_the_cli() {
        let req = Request::from_json_str("{\"kind\":\"figure6\"}").unwrap();
        assert_eq!(req, Request::Figure6(RunParams::default()));
        let req = Request::from_json_str("{\"kind\":\"search\"}").unwrap();
        assert_eq!(
            req,
            Request::Search {
                params: RunParams::default(),
                search: SearchParams::default(),
            }
        );
    }

    #[test]
    fn store_key_stays_off_the_wire_when_disabled() {
        // Pre-store clients never sent a store key; post-store servers
        // must keep producing the exact same lines for store-less
        // requests (and vice versa).
        let req = Request::Figure6(RunParams {
            loops: 5,
            buses: BusSel::One,
            seed: 3,
            store: StoreConfig::none(),
            profile: false,
        });
        assert_eq!(
            req.to_json_string(),
            "{\"kind\":\"figure6\",\"loops\":5,\"buses\":\"1\",\"seed\":3}"
        );
        let req = Request::from_json_str("{\"kind\":\"figure6\",\"store\":\"target/paper-store\"}")
            .unwrap();
        assert_eq!(
            req.store().and_then(|s| s.dir.as_deref()),
            Some(std::path::Path::new("target/paper-store"))
        );
    }

    #[test]
    fn numeric_buses_accepted() {
        let req = Request::from_json_str("{\"kind\":\"figure6\",\"buses\":2}").unwrap();
        assert_eq!(
            req.params().unwrap().buses,
            BusSel::Two,
            "numeric bus selector"
        );
    }

    #[test]
    fn builder_matches_the_wire_parser() {
        let built = Request::builder("search")
            .loops(5)
            .buses(BusSel::One)
            .seed(3)
            .store(StoreConfig::at("/tmp/store"))
            .strategy(Strategy::Anneal)
            .budget(8)
            .space(SpaceKind::Extended)
            .racing(true)
            .shard(1, 4)
            .build()
            .unwrap();
        let parsed = Request::from_json_str(&built.to_json_string()).unwrap();
        assert_eq!(built, parsed, "builder and parser assemble identically");

        // The builder enforces exactly the parser's applicability rules.
        for (builder, needle) in [
            (Request::builder("ping").loops(2), "do not apply"),
            (
                Request::builder("table1").store(StoreConfig::at("/s")),
                "does not apply",
            ),
            (
                Request::builder("figure6").budget(2),
                "only apply to the search",
            ),
            (
                Request::builder("figure6").racing(true),
                "only apply to the search",
            ),
            (
                Request::builder("table2").shard(1, 2),
                "only apply to the search",
            ),
            (Request::builder("search").shard(0, 2), "1 <= i <= n"),
            (Request::builder("search").shard(3, 2), "1 <= i <= n"),
            (
                Request::builder("figure6").profile(true),
                "only applies to the schedbench",
            ),
            (Request::builder("store_stats").seed(1), "do not apply"),
            (Request::builder("search").input("x"), "corpus_schedule"),
            (Request::builder("nope"), "unknown request kind"),
        ] {
            let err = builder.build().unwrap_err();
            assert!(err.contains(needle), "{err}");
        }
    }

    #[test]
    fn strict_parsing_rejects_misuse() {
        for (json, needle) in [
            ("[1]", "must be a JSON object"),
            ("{\"kind\":\"nope\"}", "unknown request kind"),
            ("{\"loops\":5}", "missing the kind"),
            ("{\"kind\":\"figure6\",\"frobs\":1}", "unknown request key"),
            (
                "{\"kind\":\"figure6\",\"budget\":5}",
                "only apply to the search",
            ),
            ("{\"kind\":\"search\",\"input\":\"x\"}", "corpus_schedule"),
            ("{\"kind\":\"ping\",\"loops\":5}", "do not apply"),
            ("{\"kind\":\"ping\",\"store\":\"/tmp/s\"}", "does not apply"),
            ("{\"kind\":\"metrics\",\"loops\":5}", "do not apply"),
            (
                "{\"kind\":\"metrics\",\"store\":\"/tmp/s\"}",
                "does not apply",
            ),
            ("{\"kind\":\"store_stats\",\"loops\":5}", "do not apply"),
            (
                "{\"kind\":\"store_compact\",\"budget\":5}",
                "only apply to the search",
            ),
            (
                "{\"kind\":\"figure6\",\"store\":7}",
                "must be a string path",
            ),
            ("{\"kind\":\"figure6\",\"loops\":0}", "positive integer"),
            ("{\"kind\":\"figure6\",\"buses\":\"3\"}", "1, 2 or both"),
            (
                "{\"kind\":\"figure6\",\"racing\":true}",
                "only apply to the search",
            ),
            ("{\"kind\":\"search\",\"racing\":1}", "must be a bool"),
            ("{\"kind\":\"search\",\"shard\":3}", "must be a string"),
            ("{\"kind\":\"search\",\"shard\":\"3\"}", "positive integers"),
            ("{\"kind\":\"search\",\"shard\":\"0/3\"}", "1 <= i <= n"),
            ("not json", "malformed request"),
        ] {
            let err = Request::from_json_str(json).unwrap_err();
            assert!(err.contains(needle), "{json} -> {err}");
        }
    }
}
