//! The shared [`Engine`]: one executor plus process-lifetime caches,
//! executing [`Request`]s into [`Response`]s.
//!
//! The engine owns what the one-shot CLI used to rebuild on every
//! invocation: the [`Executor`] worker pool and the reference-profiled
//! suites (with their measurement memo caches). Each distinct
//! suite scale × seed × bus count × family selection × store is profiled
//! **at most once per process** — the suite cache's lock is held across
//! profiling, so concurrent requests for the same suite block on the
//! first profile instead of duplicating it — and every response carries
//! a [`CacheStats`] snapshot so that reuse is observable.
//!
//! Beneath the in-memory caches sits the persistent measurement store
//! (`vliw-store`): a request carrying a `store` directory — or any
//! request, when the engine was given a default store
//! ([`Engine::with_default_store`], the daemon's `--store`) — loads
//! reference profiles and candidate measurements from disk instead of
//! re-scheduling them, and persists whatever it had to compute. Stores
//! are opened once per engine and shared across requests; the
//! `store_stats` / `store_compact` admin requests inspect and compact
//! them.
//!
//! Rendering is ported line-for-line from the historical `paper` CLI:
//! [`Response::text`] is byte-identical to the CLI's stdout and
//! [`Response::body`] / [`Response::meta`] to its JSON artefacts, for
//! every request kind. The two deliberate exceptions to caching:
//!
//! * `searchbench` profiles a **fresh** suite outside the cache — it
//!   measures cold-cache candidate-evaluation throughput, and a warm
//!   memo cache would inflate the metric;
//! * `schedbench` does not profile a suite at all (it times the
//!   scheduler directly); with the `profile` knob it additionally turns
//!   on the workspace's per-phase timers and re-validates every
//!   schedule through `vliw-sim`, reporting the phase breakdown in the
//!   JSON record.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use std::collections::HashMap;
use std::fmt::Write as _;

use vliw_exec::Executor;
use vliw_explore::experiments::{self, ExperimentOptions, ProfiledSuite};
use vliw_explore::{run_search_scaled, run_search_shard, SpaceKind};
use vliw_ir::OpClass;
use vliw_machine::{ClockedConfig, MachineDesign, Time};
use vliw_sched::{schedule_loop_ws, Phase, SchedWorkspace, ScheduleOptions};
use vliw_sim::validate;
use vliw_store::{MeasureStore, StoreConfig};
use vliw_workloads::{classify, family_suite_seeded, suite_seeded, Benchmark, Corpus, LoopClass};

use crate::artifacts::format_bar;
use crate::request::{Request, RunParams, SearchParams};
use crate::response::{CacheStats, Response};

/// `(body, meta)` artefacts of a successful run; the human-readable text
/// accumulates in the caller's buffer (so failures keep partial output).
type Artifacts = (Option<String>, Option<String>);

/// Identity of a cached reference-profiled suite.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SuiteKey {
    /// `false` for the SPEC-calibrated suite, `true` for the generator
    /// families (`familysweep`).
    family: bool,
    loops: usize,
    seed: u64,
    buses: u32,
    /// The persistent store the suite is wired to, if any: a suite
    /// profiled without a store must not shadow one that checks disk.
    store: Option<PathBuf>,
}

/// The shared request executor: worker pool plus suite/measurement
/// caches with process lifetime.
#[derive(Debug)]
pub struct Engine {
    exec: Executor,
    suites: Mutex<HashMap<SuiteKey, Arc<ProfiledSuite>>>,
    /// Every persistent store this engine has opened, by directory. A
    /// store is opened at most once per engine so all requests share
    /// one writer log and one set of counters.
    stores: Mutex<HashMap<PathBuf, Arc<MeasureStore>>>,
    /// Store applied to requests that do not carry one (the daemon's
    /// `--store`); disabled by default.
    default_store: StoreConfig,
}

impl Engine {
    /// An engine fanning out over `jobs` worker threads (`0` = the
    /// machine's available parallelism). Results are byte-identical for
    /// every job count.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Engine {
            exec: Executor::new(jobs),
            suites: Mutex::new(HashMap::new()),
            stores: Mutex::new(HashMap::new()),
            default_store: StoreConfig::none(),
        }
    }

    /// Gives the engine a default persistent store: requests that carry
    /// no `store` of their own run against it (the daemon's `--store`).
    #[must_use]
    pub fn with_default_store(mut self, store: StoreConfig) -> Self {
        self.default_store = store;
        self
    }

    /// The store applied to requests that do not carry one.
    #[must_use]
    pub fn default_store(&self) -> &StoreConfig {
        &self.default_store
    }

    /// The executor requests fan out across.
    #[must_use]
    pub fn executor(&self) -> Executor {
        self.exec
    }

    /// Resolves and opens the store a request runs against: the
    /// request's own when enabled, else the engine default, else none.
    /// Each directory is opened once and shared across requests.
    fn store_for(&self, cfg: &StoreConfig) -> Result<Option<Arc<MeasureStore>>, String> {
        let effective = if cfg.is_enabled() {
            cfg
        } else {
            &self.default_store
        };
        let Some(dir) = effective.dir.clone() else {
            return Ok(None);
        };
        let mut stores = self.stores.lock().expect("engine store registry poisoned");
        if let Some(s) = stores.get(&dir) {
            return Ok(Some(Arc::clone(s)));
        }
        let store = Arc::new(MeasureStore::open(&dir).map_err(|e| e.to_string())?);
        stores.insert(dir, Arc::clone(&store));
        Ok(Some(store))
    }

    /// Like [`store_for`](Self::store_for), but an admin request with no
    /// store to operate on is an error instead of a silent no-op.
    fn admin_store(&self, cfg: &StoreConfig) -> Result<Arc<MeasureStore>, String> {
        self.store_for(cfg)?.ok_or_else(|| {
            "no store configured: give \"store\" in the request or start the daemon with --store"
                .to_owned()
        })
    }

    /// A snapshot of the engine's caches (profiled suites plus the
    /// measurement memo caches they carry).
    ///
    /// # Panics
    ///
    /// Panics if the suite cache lock was poisoned by a panicking
    /// request.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        let suites = self.suites.lock().expect("engine suite cache poisoned");
        let mut stats = CacheStats {
            profiled_suites: suites.len(),
            ..CacheStats::default()
        };
        for s in suites.values() {
            stats.measure_entries += s.cache().len();
            // A memo miss the disk store answered did not re-schedule
            // anything: report it as a hit, as CacheStats documents.
            let disk = s.disk_hits();
            stats.measure_hits += s.cache().hits() + disk;
            stats.measure_misses += s.cache().misses() - disk;
        }
        let stores = self.stores.lock().expect("engine store registry poisoned");
        for store in stores.values() {
            if let Ok(s) = store.stats() {
                stats.store_hits += s.hits;
                stats.store_misses += s.misses;
                stats.store_entries += s.entries() as u64;
                stats.store_bytes += s.bytes;
                stats.store_skipped_lines += s.skipped_lines;
            }
        }
        stats
    }

    /// Runs one request to completion. Failures become error responses
    /// (with any partially rendered text preserved), never a panic or a
    /// process exit.
    #[must_use]
    pub fn run(&self, req: &Request) -> Response {
        let kind = req.kind();
        vliw_obs::counter_with("engine_requests_total", "kind", kind).inc();
        let _span = vliw_obs::span_kv("engine.run", "kind", kind);
        let start = vliw_obs::timer_start();
        let mut text = String::new();
        let result = self.run_inner(req, &mut text);
        if let Some(s) = start {
            vliw_obs::histogram_with("engine_request_nanos", "kind", kind)
                .record(vliw_obs::elapsed_nanos(s));
        }
        match result {
            Ok((body, meta)) => Response::success(req, text, body, meta, self.cache_stats()),
            Err(e) => {
                vliw_obs::counter_with("engine_request_errors_total", "kind", kind).inc();
                Response::failure(req, text, e, self.cache_stats())
            }
        }
    }

    /// Runs a batch of requests through the shared caches, fanning out
    /// across the engine's worker pool. Responses come back in request
    /// order regardless of completion order.
    #[must_use]
    pub fn run_batch(&self, reqs: &[Request]) -> Vec<Response> {
        vliw_obs::histogram("engine_batch_size").record(reqs.len() as u64);
        if reqs.len() <= 1 {
            return reqs.iter().map(|r| self.run(r)).collect();
        }
        self.exec.map(reqs, |_, req| self.run(req))
    }

    /// The reference-profiled suite for one configuration, profiling it
    /// on first use and caching it for the life of the process. The lock
    /// is held across profiling so each configuration is profiled at
    /// most once even under concurrent requests.
    fn profiled(
        &self,
        family: bool,
        p: &RunParams,
        buses: u32,
    ) -> Result<Arc<ProfiledSuite>, String> {
        let store = self.store_for(&p.store)?;
        let key = SuiteKey {
            family,
            loops: p.loops,
            seed: p.seed,
            buses,
            store: store.as_ref().map(|s| s.dir().to_path_buf()),
        };
        let mut suites = self.suites.lock().expect("engine suite cache poisoned");
        if let Some(s) = suites.get(&key) {
            vliw_obs::counter("engine_suite_cache_hits_total").inc();
            return Ok(Arc::clone(s));
        }
        vliw_obs::counter("engine_suite_cache_misses_total").inc();
        let suite = if family {
            family_suite_seeded(p.loops, p.seed)
        } else {
            suite_seeded(p.loops, p.seed)
        };
        let sched = ExperimentOptions::default().sched;
        let profiled = experiments::profile_suite_stored(&suite, buses, &sched, &self.exec, store)
            .map_err(|e| e.to_string())?;
        let arc = Arc::new(profiled);
        suites.insert(key, Arc::clone(&arc));
        Ok(arc)
    }

    fn run_inner(&self, req: &Request, text: &mut String) -> Result<Artifacts, String> {
        match req {
            Request::Ping => {
                let _ = writeln!(text, "pong");
                Ok((None, None))
            }
            Request::Shutdown => {
                let _ = writeln!(text, "daemon shutting down");
                Ok((None, None))
            }
            Request::Table1 => Self::table1(text),
            Request::Table2(p) => self.table2(p, text),
            Request::Figure6(p) => self.figure6(p, text),
            Request::Figure7(p) => self.figure7(p, text),
            Request::Figure8(p) => self.figure8(p, text),
            Request::Figure9(p) => self.figure9(p, text),
            Request::SchedBench(p) => self.schedbench(p, text),
            Request::FamilySweep(p) => self.familysweep(p, text),
            Request::Search { params, search } => self.search(params, *search, text),
            Request::SearchBench(p) => self.searchbench(p, text),
            Request::CorpusSchedule { params, input } => {
                self.corpus_schedule(params, input.as_deref(), text)
            }
            Request::CorpusStats { params, input } => {
                self.corpus_stats(params, input.as_deref(), text)
            }
            Request::StoreStats { store } => self.store_stats(store, text),
            Request::StoreCompact { store } => self.store_compact(store, text),
            Request::Metrics => self.metrics(text),
        }
    }

    /// Folds the engine's cache snapshot into gauges, then renders the
    /// process-wide registry as Prometheus-style text exposition. The
    /// response text *is* the exposition (no banner), so a scraper can
    /// consume it untouched.
    fn metrics(&self, text: &mut String) -> Result<Artifacts, String> {
        let stats = self.cache_stats();
        let clamped = |n: u64| i64::try_from(n).unwrap_or(i64::MAX);
        let counted = |n: usize| i64::try_from(n).unwrap_or(i64::MAX);
        vliw_obs::gauge("engine_profiled_suites").set(counted(stats.profiled_suites));
        vliw_obs::gauge("engine_measure_cache_entries").set(counted(stats.measure_entries));
        vliw_obs::gauge("engine_measure_cache_hits").set(clamped(stats.measure_hits));
        vliw_obs::gauge("engine_measure_cache_misses").set(clamped(stats.measure_misses));
        vliw_obs::gauge("engine_store_entries").set(clamped(stats.store_entries));
        vliw_obs::gauge("engine_store_hits").set(clamped(stats.store_hits));
        vliw_obs::gauge("engine_store_misses").set(clamped(stats.store_misses));
        vliw_obs::gauge("engine_store_bytes").set(clamped(stats.store_bytes));
        text.push_str(&vliw_obs::render());
        Ok((None, None))
    }

    fn store_stats(&self, cfg: &StoreConfig, text: &mut String) -> Result<Artifacts, String> {
        let store = self.admin_store(cfg)?;
        let stats = store.stats().map_err(|e| e.to_string())?;
        let _ = writeln!(text, "\n== store stats: {} ==", store.dir().display());
        let _ = writeln!(
            text,
            "{} measurements + {} profiles + {} evals in {} log file(s), {} bytes",
            stats.measure_records,
            stats.profile_records,
            stats.eval_records,
            stats.log_files,
            stats.bytes
        );
        let _ = writeln!(
            text,
            "this process: {} hits, {} misses, {} truncated line(s) skipped",
            stats.hits, stats.misses, stats.skipped_lines
        );
        let _ = writeln!(
            text,
            "this process: {} bytes read, {} bytes written, {} lock takeover(s)",
            stats.bytes_read, stats.bytes_written, stats.lock_takeovers
        );
        let record = StoreStatsRecord {
            experiment: "store_stats".to_owned(),
            dir: store.dir().display().to_string(),
            measure_records: stats.measure_records,
            profile_records: stats.profile_records,
            eval_records: stats.eval_records,
            log_files: stats.log_files,
            bytes: stats.bytes,
            hits: stats.hits,
            misses: stats.misses,
            skipped_lines: stats.skipped_lines,
            bytes_read: stats.bytes_read,
            bytes_written: stats.bytes_written,
            lock_takeovers: stats.lock_takeovers,
        };
        Ok((Some(pretty(&record)), None))
    }

    fn store_compact(&self, cfg: &StoreConfig, text: &mut String) -> Result<Artifacts, String> {
        let store = self.admin_store(cfg)?;
        let report = store.compact().map_err(|e| e.to_string())?;
        let _ = writeln!(text, "\n== store compact: {} ==", store.dir().display());
        let _ = writeln!(
            text,
            "merged {} log(s) into compact.jsonl: {} records, {} bytes ({} live writer log(s) left alone)",
            report.merged_logs, report.records, report.bytes, report.skipped_live_logs
        );
        let record = StoreCompactRecord {
            experiment: "store_compact".to_owned(),
            dir: store.dir().display().to_string(),
            records: report.records,
            merged_logs: report.merged_logs,
            skipped_live_logs: report.skipped_live_logs,
            bytes: report.bytes,
        };
        Ok((Some(pretty(&record)), None))
    }

    fn table1(text: &mut String) -> Result<Artifacts, String> {
        let _ = writeln!(
            text,
            "\n== Table 1: latency and relative energy per instruction class =="
        );
        let _ = writeln!(text, "{:<24} {:>7} {:>7}", "class", "latency", "energy");
        let mut rows = Vec::new();
        for class in OpClass::SOURCE_CLASSES {
            let _ = writeln!(
                text,
                "{:<24} {:>7} {:>7.1}",
                class.to_string(),
                class.latency(),
                class.relative_energy()
            );
            rows.push(Table1Row {
                class: class.to_string(),
                latency: class.latency(),
                relative_energy: class.relative_energy(),
            });
        }
        Ok((Some(pretty(&rows)), None))
    }

    fn table2(&self, p: &RunParams, text: &mut String) -> Result<Artifacts, String> {
        let _ = writeln!(
            text,
            "\n== Table 2: % execution time per constraint class =="
        );
        let rows = experiments::table2_with(&suite_seeded(p.loops, p.seed), &self.exec);
        let _ = writeln!(
            text,
            "{:<14} {:>14} {:>26} {:>18}",
            "benchmark", "recMII<resMII", "resMII<=recMII<1.3resMII", "1.3resMII<=recMII"
        );
        for r in &rows {
            let _ = writeln!(
                text,
                "{:<14} {:>13.2}% {:>25.2}% {:>17.2}%",
                r.benchmark, r.resource_pct, r.borderline_pct, r.recurrence_pct
            );
        }
        Ok((Some(pretty(&rows)), Some(run_meta("table2", p))))
    }

    fn figure6(&self, p: &RunParams, text: &mut String) -> Result<Artifacts, String> {
        let _ = writeln!(
            text,
            "\n== Figure 6: ED2 of heterogeneous, normalised to optimum homogeneous =="
        );
        let opts = ExperimentOptions::default();
        let mut all = Vec::new();
        for &buses in p.buses.list() {
            let _ = writeln!(text, "-- {buses} bus(es) --");
            let profiled = self.profiled(false, p, buses)?;
            let rows = experiments::figure6_with(&profiled, &opts, &self.exec)
                .map_err(|e| e.to_string())?;
            for r in &rows {
                let _ = writeln!(text, "{}", format_bar(&r.benchmark, r.ed2_normalized));
            }
            let _ = writeln!(
                text,
                "{}",
                format_bar("mean", experiments::mean_normalized(&rows))
            );
            all.extend(rows);
        }
        Ok((Some(pretty(&all)), Some(run_meta("figure6", p))))
    }

    fn figure7(&self, p: &RunParams, text: &mut String) -> Result<Artifacts, String> {
        let _ = writeln!(
            text,
            "\n== Figure 7: ED2 vs number of supported frequencies =="
        );
        let opts = ExperimentOptions::default();
        let mut all = Vec::new();
        for &buses in p.buses.list() {
            let _ = writeln!(text, "-- {buses} bus(es) --");
            let profiled = self.profiled(false, p, buses)?;
            let rows = experiments::figure7_with(&profiled, &opts, &self.exec)
                .map_err(|e| e.to_string())?;
            for r in &rows {
                let _ = writeln!(text, "{}", format_bar(&r.menu, r.mean_ed2_normalized));
            }
            all.extend(rows);
        }
        Ok((Some(pretty(&all)), Some(run_meta("figure7", p))))
    }

    fn figure8(&self, p: &RunParams, text: &mut String) -> Result<Artifacts, String> {
        let _ = writeln!(text, "\n== Figure 8: ED2 vs ICN/cache energy shares ==");
        let opts = ExperimentOptions::default();
        let mut all = Vec::new();
        for &buses in p.buses.list() {
            let _ = writeln!(text, "-- {buses} bus(es) --");
            let profiled = self.profiled(false, p, buses)?;
            let rows = experiments::figure8_with(&profiled, &opts, &self.exec)
                .map_err(|e| e.to_string())?;
            for r in &rows {
                let label = format!(
                    ".{:<2} / {:.2}",
                    (r.icn_share * 100.0) as u32,
                    r.cache_share
                );
                let _ = writeln!(text, "{}", format_bar(&label, r.mean_ed2_normalized));
            }
            all.extend(rows);
        }
        Ok((Some(pretty(&all)), Some(run_meta("figure8", p))))
    }

    fn figure9(&self, p: &RunParams, text: &mut String) -> Result<Artifacts, String> {
        let _ = writeln!(
            text,
            "\n== Figure 9: ED2 vs leakage shares (cluster/ICN/cache) =="
        );
        let opts = ExperimentOptions::default();
        let mut all = Vec::new();
        for &buses in p.buses.list() {
            let _ = writeln!(text, "-- {buses} bus(es) --");
            let profiled = self.profiled(false, p, buses)?;
            let rows = experiments::figure9_with(&profiled, &opts, &self.exec)
                .map_err(|e| e.to_string())?;
            for r in &rows {
                let label = format!(
                    "{:.2}/{:.2}/{:.2}",
                    r.leak_cluster, r.leak_icn, r.leak_cache
                );
                let _ = writeln!(text, "{}", format_bar(&label, r.mean_ed2_normalized));
            }
            all.extend(rows);
        }
        Ok((Some(pretty(&all)), Some(run_meta("figure9", p))))
    }

    fn schedbench(&self, p: &RunParams, text: &mut String) -> Result<Artifacts, String> {
        let _ = writeln!(
            text,
            "\n== schedbench: scheduler throughput (loops/second) =="
        );
        let suite = suite_seeded(p.loops, p.seed);
        let design = MachineDesign::paper_machine(1);
        let configs = [
            ClockedConfig::reference(design),
            ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(1.5)),
        ];
        let base_opts = ScheduleOptions::default();
        // One workspace for the whole run, exactly as the exploration
        // pipeline holds one per worker thread.
        let mut ws = SchedWorkspace::new();
        if p.profile {
            ws.enable_profiling();
        }
        let mut scheduled = 0u64;
        let start = Instant::now();
        for bench in &suite {
            for l in &bench.loops {
                let mut opts = base_opts.clone();
                opts.trip_count = l.trip_count();
                for config in &configs {
                    let sched = schedule_loop_ws(l.ddg(), config, None, &opts, &mut ws)
                        .map_err(|e| format!("schedbench: {e}"))?;
                    scheduled += 1;
                    // The profiled variant also re-validates each
                    // schedule through `vliw-sim`, timed as the
                    // `validate` phase — the one pipeline phase the
                    // scheduler itself never runs.
                    if p.profile {
                        let t0 = Instant::now();
                        validate(l.ddg(), config, &sched)
                            .map_err(|v| format!("schedbench: validation failed: {v:?}"))?;
                        let elapsed = t0.elapsed();
                        if let Some(prof) = ws.profile_mut() {
                            prof.add(Phase::Validate, elapsed);
                        }
                    }
                }
            }
        }
        let wall = start.elapsed().as_secs_f64();
        let lps = if wall > 0.0 {
            scheduled as f64 / wall
        } else {
            f64::INFINITY
        };
        let _ = writeln!(
            text,
            "scheduled {scheduled} loops in {wall:.3} s => {lps:.1} loops/s"
        );
        let phases = ws.profile().map(|prof| {
            let mut rows = Vec::with_capacity(Phase::ALL.len());
            for ph in Phase::ALL {
                // Mirror the profile into the process-wide registry so a
                // scrape sees the phase breakdown as histograms. The
                // profile only carries per-phase totals, so each phase
                // is folded in at its mean entry cost.
                vliw_obs::histogram_with("sched_phase_nanos", "phase", ph.name())
                    .record_aggregate(prof.nanos(ph), prof.count(ph));
                let row = PhaseRow {
                    phase: ph.name().to_owned(),
                    nanos: prof.nanos(ph),
                    entries: prof.count(ph),
                    share_of_wall: if wall > 0.0 {
                        prof.seconds(ph) / wall
                    } else {
                        0.0
                    },
                };
                let _ = writeln!(
                    text,
                    "  phase {:<9} {:>9.3} ms  ({:>5.1}% of wall, {} entries)",
                    row.phase,
                    row.nanos as f64 / 1e6,
                    row.share_of_wall * 100.0,
                    row.entries
                );
                rows.push(row);
            }
            let accounted = prof.total_nanos();
            let _ = writeln!(
                text,
                "  phases account for {:.3} ms of {:.3} ms wall",
                accounted as f64 / 1e6,
                wall * 1e3
            );
            rows
        });
        let body = match phases {
            Some(phases) => pretty(&SchedBenchProfiledRecord {
                experiment: "schedbench".to_owned(),
                loops_per_benchmark: p.loops,
                loops_scheduled: scheduled,
                wall_time_s: wall,
                loops_per_second: lps,
                phases,
            }),
            None => pretty(&SchedBenchRecord {
                experiment: "schedbench".to_owned(),
                loops_per_benchmark: p.loops,
                loops_scheduled: scheduled,
                wall_time_s: wall,
                loops_per_second: lps,
            }),
        };
        Ok((Some(body), None))
    }

    fn familysweep(&self, p: &RunParams, text: &mut String) -> Result<Artifacts, String> {
        let _ = writeln!(
            text,
            "\n== familysweep: ED2 of generator families across figure-6/7 configs =="
        );
        let opts = ExperimentOptions::default();
        let mut all = Vec::new();
        for &buses in p.buses.list() {
            let _ = writeln!(text, "-- {buses} bus(es) --");
            let profiled = self.profiled(true, p, buses)?;
            let rows = experiments::familysweep_with(&profiled, &opts, &self.exec)
                .map_err(|e| e.to_string())?;
            for r in &rows {
                let label = format!("{}/{}", r.family, r.menu);
                let _ = writeln!(text, "{}", format_bar(&label, r.ed2_normalized));
            }
            all.extend(rows);
        }
        Ok((Some(pretty(&all)), Some(run_meta("familysweep", p))))
    }

    fn search(
        &self,
        p: &RunParams,
        sp: SearchParams,
        text: &mut String,
    ) -> Result<Artifacts, String> {
        let _ = writeln!(
            text,
            "\n== search: {} over the {} space ==",
            sp.strategy,
            sp.space.name()
        );
        let buses: Vec<u32> = match sp.space {
            SpaceKind::Paper => vec![p.buses.list()[0]],
            SpaceKind::Extended => p.buses.list().to_vec(),
        };
        let suites: Vec<Arc<ProfiledSuite>> = buses
            .iter()
            .map(|&b| self.profiled(false, p, b))
            .collect::<Result<_, _>>()?;
        let suite_refs: Vec<&ProfiledSuite> = suites.iter().map(Arc::as_ref).collect();
        let opts = ExperimentOptions::default();
        if let Some((shard, shard_count)) = sp.shard {
            let result = run_search_shard(
                sp.space,
                sp.strategy,
                sp.budget,
                p.seed,
                &suite_refs,
                &opts,
                &self.exec,
                sp.racing,
                shard,
                shard_count,
            );
            let report = &result.report;
            let _ = writeln!(
                text,
                "shard {}/{}: {} of {} candidates, budget {}, seed {}: {} evaluations, \
                 {} frontier points",
                report.shard,
                report.shard_count,
                report.shard_size,
                report.space_size,
                report.budget,
                report.seed,
                report.evaluations,
                report.frontier.len()
            );
            if sp.racing {
                let _ = writeln!(
                    text,
                    "racing: {} candidates screened on the subsample suite",
                    result.stats.screened
                );
            }
            render_frontier(text, report.best.as_ref(), &report.frontier);
            let meta = pretty(&ShardSearchMeta {
                experiment: "search_shard".to_owned(),
                strategy: sp.strategy.name().to_owned(),
                space: sp.space.name().to_owned(),
                budget: sp.budget,
                seed: p.seed,
                loops_per_benchmark: p.loops,
                buses,
                racing: sp.racing,
                screened: result.stats.screened,
                shard,
                shard_count,
            });
            return Ok((Some(pretty(report)), Some(meta)));
        }
        let result = run_search_scaled(
            sp.space,
            sp.strategy,
            sp.budget,
            p.seed,
            &suite_refs,
            &opts,
            &self.exec,
            sp.racing,
        );
        let report = &result.report;
        let _ = writeln!(
            text,
            "space {} ({} candidates), budget {}, seed {}: {} evaluations, {} frontier points",
            report.space,
            report.space_size,
            report.budget,
            report.seed,
            report.evaluations,
            report.frontier.len()
        );
        if sp.racing {
            let _ = writeln!(
                text,
                "racing: {} candidates screened on the subsample suite",
                result.stats.screened
            );
        }
        render_frontier(text, report.best.as_ref(), &report.frontier);
        let meta = pretty(&SearchMeta {
            experiment: "search".to_owned(),
            strategy: sp.strategy.name().to_owned(),
            space: sp.space.name().to_owned(),
            budget: sp.budget,
            seed: p.seed,
            loops_per_benchmark: p.loops,
            buses,
            racing: sp.racing,
            screened: result.stats.screened,
        });
        Ok((Some(pretty(report)), Some(meta)))
    }

    fn searchbench(&self, p: &RunParams, text: &mut String) -> Result<Artifacts, String> {
        use vliw_search::Strategy;

        let _ = writeln!(
            text,
            "\n== searchbench: candidate evaluations/second (paper grid) =="
        );
        let opts = ExperimentOptions::default();
        // Deliberately cold: a fresh profile outside the engine's suite
        // cache AND outside any configured disk store, so the
        // evals/second metric is comparable across runs instead of
        // inflated by a warm memo cache or a pre-populated store.
        let suite = suite_seeded(p.loops, p.seed);
        let profiled = experiments::profile_suite_with(&suite, 1, &opts.sched, &self.exec)
            .map_err(|e| e.to_string())?;
        let budget = 64; // > grid size, so every run spends exactly 20 evals
        let start = Instant::now();
        // Racing is on: the bench measures the throughput of the search
        // as it actually runs at scale, screens included.
        let result = run_search_scaled(
            SpaceKind::Paper,
            Strategy::HillClimb,
            budget,
            p.seed,
            &[&profiled],
            &opts,
            &self.exec,
            true,
        );
        let wall = start.elapsed().as_secs_f64();
        let report = &result.report;
        let screened = result.stats.screened;
        let eps = if wall > 0.0 {
            report.evaluations as f64 / wall
        } else {
            f64::INFINITY
        };
        // A screened candidate is a disposed candidate too: the search
        // learned its subsample rank without paying a full-suite
        // measurement for it.
        let effective = if wall > 0.0 {
            (report.evaluations + screened) as f64 / wall
        } else {
            f64::INFINITY
        };
        let _ = writeln!(
            text,
            "evaluated {} candidates (+{screened} screened) in {wall:.3} s => {eps:.2} evals/s \
             ({effective:.2} effective)",
            report.evaluations
        );
        // disk_hits is 0 by construction (no store attached); keeping
        // the subtraction makes the cold-path claim self-checking.
        let measure_misses = profiled.cache().misses() - profiled.disk_hits();
        let _ = writeln!(
            text,
            "{measure_misses} measurements executed cold (disk store bypassed)"
        );
        let record = SearchBenchRecord {
            experiment: "searchbench".to_owned(),
            loops_per_benchmark: p.loops,
            budget,
            evaluations: report.evaluations,
            screened,
            measure_misses,
            wall_time_s: wall,
            search_evals_per_second: eps,
            effective_evals_per_second: effective,
        };
        Ok((Some(pretty(&record)), None))
    }

    fn corpus_schedule(
        &self,
        p: &RunParams,
        input: Option<&Path>,
        text: &mut String,
    ) -> Result<Artifacts, String> {
        let _ = writeln!(
            text,
            "\n== corpus schedule: per-loop modulo schedules (validated) =="
        );
        let (benches, source) = match input {
            Some(path) => (
                Corpus::load(path).map_err(|e| e.to_string())?.benchmarks,
                path.display().to_string(),
            ),
            None => (
                corpus_benchmarks(p.loops, p.seed),
                "in-memory suite".to_owned(),
            ),
        };
        let design = MachineDesign::paper_machine(1);
        let configs = [
            ("reference", ClockedConfig::reference(design)),
            (
                "heterogeneous",
                ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(1.5)),
            ),
        ];
        let jobs: Vec<(&str, &vliw_ir::Loop)> = benches
            .iter()
            .flat_map(|b| b.loops.iter().map(move |l| (b.name.as_str(), l)))
            .collect();
        let per_loop = self.exec.try_map_init(
            &jobs,
            SchedWorkspace::new,
            |ws, _, &(bench, l)| -> Result<Vec<CorpusScheduleRow>, String> {
                let mut rows = Vec::with_capacity(configs.len());
                for (config_name, config) in &configs {
                    let opts = ScheduleOptions {
                        trip_count: l.trip_count(),
                        ..ScheduleOptions::default()
                    };
                    let s = schedule_loop_ws(l.ddg(), config, None, &opts, ws)
                        .map_err(|e| format!("{bench}/{}: {e}", l.ddg().name()))?;
                    validate(l.ddg(), config, &s).map_err(|violations| {
                        format!(
                            "{bench}/{}: schedule failed validation: {}",
                            l.ddg().name(),
                            violations
                                .first()
                                .map_or_else(|| "unknown violation".to_owned(), |v| v.to_string())
                        )
                    })?;
                    rows.push(CorpusScheduleRow {
                        benchmark: bench.to_owned(),
                        loop_name: l.ddg().name().to_owned(),
                        ops: l.ddg().num_ops(),
                        edges: l.ddg().num_edges(),
                        config: (*config_name).to_owned(),
                        it_ns: s.it().as_ns(),
                        exec_time_ns: s.exec_time(l.trip_count()).as_ns(),
                        comms_per_iter: s.comms_per_iter(),
                        mem_accesses_per_iter: s.mem_accesses_per_iter(),
                    });
                }
                Ok(rows)
            },
        )?;
        let rows: Vec<CorpusScheduleRow> = per_loop.into_iter().flatten().collect();
        let _ = writeln!(
            text,
            "scheduled and validated {} loops x {} configs from {source}",
            jobs.len(),
            configs.len()
        );
        let meta = pretty(&CorpusMeta::new("schedule", p.loops, input));
        Ok((Some(pretty(&rows)), Some(meta)))
    }

    fn corpus_stats(
        &self,
        p: &RunParams,
        input: Option<&Path>,
        text: &mut String,
    ) -> Result<Artifacts, String> {
        let _ = writeln!(text, "\n== corpus stats: per-benchmark structure ==");
        let benches = match input {
            Some(path) => Corpus::load(path).map_err(|e| e.to_string())?.benchmarks,
            None => corpus_benchmarks(p.loops, p.seed),
        };
        let design = MachineDesign::paper_machine(1);
        let mut rows = Vec::with_capacity(benches.len());
        let _ = writeln!(
            text,
            "{:<14} {:>5} {:>6} {:>6} {:>7} {:>7} {:>7} {:>8} {:>7}",
            "benchmark", "loops", "ops", "edges", "res%", "bord%", "rec%", "recMII~", "recMII^"
        );
        for b in &benches {
            let mut shares = [0.0f64; 3];
            let mut rec_sum = 0u64;
            let mut rec_max = 0u32;
            for l in &b.loops {
                let class = classify(l.ddg(), design);
                let idx = LoopClass::ALL
                    .iter()
                    .position(|&c| c == class)
                    .expect("3 classes");
                shares[idx] += l.weight();
                let rm = l.ddg().rec_mii();
                rec_sum += u64::from(rm);
                rec_max = rec_max.max(rm);
            }
            let row = CorpusStatsRow {
                benchmark: b.name.clone(),
                loops: b.loops.len(),
                total_ops: b.loops.iter().map(|l| l.ddg().num_ops()).sum(),
                total_edges: b.loops.iter().map(|l| l.ddg().num_edges()).sum(),
                resource_pct: shares[0] * 100.0,
                borderline_pct: shares[1] * 100.0,
                recurrence_pct: shares[2] * 100.0,
                mean_rec_mii: rec_sum as f64 / b.loops.len() as f64,
                max_rec_mii: rec_max,
            };
            let _ = writeln!(
                text,
                "{:<14} {:>5} {:>6} {:>6} {:>6.1}% {:>6.1}% {:>6.1}% {:>8.2} {:>7}",
                row.benchmark,
                row.loops,
                row.total_ops,
                row.total_edges,
                row.resource_pct,
                row.borderline_pct,
                row.recurrence_pct,
                row.mean_rec_mii,
                row.max_rec_mii
            );
            rows.push(row);
        }
        let meta = pretty(&CorpusMeta::new("stats", p.loops, input));
        Ok((Some(pretty(&rows)), Some(meta)))
    }
}

/// The corpus composition shared by `corpus dump` and the in-memory path
/// of `corpus schedule`/`corpus stats`: the ten SPEC-calibrated
/// benchmarks plus the four generator families, all at the same
/// per-benchmark scale.
#[must_use]
pub fn corpus_benchmarks(loops: usize, seed: u64) -> Vec<Benchmark> {
    let mut benches = suite_seeded(loops, seed);
    benches.extend(family_suite_seeded(loops, seed));
    benches
}

/// Sidecar metadata for the corpus requests. Unlike the experiment
/// sidecars it records where the loops actually came from: the
/// generation scale is only meaningful for generated (in-memory)
/// corpora — rows computed from an input file inherit that file's
/// scale, whatever it was — and the bus selection is not a corpus knob
/// at all.
#[derive(Debug, serde::Serialize)]
pub struct CorpusMeta {
    /// Which corpus subcommand produced the artefact.
    pub subcommand: String,
    /// `"generated"` for in-memory suites, else the input file path.
    pub source: String,
    /// Scale of a generated corpus; `None` when loops came from a file.
    pub loops_per_benchmark: Option<usize>,
}

impl CorpusMeta {
    /// Sidecar for `subcommand` describing a generated (`input: None`)
    /// or loaded corpus.
    #[must_use]
    pub fn new(subcommand: &str, loops: usize, input: Option<&Path>) -> Self {
        CorpusMeta {
            subcommand: subcommand.to_owned(),
            source: input.map_or_else(|| "generated".to_owned(), |p| p.display().to_string()),
            loops_per_benchmark: input.is_none().then_some(loops),
        }
    }
}

/// Renders the best line and the frontier rows of a search (or search
/// shard) run. Shared so the shard path prints candidates exactly as
/// the unsharded path does — the labels carry global indices either
/// way.
fn render_frontier(
    text: &mut String,
    best: Option<&vliw_explore::search::FrontierRow>,
    frontier: &[vliw_explore::search::FrontierRow],
) {
    match best {
        Some(best) => {
            let _ = writeln!(
                text,
                "best: index {} | {} bus(es), {} fast, fast {:.2} ns, slow {:.2} ns, \
                 Vdd {:.2}/{:.2}/{:.2}/{:.2} V | ED2 {:.6e}",
                best.index,
                best.buses,
                best.num_fast,
                best.fast_cycle_ns,
                best.slow_cycle_ns,
                best.vdd_fast,
                best.vdd_slow,
                best.vdd_icn,
                best.vdd_cache,
                best.ed2
            );
        }
        None => {
            let _ = writeln!(text, "best: no feasible candidate found within the budget");
        }
    }
    for row in frontier {
        let label = format!(
            "#{} {}b {}f {:.2}/{:.2}ns",
            row.index, row.buses, row.num_fast, row.fast_cycle_ns, row.slow_cycle_ns
        );
        let _ = writeln!(
            text,
            "{label:<28} time {:>12.1} ns  energy {:>8.4}  ED2 {:.6e}",
            row.exec_time_ns, row.energy, row.ed2
        );
    }
}

/// Serialises `rows` exactly as the artefact files store them.
fn pretty<T: serde::Serialize>(rows: &T) -> String {
    serde_json::to_string_pretty(rows).expect("serialise rows")
}

/// Sidecar metadata describing which suite scale a row dump came from.
#[derive(serde::Serialize)]
struct DumpMeta {
    experiment: String,
    loops_per_benchmark: usize,
    buses: Vec<u32>,
    seed: u64,
}

/// The `<name>.meta.json` sidecar body for a suite-scale experiment.
fn run_meta(name: &str, p: &RunParams) -> String {
    pretty(&DumpMeta {
        experiment: name.to_owned(),
        loops_per_benchmark: p.loops,
        buses: p.buses.list().to_vec(),
        seed: p.seed,
    })
}

/// One row of Table 1, serialised alongside the printed table.
#[derive(serde::Serialize)]
struct Table1Row {
    class: String,
    latency: u32,
    relative_energy: f64,
}

/// One `schedbench` record: raw scheduler throughput on the synthetic
/// suite (wall-clock; not byte-stable — it feeds the CI perf gate).
#[derive(serde::Serialize)]
struct SchedBenchRecord {
    experiment: String,
    loops_per_benchmark: usize,
    loops_scheduled: u64,
    wall_time_s: f64,
    loops_per_second: f64,
}

/// The `schedbench --profile` record: the throughput fields of
/// [`SchedBenchRecord`] plus the per-phase breakdown. A separate shape
/// (rather than an optional field) so unprofiled records stay
/// byte-compatible with their historical form.
#[derive(serde::Serialize)]
struct SchedBenchProfiledRecord {
    experiment: String,
    loops_per_benchmark: usize,
    loops_scheduled: u64,
    wall_time_s: f64,
    loops_per_second: f64,
    phases: Vec<PhaseRow>,
}

/// One phase of the profiled `schedbench` breakdown.
#[derive(serde::Serialize)]
struct PhaseRow {
    phase: String,
    nanos: u64,
    entries: u64,
    share_of_wall: f64,
}

/// One `searchbench` record: candidate-evaluation throughput
/// (wall-clock; not byte-stable — it feeds the CI perf gate).
#[derive(serde::Serialize)]
struct SearchBenchRecord {
    experiment: String,
    loops_per_benchmark: usize,
    budget: u64,
    evaluations: u64,
    /// Candidates ranked on the subsample suite by the racing screen
    /// (the bench always races).
    screened: u64,
    /// Configurations actually measured (scheduler executions). Equal
    /// whether or not a warm store exists on disk — the bench bypasses
    /// it by design.
    measure_misses: u64,
    wall_time_s: f64,
    search_evals_per_second: f64,
    /// Candidates disposed of per second: full measurements plus
    /// subsample screens, over the same wall clock.
    effective_evals_per_second: f64,
}

/// The `store_stats` admin record (disk state; not byte-stable).
#[derive(serde::Serialize)]
struct StoreStatsRecord {
    experiment: String,
    dir: String,
    measure_records: usize,
    profile_records: usize,
    eval_records: usize,
    log_files: usize,
    bytes: u64,
    hits: u64,
    misses: u64,
    skipped_lines: u64,
    /// Log bytes this process read back, across every store it opened.
    bytes_read: u64,
    /// Log bytes this process appended, across every store it opened.
    bytes_written: u64,
    /// Stale writer-log locks this process broke and took over.
    lock_takeovers: u64,
}

/// The `store_compact` admin record (disk state; not byte-stable).
#[derive(serde::Serialize)]
struct StoreCompactRecord {
    experiment: String,
    dir: String,
    records: usize,
    merged_logs: usize,
    skipped_live_logs: usize,
    bytes: u64,
}

/// Sidecar for the `search` experiment: every knob that shaped the run.
///
/// `screened` is derived, not a knob, but it is a pure function of the
/// knobs (racing screens a deterministic candidate set), so recording
/// it here keeps the sidecar byte-stable across cold and store-warmed
/// replays of the same request.
#[derive(serde::Serialize)]
struct SearchMeta {
    experiment: String,
    strategy: String,
    space: String,
    budget: u64,
    seed: u64,
    loops_per_benchmark: usize,
    buses: Vec<u32>,
    racing: bool,
    screened: u64,
}

/// Sidecar for a sharded `search` run: [`SearchMeta`]'s knobs plus the
/// shard coordinates. A separate shape (rather than always-present
/// shard fields on [`SearchMeta`]) so unsharded sidecars stay free of
/// placeholder coordinates.
#[derive(serde::Serialize)]
struct ShardSearchMeta {
    experiment: String,
    strategy: String,
    space: String,
    budget: u64,
    seed: u64,
    loops_per_benchmark: usize,
    buses: Vec<u32>,
    racing: bool,
    screened: u64,
    shard: u32,
    shard_count: u32,
}

/// One `corpus schedule` row: one loop modulo-scheduled (and validated)
/// on one configuration.
#[derive(serde::Serialize)]
struct CorpusScheduleRow {
    benchmark: String,
    loop_name: String,
    ops: usize,
    edges: usize,
    config: String,
    it_ns: f64,
    exec_time_ns: f64,
    comms_per_iter: u64,
    mem_accesses_per_iter: u64,
}

/// One `corpus stats` row: a benchmark summarised.
#[derive(serde::Serialize)]
struct CorpusStatsRow {
    benchmark: String,
    loops: usize,
    total_ops: usize,
    total_edges: usize,
    resource_pct: f64,
    borderline_pct: f64,
    recurrence_pct: f64,
    mean_rec_mii: f64,
    max_rec_mii: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{BusSel, SearchParams};

    fn small() -> RunParams {
        RunParams {
            loops: 2,
            buses: BusSel::One,
            seed: 0,
            store: StoreConfig::none(),
            profile: false,
        }
    }

    /// A unique, cleaned-up temp directory for a store test.
    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vliw-api-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn runs_are_deterministic_and_cached() {
        let engine = Engine::new(1);
        let req = Request::Figure6(small());
        let first = engine.run(&req);
        assert!(first.ok, "first run failed: {:?}", first.error);
        let misses_after_first = first.cache.measure_misses;
        assert_eq!(first.cache.profiled_suites, 1);
        let second = engine.run(&req);
        assert_eq!(second.text, first.text, "stdout rendering is byte-stable");
        assert_eq!(second.body, first.body, "artefact body is byte-stable");
        assert_eq!(second.meta, first.meta, "sidecar is byte-stable");
        assert_eq!(
            second.cache.measure_misses, misses_after_first,
            "a warm second request does no re-measurements"
        );
        assert!(
            second.cache.measure_hits > first.cache.measure_hits,
            "the warm run was served from the memo cache"
        );
    }

    #[test]
    fn batches_preserve_request_order() {
        let engine = Engine::new(2);
        let reqs = vec![
            Request::Ping,
            Request::Table1,
            Request::Table2(small()),
            Request::Figure6(small()),
        ];
        let resps = engine.run_batch(&reqs);
        assert_eq!(resps.len(), reqs.len());
        for (req, resp) in reqs.iter().zip(&resps) {
            assert!(resp.ok, "{} failed: {:?}", req.kind(), resp.error);
            assert_eq!(resp.kind, req.kind());
        }
    }

    #[test]
    fn failures_become_error_responses() {
        let engine = Engine::new(1);
        let resp = engine.run(&Request::CorpusStats {
            params: small(),
            input: Some(std::path::PathBuf::from("/no/such/corpus.json")),
        });
        assert!(!resp.ok);
        assert!(resp.error.is_some());
        assert!(
            resp.text.contains("corpus stats"),
            "partial text is preserved: {:?}",
            resp.text
        );
    }

    #[test]
    fn search_runs_through_the_shared_suite_cache() {
        let engine = Engine::new(1);
        let f6 = engine.run(&Request::Figure6(small()));
        assert!(f6.ok);
        let suites_before = f6.cache.profiled_suites;
        let resp = engine.run(&Request::Search {
            params: small(),
            search: SearchParams {
                budget: 4,
                ..SearchParams::default()
            },
        });
        assert!(resp.ok, "{:?}", resp.error);
        assert_eq!(
            resp.cache.profiled_suites, suites_before,
            "search reused the profiled suite instead of re-profiling"
        );
    }

    #[test]
    fn warm_store_spans_engines_and_preserves_bytes() {
        let dir = temp_store("warm");
        let stored = RunParams {
            store: StoreConfig::at(&dir),
            ..small()
        };
        let req = Request::Figure6(stored);

        let cold = Engine::new(1).run(&req);
        assert!(cold.ok, "cold run failed: {:?}", cold.error);
        assert!(cold.cache.measure_misses > 0, "the cold run measured");
        assert!(cold.cache.store_entries > 0, "the cold run persisted");

        // A brand-new engine (fresh memo caches, same directory) must
        // resolve every profile and measurement from disk.
        let warm = Engine::new(1).run(&req);
        assert!(warm.ok, "warm run failed: {:?}", warm.error);
        assert_eq!(
            warm.cache.measure_misses, 0,
            "a warm store leaves nothing to re-schedule: {:?}",
            warm.cache
        );
        assert!(warm.cache.store_hits > 0, "served from disk");
        assert_eq!(warm.text, cold.text, "stdout rendering is byte-stable");
        assert_eq!(warm.body, cold.body, "artefact body is byte-stable");
        assert_eq!(warm.meta, cold.meta, "sidecar is byte-stable");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn searchbench_bypasses_the_warm_store() {
        let dir = temp_store("searchbench");
        let stored = RunParams {
            store: StoreConfig::at(&dir),
            ..small()
        };
        // Warm the store with exactly the measurements searchbench's
        // internal run performs (paper grid, hillclimb, budget 64, same
        // loops/seed, 1 bus).
        let warmup = Engine::new(1).run(&Request::Search {
            params: stored.clone(),
            search: SearchParams::default(),
        });
        assert!(warmup.ok, "{:?}", warmup.error);

        let misses = |resp: &Response| -> u64 {
            let body: serde_json::Value =
                serde_json::from_str(resp.body.as_deref().expect("record body")).expect("json");
            body.get("measure_misses")
                .and_then(serde_json::Value::as_u64)
                .expect("measure_misses field")
        };
        let with_store = Engine::new(1).run(&Request::SearchBench(stored));
        assert!(with_store.ok, "{:?}", with_store.error);
        let without_store = Engine::new(1).run(&Request::SearchBench(small()));
        assert!(without_store.ok, "{:?}", without_store.error);

        // Cold-path honesty: the warm store on disk changed nothing —
        // every candidate measurement was executed, not loaded.
        assert!(misses(&with_store) > 0, "the bench measured something");
        assert_eq!(
            misses(&with_store),
            misses(&without_store),
            "a warm store must not shortcut the throughput bench"
        );
        assert_eq!(
            with_store.cache.store_hits, 0,
            "the bench never touched the store"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_admin_requests_inspect_and_compact() {
        let dir = temp_store("admin");

        // Without any store configured, admin requests fail loudly.
        let none = Engine::new(1).run(&Request::StoreStats {
            store: StoreConfig::none(),
        });
        assert!(!none.ok);
        assert!(
            none.error
                .as_deref()
                .unwrap_or("")
                .contains("no store configured"),
            "{:?}",
            none.error
        );

        // Populate, then inspect through the engine's default store
        // (the daemon's --store path: requests carry no store of their
        // own).
        let engine = Engine::new(1).with_default_store(StoreConfig::at(&dir));
        let run = engine.run(&Request::Figure6(small()));
        assert!(run.ok, "{:?}", run.error);
        assert!(
            run.cache.store_entries > 0,
            "the default store captured the run: {:?}",
            run.cache
        );
        let stats = engine.run(&Request::StoreStats {
            store: StoreConfig::none(),
        });
        assert!(stats.ok, "{:?}", stats.error);
        assert!(stats.text.contains("store stats"), "{}", stats.text);

        let compact = engine.run(&Request::StoreCompact {
            store: StoreConfig::none(),
        });
        assert!(compact.ok, "{:?}", compact.error);
        let body: serde_json::Value =
            serde_json::from_str(compact.body.as_deref().expect("record")).expect("json");
        assert!(
            body.get("records")
                .and_then(serde_json::Value::as_u64)
                .unwrap()
                > 0,
            "compaction kept the records: {body:?}"
        );
        assert!(
            dir.join("compact.jsonl").exists(),
            "the compacted log exists"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_search_replays_from_the_store_byte_for_byte() {
        for racing in [false, true] {
            let dir = temp_store(if racing { "searchwarm-r" } else { "searchwarm" });
            let stored = RunParams {
                store: StoreConfig::at(&dir),
                ..small()
            };
            let req = Request::Search {
                params: stored,
                search: SearchParams {
                    budget: 12,
                    racing,
                    ..SearchParams::default()
                },
            };

            let cold = Engine::new(1).run(&req);
            assert!(cold.ok, "cold run failed: {:?}", cold.error);
            assert!(cold.cache.measure_misses > 0, "the cold run measured");

            // A brand-new engine (fresh memo caches, same directory)
            // warm-starts every evaluation from the persisted records.
            let warm = Engine::new(1).run(&req);
            assert!(warm.ok, "warm run failed: {:?}", warm.error);
            assert!(warm.cache.store_hits > 0, "served from disk");
            assert_eq!(
                warm.cache.measure_misses, 0,
                "a warm store leaves nothing to re-measure (racing={racing}): {:?}",
                warm.cache
            );
            assert_eq!(warm.text, cold.text, "stdout rendering is byte-stable");
            assert_eq!(warm.body, cold.body, "frontier/best/trace are byte-stable");
            assert_eq!(warm.meta, cold.meta, "sidecar is byte-stable");

            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn sharded_searches_merge_to_the_unsharded_frontier() {
        use vliw_explore::{merge_shard_reports, ShardReport};
        use vliw_search::Strategy;

        let engine = Engine::new(1);
        let exhaustive = |shard| Request::Search {
            params: small(),
            search: SearchParams {
                strategy: Strategy::Exhaustive,
                shard,
                ..SearchParams::default()
            },
        };
        let whole = engine.run(&exhaustive(None));
        assert!(whole.ok, "{:?}", whole.error);

        let mut shards = Vec::new();
        for i in 1..=2 {
            let resp = engine.run(&exhaustive(Some((i, 2))));
            assert!(resp.ok, "shard {i}/2 failed: {:?}", resp.error);
            let report = ShardReport::from_json_str(resp.body.as_deref().expect("shard body"))
                .expect("shard artifact parses strictly");
            assert_eq!(report.shard, i);
            assert_eq!(report.evaluations, report.shard_size);
            shards.push(report);
        }
        let merged = merge_shard_reports(&shards).expect("shards merge");

        let body: serde_json::Value =
            serde_json::from_str(whole.body.as_deref().expect("search body")).expect("json");
        let frontier = body.get("frontier").and_then(|f| f.as_array()).unwrap();
        assert_eq!(merged.frontier.len(), frontier.len());
        let best = body
            .get("best")
            .and_then(|b| b.get("index"))
            .and_then(serde_json::Value::as_u64)
            .expect("unsharded best");
        assert_eq!(merged.best.as_ref().map(|b| b.index), Some(best));
        assert_eq!(merged.evaluations, 20, "both shards cover the paper grid");
    }
}
