//! Per-benchmark generation profiles calibrated to the paper's Table 2.

use crate::genloop::RecurrenceSize;

/// Generation profile for one SPECfp2000 benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BenchmarkSpec {
    /// SPEC benchmark name.
    pub name: &'static str,
    /// Fractions of execution time in (resource, borderline, recurrence)
    /// constrained loops — Table 2 of the paper, rows in [0, 1].
    pub class_time_shares: [f64; 3],
    /// Size of critical recurrences (drives Figure 6's per-benchmark
    /// benefit spread, per the paper's §5.2 analysis).
    pub rec_size: RecurrenceSize,
    /// Range of loop trip counts (applu's loops "are executed a small
    /// number of times", §5.2).
    pub trip_counts: (u64, u64),
    /// Deterministic generation seed.
    pub seed: u64,
}

/// The ten SPECfp2000 benchmarks of the paper's evaluation, with Table 2's
/// constraint-class mix.
#[must_use]
pub fn spec_fp2000() -> [BenchmarkSpec; 10] {
    [
        BenchmarkSpec {
            name: "168.wupwise",
            class_time_shares: [0.1404, 0.6876, 0.1720],
            rec_size: RecurrenceSize::Medium,
            trip_counts: (50, 400),
            seed: 0xA001,
        },
        BenchmarkSpec {
            name: "171.swim",
            class_time_shares: [1.0, 0.0, 0.0],
            rec_size: RecurrenceSize::Medium,
            trip_counts: (100, 800),
            seed: 0xA002,
        },
        BenchmarkSpec {
            name: "172.mgrid",
            class_time_shares: [0.9554, 0.0, 0.0446],
            rec_size: RecurrenceSize::Medium,
            trip_counts: (100, 800),
            seed: 0xA003,
        },
        BenchmarkSpec {
            name: "173.applu",
            class_time_shares: [0.3194, 0.0617, 0.6189],
            rec_size: RecurrenceSize::Medium,
            // Low trip counts: it_length matters as much as the IT (§5.2).
            trip_counts: (6, 24),
            seed: 0xA004,
        },
        BenchmarkSpec {
            name: "178.galgel",
            class_time_shares: [0.3327, 0.0918, 0.5755],
            rec_size: RecurrenceSize::Medium,
            trip_counts: (50, 400),
            seed: 0xA005,
        },
        BenchmarkSpec {
            name: "187.facerec",
            class_time_shares: [0.1659, 0.0, 0.8341],
            rec_size: RecurrenceSize::Small,
            trip_counts: (80, 500),
            seed: 0xA006,
        },
        BenchmarkSpec {
            name: "189.lucas",
            class_time_shares: [0.3213, 0.0002, 0.6785],
            rec_size: RecurrenceSize::Small,
            trip_counts: (80, 500),
            seed: 0xA007,
        },
        BenchmarkSpec {
            name: "191.fma3d",
            class_time_shares: [0.1522, 0.0296, 0.8182],
            rec_size: RecurrenceSize::Large,
            trip_counts: (50, 400),
            seed: 0xA008,
        },
        BenchmarkSpec {
            name: "200.sixtrack",
            class_time_shares: [0.0008, 0.0, 0.9992],
            rec_size: RecurrenceSize::Small,
            trip_counts: (100, 600),
            seed: 0xA009,
        },
        BenchmarkSpec {
            name: "301.apsi",
            class_time_shares: [0.1550, 0.0337, 0.8113],
            rec_size: RecurrenceSize::Large,
            trip_counts: (50, 400),
            seed: 0xA00A,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        for spec in spec_fp2000() {
            let sum: f64 = spec.class_time_shares.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "{}: shares sum to {sum}",
                spec.name
            );
        }
    }

    #[test]
    fn names_and_seeds_are_unique() {
        let specs = spec_fp2000();
        let names: std::collections::HashSet<_> = specs.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 10);
        let seeds: std::collections::HashSet<_> = specs.iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), 10);
    }

    #[test]
    fn table2_rows_match_paper() {
        let specs = spec_fp2000();
        // Spot-check the rows quoted in the paper's analysis.
        let sixtrack = specs.iter().find(|s| s.name == "200.sixtrack").unwrap();
        assert!((sixtrack.class_time_shares[2] - 0.9992).abs() < 1e-12);
        let swim = specs.iter().find(|s| s.name == "171.swim").unwrap();
        assert_eq!(swim.class_time_shares, [1.0, 0.0, 0.0]);
        let wupwise = specs.iter().find(|s| s.name == "168.wupwise").unwrap();
        assert!((wupwise.class_time_shares[1] - 0.6876).abs() < 1e-12);
    }

    #[test]
    fn trip_count_ranges_are_sane() {
        for spec in spec_fp2000() {
            assert!(spec.trip_counts.0 >= 1);
            assert!(spec.trip_counts.0 < spec.trip_counts.1);
        }
        let applu = spec_fp2000()
            .into_iter()
            .find(|s| s.name == "173.applu")
            .unwrap();
        assert!(applu.trip_counts.1 <= 30, "applu runs few iterations");
    }
}
