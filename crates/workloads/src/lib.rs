//! Synthetic SPECfp2000 loop suites for VLIW modulo-scheduling studies.
//!
//! The paper evaluates on >4000 software-pipelinable Fortran loops that the
//! ORC compiler extracted from ten SPECfp2000 benchmarks. Neither ORC nor
//! SPEC sources are available here, so this crate generates *synthetic*
//! suites with the same decision-relevant structure (see DESIGN.md §3):
//!
//! * per benchmark, the fraction of execution time spent in
//!   resource-constrained, borderline and recurrence-constrained loops
//!   matches the paper's Table 2;
//! * recurrence-constrained benchmarks differ in how *many* instructions
//!   sit on their critical recurrences — small for sixtrack/facerec/lucas
//!   (the paper's big winners), large for fma3d/apsi (where speed-ups cost
//!   more energy);
//! * trip counts are low for applu (whose `it_length` sensitivity limits
//!   its benefit) and high elsewhere;
//! * bodies are floating-point heavy with realistic load/compute/store
//!   layering.
//!
//! Everything is generated from fixed seeds: suites are bit-for-bit
//! reproducible across runs and platforms.
//!
//! Beyond the SPEC-calibrated suite, four *generator families*
//! ([`Family`]) stress individual scheduler axes — memory-bound chains,
//! wide low-recurrence ILP, deep multi-recurrence kernels, and a
//! randomized seeded stress family — and any loop population can be
//! persisted to and reloaded from the versioned on-disk [`Corpus`]
//! format (serialize → load round-trips to structural equality, weights
//! bit-exact).
//!
//! # Example
//!
//! ```
//! use vliw_machine::MachineDesign;
//! use vliw_workloads::{classify, generate, LoopClass, spec_fp2000};
//!
//! let spec = &spec_fp2000()[8]; // 200.sixtrack
//! assert_eq!(spec.name, "200.sixtrack");
//! let bench = generate(spec, 24);
//! let design = MachineDesign::paper_machine(1);
//! // sixtrack is ~99.9 % recurrence constrained (Table 2).
//! let rec_time: f64 = bench
//!     .loops
//!     .iter()
//!     .filter(|l| classify(l.ddg(), design) == LoopClass::Recurrence)
//!     .map(|l| l.weight())
//!     .sum();
//! assert!(rec_time > 0.99);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod classify;
mod corpus;
mod families;
mod genloop;
mod spec;
mod suite;

pub use classify::{classify, res_mii_machine, LoopClass};
pub use corpus::{Corpus, CorpusError, CORPUS_FORMAT, CORPUS_VERSION};
pub use families::{family_suite, family_suite_seeded, generate_family, Family};
pub use genloop::{generate_loop, LoopParams, RecurrenceSize};
pub use spec::{spec_fp2000, BenchmarkSpec};
pub use suite::{
    generate, generate_seeded, suite, suite_seeded, Benchmark, DEFAULT_LOOPS_PER_BENCHMARK,
};

// Benchmarks are shared by reference with the exploration worker pool.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<Benchmark>();
    _assert_send_sync::<BenchmarkSpec>();
    _assert_send_sync::<LoopClass>();
};
