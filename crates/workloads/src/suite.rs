//! Whole-benchmark and whole-suite generation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use vliw_ir::Loop;
use vliw_machine::MachineDesign;

use crate::classify::LoopClass;
use crate::genloop::{generate_loop, LoopParams};
use crate::spec::{spec_fp2000, BenchmarkSpec};

/// Default loops per benchmark. The paper's suite holds >4000 loops over
/// ten benchmarks (~400 each); the default here is a 10× scale-down that
/// preserves every per-benchmark statistic the experiments consume while
/// keeping the full Figure 6 pipeline interactive. Pass a larger count to
/// [`generate`]/[`suite`] to approach the paper's scale.
pub const DEFAULT_LOOPS_PER_BENCHMARK: usize = 40;

/// Derives the effective generation seed for one benchmark/family from
/// its fixed base seed and a user-supplied global seed.
///
/// Global seed `0` is the documented default and returns the base seed
/// unchanged, so every artefact generated before the `--seed` flag
/// existed stays bit-identical. Any other global seed is mixed in with a
/// SplitMix64-style finaliser, giving each `(base, global)` pair an
/// independent stream.
#[must_use]
pub(crate) fn mix_seed(base: u64, global: u64) -> u64 {
    if global == 0 {
        return base;
    }
    let mut z = base ^ global.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A benchmark: a named, weighted set of software-pipelinable loops.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// SPEC benchmark name.
    pub name: String,
    /// Loops with DDGs, trip counts and execution-time weights
    /// (weights sum to 1).
    pub loops: Vec<Loop>,
}

impl Benchmark {
    /// Total execution-time weight (1 by construction; exposed for tests).
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.loops.iter().map(Loop::weight).sum()
    }
}

/// Generates one benchmark with `num_loops` loops on the paper's 4-cluster
/// machine shape.
///
/// Loops are allocated to constraint classes proportionally to the spec's
/// Table 2 time shares (every non-zero class gets at least one loop), and
/// each class's share is split across its loops with ±50 % jitter.
///
/// # Panics
///
/// Panics if `num_loops == 0`.
#[must_use]
pub fn generate(spec: &BenchmarkSpec, num_loops: usize) -> Benchmark {
    generate_seeded(spec, num_loops, 0)
}

/// [`generate`] with an explicit global seed mixed into the spec's fixed
/// base seed (see [`suite_seeded`]; seed `0` reproduces [`generate`]
/// exactly).
///
/// # Panics
///
/// Panics if `num_loops == 0`.
#[must_use]
pub fn generate_seeded(spec: &BenchmarkSpec, num_loops: usize, seed: u64) -> Benchmark {
    assert!(num_loops > 0, "a benchmark needs at least one loop");
    let design = MachineDesign::paper_machine(1);
    let mut rng = SmallRng::seed_from_u64(mix_seed(spec.seed, seed));

    // Allocate loop counts per class: largest-share classes first, with
    // every non-zero class getting at least one loop.
    let mut counts = [0usize; 3];
    for (i, &share) in spec.class_time_shares.iter().enumerate() {
        if share > 0.0 {
            counts[i] = ((share * num_loops as f64).round() as usize).max(1);
        }
    }
    // Rebalance to exactly num_loops by adjusting the largest class.
    let largest = (0..3)
        .max_by(|&a, &b| {
            spec.class_time_shares[a]
                .partial_cmp(&spec.class_time_shares[b])
                .expect("shares are finite")
        })
        .expect("three classes");
    let total: usize = counts.iter().sum();
    counts[largest] = (counts[largest] + num_loops).saturating_sub(total).max(1);

    let mut loops = Vec::new();
    for (ci, class) in LoopClass::ALL.into_iter().enumerate() {
        let n = counts[ci];
        if n == 0 || spec.class_time_shares[ci] == 0.0 {
            continue;
        }
        // Split the class's time share across its loops with jitter.
        let mut raw: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..1.5)).collect();
        let norm: f64 = raw.iter().sum();
        for w in &mut raw {
            *w *= spec.class_time_shares[ci] / norm;
        }
        for (li, weight) in raw.into_iter().enumerate() {
            let params = LoopParams {
                name: format!("{}/{class:?}{li}", spec.name),
                class,
                rec_size: spec.rec_size,
                target_res_mii: rng.gen_range(2..=5),
            };
            let ddg = generate_loop(&mut rng, &params, design);
            let trips = rng.gen_range(spec.trip_counts.0..=spec.trip_counts.1);
            loops.push(Loop::new(ddg, trips, weight));
        }
    }
    Benchmark {
        name: spec.name.to_owned(),
        loops,
    }
}

/// Generates the full ten-benchmark suite with `loops_per_benchmark` loops
/// each.
///
/// # Panics
///
/// Panics if `loops_per_benchmark == 0`.
#[must_use]
pub fn suite(loops_per_benchmark: usize) -> Vec<Benchmark> {
    suite_seeded(loops_per_benchmark, 0)
}

/// [`suite`] with an explicit global seed.
///
/// Seed `0` is the default everywhere (`suite`, the `paper` binary, the
/// committed golden fixtures) and reproduces the historical fixed-seed
/// suites bit for bit; any other seed derives an independent but equally
/// reproducible suite, so experiments can be repeated across seeds from
/// the CLI.
///
/// # Panics
///
/// Panics if `loops_per_benchmark == 0`.
#[must_use]
pub fn suite_seeded(loops_per_benchmark: usize, seed: u64) -> Vec<Benchmark> {
    spec_fp2000()
        .iter()
        .map(|spec| generate_seeded(spec, loops_per_benchmark, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;

    #[test]
    fn weights_sum_to_one() {
        for spec in spec_fp2000().iter().take(3) {
            let b = generate(spec, 20);
            assert!((b.total_weight() - 1.0).abs() < 1e-9, "{}", b.name);
        }
    }

    #[test]
    fn class_mix_matches_table2() {
        let design = MachineDesign::paper_machine(1);
        for spec in spec_fp2000() {
            let b = generate(&spec, 30);
            let mut shares = [0.0f64; 3];
            for l in &b.loops {
                let class = classify(l.ddg(), design);
                let idx = LoopClass::ALL.iter().position(|&c| c == class).unwrap();
                shares[idx] += l.weight();
            }
            for (i, (got, want)) in shares.iter().zip(&spec.class_time_shares).enumerate() {
                // Small shares can deviate by one loop's rounding; the
                // *time* share itself is exact by construction.
                assert!(
                    (got - want).abs() < 1e-9,
                    "{}: class {i} share {got} vs Table 2 {want}",
                    spec.name,
                );
            }
        }
    }

    #[test]
    fn seed_zero_matches_legacy_generation() {
        // The default global seed must keep every historical artefact
        // (golden fixtures, committed baselines) bit-identical.
        assert_eq!(suite(4), suite_seeded(4, 0));
        assert_eq!(crate::family_suite(3), crate::family_suite_seeded(3, 0));
    }

    #[test]
    fn nonzero_seeds_derive_distinct_deterministic_suites() {
        let a = suite_seeded(4, 7);
        assert_eq!(a, suite_seeded(4, 7), "same seed, same suite");
        assert_ne!(a, suite(4), "seed 7 differs from the default");
        assert_ne!(a, suite_seeded(4, 8), "distinct seeds differ");
        for bench in &a {
            assert!(
                (bench.total_weight() - 1.0).abs() < 1e-9,
                "{}: weights stay normalised under reseeding",
                bench.name
            );
        }
        let fam = crate::family_suite_seeded(3, 7);
        assert_eq!(fam, crate::family_suite_seeded(3, 7));
        assert_ne!(fam, crate::family_suite(3));
    }

    #[test]
    fn suite_is_deterministic() {
        let a = suite(8);
        let b = suite(8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn loop_counts_are_respected() {
        for spec in spec_fp2000().iter().take(2) {
            let b = generate(spec, 25);
            // Within rounding of the class allocation.
            assert!(
                b.loops.len() >= 24 && b.loops.len() <= 27,
                "{}",
                b.loops.len()
            );
        }
    }

    #[test]
    fn trip_counts_stay_in_range() {
        let spec = spec_fp2000()[3]; // applu
        let b = generate(&spec, 20);
        for l in &b.loops {
            assert!(l.trip_count() >= 6 && l.trip_count() <= 24);
        }
    }

    #[test]
    #[should_panic(expected = "at least one loop")]
    fn zero_loops_panics() {
        let _ = generate(&spec_fp2000()[0], 0);
    }
}
