//! Single-loop generation with exact constraint-class control.

use rand::Rng;

use vliw_ir::{Ddg, DdgBuilder, OpClass, OpId};
use vliw_machine::MachineDesign;

use crate::classify::{classify, res_mii_machine, LoopClass};

/// How many instructions sit on a recurrence-constrained loop's critical
/// recurrence.
///
/// The paper's §5.2 explanation of Figure 6 hinges on this: sixtrack,
/// facerec and lucas win big because their critical recurrences are *small*
/// (few instructions must move to the fast cluster), while fma3d and apsi
/// save less energy because theirs are *large*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecurrenceSize {
    /// 1–2 operations on the critical recurrence.
    Small,
    /// 2–4 operations.
    Medium,
    /// 5–9 operations.
    Large,
}

impl RecurrenceSize {
    fn sample_len(self, rng: &mut impl Rng) -> usize {
        match self {
            RecurrenceSize::Small => rng.gen_range(1..=2),
            RecurrenceSize::Medium => rng.gen_range(2..=4),
            RecurrenceSize::Large => rng.gen_range(5..=9),
        }
    }
}

/// Parameters for one generated loop.
#[derive(Debug, Clone)]
pub struct LoopParams {
    /// Loop name (diagnostics only).
    pub name: String,
    /// The constraint class the loop must land in (asserted).
    pub class: LoopClass,
    /// Critical-recurrence size for recurrence-constrained loops.
    pub rec_size: RecurrenceSize,
    /// Target machine-wide `resMII` (drives body size), ≥ 1.
    pub target_res_mii: u32,
}

/// Generates one loop body whose Table 2 class is exactly `params.class`
/// on `design`.
///
/// The generator is constructive: memory operations are sized to pin
/// `resMII` at `target_res_mii`, and the recurrence (if any) is built to
/// land `recMII` in the requested band, then the result is asserted.
///
/// # Panics
///
/// Panics if `target_res_mii == 0` (and, defensively, if construction ever
/// misses its class — a generator bug, not a user error).
pub fn generate_loop(rng: &mut impl Rng, params: &LoopParams, design: MachineDesign) -> Ddg {
    let r = params.target_res_mii;
    assert!(r >= 1, "target resMII must be at least 1");
    let units = design.total_fu_count(vliw_ir::FuKind::Mem);
    // Memory is the binding resource: exactly `units · r` memory ops.
    let mem_total = (units * r) as usize;
    let num_stores = (mem_total / 4).max(1);
    let num_loads = mem_total - num_stores;
    let fp_budget = (design.total_fu_count(vliw_ir::FuKind::Fp) * r) as usize;
    let int_budget = (design.total_fu_count(vliw_ir::FuKind::Int) * r) as usize;

    let mut b = DdgBuilder::new(params.name.clone());

    // Address arithmetic: a few int ops feeding loads.
    let num_int_addr = rng.gen_range(0..=(int_budget / 2).min(usize::try_from(r).unwrap()));
    let addr_ops: Vec<OpId> = (0..num_int_addr)
        .map(|i| b.op(format!("addr{i}"), OpClass::IntArith))
        .collect();

    // Loads.
    let loads: Vec<OpId> = (0..num_loads)
        .map(|i| {
            let l = b.op(format!("ld{i}"), OpClass::FpMemory);
            if !addr_ops.is_empty() && rng.gen_bool(0.5) {
                let a = addr_ops[rng.gen_range(0..addr_ops.len())];
                b.flow(a, l);
            }
            l
        })
        .collect();

    // The recurrence, when the class asks for one.
    let mut fp_used = 0usize;
    let int_used = num_int_addr;
    let mut rec_tail: Option<OpId> = None;
    match params.class {
        LoopClass::Resource => {
            // Optionally a trivial induction recurrence (recMII 1 < R when
            // R ≥ 2; for R = 1 skip it to keep recMII 0 < 1).
            if r >= 2 && int_used < int_budget && rng.gen_bool(0.5) {
                let iv = b.op("induction", OpClass::IntArith);
                b.flow_carried(iv, iv, 1);
            }
        }
        LoopClass::Borderline => {
            // An int chain of exactly R unit-latency ops, distance 1:
            // recMII = R, inside [R, 1.3·R).
            let k = usize::try_from(r).unwrap();
            assert!(
                int_used + k <= int_budget,
                "borderline chain exceeds int budget"
            );
            let chain: Vec<OpId> = (0..k)
                .map(|i| b.op(format!("bchain{i}"), OpClass::IntArith))
                .collect();
            for w in chain.windows(2) {
                b.flow(w[0], w[1]);
            }
            b.flow_carried(*chain.last().expect("k >= 1"), chain[0], 1);
            rec_tail = Some(*chain.last().expect("k >= 1"));
            if !loads.is_empty() {
                b.flow(loads[rng.gen_range(0..loads.len())], chain[0]);
            }
        }
        LoopClass::Recurrence => {
            // An fp chain whose latency/distance lands recMII in
            // [ceil(1.3·R), ~3·R].
            let min_rec = (1.3 * f64::from(r)).ceil() as u64;
            // The chain may use at most the whole fp budget (tiny loops cap
            // a Large request; the class is still exact).
            let max_len = fp_budget.max(1);
            let mut len = params.rec_size.sample_len(rng).min(max_len);
            let mut classes: Vec<OpClass> = Vec::with_capacity(len);
            classes.push(OpClass::FpMul); // anchor: latency 6
            for _ in 1..len {
                classes.push(if rng.gen_bool(0.85) {
                    OpClass::FpArith
                } else {
                    OpClass::FpMul
                });
            }
            let mut total_latency: u64 = classes.iter().map(|c| u64::from(c.latency())).sum();
            // Grow the chain until a distance-1 recurrence can reach the
            // band (keeps the op count as close to rec_size as possible).
            while total_latency < min_rec && len < max_len {
                classes.push(OpClass::FpArith);
                len += 1;
                total_latency += u64::from(OpClass::FpArith.latency());
            }
            if total_latency < min_rec {
                // Budget-bound chain: promote the anchor to a divide
                // (latency 18 covers every resMII this generator targets).
                total_latency +=
                    u64::from(OpClass::FpDiv.latency()) - u64::from(classes[0].latency());
                classes[0] = OpClass::FpDiv;
            }
            assert!(
                total_latency >= min_rec,
                "recurrence chain cannot reach the band (R = {r})"
            );
            // Choose a target recMII in the band and derive the distance.
            let hi = (3 * u64::from(r)).max(min_rec);
            let target = rng.gen_range(min_rec..=hi);
            let d = u32::try_from((total_latency / target).max(1)).expect("distance fits u32");
            debug_assert!(total_latency.div_ceil(u64::from(d)) >= min_rec);
            assert!(
                fp_used + len <= fp_budget,
                "recurrence exceeds fp budget (R = {r})"
            );
            let chain: Vec<OpId> = classes
                .iter()
                .enumerate()
                .map(|(i, &c)| b.op(format!("rchain{i}"), c))
                .collect();
            for w in chain.windows(2) {
                b.flow(w[0], w[1]);
            }
            b.flow_carried(*chain.last().expect("len >= 1"), chain[0], d);
            fp_used += len;
            rec_tail = Some(*chain.last().expect("len >= 1"));
            if !loads.is_empty() {
                b.flow(loads[rng.gen_range(0..loads.len())], chain[0]);
            }
        }
    }

    // Free-floating fp compute tree: layered, consuming loads and earlier
    // fp values.
    let body_budget = fp_budget.saturating_sub(fp_used);
    let body_count = if body_budget == 0 {
        0
    } else {
        rng.gen_range((body_budget / 2).max(1)..=body_budget)
    };
    let mut fp_values: Vec<OpId> = loads.clone();
    let mut last_fp: Vec<OpId> = Vec::new();
    for i in 0..body_count {
        let roll: f64 = rng.gen();
        let class = if roll < 0.65 {
            OpClass::FpArith
        } else if roll < 0.95 {
            OpClass::FpMul
        } else {
            OpClass::FpDiv
        };
        let op = b.op(format!("fp{i}"), class);
        let inputs = rng.gen_range(1..=2usize);
        for _ in 0..inputs {
            if !fp_values.is_empty() {
                let src = fp_values[rng.gen_range(0..fp_values.len())];
                b.flow(src, op);
            }
        }
        fp_values.push(op);
        last_fp.push(op);
    }

    // Stores consume the freshest values (recurrence output included).
    for i in 0..num_stores {
        let st = b.op(format!("st{i}"), OpClass::FpMemory);
        let src = if let (0, Some(tail)) = (i, rec_tail) {
            tail
        } else if !last_fp.is_empty() {
            last_fp[rng.gen_range(0..last_fp.len())]
        } else if !fp_values.is_empty() {
            fp_values[rng.gen_range(0..fp_values.len())]
        } else {
            continue;
        };
        b.flow(src, st);
    }

    let ddg = b.build().expect("generator produces well-formed graphs");
    debug_assert!(ddg.validate_schedulable().is_ok());
    assert_eq!(
        res_mii_machine(&ddg, design),
        r,
        "loop `{}`: generator missed its resMII target",
        params.name
    );
    let got = classify(&ddg, design);
    assert_eq!(
        got,
        params.class,
        "loop `{}`: generator missed its class (recMII {}, resMII {})",
        params.name,
        ddg.rec_mii(),
        res_mii_machine(&ddg, design)
    );
    ddg
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn design() -> MachineDesign {
        MachineDesign::paper_machine(1)
    }

    fn params(class: LoopClass, size: RecurrenceSize, r: u32) -> LoopParams {
        LoopParams {
            name: format!("{class:?}-{r}"),
            class,
            rec_size: size,
            target_res_mii: r,
        }
    }

    #[test]
    fn every_class_and_size_generates() {
        let mut rng = SmallRng::seed_from_u64(7);
        for class in LoopClass::ALL {
            for size in [
                RecurrenceSize::Small,
                RecurrenceSize::Medium,
                RecurrenceSize::Large,
            ] {
                for r in 1..=5 {
                    // The generator asserts its own postconditions.
                    let ddg = generate_loop(&mut rng, &params(class, size, r), design());
                    assert!(ddg.num_ops() >= 4);
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = params(LoopClass::Recurrence, RecurrenceSize::Medium, 3);
        let a = generate_loop(&mut SmallRng::seed_from_u64(42), &p, design());
        let b = generate_loop(&mut SmallRng::seed_from_u64(42), &p, design());
        assert_eq!(a, b);
        let c = generate_loop(&mut SmallRng::seed_from_u64(43), &p, design());
        assert!(
            a != c || a.num_ops() == c.num_ops(),
            "different seeds may differ"
        );
    }

    #[test]
    fn small_recurrences_have_few_ops_on_cycle() {
        let mut rng = SmallRng::seed_from_u64(11);
        for r in 2..=4 {
            let ddg = generate_loop(
                &mut rng,
                &params(LoopClass::Recurrence, RecurrenceSize::Small, r),
                design(),
            );
            let recs = vliw_ir::condensation(&ddg).recurrences(&ddg);
            let critical = recs
                .first()
                .expect("recurrence-constrained loop has a recurrence");
            assert!(
                critical.ops.len() <= 4,
                "small recurrence, got {}",
                critical.ops.len()
            );
        }
    }

    #[test]
    fn large_recurrences_have_many_ops_on_cycle() {
        let mut rng = SmallRng::seed_from_u64(13);
        let ddg = generate_loop(
            &mut rng,
            &params(LoopClass::Recurrence, RecurrenceSize::Large, 3),
            design(),
        );
        let recs = vliw_ir::condensation(&ddg).recurrences(&ddg);
        assert!(recs.iter().any(|r| r.ops.len() >= 5));
    }

    #[test]
    fn generated_loops_schedule_on_the_reference_machine() {
        use vliw_machine::ClockedConfig;

        let config = ClockedConfig::reference(design());
        let mut rng = SmallRng::seed_from_u64(21);
        for class in LoopClass::ALL {
            for r in 2..=4 {
                let ddg = generate_loop(
                    &mut rng,
                    &params(class, RecurrenceSize::Medium, r),
                    design(),
                );
                let s = vliw_sched::schedule_loop(
                    &ddg,
                    &config,
                    None,
                    &vliw_sched::ScheduleOptions::default(),
                )
                .expect("generated loop must schedule");
                assert!(s.it() >= vliw_machine::Time::from_ns(1.0));
            }
        }
    }
}
