//! The on-disk workload corpus format (versioned, serde-backed).
//!
//! A *corpus* is a named set of benchmarks — loops with DDGs, trip counts
//! and execution-time weights — persisted as a single JSON document so a
//! loop population can be saved, exchanged, inspected and re-scheduled
//! without re-deriving it from generator seeds. External or adversarial
//! loop shapes can be fed to the scheduler the same way: write the JSON,
//! load it, schedule it.
//!
//! # Format (version 1)
//!
//! ```json
//! {
//!   "format": "heterovliw-corpus",
//!   "version": 1,
//!   "benchmarks": [
//!     { "name": "200.sixtrack",
//!       "loops": [ { "ddg": { ... }, "trip_count": 100, "weight": 0.25 },
//!                  ... ] },
//!     ...
//!   ]
//! }
//! ```
//!
//! The `ddg` object is the `vliw-ir` serial form (see `vliw_ir`'s
//! serialization docs): ops and edges written in identifier order, so a
//! reloaded graph preserves the workspace-wide index invariants by
//! construction and round-trips to structural equality. Floats are
//! written in Rust's shortest round-trip form, so weights — and therefore
//! every schedule and experiment row computed from a reloaded corpus —
//! are **bit-identical** to the in-memory originals.
//!
//! # Strictness
//!
//! [`Corpus::from_json_str`] validates the whole document before
//! returning: the format tag and version must match, unknown or missing
//! fields anywhere are errors, benchmark names must be unique and
//! non-empty, every loop must satisfy the [`Loop`] invariants, and every
//! DDG is rebuilt through the validating builder (dangling edge endpoints
//! and zero-distance self-loops are rejected). Errors name the JSON path
//! of the offending node.
//!
//! # Example
//!
//! ```
//! use vliw_workloads::{generate, spec_fp2000, Corpus};
//!
//! let bench = generate(&spec_fp2000()[8], 4); // 200.sixtrack, 4 loops
//! let corpus = Corpus::from_benchmarks(vec![bench]);
//! let json = corpus.to_json_string();
//! let back = Corpus::from_json_str(&json)?;
//! assert_eq!(corpus, back); // structural equality, weights bit-exact
//! # Ok::<(), vliw_workloads::CorpusError>(())
//! ```

use std::fmt;
use std::path::Path;

use serde::{write_json_str, Serialize};
use serde_json::Value;
use vliw_ir::{check_fields, get_field, get_str_field, Loop, SerialError};

use crate::suite::Benchmark;

/// The corpus document's format tag.
pub const CORPUS_FORMAT: &str = "heterovliw-corpus";

/// The corpus format version this build writes and accepts.
pub const CORPUS_VERSION: u32 = 1;

/// A persisted set of benchmarks (see the module docs for the format).
#[derive(Debug, Clone, PartialEq)]
pub struct Corpus {
    /// The benchmarks, in document order.
    pub benchmarks: Vec<Benchmark>,
}

/// A corpus load/store failure.
#[derive(Debug)]
pub enum CorpusError {
    /// Reading or writing the file failed.
    Io {
        /// The file involved.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The document is malformed or violates the format's invariants.
    Format {
        /// JSON-path-like location of the problem.
        location: String,
        /// What went wrong there.
        message: String,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io { path, source } => write!(f, "corpus I/O on {path}: {source}"),
            CorpusError::Format { location, message } => {
                write!(f, "corpus format error at {location}: {message}")
            }
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Io { source, .. } => Some(source),
            CorpusError::Format { .. } => None,
        }
    }
}

impl CorpusError {
    fn format(location: impl Into<String>, message: impl Into<String>) -> Self {
        CorpusError::Format {
            location: location.into(),
            message: message.into(),
        }
    }
}

/// The shared strict-loading helpers of `vliw-ir` report [`SerialError`];
/// at the corpus layer that is a format error at the same location.
impl From<SerialError> for CorpusError {
    fn from(e: SerialError) -> Self {
        CorpusError::Format {
            location: e.path,
            message: e.message,
        }
    }
}

impl Serialize for Corpus {
    fn serialize_into(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"format\":\"{CORPUS_FORMAT}\",\"version\":{CORPUS_VERSION},\"benchmarks\":["
        ));
        for (i, bench) in self.benchmarks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_json_str(&bench.name, out);
            out.push_str(",\"loops\":");
            bench.loops.serialize_into(out);
            out.push('}');
        }
        out.push_str("]}");
    }
}

impl Corpus {
    /// Wraps benchmarks as a corpus (no copy, no validation — benchmarks
    /// built by this crate already satisfy every invariant).
    #[must_use]
    pub fn from_benchmarks(benchmarks: Vec<Benchmark>) -> Self {
        Corpus { benchmarks }
    }

    /// Total number of loops across all benchmarks.
    #[must_use]
    pub fn total_loops(&self) -> usize {
        self.benchmarks.iter().map(|b| b.loops.len()).sum()
    }

    /// Serialises the corpus as pretty-printed JSON (the on-disk form).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("corpus serialisation is infallible")
    }

    /// Parses and strictly validates a corpus document.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Format`] naming the JSON path for malformed
    /// JSON, a wrong format tag or version, unknown/missing fields,
    /// duplicate benchmark names, or any loop/DDG invariant violation.
    pub fn from_json_str(s: &str) -> Result<Self, CorpusError> {
        let v = serde_json::from_str(s).map_err(|e| CorpusError::format("$", e.to_string()))?;
        Self::from_json_value(&v)
    }

    /// [`Corpus::from_json_str`] over an already parsed [`Value`].
    ///
    /// # Errors
    ///
    /// Same as [`Corpus::from_json_str`], minus the JSON parse step.
    pub fn from_json_value(v: &Value) -> Result<Self, CorpusError> {
        check_fields(v, "$", &["format", "version", "benchmarks"])?;
        let tag = get_str_field(v, "$", "format")?;
        if tag != CORPUS_FORMAT {
            return Err(CorpusError::format(
                "$.format",
                format!("expected \"{CORPUS_FORMAT}\", got \"{tag}\""),
            ));
        }
        let version = get_field(v, "$", "version")?
            .as_u64()
            .ok_or_else(|| CorpusError::format("$.version", "expected unsigned integer"))?;
        if version != u64::from(CORPUS_VERSION) {
            return Err(CorpusError::format(
                "$.version",
                format!("unsupported corpus version {version} (this build reads {CORPUS_VERSION})"),
            ));
        }
        let benches = get_field(v, "$", "benchmarks")?
            .as_array()
            .ok_or_else(|| CorpusError::format("$.benchmarks", "expected array"))?;

        let mut benchmarks = Vec::with_capacity(benches.len());
        let mut seen_names = std::collections::HashSet::new();
        for (bi, bench) in benches.iter().enumerate() {
            let bp = format!("$.benchmarks[{bi}]");
            check_fields(bench, &bp, &["name", "loops"])?;
            let name = get_str_field(bench, &bp, "name")?;
            if name.is_empty() {
                return Err(CorpusError::format(
                    format!("{bp}.name"),
                    "benchmark name must be non-empty",
                ));
            }
            if !seen_names.insert(name.to_owned()) {
                return Err(CorpusError::format(
                    format!("{bp}.name"),
                    format!("duplicate benchmark name `{name}`"),
                ));
            }
            let loops_v = get_field(bench, &bp, "loops")?.as_array().ok_or_else(|| {
                CorpusError::format(format!("{bp}.loops"), "expected array of loops")
            })?;
            if loops_v.is_empty() {
                return Err(CorpusError::format(
                    format!("{bp}.loops"),
                    "a benchmark needs at least one loop",
                ));
            }
            let mut loops = Vec::with_capacity(loops_v.len());
            for (li, lv) in loops_v.iter().enumerate() {
                let lp = format!("{bp}.loops[{li}]");
                let l = Loop::from_json_value(lv).map_err(|e| {
                    // Re-anchor the loop-relative path under the document path.
                    CorpusError::format(format!("{lp}{}", &e.path[1..]), e.message)
                })?;
                loops.push(l);
            }
            benchmarks.push(Benchmark {
                name: name.to_owned(),
                loops,
            });
        }
        Ok(Corpus { benchmarks })
    }

    /// Writes the corpus to `path` atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Io`] on any filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), CorpusError> {
        let io_err = |source| CorpusError::Io {
            path: path.display().to_string(),
            source,
        };
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, self.to_json_string()).map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(io_err)
    }

    /// Loads and strictly validates a corpus from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Io`] on filesystem failure or
    /// [`CorpusError::Format`] for any document problem.
    pub fn load(path: &Path) -> Result<Self, CorpusError> {
        let text = std::fs::read_to_string(path).map_err(|source| CorpusError::Io {
            path: path.display().to_string(),
            source,
        })?;
        Self::from_json_str(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::family_suite;
    use crate::spec::spec_fp2000;
    use crate::suite::generate;

    fn small_corpus() -> Corpus {
        let mut benches = vec![generate(&spec_fp2000()[8], 3)];
        benches.extend(family_suite(2));
        Corpus::from_benchmarks(benches)
    }

    #[test]
    fn round_trips_to_structural_equality() {
        let corpus = small_corpus();
        let back = Corpus::from_json_str(&corpus.to_json_string()).unwrap();
        assert_eq!(corpus, back);
        // Weights are bit-exact, not merely approximately equal.
        for (a, b) in corpus.benchmarks.iter().zip(&back.benchmarks) {
            for (la, lb) in a.loops.iter().zip(&b.loops) {
                assert_eq!(la.weight().to_bits(), lb.weight().to_bits());
            }
        }
    }

    #[test]
    fn save_and_load_round_trip() {
        let corpus = small_corpus();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("corpus_test_{}.json", std::process::id()));
        corpus.save(&path).unwrap();
        let back = Corpus::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(corpus, back);
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = Corpus::load(Path::new("/nonexistent/corpus.json")).unwrap_err();
        assert!(matches!(err, CorpusError::Io { .. }), "{err}");
        assert!(err.to_string().contains("/nonexistent/corpus.json"));
    }

    #[test]
    fn wrong_tag_version_and_fields_are_rejected() {
        let good = small_corpus().to_json_string();
        let cases = [
            (
                good.replace("heterovliw-corpus", "other-format"),
                "$.format",
            ),
            (
                good.replace("\"version\": 1", "\"version\": 99"),
                "$.version",
            ),
            (
                good.replace("\"format\"", "\"fmt\""),
                "$", // unknown field `fmt` + missing `format`
            ),
        ];
        for (doc, where_) in cases {
            let err = Corpus::from_json_str(&doc).unwrap_err();
            match &err {
                CorpusError::Format { location, .. } => {
                    assert!(location.starts_with(where_), "{err}")
                }
                other => panic!("wanted format error, got {other}"),
            }
        }
    }

    #[test]
    fn duplicate_benchmark_names_are_rejected() {
        let b = generate(&spec_fp2000()[0], 2);
        let corpus = Corpus::from_benchmarks(vec![b.clone(), b]);
        let err = Corpus::from_json_str(&corpus.to_json_string()).unwrap_err();
        assert!(
            err.to_string().contains("duplicate benchmark name"),
            "{err}"
        );
    }

    #[test]
    fn loop_errors_carry_document_paths() {
        let doc = format!(
            r#"{{"format":"{CORPUS_FORMAT}","version":{CORPUS_VERSION},"benchmarks":[
                 {{"name":"b","loops":[
                   {{"ddg":{{"name":"x","ops":[{{"name":"a","class":"zap"}}],"edges":[]}},
                    "trip_count":1,"weight":0.5}}]}}]}}"#
        );
        let err = Corpus::from_json_str(&doc).unwrap_err();
        match &err {
            CorpusError::Format { location, message } => {
                assert_eq!(location, "$.benchmarks[0].loops[0].ddg.ops[0].class");
                assert!(message.contains("zap"), "{err}");
            }
            other => panic!("wanted format error, got {other}"),
        }
    }

    #[test]
    fn empty_benchmarks_are_rejected() {
        let doc = format!(
            r#"{{"format":"{CORPUS_FORMAT}","version":{CORPUS_VERSION},"benchmarks":[
                 {{"name":"b","loops":[]}}]}}"#
        );
        let err = Corpus::from_json_str(&doc).unwrap_err();
        assert!(err.to_string().contains("at least one loop"), "{err}");
    }
}
