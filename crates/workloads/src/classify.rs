//! Loop classification by binding constraint (the paper's Table 2 bands).

use vliw_ir::{Ddg, FuKind};
use vliw_machine::MachineDesign;

/// Which constraint binds a loop's initiation interval on a homogeneous
/// machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopClass {
    /// `recMII < resMII`: resources bind.
    Resource,
    /// `resMII ≤ recMII < 1.3 · resMII`: nominally recurrence constrained,
    /// but a heterogeneous configuration (which shrinks slot capacity)
    /// easily flips it to resource constrained.
    Borderline,
    /// `recMII ≥ 1.3 · resMII`: recurrences clearly bind.
    Recurrence,
}

impl LoopClass {
    /// All classes, in Table 2 column order.
    pub const ALL: [LoopClass; 3] = [
        LoopClass::Resource,
        LoopClass::Borderline,
        LoopClass::Recurrence,
    ];

    /// Table 2 column header for this class.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LoopClass::Resource => "recMII<resMII",
            LoopClass::Borderline => "resMII<=recMII<1.3resMII",
            LoopClass::Recurrence => "1.3resMII<=recMII",
        }
    }
}

/// Machine-wide `resMII` of a loop on a homogeneous machine: the busiest
/// functional-unit kind's `ceil(uses / units)`.
///
/// Always at least 1 (a loop takes a cycle even if empty).
#[must_use]
pub fn res_mii_machine(ddg: &Ddg, design: MachineDesign) -> u32 {
    let mut worst = 1u32;
    for kind in FuKind::CLUSTER_KINDS {
        let uses = ddg.count_fu(kind) as u32;
        if uses == 0 {
            continue;
        }
        let units = design.total_fu_count(kind);
        assert!(units > 0, "workload uses {kind} but the machine has none");
        worst = worst.max(uses.div_ceil(units));
    }
    worst
}

/// Classifies `ddg` per the paper's Table 2 bands.
///
/// # Panics
///
/// Panics if the DDG has a zero-distance cycle.
#[must_use]
pub fn classify(ddg: &Ddg, design: MachineDesign) -> LoopClass {
    let rec = ddg.rec_mii() as f64;
    let res = f64::from(res_mii_machine(ddg, design));
    if rec < res {
        LoopClass::Resource
    } else if rec < 1.3 * res {
        LoopClass::Borderline
    } else {
        LoopClass::Recurrence
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{DdgBuilder, OpClass};

    fn design() -> MachineDesign {
        MachineDesign::paper_machine(1)
    }

    #[test]
    fn parallel_ops_are_resource_constrained() {
        let mut b = DdgBuilder::new("par");
        for i in 0..12 {
            b.op(format!("n{i}"), OpClass::FpArith);
        }
        let ddg = b.build().unwrap();
        assert_eq!(res_mii_machine(&ddg, design()), 3); // 12 fp / 4 FUs
        assert_eq!(classify(&ddg, design()), LoopClass::Resource);
    }

    #[test]
    fn long_recurrence_is_recurrence_constrained() {
        let mut b = DdgBuilder::new("rec");
        let a = b.op("acc", OpClass::FpMul); // latency 6
        b.flow_carried(a, a, 1);
        let ddg = b.build().unwrap();
        assert_eq!(classify(&ddg, design()), LoopClass::Recurrence);
    }

    #[test]
    fn borderline_band() {
        // resMII = 4 (16 int ops / 4 FUs); recurrence of latency 5:
        // 4 ≤ 5 < 5.2 ⇒ borderline.
        let mut b = DdgBuilder::new("border");
        for i in 0..16 {
            b.op(format!("n{i}"), OpClass::IntArith);
        }
        let x = b.op("x", OpClass::IntArith);
        b.dep_full(x, x, 5, 1, vliw_ir::DepKind::Flow);
        let ddg = b.build().unwrap();
        assert_eq!(res_mii_machine(&ddg, design()), 5); // 17 int ops → ceil(17/4)=5
                                                        // Whoops: adding x raises resMII to 5; 5 ≤ 5 < 6.5 ⇒ borderline still.
        assert_eq!(classify(&ddg, design()), LoopClass::Borderline);
    }

    #[test]
    fn empty_loop_counts_as_borderline_floor() {
        // recMII 0 < resMII 1 ⇒ resource constrained by convention.
        let ddg = DdgBuilder::new("empty").build().unwrap();
        assert_eq!(classify(&ddg, design()), LoopClass::Resource);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            LoopClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 3);
    }
}
