//! Generator families beyond the Table 2 synthetic SPECfp2000 suite.
//!
//! The SPEC-calibrated generator ([`crate::generate`]) reproduces the
//! paper's *benchmark mix*; these families instead stress individual
//! axes of the heterogeneous scheduler:
//!
//! * [`Family::MemBound`] — memory-bound chains: loads and stores saturate
//!   the memory ports while compute is thin, so `resMII` is pinned by the
//!   port count and recurrences are trivial.
//! * [`Family::IlpWide`] — wide, low-recurrence ILP loops: many short
//!   independent floating-point chains and **no loop-carried dependence at
//!   all** (`recMII = 0`), the best case for slot-hungry homogeneous
//!   machines.
//! * [`Family::MultiRec`] — deep multi-recurrence kernels: several
//!   independent recurrences of differing latency and distance compete to
//!   bind `recMII`, exercising the partitioner's most-critical-first
//!   pre-placement (§4.1.1).
//! * [`Family::Stress`] — a randomized layered-DAG family with seeded
//!   reproducibility: op classes, dependence shapes and carried distances
//!   are all drawn at random (forward distance-0 edges only, so the loop
//!   is schedulable by construction).
//!
//! Every family is generated from a fixed per-family seed and is
//! bit-for-bit reproducible, like the SPEC suite. All generated loops
//! schedule on the reference machine (asserted in tests) and flow through
//! the full figure-6/7 pipeline via the `familysweep` experiment.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use vliw_ir::{DdgBuilder, Loop, OpClass, OpId};

use crate::suite::Benchmark;

/// One of the non-SPEC generator families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Memory-bound chains (memory ports bind, recurrences trivial).
    MemBound,
    /// Wide low-recurrence ILP loops (`recMII = 0`).
    IlpWide,
    /// Deep kernels with several competing recurrences.
    MultiRec,
    /// Randomized layered-DAG stress loops (seeded).
    Stress,
}

impl Family {
    /// All families, in canonical order.
    pub const ALL: [Family; 4] = [
        Family::MemBound,
        Family::IlpWide,
        Family::MultiRec,
        Family::Stress,
    ];

    /// The family's stable name, used as its benchmark name and in
    /// `familysweep` rows.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Family::MemBound => "membound",
            Family::IlpWide => "ilpwide",
            Family::MultiRec => "multirec",
            Family::Stress => "stress",
        }
    }

    /// The deterministic default generation seed (distinct per family and
    /// from every SPEC benchmark seed).
    #[must_use]
    pub const fn default_seed(self) -> u64 {
        match self {
            Family::MemBound => 0xB001,
            Family::IlpWide => 0xB002,
            Family::MultiRec => 0xB003,
            Family::Stress => 0xB004,
        }
    }

    /// Range of per-loop trip counts.
    const fn trip_counts(self) -> (u64, u64) {
        match self {
            Family::MemBound => (64, 256),
            Family::IlpWide => (100, 500),
            Family::MultiRec => (40, 200),
            Family::Stress => (10, 100),
        }
    }
}

/// Generates one family benchmark with `num_loops` loops from `seed`.
///
/// Per-loop execution-time weights are split with the same ±50 % jitter
/// the SPEC generator uses and normalised to sum to 1.
///
/// # Panics
///
/// Panics if `num_loops == 0`.
#[must_use]
pub fn generate_family(family: Family, num_loops: usize, seed: u64) -> Benchmark {
    assert!(num_loops > 0, "a benchmark needs at least one loop");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut raw: Vec<f64> = (0..num_loops).map(|_| rng.gen_range(0.5..1.5)).collect();
    let norm: f64 = raw.iter().sum();
    for w in &mut raw {
        *w /= norm;
    }
    let (lo, hi) = family.trip_counts();
    let loops = raw
        .into_iter()
        .enumerate()
        .map(|(i, weight)| {
            let name = format!("{}/{i}", family.name());
            let ddg = match family {
                Family::MemBound => gen_membound(&mut rng, &name),
                Family::IlpWide => gen_ilpwide(&mut rng, &name),
                Family::MultiRec => gen_multirec(&mut rng, &name),
                Family::Stress => gen_stress(&mut rng, &name),
            };
            debug_assert!(ddg.validate_schedulable().is_ok(), "{name}");
            let trips = rng.gen_range(lo..=hi);
            Loop::new(ddg, trips, weight)
        })
        .collect();
    Benchmark {
        name: family.name().to_owned(),
        loops,
    }
}

/// Generates all four family benchmarks at their default seeds.
///
/// # Panics
///
/// Panics if `num_loops == 0`.
#[must_use]
pub fn family_suite(num_loops: usize) -> Vec<Benchmark> {
    family_suite_seeded(num_loops, 0)
}

/// [`family_suite`] with an explicit global seed mixed into each
/// family's default seed (seed `0`, the default, reproduces
/// [`family_suite`] bit for bit — see `suite_seeded`).
///
/// # Panics
///
/// Panics if `num_loops == 0`.
#[must_use]
pub fn family_suite_seeded(num_loops: usize, seed: u64) -> Vec<Benchmark> {
    Family::ALL
        .into_iter()
        .map(|f| generate_family(f, num_loops, crate::suite::mix_seed(f.default_seed(), seed)))
        .collect()
}

/// Memory-bound chain: `4·r` memory ops (r in 2..=6) arranged as
/// address → load → thin compute → store chains; at most a trivial
/// induction recurrence, so the memory ports bind `resMII`.
fn gen_membound(rng: &mut SmallRng, name: &str) -> vliw_ir::Ddg {
    let r = rng.gen_range(2u32..=6);
    let mem_total = (4 * r) as usize;
    let num_stores = (mem_total / 3).max(1);
    let num_loads = mem_total - num_stores;
    let mut b = DdgBuilder::new(name);

    // A shared induction variable feeds the address arithmetic.
    let iv = b.op("iv", OpClass::IntArith);
    b.flow_carried(iv, iv, 1);
    let addrs: Vec<OpId> = (0..rng.gen_range(1..=3usize))
        .map(|i| {
            let a = b.op(format!("addr{i}"), OpClass::IntArith);
            b.flow(iv, a);
            a
        })
        .collect();

    let loads: Vec<OpId> = (0..num_loads)
        .map(|i| {
            let class = if rng.gen_bool(0.7) {
                OpClass::FpMemory
            } else {
                OpClass::IntMemory
            };
            let l = b.op(format!("ld{i}"), class);
            let a = addrs[rng.gen_range(0..addrs.len())];
            b.flow(a, l);
            l
        })
        .collect();

    // Thin compute: roughly one fp op per three loads.
    let mut values = loads.clone();
    for i in 0..(num_loads / 3).max(1) {
        let op = b.op(format!("fp{i}"), OpClass::FpArith);
        for _ in 0..rng.gen_range(1..=2usize) {
            let src = values[rng.gen_range(0..values.len())];
            b.flow(src, op);
        }
        values.push(op);
    }

    for i in 0..num_stores {
        let st = b.op(format!("st{i}"), OpClass::FpMemory);
        let src = values[rng.gen_range(0..values.len())];
        b.flow(src, st);
    }
    b.build().expect("membound generator is well-formed")
}

/// Wide ILP loop: many short independent fp chains seeded by loads, no
/// carried dependence anywhere (`recMII = 0`).
fn gen_ilpwide(rng: &mut SmallRng, name: &str) -> vliw_ir::Ddg {
    let chains = rng.gen_range(6usize..=14);
    let mut b = DdgBuilder::new(name);
    for c in 0..chains {
        let l = b.op(format!("ld{c}"), OpClass::FpMemory);
        let mut prev = l;
        for s in 0..rng.gen_range(1usize..=3) {
            let class = if rng.gen_bool(0.6) {
                OpClass::FpArith
            } else {
                OpClass::FpMul
            };
            let op = b.op(format!("c{c}s{s}"), class);
            b.flow(prev, op);
            prev = op;
        }
        if rng.gen_bool(0.5) {
            let st = b.op(format!("st{c}"), OpClass::FpMemory);
            b.flow(prev, st);
        }
    }
    b.build().expect("ilpwide generator is well-formed")
}

/// Deep multi-recurrence kernel: `k` independent recurrences whose chain
/// latencies and carried distances differ, so a different circuit binds
/// `recMII` per draw; loads feed the chain heads, stores drain the tails.
fn gen_multirec(rng: &mut SmallRng, name: &str) -> vliw_ir::Ddg {
    let k = rng.gen_range(2usize..=4);
    let mut b = DdgBuilder::new(name);
    for r in 0..k {
        let len = rng.gen_range(3usize..=6);
        let chain: Vec<OpId> = (0..len)
            .map(|i| {
                let class = if rng.gen_bool(0.7) {
                    OpClass::FpArith
                } else {
                    OpClass::FpMul
                };
                b.op(format!("r{r}n{i}"), class)
            })
            .collect();
        for w in chain.windows(2) {
            b.flow(w[0], w[1]);
        }
        let distance = rng.gen_range(1u32..=3);
        b.flow_carried(chain[len - 1], chain[0], distance);
        let l = b.op(format!("r{r}ld"), OpClass::FpMemory);
        b.flow(l, chain[0]);
        if rng.gen_bool(0.6) {
            let st = b.op(format!("r{r}st"), OpClass::FpMemory);
            b.flow(chain[len - 1], st);
        }
    }
    b.build().expect("multirec generator is well-formed")
}

/// Randomized stress loop: a layered DAG with random op classes, random
/// forward distance-0 flow edges, random loop-carried edges (any
/// direction, distance ≥ 1) and occasional memory-ordering edges. Forward
/// distance-0 edges cannot close a cycle, so every draw is schedulable.
fn gen_stress(rng: &mut SmallRng, name: &str) -> vliw_ir::Ddg {
    let layers = rng.gen_range(3usize..=5);
    let mut b = DdgBuilder::new(name);
    let mut by_layer: Vec<Vec<OpId>> = Vec::with_capacity(layers);
    let mut mem_ops: Vec<OpId> = Vec::new();
    for l in 0..layers {
        let width = rng.gen_range(2usize..=5);
        let mut layer = Vec::with_capacity(width);
        for w in 0..width {
            let roll: f64 = rng.gen();
            let class = if roll < 0.25 {
                if rng.gen_bool(0.7) {
                    OpClass::FpMemory
                } else {
                    OpClass::IntMemory
                }
            } else if roll < 0.45 {
                if rng.gen_bool(0.8) {
                    OpClass::IntArith
                } else {
                    OpClass::IntMul
                }
            } else if roll < 0.85 {
                OpClass::FpArith
            } else if roll < 0.97 {
                OpClass::FpMul
            } else {
                OpClass::FpDiv
            };
            let op = b.op(format!("l{l}w{w}"), class);
            if class.is_memory() {
                mem_ops.push(op);
            }
            // Same-iteration inputs come from strictly earlier layers.
            if l > 0 {
                for _ in 0..rng.gen_range(0..=2usize) {
                    let src_layer = &by_layer[rng.gen_range(0..l)];
                    let src = src_layer[rng.gen_range(0..src_layer.len())];
                    b.flow(src, op);
                }
            }
            layer.push(op);
        }
        by_layer.push(layer);
    }
    let all: Vec<OpId> = by_layer.iter().flatten().copied().collect();
    // Carried flow edges: any direction, distance >= 1.
    for _ in 0..rng.gen_range(1..=3usize) {
        let src = all[rng.gen_range(0..all.len())];
        let dst = all[rng.gen_range(0..all.len())];
        let distance = rng.gen_range(1u32..=3);
        if src == dst && rng.gen_bool(0.5) {
            continue; // keep some draws free of self-accumulators
        }
        b.flow_carried(src, dst, distance);
    }
    // Occasional store→load ordering across iterations.
    if mem_ops.len() >= 2 && rng.gen_bool(0.5) {
        let a = mem_ops[rng.gen_range(0..mem_ops.len())];
        let c = mem_ops[rng.gen_range(0..mem_ops.len())];
        if a != c {
            b.order(a, c, 1, rng.gen_range(1u32..=2));
        }
    }
    b.build().expect("stress generator is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_machine::{ClockedConfig, MachineDesign};
    use vliw_sched::{schedule_loop, ScheduleOptions};

    #[test]
    fn names_and_seeds_are_distinct() {
        let names: std::collections::HashSet<_> = Family::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 4);
        let seeds: std::collections::HashSet<_> =
            Family::ALL.iter().map(|f| f.default_seed()).collect();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn generation_is_deterministic() {
        for f in Family::ALL {
            let a = generate_family(f, 6, f.default_seed());
            let b = generate_family(f, 6, f.default_seed());
            assert_eq!(a, b, "{}", f.name());
            let c = generate_family(f, 6, f.default_seed() ^ 0xFFFF);
            assert!(a != c, "{}: different seeds should differ", f.name());
        }
    }

    #[test]
    fn weights_sum_to_one() {
        for f in Family::ALL {
            let b = generate_family(f, 9, f.default_seed());
            assert!((b.total_weight() - 1.0).abs() < 1e-9, "{}", b.name);
            assert_eq!(b.loops.len(), 9);
        }
    }

    #[test]
    fn ilpwide_has_no_recurrences() {
        let b = generate_family(Family::IlpWide, 8, Family::IlpWide.default_seed());
        for l in &b.loops {
            assert_eq!(l.ddg().rec_mii(), 0, "{}", l.ddg().name());
        }
    }

    #[test]
    fn multirec_has_several_recurrences() {
        let b = generate_family(Family::MultiRec, 8, Family::MultiRec.default_seed());
        for l in &b.loops {
            assert!(
                l.ddg().recurrences().len() >= 2,
                "{}: wanted >= 2 recurrences, got {}",
                l.ddg().name(),
                l.ddg().recurrences().len()
            );
            assert!(l.ddg().rec_mii() >= 1);
        }
    }

    #[test]
    fn membound_is_memory_dominated() {
        let b = generate_family(Family::MemBound, 8, Family::MemBound.default_seed());
        for l in &b.loops {
            let mem = l.ddg().count_memory_ops();
            assert!(
                mem * 2 >= l.ddg().num_ops(),
                "{}: {} mem ops of {}",
                l.ddg().name(),
                mem,
                l.ddg().num_ops()
            );
        }
    }

    #[test]
    fn every_family_loop_schedules_on_reference_and_hetero() {
        use vliw_machine::Time;
        let design = MachineDesign::paper_machine(1);
        let configs = [
            ClockedConfig::reference(design),
            ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(1.5)),
        ];
        for bench in family_suite(6) {
            for l in &bench.loops {
                for config in &configs {
                    schedule_loop(l.ddg(), config, None, &ScheduleOptions::default())
                        .unwrap_or_else(|e| panic!("{} must schedule: {e}", l.ddg().name()));
                }
            }
        }
    }
}
