//! Property tests: store records survive the JSONL wire bit-exactly.

use proptest::prelude::*;

use vliw_store::{LoopProfileRecord, MeasureRecord, ProfileRecord, Record, StoreKey};

fn arb_u64() -> impl Strategy<Value = u64> {
    0u64..=u64::MAX
}

/// Finite `f64`s drawn from raw bit patterns, so subnormals, huge
/// magnitudes and negative zero all show up — the values most likely to
/// break a decimal round trip.
fn arb_finite_f64() -> impl Strategy<Value = f64> {
    arb_u64().prop_map(|bits| {
        let v = f64::from_bits(bits);
        if v.is_finite() {
            v
        } else {
            f64::from_bits(bits & 0x000f_ffff_ffff_ffff) // clear the exponent: finite
        }
    })
}

/// Names over an alphabet that includes the JSON-hostile characters
/// (quote, backslash, newline) so escaping is exercised.
fn arb_name() -> impl Strategy<Value = String> {
    const ALPHABET: &[char] = &[
        'a', 'b', 'z', '0', '9', '_', '.', '-', '"', '\\', '\n', '\t', ' ', 'é',
    ];
    proptest::collection::vec(0usize..ALPHABET.len(), 0..12)
        .prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i]).collect())
}

fn arb_key() -> impl Strategy<Value = StoreKey> {
    (arb_u64(), arb_u64()).prop_map(|(content, config)| StoreKey { content, config })
}

fn arb_measure() -> impl Strategy<Value = MeasureRecord> {
    (
        proptest::collection::vec(arb_finite_f64(), 0..8),
        arb_u64(),
        arb_u64(),
        arb_u64(),
    )
        .prop_map(
            |(weighted_ins_per_cluster, comms, mem_accesses, exec_time_fs)| MeasureRecord {
                weighted_ins_per_cluster,
                comms,
                mem_accesses,
                exec_time_fs,
            },
        )
}

fn arb_loop() -> impl Strategy<Value = LoopProfileRecord> {
    (
        (
            arb_name(),
            arb_finite_f64(),
            arb_u64(),
            0u32..=u32::MAX,
            (arb_u64(), arb_u64(), arb_u64()),
            arb_u64(),
        ),
        (
            arb_u64(),
            arb_u64(),
            arb_u64(),
            arb_finite_f64(),
            arb_finite_f64(),
        ),
        (arb_u64(), arb_u64(), arb_finite_f64()),
    )
        .prop_map(
            |(
                (name, weight, trips, rec_mii, (fu0, fu1, fu2), comms),
                (lifetime_fs, it_length_fs, it_ref_fs, weighted_ins, rec_weighted_ins),
                (mem_accesses, exec_time_fs, invocations),
            )| LoopProfileRecord {
                name,
                weight,
                trips,
                rec_mii,
                fu_counts: [fu0, fu1, fu2],
                comms,
                lifetime_fs,
                it_length_fs,
                it_ref_fs,
                weighted_ins,
                rec_weighted_ins,
                mem_accesses,
                exec_time_fs,
                invocations,
            },
        )
}

fn arb_profile() -> impl Strategy<Value = ProfileRecord> {
    (
        arb_name(),
        proptest::collection::vec(arb_loop(), 0..4),
        arb_finite_f64(),
        arb_u64(),
        arb_u64(),
        arb_u64(),
    )
        .prop_map(
            |(name, loops, ref_weighted_ins, ref_comms, ref_mem_accesses, ref_exec_time_fs)| {
                ProfileRecord {
                    name,
                    loops,
                    ref_weighted_ins,
                    ref_comms,
                    ref_mem_accesses,
                    ref_exec_time_fs,
                }
            },
        )
}

fn arb_record() -> impl Strategy<Value = Record> {
    (
        arb_key(),
        proptest::option::of(arb_measure()),
        arb_profile(),
    )
        .prop_map(|(key, measure, profile)| match measure {
            Some(value) => Record::Measure { key, value },
            None => Record::Profile {
                key,
                value: profile,
            },
        })
}

/// Bit-exact equality, distinguishing `0.0` from `-0.0` (plain `==`
/// would conflate them).
fn bits_equal(a: &Record, b: &Record) -> bool {
    fn f(a: f64, b: f64) -> bool {
        a.to_bits() == b.to_bits()
    }
    match (a, b) {
        (Record::Measure { key: ka, value: va }, Record::Measure { key: kb, value: vb }) => {
            ka == kb
                && va.weighted_ins_per_cluster.len() == vb.weighted_ins_per_cluster.len()
                && va
                    .weighted_ins_per_cluster
                    .iter()
                    .zip(&vb.weighted_ins_per_cluster)
                    .all(|(&x, &y)| f(x, y))
                && va.comms == vb.comms
                && va.mem_accesses == vb.mem_accesses
                && va.exec_time_fs == vb.exec_time_fs
        }
        (Record::Profile { key: ka, value: va }, Record::Profile { key: kb, value: vb }) => {
            ka == kb
                && va.name == vb.name
                && f(va.ref_weighted_ins, vb.ref_weighted_ins)
                && va.ref_comms == vb.ref_comms
                && va.ref_mem_accesses == vb.ref_mem_accesses
                && va.ref_exec_time_fs == vb.ref_exec_time_fs
                && va.loops.len() == vb.loops.len()
                && va.loops.iter().zip(&vb.loops).all(|(x, y)| {
                    x.name == y.name
                        && f(x.weight, y.weight)
                        && x.trips == y.trips
                        && x.rec_mii == y.rec_mii
                        && x.fu_counts == y.fu_counts
                        && x.comms == y.comms
                        && x.lifetime_fs == y.lifetime_fs
                        && x.it_length_fs == y.it_length_fs
                        && x.it_ref_fs == y.it_ref_fs
                        && f(x.weighted_ins, y.weighted_ins)
                        && f(x.rec_weighted_ins, y.rec_weighted_ins)
                        && x.mem_accesses == y.mem_accesses
                        && x.exec_time_fs == y.exec_time_fs
                        && f(x.invocations, y.invocations)
                })
        }
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any record encodes to one JSON line and decodes back bit-exactly.
    #[test]
    fn records_round_trip_bit_exactly(record in arb_record()) {
        let line = record.to_json_line();
        prop_assert!(!line.contains('\n'), "one record, one line: {line}");
        let value = serde_json::from_str(&line).expect("emitted lines are valid JSON");
        let back = Record::from_json_value(&value, "prop#1").expect("emitted lines parse");
        prop_assert!(bits_equal(&record, &back), "through {line}");
    }

    /// Re-encoding a decoded record reproduces the original bytes —
    /// the property compaction's byte-stability rests on.
    #[test]
    fn encoding_is_canonical(record in arb_record()) {
        let line = record.to_json_line();
        let value = serde_json::from_str(&line).unwrap();
        let back = Record::from_json_value(&value, "prop#1").unwrap();
        prop_assert_eq!(back.to_json_line(), line);
    }
}
