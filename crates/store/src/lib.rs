//! Persistent content-addressed measurement store.
//!
//! Measuring one machine configuration against one benchmark is
//! deterministic and expensive (a full modulo-scheduling pass per
//! loop), which makes every measurement worth keeping. This crate
//! stores them on disk, keyed by *what* was measured rather than *when*
//! or *by whom*:
//!
//! ```text
//! (content hash of the benchmark's loop DDGs, machine-config fingerprint)
//!     → usage profile  /  reference profile
//! ```
//!
//! Both key halves are [`StableHasher`] digests (FNV-1a 64 with fixed
//! byte encodings), so a key computed today on one machine equals the
//! key computed next year on another — the property that makes
//! cross-process and cross-machine result sharing sound.
//!
//! The disk format is an append-only newline-JSON log per writing
//! process ([`MeasureStore`]), merged deterministically on read and
//! compacted explicitly ([`MeasureStore::compact`]). Loading is strict:
//! every complete line either parses exactly or fails with a JSON-path
//! error, the same discipline as the corpus loader in `vliw-ir`.
//!
//! This crate is domain-blind on purpose: records hold plain numbers
//! (femtosecond times, weighted instruction counts), and the mapping
//! from scheduler/power-model types to keys and records lives in
//! `vliw-explore`, keeping the dependency arrow pointing one way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hash;
mod log;
mod record;

pub use hash::StableHasher;
pub use log::{CompactReport, MeasureStore, StoreError, StoreStats, LOG_HEADER};
pub use record::{
    EvalObjectives, EvalRecord, LoopProfileRecord, MeasureRecord, ProfileRecord, Record, StoreKey,
};

use std::path::PathBuf;

/// Where (and whether) to persist measurements — the store dimension a
/// request carries.
///
/// `StoreConfig` is plain data so it can ride in a `Request` over the
/// wire: the daemon opens the named directory itself. An unset config
/// (`StoreConfig::none()`) means in-memory caching only, the
/// pre-store behaviour.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct StoreConfig {
    /// Store directory, or `None` for no persistence.
    pub dir: Option<PathBuf>,
}

impl StoreConfig {
    /// No persistence (in-memory caches only).
    #[must_use]
    pub fn none() -> Self {
        StoreConfig { dir: None }
    }

    /// Persist under `dir` (created on first use).
    #[must_use]
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: Some(dir.into()),
        }
    }

    /// Whether persistence is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }
}
