//! A process-independent hasher for content addresses.
//!
//! [`std::collections::hash_map::DefaultHasher`] is deterministic within
//! one toolchain but documented as unstable across Rust releases, which
//! makes it unsuitable for keys that live on disk. [`StableHasher`] is
//! 64-bit FNV-1a with an explicit, fixed byte encoding for every input
//! kind — little-endian integers, IEEE-754 bit patterns for floats,
//! length-prefixed strings — so a content address depends only on the
//! hashed content, never on the process, machine or compiler that
//! computed it.
//!
//! Floats are hashed by bit pattern, extending the exact (no epsilon
//! classes) discipline of `PowerModel::fingerprint` to persistent keys.

/// 64-bit FNV-1a over an explicitly encoded byte stream.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Absorbs a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs an `f64` by IEEE-754 bit pattern (exact: `0.1 + 0.2`
    /// and `0.3` hash differently, `-0.0` and `0.0` too).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a string, length-prefixed so `("ab","c")` and
    /// `("a","bc")` cannot collide by concatenation.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The accumulated 64-bit digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_fnv1a_reference_vectors() {
        // Published FNV-1a 64 digests.
        let mut h = StableHasher::new();
        h.write_bytes(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = StableHasher::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn string_length_prefix_prevents_concatenation_collisions() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn floats_hash_by_bit_pattern() {
        let mut a = StableHasher::new();
        a.write_f64(0.0);
        let mut b = StableHasher::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish(), "signed zeros are distinct content");
    }
}
