//! Store records: content-addressed keys and the measurement/profile
//! payloads they map to, with their newline-JSON wire form.
//!
//! One record is one line of a store log:
//!
//! ```json
//! {"kind":"measure","content":"00c5…","config":"81aa…","ins":[12.5,3.0],
//!  "comms":40,"mems":11,"exec_fs":1250000}
//! ```
//!
//! Keys are 16-digit lowercase-hex [`StableHasher`](crate::StableHasher)
//! digests (hex strings, not JSON numbers, so the full 64-bit range
//! survives every JSON implementation). Floats are written in Rust's
//! shortest round-trip `Display` form and parsed back bit-exactly — the
//! same discipline the corpus format (`vliw-ir::serial`) pins — so a
//! record loaded from disk reproduces the measurement it stored down to
//! the last ULP.
//!
//! Parsing is strict and path-addressed: unknown fields, missing fields
//! and wrong types all fail with a [`SerialError`] naming the offending
//! JSON path (`writer-42-0.jsonl#3.ins[1]` style), mirroring the corpus
//! loader's discipline.

use serde::write_json_str;
use serde_json::Value;
use vliw_ir::{check_fields, get_field, get_str_field, SerialError};

/// The content address of one stored result: *what* was measured and
/// *on which machine*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// Structural hash of the benchmark content (loop DDGs, trip
    /// counts, weights) — independent of how the benchmark was obtained.
    pub content: u64,
    /// Fingerprint of the full machine configuration: cycle times,
    /// voltages, buses, scheduler options and the calibrated power
    /// model, all hashed by exact bit pattern.
    pub config: u64,
}

impl std::fmt::Display for StoreKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}/{:016x}", self.content, self.config)
    }
}

/// A measured usage profile, in store-native units (times in
/// femtoseconds, exactly as `vliw_machine::Time` stores them).
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureRecord {
    /// Energy-weighted instructions per cluster.
    pub weighted_ins_per_cluster: Vec<f64>,
    /// Inter-cluster communications.
    pub comms: u64,
    /// Memory accesses.
    pub mem_accesses: u64,
    /// Execution time in femtoseconds.
    pub exec_time_fs: u64,
}

/// One loop of a stored reference profile (see
/// `vliw_explore::profile::LoopProfile`; times in femtoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct LoopProfileRecord {
    /// Loop name.
    pub name: String,
    /// Fraction of program time.
    pub weight: f64,
    /// Iterations per invocation.
    pub trips: u64,
    /// Recurrence-constrained minimum II (cycles).
    pub rec_mii: u32,
    /// Operations per FU kind `[int, fp, mem]`.
    pub fu_counts: [u64; 3],
    /// Inter-cluster communications per iteration.
    pub comms: u64,
    /// Sum of register lifetimes per iteration (fs).
    pub lifetime_fs: u64,
    /// Iteration length of the reference schedule (fs).
    pub it_length_fs: u64,
    /// Initiation time of the reference schedule (fs).
    pub it_ref_fs: u64,
    /// Energy-weighted instructions per iteration.
    pub weighted_ins: f64,
    /// Energy-weighted instructions on non-trivial recurrences.
    pub rec_weighted_ins: f64,
    /// Memory accesses per iteration.
    pub mem_accesses: u64,
    /// Execution time of one invocation (fs).
    pub exec_time_fs: u64,
    /// Invocation multiplier.
    pub invocations: f64,
}

/// A stored reference profile of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRecord {
    /// Benchmark name.
    pub name: String,
    /// Per-loop measurements.
    pub loops: Vec<LoopProfileRecord>,
    /// Aggregate reference energy-weighted instructions.
    pub ref_weighted_ins: f64,
    /// Aggregate reference communications.
    pub ref_comms: u64,
    /// Aggregate reference memory accesses.
    pub ref_mem_accesses: u64,
    /// Aggregate reference execution time (fs).
    pub ref_exec_time_fs: u64,
}

/// The suite-level objectives of one stored search evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalObjectives {
    /// Suite execution time in nanoseconds.
    pub exec_time_ns: f64,
    /// Suite energy in reference units.
    pub energy: f64,
    /// Suite energy-delay-squared product.
    pub ed2: f64,
}

/// One persisted design-space-search evaluation: the measured suite
/// objectives of one candidate, or its recorded infeasibility.
///
/// Unlike measurements and profiles, eval records are keyed by
/// *(search-space fingerprint, candidate index)*: `StoreKey::content`
/// holds the fingerprint of the whole evaluation context (space, suite
/// contents, scheduler and power knobs) and `StoreKey::config` holds
/// the candidate's canonical index in that space. Warm-started searches
/// probe these records to reseed their Pareto archive and evaluation
/// memo before the first optimizer step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalRecord {
    /// The measured objectives, or `None` for an infeasible candidate
    /// (out-of-range voltages, unsustainable frequencies, scheduling
    /// failure — infeasibility is deterministic too, so it is worth
    /// remembering).
    pub objectives: Option<EvalObjectives>,
}

/// One store log line: a key plus its payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A measured heterogeneous usage profile.
    Measure {
        /// Content address.
        key: StoreKey,
        /// Payload.
        value: MeasureRecord,
    },
    /// A reference profile.
    Profile {
        /// Content address.
        key: StoreKey,
        /// Payload.
        value: ProfileRecord,
    },
    /// A design-space-search evaluation.
    Eval {
        /// Content address (space fingerprint / candidate index).
        key: StoreKey,
        /// Payload.
        value: EvalRecord,
    },
}

impl Record {
    /// The record's content address.
    #[must_use]
    pub fn key(&self) -> StoreKey {
        match self {
            Record::Measure { key, .. }
            | Record::Profile { key, .. }
            | Record::Eval { key, .. } => *key,
        }
    }

    /// Serialises the record as one compact JSON line (no newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::new();
        match self {
            Record::Measure { key, value } => {
                out.push_str(&format!(
                    "{{\"kind\":\"measure\",\"content\":\"{:016x}\",\"config\":\"{:016x}\",\"ins\":[",
                    key.content, key.config
                ));
                for (i, &v) in value.weighted_ins_per_cluster.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_f64(&mut out, v);
                }
                out.push_str(&format!(
                    "],\"comms\":{},\"mems\":{},\"exec_fs\":{}}}",
                    value.comms, value.mem_accesses, value.exec_time_fs
                ));
            }
            Record::Profile { key, value } => {
                out.push_str(&format!(
                    "{{\"kind\":\"profile\",\"content\":\"{:016x}\",\"config\":\"{:016x}\",\"name\":",
                    key.content, key.config
                ));
                write_json_str(&value.name, &mut out);
                out.push_str(",\"ref_ins\":");
                push_f64(&mut out, value.ref_weighted_ins);
                out.push_str(&format!(
                    ",\"ref_comms\":{},\"ref_mems\":{},\"ref_exec_fs\":{},\"loops\":[",
                    value.ref_comms, value.ref_mem_accesses, value.ref_exec_time_fs
                ));
                for (i, l) in value.loops.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"name\":");
                    write_json_str(&l.name, &mut out);
                    out.push_str(",\"weight\":");
                    push_f64(&mut out, l.weight);
                    out.push_str(&format!(
                        ",\"trips\":{},\"rec_mii\":{},\"fu\":[{},{},{}],\"comms\":{},\
                         \"lifetime_fs\":{},\"it_length_fs\":{},\"it_ref_fs\":{},\"ins\":",
                        l.trips,
                        l.rec_mii,
                        l.fu_counts[0],
                        l.fu_counts[1],
                        l.fu_counts[2],
                        l.comms,
                        l.lifetime_fs,
                        l.it_length_fs,
                        l.it_ref_fs
                    ));
                    push_f64(&mut out, l.weighted_ins);
                    out.push_str(",\"rec_ins\":");
                    push_f64(&mut out, l.rec_weighted_ins);
                    out.push_str(&format!(
                        ",\"mems\":{},\"exec_fs\":{},\"invocations\":",
                        l.mem_accesses, l.exec_time_fs
                    ));
                    push_f64(&mut out, l.invocations);
                    out.push('}');
                }
                out.push_str("]}");
            }
            Record::Eval { key, value } => {
                out.push_str(&format!(
                    "{{\"kind\":\"eval\",\"content\":\"{:016x}\",\"config\":\"{:016x}\"",
                    key.content, key.config
                ));
                match &value.objectives {
                    Some(o) => {
                        out.push_str(",\"time_ns\":");
                        push_f64(&mut out, o.exec_time_ns);
                        out.push_str(",\"energy\":");
                        push_f64(&mut out, o.energy);
                        out.push_str(",\"ed2\":");
                        push_f64(&mut out, o.ed2);
                    }
                    None => out.push_str(",\"infeasible\":true"),
                }
                out.push('}');
            }
        }
        out
    }

    /// Parses one record from a parsed JSON tree; `path` names the
    /// record's location (`<file>#<line>`) for error reporting.
    ///
    /// # Errors
    ///
    /// A [`SerialError`] naming the exact JSON path on any missing or
    /// unknown field, wrong type, or malformed key.
    pub fn from_json_value(value: &Value, path: &str) -> Result<Self, SerialError> {
        let kind = get_str_field(value, path, "kind")?;
        let key = StoreKey {
            content: get_hex_field(value, path, "content")?,
            config: get_hex_field(value, path, "config")?,
        };
        match kind {
            "measure" => {
                check_fields(
                    value,
                    path,
                    &[
                        "kind", "content", "config", "ins", "comms", "mems", "exec_fs",
                    ],
                )?;
                let ins = get_array_field(value, path, "ins")?;
                let weighted_ins_per_cluster = ins
                    .iter()
                    .enumerate()
                    .map(|(i, v)| as_f64(v, &format!("{path}.ins[{i}]")))
                    .collect::<Result<Vec<f64>, SerialError>>()?;
                Ok(Record::Measure {
                    key,
                    value: MeasureRecord {
                        weighted_ins_per_cluster,
                        comms: get_u64_field(value, path, "comms")?,
                        mem_accesses: get_u64_field(value, path, "mems")?,
                        exec_time_fs: get_u64_field(value, path, "exec_fs")?,
                    },
                })
            }
            "profile" => {
                check_fields(
                    value,
                    path,
                    &[
                        "kind",
                        "content",
                        "config",
                        "name",
                        "ref_ins",
                        "ref_comms",
                        "ref_mems",
                        "ref_exec_fs",
                        "loops",
                    ],
                )?;
                let loops_value = get_array_field(value, path, "loops")?;
                let mut loops = Vec::with_capacity(loops_value.len());
                for (i, l) in loops_value.iter().enumerate() {
                    loops.push(parse_loop(l, &format!("{path}.loops[{i}]"))?);
                }
                Ok(Record::Profile {
                    key,
                    value: ProfileRecord {
                        name: get_str_field(value, path, "name")?.to_owned(),
                        loops,
                        ref_weighted_ins: get_f64_field(value, path, "ref_ins")?,
                        ref_comms: get_u64_field(value, path, "ref_comms")?,
                        ref_mem_accesses: get_u64_field(value, path, "ref_mems")?,
                        ref_exec_time_fs: get_u64_field(value, path, "ref_exec_fs")?,
                    },
                })
            }
            "eval" => {
                if has_field(value, "infeasible") {
                    check_fields(value, path, &["kind", "content", "config", "infeasible"])?;
                    let flag = get_field(value, path, "infeasible")?;
                    if flag.as_bool() != Some(true) {
                        return Err(SerialError {
                            path: format!("{path}.infeasible"),
                            message: "infeasible must be true when present".to_owned(),
                        });
                    }
                    Ok(Record::Eval {
                        key,
                        value: EvalRecord { objectives: None },
                    })
                } else {
                    check_fields(
                        value,
                        path,
                        &["kind", "content", "config", "time_ns", "energy", "ed2"],
                    )?;
                    Ok(Record::Eval {
                        key,
                        value: EvalRecord {
                            objectives: Some(EvalObjectives {
                                exec_time_ns: get_f64_field(value, path, "time_ns")?,
                                energy: get_f64_field(value, path, "energy")?,
                                ed2: get_f64_field(value, path, "ed2")?,
                            }),
                        },
                    })
                }
            }
            other => Err(SerialError {
                path: format!("{path}.kind"),
                message: format!(
                    "unknown record kind {other:?} (expected measure, profile or eval)"
                ),
            }),
        }
    }
}

fn parse_loop(value: &Value, path: &str) -> Result<LoopProfileRecord, SerialError> {
    check_fields(
        value,
        path,
        &[
            "name",
            "weight",
            "trips",
            "rec_mii",
            "fu",
            "comms",
            "lifetime_fs",
            "it_length_fs",
            "it_ref_fs",
            "ins",
            "rec_ins",
            "mems",
            "exec_fs",
            "invocations",
        ],
    )?;
    let fu = get_array_field(value, path, "fu")?;
    if fu.len() != 3 {
        return Err(SerialError {
            path: format!("{path}.fu"),
            message: format!("fu must have exactly 3 counts, got {}", fu.len()),
        });
    }
    let fu_counts = [
        as_u64(&fu[0], &format!("{path}.fu[0]"))?,
        as_u64(&fu[1], &format!("{path}.fu[1]"))?,
        as_u64(&fu[2], &format!("{path}.fu[2]"))?,
    ];
    Ok(LoopProfileRecord {
        name: get_str_field(value, path, "name")?.to_owned(),
        weight: get_f64_field(value, path, "weight")?,
        trips: get_u64_field(value, path, "trips")?,
        rec_mii: u32::try_from(get_u64_field(value, path, "rec_mii")?).map_err(|_| {
            SerialError {
                path: format!("{path}.rec_mii"),
                message: "rec_mii does not fit in u32".to_owned(),
            }
        })?,
        fu_counts,
        comms: get_u64_field(value, path, "comms")?,
        lifetime_fs: get_u64_field(value, path, "lifetime_fs")?,
        it_length_fs: get_u64_field(value, path, "it_length_fs")?,
        it_ref_fs: get_u64_field(value, path, "it_ref_fs")?,
        weighted_ins: get_f64_field(value, path, "ins")?,
        rec_weighted_ins: get_f64_field(value, path, "rec_ins")?,
        mem_accesses: get_u64_field(value, path, "mems")?,
        exec_time_fs: get_u64_field(value, path, "exec_fs")?,
        invocations: get_f64_field(value, path, "invocations")?,
    })
}

/// Writes a finite `f64` in shortest round-trip form.
///
/// # Panics
///
/// Panics on non-finite values — measurements are finite by
/// construction, and JSON has no encoding for NaN/∞.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    assert!(v.is_finite(), "store records hold finite floats, got {v}");
    out.push_str(&format!("{v}"));
    // An integral float like `2` prints without a decimal point; that is
    // fine — the parser goes through f64 either way and the bit pattern
    // survives.
}

fn as_f64(v: &Value, path: &str) -> Result<f64, SerialError> {
    match v {
        Value::Number(_) => Ok(v.as_f64().expect("numbers parse as f64")),
        other => Err(SerialError {
            path: path.to_owned(),
            message: format!("expected a number, got {}", other.type_name()),
        }),
    }
}

fn as_u64(v: &Value, path: &str) -> Result<u64, SerialError> {
    v.as_u64().ok_or_else(|| SerialError {
        path: path.to_owned(),
        message: format!("expected a non-negative integer, got {}", v.type_name()),
    })
}

pub(crate) fn get_u64_field(v: &Value, path: &str, key: &str) -> Result<u64, SerialError> {
    as_u64(get_field(v, path, key)?, &format!("{path}.{key}"))
}

pub(crate) fn get_f64_field(v: &Value, path: &str, key: &str) -> Result<f64, SerialError> {
    as_f64(get_field(v, path, key)?, &format!("{path}.{key}"))
}

/// A 16-digit lowercase-hex `u64` field (the key encoding).
pub(crate) fn get_hex_field(v: &Value, path: &str, key: &str) -> Result<u64, SerialError> {
    let s = get_str_field(v, path, key)?;
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(SerialError {
            path: format!("{path}.{key}"),
            message: format!("expected 16 hex digits, got {s:?}"),
        });
    }
    u64::from_str_radix(s, 16).map_err(|e| SerialError {
        path: format!("{path}.{key}"),
        message: format!("malformed hex key: {e}"),
    })
}

fn has_field(v: &Value, key: &str) -> bool {
    get_field(v, "", key).is_ok()
}

fn get_array_field<'v>(v: &'v Value, path: &str, key: &str) -> Result<&'v [Value], SerialError> {
    let field = get_field(v, path, key)?;
    field.as_array().ok_or_else(|| SerialError {
        path: format!("{path}.{key}"),
        message: format!("expected an array, got {}", field.type_name()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measure() -> Record {
        Record::Measure {
            key: StoreKey {
                content: 0x00c5_1234_5678_9abc,
                config: u64::MAX,
            },
            value: MeasureRecord {
                weighted_ins_per_cluster: vec![12.5, 0.1 + 0.2, -0.0, 3e-300],
                comms: 40,
                mem_accesses: 11,
                exec_time_fs: 1_250_000,
            },
        }
    }

    fn profile() -> Record {
        Record::Profile {
            key: StoreKey {
                content: 1,
                config: 2,
            },
            value: ProfileRecord {
                name: "171.swim".to_owned(),
                loops: vec![LoopProfileRecord {
                    name: "l\"0\"".to_owned(),
                    weight: 0.3,
                    trips: 100,
                    rec_mii: 3,
                    fu_counts: [5, 6, 7],
                    comms: 4,
                    lifetime_fs: 5,
                    it_length_fs: 6,
                    it_ref_fs: 7,
                    weighted_ins: 8.5,
                    rec_weighted_ins: 2.5,
                    mem_accesses: 9,
                    exec_time_fs: 10,
                    invocations: 11.75,
                }],
                ref_weighted_ins: 1.5,
                ref_comms: 2,
                ref_mem_accesses: 3,
                ref_exec_time_fs: 4,
            },
        }
    }

    fn eval_feasible() -> Record {
        Record::Eval {
            key: StoreKey {
                content: 0xdead_beef_0000_0001,
                config: 42,
            },
            value: EvalRecord {
                objectives: Some(EvalObjectives {
                    exec_time_ns: 0.1 + 0.2,
                    energy: 3e-300,
                    ed2: 1234.5,
                }),
            },
        }
    }

    fn eval_infeasible() -> Record {
        Record::Eval {
            key: StoreKey {
                content: 0xdead_beef_0000_0001,
                config: 43,
            },
            value: EvalRecord { objectives: None },
        }
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        for rec in [measure(), profile(), eval_feasible(), eval_infeasible()] {
            let line = rec.to_json_line();
            assert!(!line.contains('\n'));
            let value = serde_json::from_str(&line).expect("valid JSON");
            let back = Record::from_json_value(&value, "t#1").expect("round trip");
            assert_eq!(back, rec, "through {line}");
        }
    }

    #[test]
    fn unknown_field_is_a_path_error() {
        let mut line = measure().to_json_line();
        line.insert_str(line.len() - 1, ",\"frobs\":1");
        let value = serde_json::from_str(&line).unwrap();
        let err = Record::from_json_value(&value, "log#7").unwrap_err();
        assert!(err.path.starts_with("log#7"), "{err}");
        assert!(err.to_string().contains("frobs"), "{err}");
    }

    #[test]
    fn malformed_key_is_a_path_error() {
        let line = "{\"kind\":\"measure\",\"content\":\"xyz\",\"config\":\"0000000000000000\",\
                    \"ins\":[],\"comms\":0,\"mems\":0,\"exec_fs\":0}";
        let value = serde_json::from_str(line).unwrap();
        let err = Record::from_json_value(&value, "log#2").unwrap_err();
        assert_eq!(err.path, "log#2.content");
        assert!(err.message.contains("16 hex digits"), "{err}");
    }

    #[test]
    fn eval_rejects_mixed_feasibility() {
        // An infeasible marker alongside objectives is a field-set error.
        let line = "{\"kind\":\"eval\",\"content\":\"0000000000000001\",\
                    \"config\":\"0000000000000002\",\"time_ns\":1.0,\"energy\":2.0,\
                    \"ed2\":3.0,\"infeasible\":true}";
        let value = serde_json::from_str(line).unwrap();
        let err = Record::from_json_value(&value, "log#4").unwrap_err();
        assert!(err.path.starts_with("log#4"), "{err}");

        let line = "{\"kind\":\"eval\",\"content\":\"0000000000000001\",\
                    \"config\":\"0000000000000002\",\"infeasible\":false}";
        let value = serde_json::from_str(line).unwrap();
        let err = Record::from_json_value(&value, "log#5").unwrap_err();
        assert_eq!(err.path, "log#5.infeasible");
    }

    #[test]
    fn wrong_type_is_a_path_error() {
        let line = "{\"kind\":\"measure\",\"content\":\"0000000000000001\",\
                    \"config\":\"0000000000000002\",\"ins\":[true],\"comms\":0,\"mems\":0,\
                    \"exec_fs\":0}";
        let value = serde_json::from_str(line).unwrap();
        let err = Record::from_json_value(&value, "log#3").unwrap_err();
        assert_eq!(err.path, "log#3.ins[0]");
    }
}
