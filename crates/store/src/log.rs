//! The on-disk store: append-only JSONL logs under one directory,
//! merged deterministically on read, compacted explicitly.
//!
//! # Layout
//!
//! ```text
//! store/
//!   compact.jsonl           # optional: the last compaction's merge
//!   writer-4221-0.jsonl     # one log per writing process instance
//!   writer-4221-0.jsonl.lock
//! ```
//!
//! Every log starts with the header line
//! `{"format":"heterovliw-store","version":1}` followed by one
//! [`Record`] per line. A process never appends to a log it did not
//! create: each [`MeasureStore`] opens its own `writer-<pid>-<n>.jsonl`
//! (guarded by a lock file holding the pid) on first write, so
//! concurrent processes cannot interleave bytes. Readers merge all
//! `*.jsonl` logs in sorted filename order; duplicate keys must carry
//! identical payloads (measurements are deterministic), and a
//! same-key-different-value pair is a hard [`StoreError::Conflict`].
//!
//! # Corruption policy
//!
//! A final line with no trailing newline is the signature of a writer
//! killed mid-append: it is skipped and counted
//! ([`StoreStats::skipped_lines`]). Every other malformed line is a
//! hard [`StoreError::Corrupt`] naming the file, line and JSON path —
//! silent data loss is never an option for lines the format says are
//! complete.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use vliw_ir::SerialError;

use crate::record::{EvalRecord, MeasureRecord, ProfileRecord, Record, StoreKey};

/// Process-wide store telemetry: interned-once counter handles. These
/// aggregate over every store a process opens — the I/O view `store
/// stats` and the metrics exposition report alongside the per-store
/// hit/miss counters.
mod obs {
    use std::sync::{Arc, OnceLock};

    use vliw_obs::Counter;

    macro_rules! handle {
        ($fn_name:ident, $metric:literal, $doc:literal) => {
            #[doc = $doc]
            pub(crate) fn $fn_name() -> &'static Arc<Counter> {
                static C: OnceLock<Arc<Counter>> = OnceLock::new();
                C.get_or_init(|| vliw_obs::counter($metric))
            }
        };
    }

    handle!(
        records_read,
        "store_records_read_total",
        "Records loaded from logs."
    );
    handle!(
        records_written,
        "store_records_written_total",
        "Records appended to our writer log."
    );
    handle!(
        bytes_read,
        "store_bytes_read_total",
        "Log bytes read from disk."
    );
    handle!(
        bytes_written,
        "store_bytes_written_total",
        "Log bytes written to disk."
    );
    handle!(
        lock_takeovers,
        "store_lock_takeovers_total",
        "Stale writer locks reclaimed."
    );
    handle!(
        skipped_lines,
        "store_skipped_lines_total",
        "Truncated trailing lines skipped."
    );
}

/// The header line opening every store log.
pub const LOG_HEADER: &str = "{\"format\":\"heterovliw-store\",\"version\":1}";

/// Distinguishes writer instances within one process, so a store opened
/// twice (or two stores on different directories) never fight over one
/// lock name.
static INSTANCE: AtomicU64 = AtomicU64::new(0);

/// Errors from opening, reading or writing a store.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed; `path` names the file or directory.
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A complete log line is malformed; the path names file, line and
    /// JSON field.
    Corrupt(SerialError),
    /// Two logs carry the same key with different payloads.
    Conflict {
        /// The contested content address.
        key: StoreKey,
        /// `<file>#<line>` of the losing record.
        path: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store i/o error at {}: {}", path.display(), source)
            }
            StoreError::Corrupt(err) => write!(f, "corrupt store log {err}"),
            StoreError::Conflict { key, path } => write!(
                f,
                "store conflict at {path}: key {key} already stored with a different value \
                 (measurements are deterministic; this store mixes incompatible builds)"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt(err) => Some(err),
            StoreError::Conflict { .. } => None,
        }
    }
}

impl From<SerialError> for StoreError {
    fn from(err: SerialError) -> Self {
        StoreError::Corrupt(err)
    }
}

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Counters describing one open store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Stored usage measurements.
    pub measure_records: usize,
    /// Stored reference profiles.
    pub profile_records: usize,
    /// Stored search evaluations.
    pub eval_records: usize,
    /// Lookups answered from the store since open.
    pub hits: u64,
    /// Lookups that found nothing since open.
    pub misses: u64,
    /// Truncated trailing lines skipped while loading.
    pub skipped_lines: u64,
    /// Log files currently on disk.
    pub log_files: usize,
    /// Total bytes of log files on disk.
    pub bytes: u64,
    /// Log bytes read by *this process* so far (every store, from the
    /// process-wide `store_bytes_read_total` counter) — explains
    /// warm-vs-cold behaviour without strace.
    pub bytes_read: u64,
    /// Log bytes written by this process so far (process-wide).
    pub bytes_written: u64,
    /// Writer-lock takeovers this process performed (a takeover means a
    /// dead process's recycled-pid lock was reclaimed; process-wide).
    pub lock_takeovers: u64,
}

impl StoreStats {
    /// Total records of every kind.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.measure_records + self.profile_records + self.eval_records
    }
}

/// What a [`MeasureStore::compact`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Records written to the compacted log.
    pub records: usize,
    /// Logs merged and removed.
    pub merged_logs: usize,
    /// Logs left in place because a live foreign writer holds them.
    pub skipped_live_logs: usize,
    /// Size of the compacted log in bytes.
    pub bytes: u64,
}

struct Writer {
    file: fs::File,
    log_path: PathBuf,
    lock_path: PathBuf,
}

impl Drop for Writer {
    fn drop(&mut self) {
        // The log outlives the writer; only the liveness marker goes.
        let _ = fs::remove_file(&self.lock_path);
    }
}

#[derive(Default)]
struct Maps {
    measures: HashMap<StoreKey, MeasureRecord>,
    profiles: HashMap<StoreKey, ProfileRecord>,
    evals: HashMap<StoreKey, EvalRecord>,
}

impl Maps {
    fn insert(&mut self, record: Record, path: &str) -> Result<bool, StoreError> {
        match record {
            Record::Measure { key, value } => match self.measures.get(&key) {
                None => {
                    self.measures.insert(key, value);
                    Ok(true)
                }
                Some(existing) if *existing == value => Ok(false),
                Some(_) => Err(StoreError::Conflict {
                    key,
                    path: path.to_owned(),
                }),
            },
            Record::Profile { key, value } => match self.profiles.get(&key) {
                None => {
                    self.profiles.insert(key, value);
                    Ok(true)
                }
                Some(existing) if *existing == value => Ok(false),
                Some(_) => Err(StoreError::Conflict {
                    key,
                    path: path.to_owned(),
                }),
            },
            Record::Eval { key, value } => match self.evals.get(&key) {
                None => {
                    self.evals.insert(key, value);
                    Ok(true)
                }
                Some(existing) if *existing == value => Ok(false),
                Some(_) => Err(StoreError::Conflict {
                    key,
                    path: path.to_owned(),
                }),
            },
        }
    }
}

struct Inner {
    maps: Maps,
    writer: Option<Writer>,
}

/// A persistent content-addressed measurement store over one directory.
///
/// Cheap to share behind an `Arc`: lookups and appends take `&self`.
pub struct MeasureStore {
    dir: PathBuf,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    skipped_lines: AtomicU64,
}

impl fmt::Debug for MeasureStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MeasureStore")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl MeasureStore {
    /// Opens (creating if needed) the store at `dir`, merging every log
    /// already present.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem trouble, [`StoreError::Corrupt`]
    /// on any malformed complete log line, [`StoreError::Conflict`] if
    /// two logs disagree about one key.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let mut maps = Maps::default();
        let mut skipped = 0;
        for path in log_paths(&dir)? {
            skipped += load_log(&path, &mut maps)?;
        }
        Ok(MeasureStore {
            dir,
            inner: Mutex::new(Inner { maps, writer: None }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            skipped_lines: AtomicU64::new(skipped),
        })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Looks up a stored measurement.
    pub fn get_measure(&self, key: StoreKey) -> Option<MeasureRecord> {
        let found = self.inner.lock().unwrap().maps.measures.get(&key).cloned();
        self.count(found.is_some());
        found
    }

    /// Looks up a stored reference profile.
    pub fn get_profile(&self, key: StoreKey) -> Option<ProfileRecord> {
        let found = self.inner.lock().unwrap().maps.profiles.get(&key).cloned();
        self.count(found.is_some());
        found
    }

    /// Stores a measurement, appending to this process's writer log.
    /// Re-storing an identical value is a no-op; a different value under
    /// the same key is a [`StoreError::Conflict`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] or [`StoreError::Conflict`].
    pub fn put_measure(&self, key: StoreKey, value: MeasureRecord) -> Result<(), StoreError> {
        self.put(Record::Measure { key, value })
    }

    /// Stores a reference profile; same contract as
    /// [`put_measure`](Self::put_measure).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] or [`StoreError::Conflict`].
    pub fn put_profile(&self, key: StoreKey, value: ProfileRecord) -> Result<(), StoreError> {
        self.put(Record::Profile { key, value })
    }

    /// Looks up a stored search evaluation.
    pub fn get_eval(&self, key: StoreKey) -> Option<EvalRecord> {
        let found = self.inner.lock().unwrap().maps.evals.get(&key).copied();
        self.count(found.is_some());
        found
    }

    /// Stores a search evaluation; same contract as
    /// [`put_measure`](Self::put_measure).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] or [`StoreError::Conflict`].
    pub fn put_eval(&self, key: StoreKey, value: EvalRecord) -> Result<(), StoreError> {
        self.put(Record::Eval { key, value })
    }

    /// Probes every stored evaluation of one search-space fingerprint in
    /// a single lock acquisition: returns all `(candidate index, record)`
    /// pairs whose key is `{content, index}` with `index < size`, sorted
    /// by index. Found records count as hits; if any index in
    /// `0..size` is absent, one collective miss is counted — a warm
    /// probe asks one question ("what does the store know about this
    /// space?"), not `size` questions.
    pub fn warm_evals(&self, content: u64, size: u64) -> Vec<(u64, EvalRecord)> {
        let mut found: Vec<(u64, EvalRecord)> = {
            let inner = self.inner.lock().unwrap();
            inner
                .maps
                .evals
                .iter()
                .filter(|(k, _)| k.content == content && k.config < size)
                .map(|(k, v)| (k.config, *v))
                .collect()
        };
        found.sort_unstable_by_key(|&(i, _)| i);
        self.hits.fetch_add(found.len() as u64, Ordering::Relaxed);
        if (found.len() as u64) < size {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    fn put(&self, record: Record) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().unwrap();
        let line = record.to_json_line();
        let fresh = inner.maps.insert(record, "<put>")?;
        if !fresh {
            return Ok(());
        }
        if inner.writer.is_none() {
            inner.writer = Some(open_writer(&self.dir)?);
        }
        let writer = inner.writer.as_mut().expect("just opened");
        writer
            .file
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| writer.file.flush())
            .map_err(|e| io_err(&writer.log_path, e))?;
        obs::records_written().inc();
        obs::bytes_written().add(line.len() as u64 + 1);
        Ok(())
    }

    /// Current counters, including on-disk sizes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be listed.
    pub fn stats(&self) -> Result<StoreStats, StoreError> {
        let inner = self.inner.lock().unwrap();
        let paths = log_paths(&self.dir)?;
        let mut bytes = 0;
        for p in &paths {
            bytes += fs::metadata(p).map_err(|e| io_err(p, e))?.len();
        }
        Ok(StoreStats {
            measure_records: inner.maps.measures.len(),
            profile_records: inner.maps.profiles.len(),
            eval_records: inner.maps.evals.len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            skipped_lines: self.skipped_lines.load(Ordering::Relaxed),
            log_files: paths.len(),
            bytes,
            bytes_read: obs::bytes_read().get(),
            bytes_written: obs::bytes_written().get(),
            lock_takeovers: obs::lock_takeovers().get(),
        })
    }

    /// Merges every quiescent log into a single `compact.jsonl` and
    /// removes the merged logs. This store's own writer is closed
    /// first; logs held by a *live* foreign writer are left untouched
    /// and counted in the report.
    ///
    /// # Errors
    ///
    /// Same error surface as [`open`](Self::open), plus I/O while
    /// writing the compacted log.
    pub fn compact(&self) -> Result<CompactReport, StoreError> {
        let mut inner = self.inner.lock().unwrap();
        inner.writer = None; // Drop flushes nothing (writes are flushed) and frees our lock.

        // Re-read from disk rather than trusting our maps: other
        // processes may have written since we opened.
        let mut merged = Maps::default();
        let mut merged_paths = Vec::new();
        let mut skipped_live = 0;
        for path in log_paths(&self.dir)? {
            if is_live_foreign_log(&path) {
                skipped_live += 1;
                continue;
            }
            self.skipped_lines
                .fetch_add(load_log(&path, &mut merged)?, Ordering::Relaxed);
            merged_paths.push(path);
        }

        let tmp = self.dir.join("compact.jsonl.tmp");
        let target = self.dir.join("compact.jsonl");
        let mut out = String::from(LOG_HEADER);
        out.push('\n');
        let mut records = 0;
        let mut profile_keys: Vec<StoreKey> = merged.profiles.keys().copied().collect();
        profile_keys.sort_by_key(|k| (k.content, k.config));
        for key in profile_keys {
            let value = merged.profiles.remove(&key).expect("own key");
            out.push_str(&Record::Profile { key, value }.to_json_line());
            out.push('\n');
            records += 1;
        }
        let mut measure_keys: Vec<StoreKey> = merged.measures.keys().copied().collect();
        measure_keys.sort_by_key(|k| (k.content, k.config));
        for key in measure_keys {
            let value = merged.measures.remove(&key).expect("own key");
            out.push_str(&Record::Measure { key, value }.to_json_line());
            out.push('\n');
            records += 1;
        }
        let mut eval_keys: Vec<StoreKey> = merged.evals.keys().copied().collect();
        eval_keys.sort_by_key(|k| (k.content, k.config));
        for key in eval_keys {
            let value = merged.evals.remove(&key).expect("own key");
            out.push_str(&Record::Eval { key, value }.to_json_line());
            out.push('\n');
            records += 1;
        }
        fs::write(&tmp, out.as_bytes()).map_err(|e| io_err(&tmp, e))?;
        fs::rename(&tmp, &target).map_err(|e| io_err(&target, e))?;
        let merged_logs = merged_paths.iter().filter(|p| **p != target).count();
        for path in merged_paths {
            if path != target {
                fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
            }
        }
        let bytes = fs::metadata(&target).map_err(|e| io_err(&target, e))?.len();

        // The compacted view replaces our in-memory merge: records from
        // skipped live logs stay visible (they were loaded at open or
        // re-read above only if quiescent), so reload them too.
        let mut maps = merged;
        debug_assert!(
            maps.measures.is_empty() && maps.profiles.is_empty() && maps.evals.is_empty()
        );
        for path in log_paths(&self.dir)? {
            self.skipped_lines
                .fetch_add(load_log(&path, &mut maps)?, Ordering::Relaxed);
        }
        inner.maps = maps;

        Ok(CompactReport {
            records,
            merged_logs,
            skipped_live_logs: skipped_live,
            bytes,
        })
    }

    fn count(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// All log files in `dir`, in sorted filename order (the merge order).
fn log_paths(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let mut paths = Vec::new();
    for entry in fs::read_dir(dir).map_err(|e| io_err(dir, e))? {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("jsonl") {
            paths.push(path);
        }
    }
    paths.sort();
    Ok(paths)
}

/// Loads one log into `maps`; returns how many truncated trailing lines
/// were skipped (0 or 1).
fn load_log(path: &Path, maps: &mut Maps) -> Result<u64, StoreError> {
    let content = fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    obs::bytes_read().add(content.len() as u64);
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("<log>")
        .to_owned();
    let terminated = content.ends_with('\n');
    let lines: Vec<&str> = content.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        let truncated_tail = !terminated && i + 1 == lines.len();
        let label = format!("{name}#{}", i + 1);
        let parsed = parse_line(line, i == 0, &label);
        match parsed {
            Ok(Some(record)) => {
                if truncated_tail {
                    // A record with no newline *could* still be a prefix
                    // of a longer line that happens to parse; the only
                    // safe reading of an unterminated tail is "the
                    // writer died here", so drop it.
                    eprintln!("[store] warning: skipping truncated final line {label}");
                    obs::skipped_lines().inc();
                    return Ok(1);
                }
                maps.insert(record, &label)?;
                obs::records_read().inc();
            }
            Ok(None) => {} // header
            Err(err) => {
                if truncated_tail {
                    eprintln!("[store] warning: skipping truncated final line {label}");
                    obs::skipped_lines().inc();
                    return Ok(1);
                }
                return Err(err);
            }
        }
    }
    Ok(0)
}

/// Parses one log line: `Ok(None)` for the header, `Ok(Some(_))` for a
/// record.
fn parse_line(line: &str, is_header: bool, label: &str) -> Result<Option<Record>, StoreError> {
    let value = serde_json::from_str(line).map_err(|e| {
        StoreError::Corrupt(SerialError {
            path: label.to_owned(),
            message: format!("not valid JSON: {e}"),
        })
    })?;
    if is_header {
        let format = vliw_ir::get_str_field(&value, label, "format")?;
        if format != "heterovliw-store" {
            return Err(StoreError::Corrupt(SerialError {
                path: format!("{label}.format"),
                message: format!("expected \"heterovliw-store\", got {format:?}"),
            }));
        }
        let version = crate::record::get_u64_field(&value, label, "version")?;
        if version != 1 {
            return Err(StoreError::Corrupt(SerialError {
                path: format!("{label}.version"),
                message: format!("unsupported store format version {version} (this build reads 1)"),
            }));
        }
        vliw_ir::check_fields(&value, label, &["format", "version"])?;
        return Ok(None);
    }
    Record::from_json_value(&value, label)
        .map(Some)
        .map_err(StoreError::Corrupt)
}

/// True when `path` is a writer log whose lock names a live process
/// other than us.
fn is_live_foreign_log(path: &Path) -> bool {
    let lock = lock_path_for(path);
    let Ok(content) = fs::read_to_string(&lock) else {
        return false; // no lock: the writer is done
    };
    let Ok(pid) = content.trim().parse::<u32>() else {
        return true; // unreadable lock: be conservative, leave it alone
    };
    if pid == std::process::id() {
        return false;
    }
    process_alive(pid)
}

fn lock_path_for(log: &Path) -> PathBuf {
    let mut name = log.file_name().unwrap_or_default().to_os_string();
    name.push(".lock");
    log.with_file_name(name)
}

/// Best-effort liveness probe. Where `/proc` is absent we assume alive —
/// wrongly skipping a dead writer's log during compaction only delays
/// its merge, while merging a live one would lose racing appends.
fn process_alive(pid: u32) -> bool {
    let proc_root = Path::new("/proc");
    if !proc_root.exists() {
        return true;
    }
    proc_root.join(pid.to_string()).exists()
}

/// Creates this process's writer log (with header) and its lock file.
fn open_writer(dir: &Path) -> Result<Writer, StoreError> {
    let pid = std::process::id();
    loop {
        let instance = INSTANCE.fetch_add(1, Ordering::Relaxed);
        let log_path = dir.join(format!("writer-{pid}-{instance}.jsonl"));
        let lock_path = lock_path_for(&log_path);
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&lock_path)
        {
            Ok(mut lock) => {
                lock.write_all(pid.to_string().as_bytes())
                    .map_err(|e| io_err(&lock_path, e))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                // A lock bearing our own pid can only be a leftover from
                // a dead process that recycled the pid: our in-process
                // instance counter never reuses a number. Take it over.
                obs::lock_takeovers().inc();
                let stale_log_gone = fs::remove_file(&log_path)
                    .or_else(|e| {
                        if e.kind() == std::io::ErrorKind::NotFound {
                            Ok(())
                        } else {
                            Err(e)
                        }
                    })
                    .is_ok();
                if !stale_log_gone {
                    continue; // cannot reclaim; try the next instance number
                }
                fs::remove_file(&lock_path).map_err(|e| io_err(&lock_path, e))?;
                continue;
            }
            Err(e) => return Err(io_err(&lock_path, e)),
        }
        let mut file = match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&log_path)
        {
            Ok(f) => f,
            Err(e) => {
                let _ = fs::remove_file(&lock_path);
                return Err(io_err(&log_path, e));
            }
        };
        if let Err(e) = file
            .write_all(format!("{LOG_HEADER}\n").as_bytes())
            .and_then(|()| file.flush())
        {
            let _ = fs::remove_file(&lock_path);
            return Err(io_err(&log_path, e));
        }
        return Ok(Writer {
            file,
            log_path,
            lock_path,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{LoopProfileRecord, ProfileRecord};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vliw-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> StoreKey {
        StoreKey {
            content: n,
            config: n.wrapping_mul(3),
        }
    }

    fn measure(n: u64) -> MeasureRecord {
        MeasureRecord {
            weighted_ins_per_cluster: vec![n as f64, 0.5],
            comms: n,
            mem_accesses: n + 1,
            exec_time_fs: 1000 + n,
        }
    }

    fn profile(name: &str) -> ProfileRecord {
        ProfileRecord {
            name: name.to_owned(),
            loops: vec![LoopProfileRecord {
                name: format!("{name}.l0"),
                weight: 1.0,
                trips: 10,
                rec_mii: 2,
                fu_counts: [1, 2, 3],
                comms: 4,
                lifetime_fs: 5,
                it_length_fs: 6,
                it_ref_fs: 7,
                weighted_ins: 8.0,
                rec_weighted_ins: 1.0,
                mem_accesses: 9,
                exec_time_fs: 10,
                invocations: 1.0,
            }],
            ref_weighted_ins: 8.0,
            ref_comms: 4,
            ref_mem_accesses: 9,
            ref_exec_time_fs: 10,
        }
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = tmp_dir("roundtrip");
        {
            let store = MeasureStore::open(&dir).unwrap();
            store.put_measure(key(1), measure(1)).unwrap();
            store.put_profile(key(2), profile("p")).unwrap();
            assert_eq!(store.get_measure(key(1)), Some(measure(1)));
        }
        let store = MeasureStore::open(&dir).unwrap();
        assert_eq!(store.get_measure(key(1)), Some(measure(1)));
        assert_eq!(store.get_profile(key(2)), Some(profile("p")));
        assert_eq!(store.get_measure(key(99)), None);
        let stats = store.stats().unwrap();
        assert_eq!(stats.entries(), 2);
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert_eq!(stats.skipped_lines, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    fn eval(n: u64) -> EvalRecord {
        EvalRecord {
            objectives: Some(crate::record::EvalObjectives {
                exec_time_ns: n as f64 + 0.5,
                energy: n as f64 * 2.0,
                ed2: n as f64 * 3.0,
            }),
        }
    }

    #[test]
    fn evals_round_trip_and_warm_probe_finds_them() {
        let dir = tmp_dir("evals");
        let space = 0xabcd;
        {
            let store = MeasureStore::open(&dir).unwrap();
            for i in [0, 2, 5] {
                let key = StoreKey {
                    content: space,
                    config: i,
                };
                store.put_eval(key, eval(i)).unwrap();
            }
            // An infeasible candidate is worth remembering too.
            store
                .put_eval(
                    StoreKey {
                        content: space,
                        config: 7,
                    },
                    EvalRecord { objectives: None },
                )
                .unwrap();
            // A different space's evals must not leak into the probe.
            store
                .put_eval(
                    StoreKey {
                        content: space + 1,
                        config: 1,
                    },
                    eval(1),
                )
                .unwrap();
        }
        let store = MeasureStore::open(&dir).unwrap();
        let warm = store.warm_evals(space, 8);
        assert_eq!(warm.len(), 4);
        assert_eq!(
            warm.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![0, 2, 5, 7]
        );
        assert_eq!(warm[3].1, EvalRecord { objectives: None });
        // Out-of-range indices are filtered: a probe of a smaller space
        // under the same fingerprint sees only the prefix.
        assert_eq!(store.warm_evals(space, 3).len(), 2);
        let stats = store.stats().unwrap();
        assert_eq!(stats.eval_records, 5);
        assert_eq!(stats.entries(), 5);
        assert_eq!(stats.hits, 6);
        assert_eq!(stats.misses, 2);
        // Conflicting eval payloads under one key are hard errors.
        let err = store
            .put_eval(
                StoreKey {
                    content: space,
                    config: 0,
                },
                eval(9),
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::Conflict { .. }), "{err}");
        // Compaction keeps evals.
        let report = store.compact().unwrap();
        assert_eq!(report.records, 5);
        assert_eq!(store.stats().unwrap().eval_records, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_put_is_a_noop_and_conflict_is_an_error() {
        let dir = tmp_dir("conflict");
        let store = MeasureStore::open(&dir).unwrap();
        store.put_measure(key(1), measure(1)).unwrap();
        store.put_measure(key(1), measure(1)).unwrap(); // dedupe
        let err = store.put_measure(key(1), measure(2)).unwrap_err();
        assert!(matches!(err, StoreError::Conflict { .. }), "{err}");
        drop(store);
        // Only one record line made it to disk.
        let store = MeasureStore::open(&dir).unwrap();
        assert_eq!(store.stats().unwrap().entries(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn two_writers_in_one_dir_merge_deterministically() {
        let dir = tmp_dir("two-writers");
        let a = MeasureStore::open(&dir).unwrap();
        let b = MeasureStore::open(&dir).unwrap();
        a.put_measure(key(1), measure(1)).unwrap();
        b.put_measure(key(2), measure(2)).unwrap();
        b.put_measure(key(1), measure(1)).unwrap(); // duplicate across logs: fine
        drop(a);
        drop(b);
        let merged = MeasureStore::open(&dir).unwrap();
        assert_eq!(merged.get_measure(key(1)), Some(measure(1)));
        assert_eq!(merged.get_measure(key(2)), Some(measure(2)));
        assert_eq!(merged.stats().unwrap().log_files, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cross_log_conflict_is_detected_on_open() {
        let dir = tmp_dir("cross-conflict");
        {
            let a = MeasureStore::open(&dir).unwrap();
            a.put_measure(key(1), measure(1)).unwrap();
        }
        {
            let b = MeasureStore::open(&dir).unwrap();
            // b opened after a's writer closed, so it sees a's value and
            // would refuse; force the conflict by writing the log by hand.
            drop(b);
            let line = Record::Measure {
                key: key(1),
                value: measure(7),
            }
            .to_json_line();
            fs::write(
                dir.join("writer-zz-forged.jsonl"),
                format!("{LOG_HEADER}\n{line}\n"),
            )
            .unwrap();
        }
        let err = MeasureStore::open(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Conflict { .. }), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_final_line_is_skipped_and_counted() {
        let dir = tmp_dir("truncated");
        {
            let store = MeasureStore::open(&dir).unwrap();
            store.put_measure(key(1), measure(1)).unwrap();
        }
        // Chop the last record mid-line, as a killed writer would.
        let log = log_paths(&dir).unwrap().pop().unwrap();
        let content = fs::read_to_string(&log).unwrap();
        fs::write(&log, &content[..content.len() - 9]).unwrap();
        let store = MeasureStore::open(&dir).unwrap();
        assert_eq!(store.get_measure(key(1)), None);
        assert_eq!(store.stats().unwrap().skipped_lines, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_middle_line_is_a_hard_error() {
        let dir = tmp_dir("malformed");
        fs::create_dir_all(&dir).unwrap();
        let line = Record::Measure {
            key: key(1),
            value: measure(1),
        }
        .to_json_line();
        fs::write(
            dir.join("writer-1-0.jsonl"),
            format!("{LOG_HEADER}\n{{\"kind\":\"bogus\"}}\n{line}\n"),
        )
        .unwrap();
        let err = MeasureStore::open(&dir).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("writer-1-0.jsonl#2"), "{msg}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_header_is_a_hard_error() {
        let dir = tmp_dir("header");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("writer-1-0.jsonl"),
            "{\"format\":\"heterovliw-store\",\"version\":2}\n",
        )
        .unwrap();
        let err = MeasureStore::open(&dir).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_merges_to_one_sorted_log() {
        let dir = tmp_dir("compact");
        {
            let a = MeasureStore::open(&dir).unwrap();
            a.put_measure(key(5), measure(5)).unwrap();
            a.put_measure(key(3), measure(3)).unwrap();
        }
        let store = MeasureStore::open(&dir).unwrap();
        store.put_profile(key(4), profile("q")).unwrap();
        let report = store.compact().unwrap();
        assert_eq!(report.records, 3);
        assert_eq!(report.merged_logs, 2);
        assert_eq!(report.skipped_live_logs, 0);
        // Everything still visible, now from one file.
        assert_eq!(store.get_measure(key(5)), Some(measure(5)));
        assert_eq!(store.get_profile(key(4)), Some(profile("q")));
        let stats = store.stats().unwrap();
        assert_eq!(stats.log_files, 1);
        assert_eq!(stats.entries(), 3);
        // Compacting twice is byte-stable.
        let first = fs::read(dir.join("compact.jsonl")).unwrap();
        store.compact().unwrap();
        assert_eq!(fs::read(dir.join("compact.jsonl")).unwrap(), first);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_skips_live_foreign_writers() {
        let dir = tmp_dir("compact-live");
        let other = MeasureStore::open(&dir).unwrap();
        other.put_measure(key(9), measure(9)).unwrap();
        // Forge the other writer's lock to belong to a live foreign
        // process (pid 1 is always alive on Linux).
        let log = log_paths(&dir)
            .unwrap()
            .into_iter()
            .find(|p| {
                p.file_name()
                    .unwrap()
                    .to_str()
                    .unwrap()
                    .starts_with("writer-")
            })
            .unwrap();
        std::mem::forget(other); // keep its lock file on disk
        fs::write(lock_path_for(&log), "1").unwrap();

        let store = MeasureStore::open(&dir).unwrap();
        store.put_measure(key(8), measure(8)).unwrap();
        let report = store.compact().unwrap();
        assert_eq!(report.skipped_live_logs, 1);
        assert_eq!(report.records, 1);
        // The live log's record is still visible after compaction.
        assert_eq!(store.get_measure(key(9)), Some(measure(9)));
        assert_eq!(store.get_measure(key(8)), Some(measure(8)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lock_files_are_removed_on_close_but_logs_stay() {
        let dir = tmp_dir("locks");
        {
            let store = MeasureStore::open(&dir).unwrap();
            store.put_measure(key(1), measure(1)).unwrap();
            let locks: Vec<_> = fs::read_dir(&dir)
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .path()
                        .extension()
                        .is_some_and(|x| x == "lock")
                })
                .collect();
            assert_eq!(locks.len(), 1);
        }
        let leftover: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert!(
            leftover.iter().all(|n| !n.ends_with(".lock")),
            "{leftover:?}"
        );
        assert_eq!(leftover.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
