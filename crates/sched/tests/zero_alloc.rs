//! Steady-state allocation discipline of the scheduler workspace.
//!
//! A counting global allocator wraps the system allocator; the test
//! schedules a representative loop once through a [`SchedWorkspace`] to
//! warm every buffer, then asserts that re-running the exact same
//! scheduling work performs **zero** heap allocations.
//!
//! This is the tier-1 guard for the workspace architecture: any future
//! change that sneaks a per-attempt `Vec`/`HashMap` back into the IMS
//! inner loop fails here immediately.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation passed to the system
/// allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`, only incrementing counters.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

use vliw_ir::{Ddg, DdgBuilder, OpClass};
use vliw_machine::{ClockedConfig, ClusterId, FrequencyMenu, MachineDesign, Time};
use vliw_sched::ims;
use vliw_sched::{ExtGraph, LoopClocks, SchedWorkspace};

/// A representative loop body: loads feeding a multiply/add tree with an
/// accumulator recurrence and a store — chains, fans, a carried cycle and
/// all three FU kinds.
fn representative_ddg() -> Ddg {
    let mut b = DdgBuilder::new("rep");
    let l0 = b.op("ld a[i]", OpClass::FpMemory);
    let l1 = b.op("ld b[i]", OpClass::FpMemory);
    let l2 = b.op("ld c[i]", OpClass::FpMemory);
    let m0 = b.op("mul0", OpClass::FpMul);
    let m1 = b.op("mul1", OpClass::FpMul);
    let s0 = b.op("add0", OpClass::FpArith);
    let acc = b.op("acc", OpClass::FpArith);
    let idx = b.op("i++", OpClass::IntArith);
    let st = b.op("st d[i]", OpClass::FpMemory);
    b.flow(l0, m0);
    b.flow(l1, m0);
    b.flow(l1, m1);
    b.flow(l2, m1);
    b.flow(m0, s0);
    b.flow(m1, s0);
    b.flow(s0, acc);
    b.flow_carried(acc, acc, 1);
    b.flow(acc, st);
    b.flow_carried(idx, idx, 1);
    b.build().unwrap()
}

/// Schedules the same extended graph twice through one workspace: the
/// second pass must not touch the allocator at all.
#[test]
fn second_pass_through_workspace_allocates_nothing() {
    let config = ClockedConfig::reference(MachineDesign::paper_machine(1));
    let clocks = LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(6.0))
        .expect("IT 6 ns synchronises the reference machine");
    let ddg = representative_ddg();
    // A two-cluster split so copies, the bus MRT and cross-cluster
    // lifetimes are all exercised.
    let assignment = [
        ClusterId(0),
        ClusterId(0),
        ClusterId(1),
        ClusterId(0),
        ClusterId(1),
        ClusterId(0),
        ClusterId(0),
        ClusterId(1),
        ClusterId(0),
    ];
    // Warm the DDG's analysis caches (SCCs, topo order, recMII) outside
    // the measured window, exactly as the IT-retry driver does before the
    // first IMS attempt.
    ddg.validate_schedulable().unwrap();
    let _ = ddg.rec_mii();
    let graph = ExtGraph::build(&ddg, &assignment, &config, &clocks);

    let mut ws = SchedWorkspace::new();
    // First pass grows every buffer to its steady-state capacity.
    ims::schedule_into(&graph, &config, &clocks, ims::DEFAULT_BUDGET_RATIO, &mut ws)
        .expect("representative loop schedules at IT 6 ns");
    let first_cycles: Vec<u64> = ws.issue_cycles().to_vec();

    // Second pass: identical work, zero allocations.
    let before = allocations();
    let result = ims::schedule_into(&graph, &config, &clocks, ims::DEFAULT_BUDGET_RATIO, &mut ws);
    let after = allocations();
    assert!(result.is_ok(), "second pass schedules identically");
    assert_eq!(
        after - before,
        0,
        "steady-state scheduling must not allocate (second pass performed {} allocations)",
        after - before
    );
    assert_eq!(
        ws.issue_cycles(),
        first_cycles.as_slice(),
        "workspace reuse must not change the schedule"
    );
}

/// The workspace also reaches steady state across *different* loops of the
/// same shape family: after scheduling one loop, re-scheduling it at a
/// different (previously seen) initiation time allocates nothing either.
#[test]
fn it_retry_reuse_allocates_nothing_once_warm() {
    let config = ClockedConfig::reference(MachineDesign::paper_machine(1));
    let menu = FrequencyMenu::unrestricted();
    let ddg = representative_ddg();
    ddg.validate_schedulable().unwrap();
    let _ = ddg.rec_mii();
    let assignment = [ClusterId(0); 9];
    let clocks_a = LoopClocks::select(&config, &menu, Time::from_ns(6.0)).unwrap();
    let clocks_b = LoopClocks::select(&config, &menu, Time::from_ns(8.0)).unwrap();
    let graph_a = ExtGraph::build(&ddg, &assignment, &config, &clocks_a);
    let graph_b = ExtGraph::build(&ddg, &assignment, &config, &clocks_b);

    let mut ws = SchedWorkspace::new();
    // Warm both IT shapes (8 cycles is the larger MRT).
    ims::schedule_into(
        &graph_b,
        &config,
        &clocks_b,
        ims::DEFAULT_BUDGET_RATIO,
        &mut ws,
    )
    .unwrap();
    ims::schedule_into(
        &graph_a,
        &config,
        &clocks_a,
        ims::DEFAULT_BUDGET_RATIO,
        &mut ws,
    )
    .unwrap();

    let before = allocations();
    ims::schedule_into(
        &graph_b,
        &config,
        &clocks_b,
        ims::DEFAULT_BUDGET_RATIO,
        &mut ws,
    )
    .unwrap();
    ims::schedule_into(
        &graph_a,
        &config,
        &clocks_a,
        ims::DEFAULT_BUDGET_RATIO,
        &mut ws,
    )
    .unwrap();
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "IT-retry reuse must not allocate once buffers are warm"
    );
}

/// Phase profiling must preserve the zero-alloc steady state: the
/// [`PhaseProfile`] lives inline in the workspace and every probe only
/// reads the monotonic clock, so an enabled profile adds no allocations
/// to a warm pass.
///
/// [`PhaseProfile`]: vliw_sched::PhaseProfile
#[test]
fn profiling_enabled_steady_state_allocates_nothing() {
    let config = ClockedConfig::reference(MachineDesign::paper_machine(1));
    let clocks =
        LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(6.0)).unwrap();
    let ddg = representative_ddg();
    ddg.validate_schedulable().unwrap();
    let _ = ddg.rec_mii();
    let assignment = [ClusterId(0); 9];
    let graph = ExtGraph::build(&ddg, &assignment, &config, &clocks);

    let mut ws = SchedWorkspace::new();
    ws.enable_profiling();
    ims::schedule_into(&graph, &config, &clocks, ims::DEFAULT_BUDGET_RATIO, &mut ws).unwrap();

    let before = allocations();
    ims::schedule_into(&graph, &config, &clocks, ims::DEFAULT_BUDGET_RATIO, &mut ws).unwrap();
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "profiled steady-state scheduling must not allocate"
    );
    let profile = ws.profile().expect("profiling stays enabled");
    assert!(
        profile.count(vliw_sched::Phase::Place) >= 2,
        "both passes were profiled"
    );
}

/// Observability must not break the steady-state discipline: with
/// timing enabled and the metric handles warm (exactly the state of the
/// instrumented `schedule_loop` wrapper after its first call), a
/// scheduling pass plus its counter increment, clock reads and
/// histogram record — and even a registry re-lookup by name, which must
/// hit the borrowed-key fast path — allocate nothing.
#[test]
fn metrics_enabled_steady_state_allocates_nothing() {
    vliw_obs::enable_timing();
    let config = ClockedConfig::reference(MachineDesign::paper_machine(1));
    let clocks =
        LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(6.0)).unwrap();
    let ddg = representative_ddg();
    ddg.validate_schedulable().unwrap();
    let _ = ddg.rec_mii();
    let assignment = [ClusterId(0); 9];
    let graph = ExtGraph::build(&ddg, &assignment, &config, &clocks);

    let mut ws = SchedWorkspace::new();
    ims::schedule_into(&graph, &config, &clocks, ims::DEFAULT_BUDGET_RATIO, &mut ws).unwrap();
    // Warm the handles (first intern inserts into the registry).
    let loops = vliw_obs::counter("zero_alloc_loops_total");
    let nanos = vliw_obs::histogram("zero_alloc_schedule_nanos");
    loops.inc();
    if let Some(s) = vliw_obs::timer_start() {
        nanos.record(vliw_obs::elapsed_nanos(s));
    }

    let before = allocations();
    loops.inc();
    let start = vliw_obs::timer_start();
    ims::schedule_into(&graph, &config, &clocks, ims::DEFAULT_BUDGET_RATIO, &mut ws).unwrap();
    if let Some(s) = start {
        nanos.record(vliw_obs::elapsed_nanos(s));
    }
    vliw_obs::counter("zero_alloc_loops_total").inc();
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "instrumented steady-state scheduling must not allocate"
    );
    assert_eq!(loops.get(), 3, "every increment landed");
    assert!(nanos.count() >= 1, "the timed pass was recorded");
}

/// The bitset MRTs keep their retained storage across IIs wider than one
/// 64-bit word: once a workspace has seen a multi-word reservation window
/// (II > 64 local cycles in some domain), re-scheduling at that shape
/// allocates nothing.
#[test]
fn multi_word_mrt_reuse_allocates_nothing_once_warm() {
    let config = ClockedConfig::reference(MachineDesign::paper_machine(1));
    let menu = FrequencyMenu::unrestricted();
    // A long chain of int ops so a very large IT still has placements
    // spread across the window rather than all at cycle 0.
    let mut b = DdgBuilder::new("wide");
    let ids: Vec<_> = (0..24)
        .map(|i| b.op(format!("n{i}"), OpClass::IntArith))
        .collect();
    for w in ids.windows(2) {
        b.flow(w[0], w[1]);
    }
    let ddg = b.build().unwrap();
    ddg.validate_schedulable().unwrap();
    let _ = ddg.rec_mii();
    let assignment = vec![ClusterId(0); 24];
    // IT 70 ns => 70 rows per FU kind at the reference 1 GHz clock: the
    // per-unit row-sets span two u64 words (wpr = 2).
    let clocks = LoopClocks::select(&config, &menu, Time::from_ns(70.0)).unwrap();
    let graph = ExtGraph::build(&ddg, &assignment, &config, &clocks);

    let mut ws = SchedWorkspace::new();
    ims::schedule_into(&graph, &config, &clocks, ims::DEFAULT_BUDGET_RATIO, &mut ws).unwrap();

    let before = allocations();
    ims::schedule_into(&graph, &config, &clocks, ims::DEFAULT_BUDGET_RATIO, &mut ws).unwrap();
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "multi-word MRT reuse must not allocate once buffers are warm"
    );
}
