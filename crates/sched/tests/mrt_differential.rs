//! Differential proptests for the bitset modulo reservation tables.
//!
//! The bitset [`ClusterMrt`]/[`BusMrt`] are pinned against the retained
//! count-per-row oracles [`ReferenceClusterMrt`]/[`ReferenceBusMrt`]:
//! random *legal* `reserve`/`release` sequences are applied to both, and
//! after every step the observable surface — `is_free`, `first_free_cycle`
//! and `free_slots` — must agree exactly. II values are drawn across the
//! 64-bit word boundary (1..=140) so multi-word row-sets, head/tail valid
//! masks and the circular first-zero search all get exercised.
//!
//! One deliberate non-goal: `BusMrt::reserve` returns the *lowest free
//! bus bit* while `ReferenceBusMrt::reserve` returns the pre-reserve row
//! count. After a release-then-re-reserve on the same cycle those ids can
//! differ. The scheduler discards the return value (`ims.rs` only cares
//! *that* a bus slot exists), so the tests here compare occupancy, never
//! reserve return values.

use proptest::collection::vec;
use proptest::prelude::*;
use vliw_ir::FuKind;
use vliw_machine::ClusterDesign;
use vliw_sched::{BusMrt, ClusterMrt, ReferenceBusMrt, ReferenceClusterMrt};

const KINDS: [FuKind; 3] = [FuKind::Int, FuKind::Fp, FuKind::Mem];

/// One step of a differential run, decoded from raw proptest integers so
/// shrinking stays effective (every raw tuple maps to *some* legal step).
///
/// `action % 3`: 0 = reserve at `cycle` (skipped when the row is full),
/// 1 = release a previously reserved slot (skipped when none exist),
/// 2 = reserve at the first free cycle from `cycle` (the scheduler's
/// window-search pattern; skipped when the table is full).
type RawStep = (u8, u8, u64);

fn check_cluster_agreement(
    bit: &ClusterMrt,
    reference: &ReferenceClusterMrt,
    ii: u64,
    probe_cycle: u64,
) {
    for kind in KINDS {
        assert_eq!(
            bit.free_slots(kind),
            reference.free_slots(kind),
            "free_slots({kind:?}) diverged"
        );
        // Probe the whole window plus the proptest-chosen far cycle, so
        // modulo wrapping of out-of-window cycles is covered too.
        for c in (0..ii).chain([probe_cycle]) {
            assert_eq!(
                bit.is_free(kind, c),
                reference.is_free(kind, c),
                "is_free({kind:?}, {c}) diverged at II {ii}"
            );
            assert_eq!(
                bit.first_free_cycle(kind, c),
                reference.first_free_cycle(kind, c),
                "first_free_cycle({kind:?}, {c}) diverged at II {ii}"
            );
        }
    }
}

fn run_cluster_round(bit: &mut ClusterMrt, design: ClusterDesign, ii: u64, steps: &[RawStep]) {
    let mut reference = ReferenceClusterMrt::new(design, ii);
    // Every slot we currently hold, so releases are always legal.
    let mut held: Vec<(FuKind, u64)> = Vec::new();
    for &(action, kind_idx, cycle) in steps {
        let kind = KINDS[usize::from(kind_idx) % KINDS.len()];
        match action % 3 {
            0 => {
                if bit.is_free(kind, cycle) {
                    bit.reserve(kind, cycle);
                    reference.reserve(kind, cycle);
                    held.push((kind, cycle));
                }
            }
            1 => {
                if !held.is_empty() {
                    let (k, c) = held.swap_remove(cycle as usize % held.len());
                    bit.release(k, c);
                    reference.release(k, c);
                }
            }
            _ => {
                if let Some(free) = bit.first_free_cycle(kind, cycle) {
                    bit.reserve(kind, free);
                    reference.reserve(kind, free);
                    held.push((kind, free));
                }
            }
        }
        check_cluster_agreement(bit, &reference, ii, cycle);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cluster tables agree with the counting oracle under random legal
    /// sequences, across unit mixes and word-boundary-crossing IIs.
    #[test]
    fn cluster_mrt_matches_reference(
        int_fus in 1u32..4,
        fp_fus in 1u32..3,
        mem_ports in 1u32..3,
        ii in 1u64..140,
        steps in vec((0u8..6, 0u8..3, 0u64..512), 1..80),
    ) {
        let design = ClusterDesign { int_fus, fp_fus, mem_ports, registers: 32 };
        let mut bit = ClusterMrt::new(design, ii);
        run_cluster_round(&mut bit, design, ii, &steps);
    }

    /// `reset` fully reinitialises retained storage: a table recycled
    /// across (design, II) changes behaves like a freshly built one.
    #[test]
    fn cluster_mrt_reset_reuse_matches_reference(
        rounds in vec(
            (1u32..3, 1u32..3, 1u32..3, 1u64..140, vec((0u8..6, 0u8..3, 0u64..512), 1..40)),
            1..4,
        ),
    ) {
        let mut bit = ClusterMrt::new(
            ClusterDesign { int_fus: 1, fp_fus: 1, mem_ports: 1, registers: 32 },
            1,
        );
        for (int_fus, fp_fus, mem_ports, ii, steps) in rounds {
            let design = ClusterDesign { int_fus, fp_fus, mem_ports, registers: 32 };
            bit.reset(design, ii);
            run_cluster_round(&mut bit, design, ii, &steps);
        }
    }

    /// The interconnect table agrees with its counting oracle. Reserve
    /// *return values* are deliberately not compared (see module docs).
    #[test]
    fn bus_mrt_matches_reference(
        buses in 1u32..5,
        ii in 1u64..140,
        steps in vec((0u8..6, 0u64..512), 1..80),
    ) {
        let mut bit = BusMrt::new(buses, ii);
        let mut reference = ReferenceBusMrt::new(buses, ii);
        let mut held: Vec<u64> = Vec::new();
        for (action, cycle) in steps {
            match action % 3 {
                0 => {
                    if bit.is_free(cycle) {
                        let _ = bit.reserve(cycle);
                        let _ = reference.reserve(cycle);
                        held.push(cycle);
                    }
                }
                1 => {
                    if !held.is_empty() {
                        let c = held.swap_remove(cycle as usize % held.len());
                        bit.release(c);
                        reference.release(c);
                    }
                }
                _ => {
                    if let Some(free) = bit.first_free_cycle(cycle) {
                        let _ = bit.reserve(free);
                        let _ = reference.reserve(free);
                        held.push(free);
                    }
                }
            }
            prop_assert_eq!(bit.free_slots(), reference.free_slots());
            for c in (0..ii).chain([cycle]) {
                prop_assert_eq!(bit.is_free(c), reference.is_free(c), "is_free({})", c);
                prop_assert_eq!(
                    bit.first_free_cycle(c),
                    reference.first_free_cycle(c),
                    "first_free_cycle({})",
                    c
                );
            }
        }
    }
}
