//! The result of modulo scheduling one loop.

use vliw_ir::{Ddg, OpId};
use vliw_machine::{ClusterId, Time};
use vliw_power::UsageProfile;

use crate::comm::ExtGraph;
use crate::timing::LoopClocks;

/// A scheduled inter-cluster copy: one bus broadcast of `producer`'s value,
/// latched by every cluster that consumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledCopy {
    /// The operation whose value is transferred.
    pub producer: OpId,
    /// Issue cycle on the interconnect (ICN-local cycles).
    pub cycle: u64,
}

/// A complete modulo schedule of one loop on one clocked configuration.
///
/// Produced by [`crate::schedule_loop`]; consumed by the simulator and the
/// design-space explorer.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledLoop {
    clocks: LoopClocks,
    assignment: Vec<ClusterId>,
    op_cycles: Vec<u64>,
    op_ticks: Vec<u64>,
    copies: Vec<ScheduledCopy>,
    copy_ticks: Vec<u64>,
    it_length_ticks: u64,
    max_live: Vec<u32>,
    lifetime_sum_ticks: u64,
    weighted_ins_per_cluster: Vec<f64>,
    mem_accesses_per_iter: u64,
}

impl ScheduledLoop {
    /// Materialises a schedule from the IMS placement arrays (borrowed
    /// straight from the scheduling workspace — this is the only point the
    /// driver allocates for a successful schedule).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_ims(
        ddg: &Ddg,
        graph: &ExtGraph,
        clocks: LoopClocks,
        assignment: Vec<ClusterId>,
        issue_cycles: &[u64],
        issue_ticks: &[u64],
        max_live: &[u32],
        num_clusters: u8,
    ) -> Self {
        let num_real = graph.num_real();
        let op_cycles = issue_cycles[..num_real].to_vec();
        let op_ticks = issue_ticks[..num_real].to_vec();
        let copies: Vec<ScheduledCopy> = graph
            .copies()
            .iter()
            .enumerate()
            .map(|(i, c)| ScheduledCopy {
                producer: c.producer,
                cycle: issue_cycles[num_real + i],
            })
            .collect();
        let copy_ticks = issue_ticks[num_real..].to_vec();
        let it_length_ticks = graph
            .nodes()
            .map(|n| issue_ticks[n.index()] + graph.result_latency_ticks(n))
            .max()
            .unwrap_or(0);
        let mut weighted = vec![0.0f64; usize::from(num_clusters)];
        for op in ddg.ops() {
            weighted[assignment[op.id().index()].index()] += op.class().relative_energy();
        }
        let mem_accesses_per_iter = ddg.count_memory_ops() as u64;
        let lifetime_sum_ticks =
            crate::regs::lifetime_sum_ticks(graph, &clocks, num_clusters, issue_ticks);
        ScheduledLoop {
            clocks,
            assignment,
            op_cycles,
            op_ticks,
            copies,
            copy_ticks,
            it_length_ticks,
            max_live: max_live.to_vec(),
            lifetime_sum_ticks,
            weighted_ins_per_cluster: weighted,
            mem_accesses_per_iter,
        }
    }

    /// The initiation time of the schedule.
    #[must_use]
    pub fn it(&self) -> Time {
        self.clocks.it()
    }

    /// The clock selection (per-domain IIs) the schedule was built at.
    #[must_use]
    pub fn clocks(&self) -> &LoopClocks {
        &self.clocks
    }

    /// Cluster assignment, one entry per DDG operation.
    #[must_use]
    pub fn assignment(&self) -> &[ClusterId] {
        &self.assignment
    }

    /// Issue cycle of `op`, in its cluster's local cycles.
    #[must_use]
    pub fn op_cycle(&self, op: OpId) -> u64 {
        self.op_cycles[op.index()]
    }

    /// Issue time of `op`, in ticks.
    #[must_use]
    pub fn op_tick(&self, op: OpId) -> u64 {
        self.op_ticks[op.index()]
    }

    /// The scheduled inter-cluster copies.
    #[must_use]
    pub fn copies(&self) -> &[ScheduledCopy] {
        &self.copies
    }

    /// Issue time of the `i`-th copy, in ticks.
    #[must_use]
    pub fn copy_tick(&self, i: usize) -> u64 {
        self.copy_ticks[i]
    }

    /// Communications per iteration (the number of copies).
    #[must_use]
    pub fn comms_per_iter(&self) -> u64 {
        self.copies.len() as u64
    }

    /// Memory accesses per iteration.
    #[must_use]
    pub fn mem_accesses_per_iter(&self) -> u64 {
        self.mem_accesses_per_iter
    }

    /// The time one iteration takes from first issue to last result
    /// (`it_length` of §2.2).
    #[must_use]
    pub fn it_length(&self) -> Time {
        self.clocks.ticks_to_time(self.it_length_ticks)
    }

    /// `it_length` in ticks.
    #[must_use]
    pub fn it_length_ticks(&self) -> u64 {
        self.it_length_ticks
    }

    /// Stage count of cluster `c`: how many iterations overlap there.
    #[must_use]
    pub fn stage_count(&self, c: ClusterId) -> u64 {
        let ii = self.clocks.cluster_ii(c);
        self.assignment
            .iter()
            .zip(&self.op_cycles)
            .filter(|&(&a, _)| a == c)
            .map(|(_, &cycle)| cycle / ii + 1)
            .max()
            .unwrap_or(0)
    }

    /// MaxLives per cluster.
    #[must_use]
    pub fn max_live(&self) -> &[u32] {
        &self.max_live
    }

    /// Sum of all register lifetimes per iteration, in ticks (the §3.2
    /// "lifetime slots" quantity).
    #[must_use]
    pub fn lifetime_sum_ticks(&self) -> u64 {
        self.lifetime_sum_ticks
    }

    /// Total execution time of `iterations` iterations:
    /// `(N − 1) · IT + it_length` (§2.2, expressed in time rather than
    /// cycles because the II differs per component).
    #[must_use]
    pub fn exec_time(&self, iterations: u64) -> Time {
        if iterations == 0 {
            return Time::ZERO;
        }
        self.clocks.it() * (iterations - 1) + self.it_length()
    }

    /// The resource-usage profile of running this schedule for
    /// `trip_count` iterations — the input to the §3.1 energy model.
    #[must_use]
    pub fn usage(&self, trip_count: u64) -> UsageProfile {
        let n = trip_count as f64;
        UsageProfile {
            weighted_ins_per_cluster: self
                .weighted_ins_per_cluster
                .iter()
                .map(|w| w * n)
                .collect(),
            comms: self.comms_per_iter() * trip_count,
            mem_accesses: self.mem_accesses_per_iter * trip_count,
            exec_time: self.exec_time(trip_count),
        }
    }
}
