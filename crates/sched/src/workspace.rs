//! The reusable scheduling workspace: every scratch buffer the modulo
//! scheduler needs, owned in one place so the hot path performs **no
//! steady-state heap allocation**.
//!
//! The paper's evaluation re-runs the §4 pipeline over thousands of loops,
//! and each loop retries the inner IMS at increasing initiation times
//! (Figure 5). Allocating the reservation tables, height/placement arrays
//! and register-pressure scratch afresh for every attempt dominated the
//! allocator profile; a [`SchedWorkspace`] is instead created once per
//! worker thread (or once per loop) and reused across:
//!
//! * the IT-retry loop of [`crate::schedule_loop`] /
//!   [`crate::schedule_loop_ws`],
//! * every [`crate::ims::schedule_into`] attempt inside one retry,
//! * the partition refinement passes
//!   ([`crate::partition::compute_partition_ws`]), and
//! * across loops, when the exploration layer hands one workspace to each
//!   worker of the `vliw-exec` pool.
//!
//! Buffers are `clear()`ed and `resize()`d rather than reconstructed, so
//! after the first pass over a loop their capacity is warm and subsequent
//! passes allocate nothing (asserted by the counting-allocator test in
//! `crates/sched/tests/zero_alloc.rs`). The workspace never changes *what*
//! is computed — results are byte-identical with a fresh workspace per
//! call.

use vliw_machine::ClusterId;

use crate::comm::NodeId;
use crate::mrt::{BusMrt, ClusterMrt};
use crate::profile::PhaseProfile;

/// Scratch for the register-pressure (MaxLives) analysis.
#[derive(Debug, Clone, Default)]
pub(crate) struct RegScratch {
    /// Per-cluster `[def, last_read)` lifetime intervals.
    pub(crate) intervals: Vec<Vec<(u64, u64)>>,
    /// Per-consumer-cluster interval accumulator for one broadcast copy.
    pub(crate) per_cluster: Vec<Option<(u64, u64)>>,
    /// Sweep events for the modulo overlap count.
    pub(crate) events: Vec<(u64, i64)>,
}

/// Scratch for the partitioner's pseudo-schedule evaluation and multilevel
/// refinement (see [`crate::partition::evaluate_partition_ws`]).
#[derive(Debug, Clone, Default)]
pub struct PartitionScratch {
    /// Per-cluster op counts `[int, fp, mem]`.
    pub(crate) counts: Vec<[u64; 3]>,
    /// Per-op "this producer already counted as a communication" flags.
    pub(crate) comm_marked: Vec<bool>,
    /// Ops marked in `comm_marked`, for O(marked) clearing.
    pub(crate) marked: Vec<u32>,
    /// Epoch-stamped recurrence membership (`rec_stamp[op] == rec_epoch`
    /// means the op belongs to the recurrence under evaluation).
    pub(crate) rec_stamp: Vec<u32>,
    pub(crate) rec_epoch: u32,
    /// ASAP finish times over the distance-0 subgraph.
    pub(crate) finish: Vec<f64>,
    /// Refinement's per-op induced-assignment buffer.
    pub(crate) induced: Vec<ClusterId>,
    /// Refinement's per-group rejection versions (see
    /// `partition::refine`): the move-counter value at which a group last
    /// had every candidate move rejected.
    pub(crate) group_version: Vec<u64>,
    /// The prebuilt evaluation context shared by every candidate pricing
    /// of one refinement run (latency tables, flow-edge lists, pred CSR).
    pub(crate) ctx: crate::partition::EvalCtx,
}

impl PartitionScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// All mutable state of one scheduling pipeline instance.
///
/// Create one with [`SchedWorkspace::new`] and thread it through
/// [`crate::schedule_loop_ws`] (or directly through
/// [`crate::ims::schedule_into`]); after [`crate::ims::schedule_into`]
/// returns `Ok`, the placement is available through
/// [`SchedWorkspace::issue_cycles`], [`SchedWorkspace::issue_ticks`] and
/// [`SchedWorkspace::max_live`] until the next scheduling call.
#[derive(Debug, Clone)]
pub struct SchedWorkspace {
    // --- IMS core ---
    /// Dependence heights (priority function), one per extended node.
    pub(crate) heights: Vec<i64>,
    /// Current placement (`None` = unscheduled), one per extended node.
    pub(crate) sched: Vec<Option<u64>>,
    /// Last cycle each node was placed at (forced placements move up).
    pub(crate) prev_cycle: Vec<Option<u64>>,
    /// Per-cluster modulo reservation tables, reset per attempt.
    pub(crate) cluster_mrts: Vec<ClusterMrt>,
    /// The interconnect's reservation table, reset per attempt.
    pub(crate) bus_mrt: BusMrt,
    /// Eviction list shared by forced placement and dependence ejection.
    pub(crate) eject: Vec<(NodeId, u64)>,
    // --- height-ordered ready structure ---
    /// Node ids sorted by (height desc, id asc) — the IMS pick order.
    pub(crate) order: Vec<u32>,
    /// Inverse of `order`: node id → position.
    pub(crate) pos: Vec<u32>,
    /// Bitset over `order` positions; bit set = node unscheduled.
    pub(crate) ready: Vec<u64>,
    // --- eject enumeration ---
    /// Per-resource scheduled-node bitsets (resources = cluster × FU kind
    /// rows plus one bus block), node-indexed with a per-resource stride.
    pub(crate) res_sched: Vec<u64>,
    /// Ticks per local cycle of each node's issue domain, precomputed.
    pub(crate) node_cyc_ticks: Vec<u64>,
    // --- incremental register-pressure state ---
    /// Per-producer max read tick over *currently placed* value consumers.
    pub(crate) reg_last_read: Vec<u64>,
    /// Per-producer count of currently placed value consumers.
    pub(crate) reg_readers: Vec<u32>,
    // --- results of the latest successful `schedule_into` ---
    pub(crate) issue_cycles: Vec<u64>,
    pub(crate) issue_ticks: Vec<u64>,
    pub(crate) max_live: Vec<u32>,
    // --- analysis scratch ---
    pub(crate) regs: RegScratch,
    pub(crate) part: PartitionScratch,
    // --- observability ---
    /// Phase-time accumulator; `None` (the default) keeps the hot path
    /// timer-free.
    pub(crate) profile: Option<PhaseProfile>,
}

impl SchedWorkspace {
    /// An empty workspace; every buffer grows on first use and is then
    /// reused across scheduling attempts, loops and configurations.
    #[must_use]
    pub fn new() -> Self {
        SchedWorkspace {
            heights: Vec::new(),
            sched: Vec::new(),
            prev_cycle: Vec::new(),
            cluster_mrts: Vec::new(),
            bus_mrt: BusMrt::new(1, 1),
            eject: Vec::new(),
            order: Vec::new(),
            pos: Vec::new(),
            ready: Vec::new(),
            res_sched: Vec::new(),
            node_cyc_ticks: Vec::new(),
            reg_last_read: Vec::new(),
            reg_readers: Vec::new(),
            issue_cycles: Vec::new(),
            issue_ticks: Vec::new(),
            max_live: Vec::new(),
            regs: RegScratch::default(),
            part: PartitionScratch::default(),
            profile: None,
        }
    }

    /// Turns on phase profiling: subsequent scheduling calls through this
    /// workspace accumulate per-phase wall time into [`PhaseProfile`]
    /// (readable via [`SchedWorkspace::profile`]). Off by default; when
    /// off the pipeline reads no timers at all.
    pub fn enable_profiling(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(PhaseProfile::new());
        }
    }

    /// Turns phase profiling off and discards any accumulated profile.
    pub fn disable_profiling(&mut self) {
        self.profile = None;
    }

    /// The accumulated phase profile, if profiling is enabled.
    #[must_use]
    pub fn profile(&self) -> Option<&PhaseProfile> {
        self.profile.as_ref()
    }

    /// Mutable access to the accumulated profile (e.g. to add a
    /// [`crate::profile::Phase::Validate`] entry timed by the caller, or
    /// to reset between runs), if profiling is enabled.
    pub fn profile_mut(&mut self) -> Option<&mut PhaseProfile> {
        self.profile.as_mut()
    }

    /// Issue cycle of every extended-graph node (domain-local cycles),
    /// as placed by the latest successful [`crate::ims::schedule_into`].
    #[must_use]
    pub fn issue_cycles(&self) -> &[u64] {
        &self.issue_cycles
    }

    /// Issue time of every extended-graph node, in ticks.
    #[must_use]
    pub fn issue_ticks(&self) -> &[u64] {
        &self.issue_ticks
    }

    /// MaxLives per cluster of the latest successful schedule.
    #[must_use]
    pub fn max_live(&self) -> &[u32] {
        &self.max_live
    }

    /// The partition scratch, for callers driving
    /// [`crate::partition::compute_partition_ws`] directly.
    pub fn partition_scratch(&mut self) -> &mut PartitionScratch {
        &mut self.part
    }
}

impl Default for SchedWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

// One workspace per worker thread crosses the `vliw-exec` pool boundary.
const fn _assert_send<T: Send>() {}
const _: () = _assert_send::<SchedWorkspace>();
