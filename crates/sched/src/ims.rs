//! Rau-style iterative modulo scheduling over the extended graph.
//!
//! Operations are placed highest-priority-first (priority = height: the
//! longest dependence path, in ticks, from the operation to the end of the
//! iteration). Each operation is tried in a window of one initiation
//! interval starting at its dependence-earliest cycle; if no slot is free,
//! it is *forced* in and the conflicting occupants are ejected and
//! rescheduled later, within a bounded budget (Rau's IMS \[28\]).
//!
//! Heterogeneity enters through the time base: every node issues on its own
//! domain's cycle grid (cluster cycles for operations, ICN cycles for
//! copies), and dependences are checked in exact ticks, so a fast-cluster
//! producer and a slow-cluster consumer never miscommunicate.

use vliw_machine::{ClockedConfig, DomainId};

use crate::comm::{ExtGraph, NodeId, NodePlace};
use crate::mrt::{BusMrt, ClusterMrt};
use crate::regs::max_lives_into;
use crate::timing::LoopClocks;
use crate::workspace::SchedWorkspace;

/// A complete placement of every extended-graph node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImsResult {
    /// Issue cycle of each node, in its own domain's local cycles.
    pub issue_cycles: Vec<u64>,
    /// Issue time of each node, in ticks.
    pub issue_ticks: Vec<u64>,
    /// MaxLives per cluster.
    pub max_live: Vec<u32>,
}

/// Why scheduling at the current initiation time failed. Every variant is
/// cured (eventually) by increasing the `IT`, which the driver does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImsFailure {
    /// A dependence cycle is longer than one initiation time even before
    /// resources are considered (copies and synchronisation pushed a
    /// recurrence over budget).
    PositiveCycle,
    /// The eject-and-retry budget ran out.
    BudgetExhausted,
    /// The schedule exists but needs more registers than a cluster has.
    RegisterPressure(Vec<u32>),
}

/// Default eject-and-retry budget multiplier.
pub const DEFAULT_BUDGET_RATIO: u32 = 16;

/// Hard cap on issue cycles, guarding against runaway forced placement.
const CYCLE_CAP: u64 = 1 << 20;

/// Schedules `graph` at the clocks' initiation time.
///
/// Allocating convenience wrapper over [`schedule_into`]: constructs a
/// fresh [`SchedWorkspace`] and copies the placement out. Hot callers
/// (the IT-retry driver, the exploration sweeps) use [`schedule_into`]
/// with a long-lived workspace instead.
///
/// # Errors
///
/// Returns an [`ImsFailure`] when no schedule exists at this `IT` within
/// the budget; the caller reacts by increasing the `IT` (Figure 5).
pub fn schedule(
    graph: &ExtGraph,
    config: &ClockedConfig,
    clocks: &LoopClocks,
    budget_ratio: u32,
) -> Result<ImsResult, ImsFailure> {
    let mut ws = SchedWorkspace::new();
    schedule_into(graph, config, clocks, budget_ratio, &mut ws)?;
    Ok(ImsResult {
        issue_cycles: ws.issue_cycles().to_vec(),
        issue_ticks: ws.issue_ticks().to_vec(),
        max_live: ws.max_live().to_vec(),
    })
}

/// Schedules `graph` at the clocks' initiation time, placing all scratch
/// state and the resulting placement in `ws`.
///
/// On success the placement is available through
/// [`SchedWorkspace::issue_cycles`], [`SchedWorkspace::issue_ticks`] and
/// [`SchedWorkspace::max_live`]. All buffers retain their capacity across
/// calls, so re-scheduling a graph of a size the workspace has seen before
/// performs **no heap allocation**.
///
/// # Errors
///
/// Returns an [`ImsFailure`] when no schedule exists at this `IT` within
/// the budget; the workspace's result buffers are unspecified after an
/// error.
pub fn schedule_into(
    graph: &ExtGraph,
    config: &ClockedConfig,
    clocks: &LoopClocks,
    budget_ratio: u32,
    ws: &mut SchedWorkspace,
) -> Result<(), ImsFailure> {
    let n = graph.num_nodes();
    let design = config.design();
    let num_clusters = usize::from(design.num_clusters);
    ws.issue_cycles.clear();
    ws.issue_ticks.clear();
    ws.max_live.clear();
    if n == 0 {
        ws.max_live.resize(num_clusters, 0);
        return Ok(());
    }
    let l = clocks.ticks_per_it();
    if !compute_heights_into(graph, l, &mut ws.heights) {
        return Err(ImsFailure::PositiveCycle);
    }

    // Reservation tables: reset in place, allocating only when the machine
    // grows beyond anything this workspace has seen.
    while ws.cluster_mrts.len() < num_clusters {
        ws.cluster_mrts.push(ClusterMrt::new(design.cluster, 1));
    }
    for c in design.clusters() {
        ws.cluster_mrts[c.index()].reset(design.cluster, clocks.cluster_ii(c));
    }
    ws.bus_mrt.reset(design.buses, clocks.icn_ii());

    ws.sched.clear();
    ws.sched.resize(n, None);
    ws.prev_cycle.clear();
    ws.prev_cycle.resize(n, None);
    let mut budget: u64 = u64::from(budget_ratio) * n as u64;

    // Disjoint field borrows for the placement loop.
    let SchedWorkspace {
        heights,
        sched,
        prev_cycle,
        cluster_mrts,
        bus_mrt,
        eject,
        ..
    } = ws;
    let heights: &[i64] = heights;
    let cluster_mrts = &mut cluster_mrts[..num_clusters];

    let cyc_ticks = |v: NodeId| clocks.domain_cycle_ticks(issue_domain(graph, v));
    // Highest unscheduled priority first, id as tie-break.
    let pick = |sched: &[Option<u64>]| {
        (0..n)
            .filter(|&i| sched[i].is_none())
            .max_by_key(|&i| (heights[i], std::cmp::Reverse(i)))
            .map(|i| NodeId(i as u32))
    };
    while let Some(v) = pick(sched) {
        if budget == 0 {
            return Err(ImsFailure::BudgetExhausted);
        }
        budget -= 1;

        // Dependence-earliest start from currently scheduled predecessors.
        let vt = cyc_ticks(v);
        let mut est_ticks: i128 = 0;
        for e in graph.preds(v) {
            if let Some(src_cycle) = sched[e.src.index()] {
                let src_tick = i128::from(src_cycle) * i128::from(cyc_ticks(e.src));
                let t =
                    src_tick + i128::from(e.latency_ticks) - i128::from(e.distance) * i128::from(l);
                est_ticks = est_ticks.max(t);
            }
        }
        let mut estart = if est_ticks <= 0 {
            0
        } else {
            let t = est_ticks as u128;
            u64::try_from(t.div_ceil(u128::from(vt))).expect("cycle fits u64")
        };
        if let Some(p) = prev_cycle[v.index()] {
            estart = estart.max(p + 1);
        }
        if estart > CYCLE_CAP {
            return Err(ImsFailure::BudgetExhausted);
        }

        // Search one II window for a free slot; otherwise force estart.
        let ii = clocks.domain_ii(issue_domain(graph, v));
        let window_slot =
            (estart..estart + ii).find(|&c| slot_free(graph, v, c, cluster_mrts, bus_mrt));
        let cycle = window_slot.unwrap_or(estart);

        if !slot_free(graph, v, cycle, cluster_mrts, bus_mrt) {
            eject_conflicting(graph, v, cycle, sched, cluster_mrts, bus_mrt, eject);
        }
        reserve(graph, v, cycle, cluster_mrts, bus_mrt);
        sched[v.index()] = Some(cycle);
        prev_cycle[v.index()] = Some(cycle);

        // Eject scheduled successors whose dependence is now violated.
        let v_tick = i128::from(cycle) * i128::from(vt);
        eject.clear();
        for e in graph.succs(v) {
            if e.dst == v {
                continue;
            }
            if let Some(dst_cycle) = sched[e.dst.index()] {
                let dst_tick = i128::from(dst_cycle) * i128::from(cyc_ticks(e.dst));
                if dst_tick
                    < v_tick + i128::from(e.latency_ticks) - i128::from(e.distance) * i128::from(l)
                {
                    eject.push((e.dst, dst_cycle));
                }
            }
        }
        for &(w, _) in eject.iter() {
            if let Some(c) = sched[w.index()].take() {
                release(graph, w, c, cluster_mrts, bus_mrt);
            }
        }
    }

    // Materialise the placement into the workspace's result buffers.
    let SchedWorkspace {
        sched,
        issue_cycles,
        issue_ticks,
        ..
    } = ws;
    issue_cycles.extend(sched.iter().map(|s| s.expect("all scheduled")));
    issue_ticks.extend(
        issue_cycles
            .iter()
            .enumerate()
            .map(|(i, &c)| c * cyc_ticks(NodeId(i as u32))),
    );
    let SchedWorkspace {
        issue_ticks,
        regs,
        max_live,
        ..
    } = ws;
    max_lives_into(
        graph,
        clocks,
        design.num_clusters,
        issue_ticks,
        regs,
        max_live,
    );
    let over = max_live.iter().any(|&lv| lv > design.cluster.registers);
    if over {
        return Err(ImsFailure::RegisterPressure(ws.max_live.clone()));
    }
    Ok(())
}

fn issue_domain(graph: &ExtGraph, v: NodeId) -> DomainId {
    graph.issue_domain(v)
}

fn slot_free(
    graph: &ExtGraph,
    v: NodeId,
    cycle: u64,
    cluster_mrts: &[ClusterMrt],
    bus_mrt: &BusMrt,
) -> bool {
    match graph.place(v) {
        NodePlace::Cluster(c) => cluster_mrts[c.index()].is_free(graph.fu_kind(v), cycle),
        NodePlace::Bus => bus_mrt.is_free(cycle),
    }
}

fn reserve(
    graph: &ExtGraph,
    v: NodeId,
    cycle: u64,
    cluster_mrts: &mut [ClusterMrt],
    bus_mrt: &mut BusMrt,
) {
    match graph.place(v) {
        NodePlace::Cluster(c) => cluster_mrts[c.index()].reserve(graph.fu_kind(v), cycle),
        NodePlace::Bus => {
            let _ = bus_mrt.reserve(cycle);
        }
    }
}

fn release(
    graph: &ExtGraph,
    v: NodeId,
    cycle: u64,
    cluster_mrts: &mut [ClusterMrt],
    bus_mrt: &mut BusMrt,
) {
    match graph.place(v) {
        NodePlace::Cluster(c) => cluster_mrts[c.index()].release(graph.fu_kind(v), cycle),
        NodePlace::Bus => bus_mrt.release(cycle),
    }
}

/// Ejects every scheduled node that occupies the resource `v` needs at
/// `cycle` (same domain, same FU kind, same modulo row). Occupants are
/// collected into the caller's reusable `eject` buffer.
#[allow(clippy::too_many_arguments)]
fn eject_conflicting(
    graph: &ExtGraph,
    v: NodeId,
    cycle: u64,
    sched: &mut [Option<u64>],
    cluster_mrts: &mut [ClusterMrt],
    bus_mrt: &mut BusMrt,
    eject: &mut Vec<(NodeId, u64)>,
) {
    let place = graph.place(v);
    let kind = graph.fu_kind(v);
    let (ii, row) = match place {
        NodePlace::Cluster(c) => {
            let ii = cluster_mrts[c.index()].ii();
            (ii, cycle % ii)
        }
        NodePlace::Bus => {
            let ii = bus_mrt.ii();
            (ii, cycle % ii)
        }
    };
    eject.clear();
    eject.extend(
        sched
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|c| (NodeId(i as u32), c)))
            .filter(|&(w, c)| {
                w != v && graph.place(w) == place && graph.fu_kind(w) == kind && c % ii == row
            }),
    );
    for &(w, c) in eject.iter() {
        sched[w.index()] = None;
        release(graph, w, c, cluster_mrts, bus_mrt);
    }
}

/// Longest dependence path (in ticks) from each node to the end of an
/// iteration, with loop-carried edges discounted by `distance · L`.
///
/// Returns `None` when the relaxation does not converge — a dependence
/// cycle is positive at this `IT`, so no schedule exists.
#[must_use]
pub fn compute_heights(graph: &ExtGraph, l: u64) -> Option<Vec<i64>> {
    let mut height = Vec::new();
    if compute_heights_into(graph, l, &mut height) {
        Some(height)
    } else {
        None
    }
}

/// [`compute_heights`] into a reusable buffer; returns `false` when the
/// relaxation does not converge (a positive cycle exists at this `IT`).
fn compute_heights_into(graph: &ExtGraph, l: u64, height: &mut Vec<i64>) -> bool {
    let n = graph.num_nodes();
    height.clear();
    height.extend(
        graph
            .nodes()
            .map(|v| i64::try_from(graph.result_latency_ticks(v)).expect("latency fits i64")),
    );
    for _ in 0..=n {
        let mut changed = false;
        for e in graph.edges() {
            let w = i64::try_from(e.latency_ticks).expect("latency fits i64")
                - i64::try_from(u64::from(e.distance) * l).expect("distance·L fits i64");
            let candidate = w + height[e.dst.index()];
            if candidate > height[e.src.index()] {
                height[e.src.index()] = candidate;
                changed = true;
            }
        }
        if !changed {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{Ddg, DdgBuilder, OpClass};
    use vliw_machine::{ClockedConfig, ClusterId, FrequencyMenu, MachineDesign, Time};

    fn reference() -> ClockedConfig {
        ClockedConfig::reference(MachineDesign::paper_machine(1))
    }

    fn clocks_for(config: &ClockedConfig, it_ns: f64) -> LoopClocks {
        LoopClocks::select(config, &FrequencyMenu::unrestricted(), Time::from_ns(it_ns)).unwrap()
    }

    /// Checks every dependence of a scheduled graph in exact ticks.
    fn assert_valid(graph: &ExtGraph, clocks: &LoopClocks, result: &ImsResult) {
        let l = i128::from(clocks.ticks_per_it());
        for e in graph.edges() {
            let src = i128::from(result.issue_ticks[e.src.index()]);
            let dst = i128::from(result.issue_ticks[e.dst.index()]);
            assert!(
                dst >= src + i128::from(e.latency_ticks) - i128::from(e.distance) * l,
                "dependence {:?}→{:?} violated",
                e.src,
                e.dst
            );
        }
    }

    fn int_chain(len: usize) -> Ddg {
        let mut b = DdgBuilder::new("chain");
        let ids: Vec<_> = (0..len)
            .map(|i| b.op(format!("n{i}"), OpClass::IntArith))
            .collect();
        for w in ids.windows(2) {
            b.flow(w[0], w[1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn schedules_chain_on_one_cluster() {
        let config = reference();
        // II = 4 so the single int FU of cluster 0 can hold all four ops.
        let clocks = clocks_for(&config, 4.0);
        let ddg = int_chain(4);
        let g = ExtGraph::build(&ddg, &[ClusterId(0); 4], &config, &clocks);
        let r = schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO).unwrap();
        assert_valid(&g, &clocks, &r);
        // Ops issue one per cycle down the chain.
        for w in r.issue_ticks.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn resource_conflict_forces_modulo_separation() {
        // 3 independent int ops, 1 int FU, II = 3: all three must land on
        // distinct modulo rows.
        let design = MachineDesign::new(
            1,
            vliw_machine::ClusterDesign {
                int_fus: 1,
                fp_fus: 1,
                mem_ports: 1,
                registers: 16,
            },
            1,
        );
        let config = ClockedConfig::reference(design);
        let clocks = clocks_for(&config, 3.0);
        let mut b = DdgBuilder::new("par");
        for i in 0..3 {
            b.op(format!("n{i}"), OpClass::IntArith);
        }
        let ddg = b.build().unwrap();
        let g = ExtGraph::build(&ddg, &[ClusterId(0); 3], &config, &clocks);
        let r = schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO).unwrap();
        let mut rows: Vec<u64> = r.issue_cycles.iter().map(|c| c % 3).collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![0, 1, 2]);
    }

    #[test]
    fn too_many_ops_for_capacity_fails() {
        // 4 int ops on 1 int FU at II = 3: pigeonhole ⇒ no schedule.
        let design = MachineDesign::new(
            1,
            vliw_machine::ClusterDesign {
                int_fus: 1,
                fp_fus: 1,
                mem_ports: 1,
                registers: 16,
            },
            1,
        );
        let config = ClockedConfig::reference(design);
        let clocks = clocks_for(&config, 3.0);
        let mut b = DdgBuilder::new("par");
        for i in 0..4 {
            b.op(format!("n{i}"), OpClass::IntArith);
        }
        let ddg = b.build().unwrap();
        let g = ExtGraph::build(&ddg, &[ClusterId(0); 4], &config, &clocks);
        assert_eq!(
            schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO),
            Err(ImsFailure::BudgetExhausted)
        );
    }

    #[test]
    fn recurrence_too_tight_is_positive_cycle() {
        // Accumulator with latency 3 at II 2: recurrence cannot fit.
        let config = reference();
        let clocks = clocks_for(&config, 2.0);
        let mut b = DdgBuilder::new("acc");
        let a = b.op("acc", OpClass::FpArith);
        b.flow_carried(a, a, 1);
        let ddg = b.build().unwrap();
        let g = ExtGraph::build(&ddg, &[ClusterId(0)], &config, &clocks);
        assert_eq!(
            schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO),
            Err(ImsFailure::PositiveCycle)
        );
    }

    #[test]
    fn recurrence_fits_at_its_min_ii() {
        let config = reference();
        let clocks = clocks_for(&config, 3.0);
        let mut b = DdgBuilder::new("acc");
        let a = b.op("acc", OpClass::FpArith);
        b.flow_carried(a, a, 1);
        let ddg = b.build().unwrap();
        let g = ExtGraph::build(&ddg, &[ClusterId(0)], &config, &clocks);
        let r = schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO).unwrap();
        assert_valid(&g, &clocks, &r);
    }

    #[test]
    fn cross_cluster_communication_is_scheduled_on_the_bus() {
        let config = reference();
        let clocks = clocks_for(&config, 2.0);
        let ddg = int_chain(2);
        let g = ExtGraph::build(&ddg, &[ClusterId(0), ClusterId(1)], &config, &clocks);
        assert_eq!(g.copies().len(), 1);
        let r = schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO).unwrap();
        assert_valid(&g, &clocks, &r);
        // Copy issues after the producer's result and before the consumer.
        assert!(r.issue_ticks[2] > r.issue_ticks[0]);
        assert!(r.issue_ticks[1] > r.issue_ticks[2]);
    }

    #[test]
    fn bus_contention_serialises_copies() {
        // Two values crossing clusters with a single bus and II_icn = 1:
        // impossible; at II_icn = 2 they take distinct bus rows.
        let config = reference();
        let clocks = clocks_for(&config, 2.0);
        let mut b = DdgBuilder::new("two-comms");
        let a1 = b.op("a1", OpClass::IntArith);
        let a2 = b.op("a2", OpClass::IntArith);
        let u1 = b.op("u1", OpClass::IntArith);
        let u2 = b.op("u2", OpClass::IntArith);
        b.flow(a1, u1);
        b.flow(a2, u2);
        let ddg = b.build().unwrap();
        let g = ExtGraph::build(
            &ddg,
            &[ClusterId(0), ClusterId(0), ClusterId(1), ClusterId(1)],
            &config,
            &clocks,
        );
        assert_eq!(g.copies().len(), 2);
        let r = schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO).unwrap();
        assert_valid(&g, &clocks, &r);
        assert_ne!(r.issue_cycles[4] % 2, r.issue_cycles[5] % 2);
    }

    #[test]
    fn heterogeneous_clusters_respect_tick_arithmetic() {
        let design = MachineDesign::new(2, vliw_machine::ClusterDesign::PAPER, 1);
        let config =
            ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(1.5));
        let clocks = clocks_for(&config, 3.0);
        let ddg = int_chain(4);
        // Alternate clusters to exercise cross-domain edges.
        let g = ExtGraph::build(
            &ddg,
            &[ClusterId(0), ClusterId(1), ClusterId(0), ClusterId(1)],
            &config,
            &clocks,
        );
        let r = schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO).unwrap();
        assert_valid(&g, &clocks, &r);
        assert_eq!(g.copies().len(), 3);
    }

    #[test]
    fn register_pressure_is_reported() {
        // A cluster with 2 registers and many long-lived values.
        let design = MachineDesign::new(
            1,
            vliw_machine::ClusterDesign {
                int_fus: 4,
                fp_fus: 4,
                mem_ports: 4,
                registers: 2,
            },
            1,
        );
        let config = ClockedConfig::reference(design);
        let clocks = clocks_for(&config, 2.0);
        let mut b = DdgBuilder::new("pressure");
        // 6 producers whose values are all read late by one consumer chain.
        let producers: Vec<_> = (0..6)
            .map(|i| b.op(format!("p{i}"), OpClass::IntArith))
            .collect();
        let sink = b.op("sink", OpClass::FpDiv);
        let sink2 = b.op("sink2", OpClass::IntArith);
        b.flow(sink, sink2);
        for &p in &producers {
            b.dep_full(p, sink2, 1, 0, vliw_ir::DepKind::Flow);
        }
        let _ = sink;
        let ddg = b.build().unwrap();
        let g = ExtGraph::build(&ddg, &[ClusterId(0); 8], &config, &clocks);
        match schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO) {
            Err(ImsFailure::RegisterPressure(lv)) => assert!(lv[0] > 2),
            other => panic!("expected register pressure, got {other:?}"),
        }
    }

    #[test]
    fn heights_detect_positive_cycle() {
        let config = reference();
        let clocks = clocks_for(&config, 1.0);
        let mut b = DdgBuilder::new("tight");
        let a = b.op("a", OpClass::FpMul); // latency 6
        b.flow_carried(a, a, 1);
        let ddg = b.build().unwrap();
        let g = ExtGraph::build(&ddg, &[ClusterId(0)], &config, &clocks);
        assert!(compute_heights(&g, clocks.ticks_per_it()).is_none());
    }

    #[test]
    fn empty_graph_schedules_trivially() {
        let config = reference();
        let clocks = clocks_for(&config, 1.0);
        let ddg = DdgBuilder::new("empty").build().unwrap();
        let g = ExtGraph::build(&ddg, &[], &config, &clocks);
        let r = schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO).unwrap();
        assert!(r.issue_cycles.is_empty());
    }
}
