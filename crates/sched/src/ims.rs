//! Rau-style iterative modulo scheduling over the extended graph.
//!
//! Operations are placed highest-priority-first (priority = height: the
//! longest dependence path, in ticks, from the operation to the end of the
//! iteration). Each operation is tried in a window of one initiation
//! interval starting at its dependence-earliest cycle; if no slot is free,
//! it is *forced* in and the conflicting occupants are ejected and
//! rescheduled later, within a bounded budget (Rau's IMS \[28\]).
//!
//! Heterogeneity enters through the time base: every node issues on its own
//! domain's cycle grid (cluster cycles for operations, ICN cycles for
//! copies), and dependences are checked in exact ticks, so a fast-cluster
//! producer and a slow-cluster consumer never miscommunicate.

use vliw_machine::{ClockedConfig, DomainId};

use crate::comm::{ExtGraph, NodeId, NodePlace};
use crate::mrt::{kind_slot, BusMrt, ClusterMrt};
use crate::profile::{commit, probe, Phase};
use crate::regs::max_lives_maintained_into;
use crate::timing::LoopClocks;
use crate::workspace::SchedWorkspace;

const WORD_BITS: usize = 64;

/// A complete placement of every extended-graph node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImsResult {
    /// Issue cycle of each node, in its own domain's local cycles.
    pub issue_cycles: Vec<u64>,
    /// Issue time of each node, in ticks.
    pub issue_ticks: Vec<u64>,
    /// MaxLives per cluster.
    pub max_live: Vec<u32>,
}

/// Why scheduling at the current initiation time failed. Every variant is
/// cured (eventually) by increasing the `IT`, which the driver does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImsFailure {
    /// A dependence cycle is longer than one initiation time even before
    /// resources are considered (copies and synchronisation pushed a
    /// recurrence over budget).
    PositiveCycle,
    /// The eject-and-retry budget ran out.
    BudgetExhausted,
    /// The schedule exists but needs more registers than a cluster has.
    RegisterPressure(Vec<u32>),
}

/// Default eject-and-retry budget multiplier.
pub const DEFAULT_BUDGET_RATIO: u32 = 16;

/// Hard cap on issue cycles, guarding against runaway forced placement.
const CYCLE_CAP: u64 = 1 << 20;

/// Schedules `graph` at the clocks' initiation time.
///
/// Allocating convenience wrapper over [`schedule_into`]: constructs a
/// fresh [`SchedWorkspace`] and copies the placement out. Hot callers
/// (the IT-retry driver, the exploration sweeps) use [`schedule_into`]
/// with a long-lived workspace instead.
///
/// # Errors
///
/// Returns an [`ImsFailure`] when no schedule exists at this `IT` within
/// the budget; the caller reacts by increasing the `IT` (Figure 5).
pub fn schedule(
    graph: &ExtGraph,
    config: &ClockedConfig,
    clocks: &LoopClocks,
    budget_ratio: u32,
) -> Result<ImsResult, ImsFailure> {
    let mut ws = SchedWorkspace::new();
    schedule_into(graph, config, clocks, budget_ratio, &mut ws)?;
    Ok(ImsResult {
        issue_cycles: ws.issue_cycles().to_vec(),
        issue_ticks: ws.issue_ticks().to_vec(),
        max_live: ws.max_live().to_vec(),
    })
}

/// Schedules `graph` at the clocks' initiation time, placing all scratch
/// state and the resulting placement in `ws`.
///
/// On success the placement is available through
/// [`SchedWorkspace::issue_cycles`], [`SchedWorkspace::issue_ticks`] and
/// [`SchedWorkspace::max_live`]. All buffers retain their capacity across
/// calls, so re-scheduling a graph of a size the workspace has seen before
/// performs **no heap allocation**.
///
/// # Errors
///
/// Returns an [`ImsFailure`] when no schedule exists at this `IT` within
/// the budget; the workspace's result buffers are unspecified after an
/// error.
pub fn schedule_into(
    graph: &ExtGraph,
    config: &ClockedConfig,
    clocks: &LoopClocks,
    budget_ratio: u32,
    ws: &mut SchedWorkspace,
) -> Result<(), ImsFailure> {
    let n = graph.num_nodes();
    let design = config.design();
    let num_clusters = usize::from(design.num_clusters);
    ws.issue_cycles.clear();
    ws.issue_ticks.clear();
    ws.max_live.clear();
    if n == 0 {
        ws.max_live.resize(num_clusters, 0);
        return Ok(());
    }
    // Phase accounting: everything from here to the register sweep is
    // `Place`, except the time inside ejection sites, which accumulates
    // into `Eject` and is carved out of the enclosing measurement.
    let place_start = probe(&ws.profile);
    let eject_before = ws.profile.as_ref().map_or(0, |p| p.nanos(Phase::Eject));
    let commit_place = |profile: &mut Option<crate::profile::PhaseProfile>| {
        if let (Some(p), Some(t0)) = (profile.as_mut(), place_start) {
            let elapsed = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let ejected = p.nanos(Phase::Eject) - eject_before;
            p.add(
                Phase::Place,
                std::time::Duration::from_nanos(elapsed.saturating_sub(ejected)),
            );
        }
    };

    let l = clocks.ticks_per_it();
    if !compute_heights_into(graph, l, &mut ws.heights) {
        commit_place(&mut ws.profile);
        return Err(ImsFailure::PositiveCycle);
    }

    // Reservation tables: reset in place, allocating only when the machine
    // grows beyond anything this workspace has seen.
    while ws.cluster_mrts.len() < num_clusters {
        ws.cluster_mrts.push(ClusterMrt::new(design.cluster, 1));
    }
    for c in design.clusters() {
        ws.cluster_mrts[c.index()].reset(design.cluster, clocks.cluster_ii(c));
    }
    ws.bus_mrt.reset(design.buses, clocks.icn_ii());

    ws.sched.clear();
    ws.sched.resize(n, None);
    ws.prev_cycle.clear();
    ws.prev_cycle.resize(n, None);
    let mut budget: u64 = u64::from(budget_ratio) * n as u64;

    // Disjoint field borrows for the placement loop.
    let SchedWorkspace {
        heights,
        sched,
        prev_cycle,
        cluster_mrts,
        bus_mrt,
        eject,
        order,
        pos,
        ready,
        res_sched,
        node_cyc_ticks,
        reg_last_read,
        reg_readers,
        profile,
        ..
    } = ws;
    let heights: &[i64] = heights;
    let cluster_mrts = &mut cluster_mrts[..num_clusters];

    // Ticks per local cycle of every node's issue domain, precomputed once.
    node_cyc_ticks.clear();
    node_cyc_ticks.extend(
        graph
            .nodes()
            .map(|v| clocks.domain_cycle_ticks(issue_domain(graph, v))),
    );
    let node_cyc_ticks: &[u64] = node_cyc_ticks;

    // Height-ordered ready structure: `order` holds node ids sorted by
    // (height desc, id asc) — exactly the old linear `max_by_key` pick
    // order — and `ready` is a bitset over positions (bit set =
    // unscheduled), so picking is a `trailing_zeros` scan from a low-water
    // hint instead of an O(n) scan per placement.
    order.clear();
    order.extend(0..u32::try_from(n).expect("node count fits u32"));
    order.sort_unstable_by_key(|&i| (std::cmp::Reverse(heights[i as usize]), i));
    pos.clear();
    pos.resize(n, 0);
    for (p, &id) in order.iter().enumerate() {
        pos[id as usize] = u32::try_from(p).expect("position fits u32");
    }
    let order: &[u32] = order;
    let pos: &[u32] = pos;
    let nw = n.div_ceil(WORD_BITS);
    ready.clear();
    ready.resize(nw, !0u64);
    if !n.is_multiple_of(WORD_BITS) {
        ready[nw - 1] = (1u64 << (n % WORD_BITS)) - 1;
    }
    let mut ready_hint = 0usize;

    // Per-resource scheduled-node bitsets for eject-candidate enumeration.
    let num_res = num_clusters * 3 + 1;
    res_sched.clear();
    res_sched.resize(num_res * nw, 0);

    // Incrementally carried register-pressure state.
    reg_last_read.clear();
    reg_last_read.resize(n, 0);
    reg_readers.clear();
    reg_readers.resize(n, 0);

    loop {
        // Pick the highest-priority unscheduled node: first set bit.
        let mut v = None;
        while ready_hint < nw {
            let word = ready[ready_hint];
            if word != 0 {
                let p = ready_hint * WORD_BITS + word.trailing_zeros() as usize;
                v = Some(NodeId(order[p]));
                break;
            }
            ready_hint += 1;
        }
        let Some(v) = v else { break };
        if budget == 0 {
            commit_place(profile);
            return Err(ImsFailure::BudgetExhausted);
        }
        budget -= 1;

        // Dependence-earliest start from currently scheduled predecessors.
        let vt = node_cyc_ticks[v.index()];
        let mut est_ticks: i128 = 0;
        for e in graph.preds(v) {
            if let Some(src_cycle) = sched[e.src.index()] {
                let src_tick = i128::from(src_cycle) * i128::from(node_cyc_ticks[e.src.index()]);
                let t =
                    src_tick + i128::from(e.latency_ticks) - i128::from(e.distance) * i128::from(l);
                est_ticks = est_ticks.max(t);
            }
        }
        let mut estart = if est_ticks <= 0 {
            0
        } else {
            let t = est_ticks as u128;
            u64::try_from(t.div_ceil(u128::from(vt))).expect("cycle fits u64")
        };
        if let Some(p) = prev_cycle[v.index()] {
            estart = estart.max(p + 1);
        }
        if estart > CYCLE_CAP {
            commit_place(profile);
            return Err(ImsFailure::BudgetExhausted);
        }

        // First free cycle in one II window (rows repeat with period II, so
        // the bitset scan covers exactly `estart..estart + II`); when every
        // modulo row is full, force `estart` and eject its occupants.
        let window_slot = match graph.place(v) {
            NodePlace::Cluster(c) => {
                cluster_mrts[c.index()].first_free_cycle(graph.fu_kind(v), estart)
            }
            NodePlace::Bus => bus_mrt.first_free_cycle(estart),
        };
        let cycle = window_slot.unwrap_or(estart);

        if window_slot.is_none() {
            let t0 = probe(profile);
            eject_conflicting(
                graph,
                v,
                cycle,
                sched,
                cluster_mrts,
                bus_mrt,
                res_sched,
                nw,
                num_clusters,
                eject,
            );
            for &(w, c) in eject.iter() {
                let p = pos[w.index()] as usize;
                ready[p / WORD_BITS] |= 1u64 << (p % WORD_BITS);
                ready_hint = ready_hint.min(p / WORD_BITS);
                regs_on_eject(
                    graph,
                    w,
                    c,
                    l,
                    sched,
                    node_cyc_ticks,
                    reg_last_read,
                    reg_readers,
                );
            }
            commit(profile, Phase::Eject, t0);
        }
        reserve(graph, v, cycle, cluster_mrts, bus_mrt);
        set_res_bit(graph, v, res_sched, nw, num_clusters, true);
        sched[v.index()] = Some(cycle);
        prev_cycle[v.index()] = Some(cycle);
        {
            let p = pos[v.index()] as usize;
            ready[p / WORD_BITS] &= !(1u64 << (p % WORD_BITS));
        }
        regs_on_place(
            graph,
            v,
            cycle,
            l,
            node_cyc_ticks,
            reg_last_read,
            reg_readers,
        );

        // Eject scheduled successors whose dependence is now violated.
        let v_tick = i128::from(cycle) * i128::from(vt);
        eject.clear();
        for e in graph.succs(v) {
            if e.dst == v {
                continue;
            }
            if let Some(dst_cycle) = sched[e.dst.index()] {
                let dst_tick = i128::from(dst_cycle) * i128::from(node_cyc_ticks[e.dst.index()]);
                if dst_tick
                    < v_tick + i128::from(e.latency_ticks) - i128::from(e.distance) * i128::from(l)
                {
                    eject.push((e.dst, dst_cycle));
                }
            }
        }
        if !eject.is_empty() {
            let t0 = probe(profile);
            for &(w, c) in eject.iter() {
                if sched[w.index()].take().is_some() {
                    release(graph, w, c, cluster_mrts, bus_mrt);
                    set_res_bit(graph, w, res_sched, nw, num_clusters, false);
                    let p = pos[w.index()] as usize;
                    ready[p / WORD_BITS] |= 1u64 << (p % WORD_BITS);
                    ready_hint = ready_hint.min(p / WORD_BITS);
                    regs_on_eject(
                        graph,
                        w,
                        c,
                        l,
                        sched,
                        node_cyc_ticks,
                        reg_last_read,
                        reg_readers,
                    );
                }
            }
            commit(profile, Phase::Eject, t0);
        }
    }
    commit_place(profile);

    // Materialise the placement into the workspace's result buffers.
    let SchedWorkspace {
        sched,
        issue_cycles,
        issue_ticks,
        node_cyc_ticks,
        ..
    } = ws;
    issue_cycles.extend(sched.iter().map(|s| s.expect("all scheduled")));
    issue_ticks.extend(
        issue_cycles
            .iter()
            .enumerate()
            .map(|(i, &c)| c * node_cyc_ticks[i]),
    );
    let SchedWorkspace {
        issue_ticks,
        regs,
        max_live,
        reg_last_read,
        reg_readers,
        profile,
        ..
    } = ws;
    let regs_start = probe(profile);
    max_lives_maintained_into(
        graph,
        clocks,
        design.num_clusters,
        issue_ticks,
        reg_last_read,
        reg_readers,
        regs,
        max_live,
    );
    commit(profile, Phase::Regs, regs_start);
    let over = max_live.iter().any(|&lv| lv > design.cluster.registers);
    if over {
        return Err(ImsFailure::RegisterPressure(ws.max_live.clone()));
    }
    Ok(())
}

fn issue_domain(graph: &ExtGraph, v: NodeId) -> DomainId {
    graph.issue_domain(v)
}

/// The dense resource index of `v`'s issue resource: per-cluster FU-kind
/// rows first (`cluster·3 + kind`), the bus block last.
#[inline]
fn res_id(graph: &ExtGraph, v: NodeId, num_clusters: usize) -> usize {
    match graph.place(v) {
        NodePlace::Cluster(c) => {
            let kind = graph.fu_kind(v);
            debug_assert!(
                kind != vliw_ir::FuKind::Bus,
                "node {v:?} placed on a cluster carries FuKind::Bus"
            );
            c.index() * 3 + kind_slot(kind)
        }
        NodePlace::Bus => num_clusters * 3,
    }
}

/// Sets or clears `v`'s bit in its resource's scheduled-node bitset.
#[inline]
fn set_res_bit(
    graph: &ExtGraph,
    v: NodeId,
    res_sched: &mut [u64],
    nw: usize,
    num_clusters: usize,
    on: bool,
) {
    let base = res_id(graph, v, num_clusters) * nw;
    let (w, bit) = (v.index() / WORD_BITS, 1u64 << (v.index() % WORD_BITS));
    if on {
        res_sched[base + w] |= bit;
    } else {
        res_sched[base + w] &= !bit;
    }
}

fn reserve(
    graph: &ExtGraph,
    v: NodeId,
    cycle: u64,
    cluster_mrts: &mut [ClusterMrt],
    bus_mrt: &mut BusMrt,
) {
    match graph.place(v) {
        NodePlace::Cluster(c) => cluster_mrts[c.index()].reserve(graph.fu_kind(v), cycle),
        NodePlace::Bus => {
            let _ = bus_mrt.reserve(cycle);
        }
    }
}

fn release(
    graph: &ExtGraph,
    v: NodeId,
    cycle: u64,
    cluster_mrts: &mut [ClusterMrt],
    bus_mrt: &mut BusMrt,
) {
    match graph.place(v) {
        NodePlace::Cluster(c) => cluster_mrts[c.index()].release(graph.fu_kind(v), cycle),
        NodePlace::Bus => bus_mrt.release(cycle),
    }
}

/// Records the read events `v`'s placement creates: for every value
/// predecessor `p → v`, bump `p`'s placed-reader count and fold the read
/// tick into `p`'s running last-read maximum.
fn regs_on_place(
    graph: &ExtGraph,
    v: NodeId,
    cycle: u64,
    l: u64,
    node_cyc_ticks: &[u64],
    reg_last_read: &mut [u64],
    reg_readers: &mut [u32],
) {
    let t_v = cycle * node_cyc_ticks[v.index()];
    for e in graph.preds(v) {
        if !e.value {
            continue;
        }
        let p = e.src.index();
        let read = t_v + u64::from(e.distance) * l;
        reg_readers[p] += 1;
        if read > reg_last_read[p] {
            reg_last_read[p] = read;
        }
    }
}

/// Removes the read events `w`'s ejection retracts. When the retracted
/// read was the producer's current maximum, the maximum is rebuilt from
/// the producer's still-placed readers (`w` itself is already unscheduled
/// in `sched` at this point).
#[allow(clippy::too_many_arguments)]
fn regs_on_eject(
    graph: &ExtGraph,
    w: NodeId,
    old_cycle: u64,
    l: u64,
    sched: &[Option<u64>],
    node_cyc_ticks: &[u64],
    reg_last_read: &mut [u64],
    reg_readers: &mut [u32],
) {
    debug_assert!(sched[w.index()].is_none(), "eject before retracting reads");
    let t_w = old_cycle * node_cyc_ticks[w.index()];
    for e in graph.preds(w) {
        if !e.value {
            continue;
        }
        let p = e.src.index();
        let read = t_w + u64::from(e.distance) * l;
        reg_readers[p] -= 1;
        if reg_readers[p] == 0 {
            reg_last_read[p] = 0;
        } else if read == reg_last_read[p] {
            // The retracted read held the maximum: rebuild it from the
            // producer's still-placed readers.
            let mut max = 0u64;
            for s in graph.succs(NodeId(p as u32)) {
                if !s.value {
                    continue;
                }
                if let Some(c) = sched[s.dst.index()] {
                    let r = c * node_cyc_ticks[s.dst.index()] + u64::from(s.distance) * l;
                    max = max.max(r);
                }
            }
            reg_last_read[p] = max;
        }
    }
}

/// Ejects every scheduled node that occupies the resource `v` needs at
/// `cycle` (same resource, same modulo row). Occupants are enumerated by
/// iterating the set bits of the resource's scheduled-node bitset —
/// ascending node id, exactly the order the old full `sched` scan
/// produced — and collected into the caller's reusable `eject` buffer.
#[allow(clippy::too_many_arguments)]
fn eject_conflicting(
    graph: &ExtGraph,
    v: NodeId,
    cycle: u64,
    sched: &mut [Option<u64>],
    cluster_mrts: &mut [ClusterMrt],
    bus_mrt: &mut BusMrt,
    res_sched: &mut [u64],
    nw: usize,
    num_clusters: usize,
    eject: &mut Vec<(NodeId, u64)>,
) {
    let rid = res_id(graph, v, num_clusters);
    let ii = match graph.place(v) {
        NodePlace::Cluster(c) => cluster_mrts[c.index()].ii(),
        NodePlace::Bus => bus_mrt.ii(),
    };
    let row = cycle % ii;
    eject.clear();
    for (wi, &word) in res_sched[rid * nw..(rid + 1) * nw].iter().enumerate() {
        let mut m = word;
        while m != 0 {
            let i = wi * WORD_BITS + m.trailing_zeros() as usize;
            m &= m - 1;
            debug_assert_ne!(i, v.index(), "v is reserved only after ejection");
            let c = sched[i].expect("resource bitset tracks scheduled nodes");
            if c % ii == row {
                eject.push((NodeId(u32::try_from(i).expect("node id fits u32")), c));
            }
        }
    }
    for &(w, c) in eject.iter() {
        sched[w.index()] = None;
        release(graph, w, c, cluster_mrts, bus_mrt);
        set_res_bit(graph, w, res_sched, nw, num_clusters, false);
    }
}

/// Longest dependence path (in ticks) from each node to the end of an
/// iteration, with loop-carried edges discounted by `distance · L`.
///
/// Returns `None` when the relaxation does not converge — a dependence
/// cycle is positive at this `IT`, so no schedule exists.
#[must_use]
pub fn compute_heights(graph: &ExtGraph, l: u64) -> Option<Vec<i64>> {
    let mut height = Vec::new();
    if compute_heights_into(graph, l, &mut height) {
        Some(height)
    } else {
        None
    }
}

/// [`compute_heights`] into a reusable buffer; returns `false` when the
/// relaxation does not converge (a positive cycle exists at this `IT`).
fn compute_heights_into(graph: &ExtGraph, l: u64, height: &mut Vec<i64>) -> bool {
    let n = graph.num_nodes();
    height.clear();
    height.extend(
        graph
            .nodes()
            .map(|v| i64::try_from(graph.result_latency_ticks(v)).expect("latency fits i64")),
    );
    for _ in 0..=n {
        let mut changed = false;
        for e in graph.edges() {
            let w = i64::try_from(e.latency_ticks).expect("latency fits i64")
                - i64::try_from(u64::from(e.distance) * l).expect("distance·L fits i64");
            let candidate = w + height[e.dst.index()];
            if candidate > height[e.src.index()] {
                height[e.src.index()] = candidate;
                changed = true;
            }
        }
        if !changed {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{Ddg, DdgBuilder, OpClass};
    use vliw_machine::{ClockedConfig, ClusterId, FrequencyMenu, MachineDesign, Time};

    fn reference() -> ClockedConfig {
        ClockedConfig::reference(MachineDesign::paper_machine(1))
    }

    fn clocks_for(config: &ClockedConfig, it_ns: f64) -> LoopClocks {
        LoopClocks::select(config, &FrequencyMenu::unrestricted(), Time::from_ns(it_ns)).unwrap()
    }

    /// Checks every dependence of a scheduled graph in exact ticks.
    fn assert_valid(graph: &ExtGraph, clocks: &LoopClocks, result: &ImsResult) {
        let l = i128::from(clocks.ticks_per_it());
        for e in graph.edges() {
            let src = i128::from(result.issue_ticks[e.src.index()]);
            let dst = i128::from(result.issue_ticks[e.dst.index()]);
            assert!(
                dst >= src + i128::from(e.latency_ticks) - i128::from(e.distance) * l,
                "dependence {:?}→{:?} violated",
                e.src,
                e.dst
            );
        }
    }

    fn int_chain(len: usize) -> Ddg {
        let mut b = DdgBuilder::new("chain");
        let ids: Vec<_> = (0..len)
            .map(|i| b.op(format!("n{i}"), OpClass::IntArith))
            .collect();
        for w in ids.windows(2) {
            b.flow(w[0], w[1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn schedules_chain_on_one_cluster() {
        let config = reference();
        // II = 4 so the single int FU of cluster 0 can hold all four ops.
        let clocks = clocks_for(&config, 4.0);
        let ddg = int_chain(4);
        let g = ExtGraph::build(&ddg, &[ClusterId(0); 4], &config, &clocks);
        let r = schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO).unwrap();
        assert_valid(&g, &clocks, &r);
        // Ops issue one per cycle down the chain.
        for w in r.issue_ticks.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn resource_conflict_forces_modulo_separation() {
        // 3 independent int ops, 1 int FU, II = 3: all three must land on
        // distinct modulo rows.
        let design = MachineDesign::new(
            1,
            vliw_machine::ClusterDesign {
                int_fus: 1,
                fp_fus: 1,
                mem_ports: 1,
                registers: 16,
            },
            1,
        );
        let config = ClockedConfig::reference(design);
        let clocks = clocks_for(&config, 3.0);
        let mut b = DdgBuilder::new("par");
        for i in 0..3 {
            b.op(format!("n{i}"), OpClass::IntArith);
        }
        let ddg = b.build().unwrap();
        let g = ExtGraph::build(&ddg, &[ClusterId(0); 3], &config, &clocks);
        let r = schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO).unwrap();
        let mut rows: Vec<u64> = r.issue_cycles.iter().map(|c| c % 3).collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![0, 1, 2]);
    }

    #[test]
    fn too_many_ops_for_capacity_fails() {
        // 4 int ops on 1 int FU at II = 3: pigeonhole ⇒ no schedule.
        let design = MachineDesign::new(
            1,
            vliw_machine::ClusterDesign {
                int_fus: 1,
                fp_fus: 1,
                mem_ports: 1,
                registers: 16,
            },
            1,
        );
        let config = ClockedConfig::reference(design);
        let clocks = clocks_for(&config, 3.0);
        let mut b = DdgBuilder::new("par");
        for i in 0..4 {
            b.op(format!("n{i}"), OpClass::IntArith);
        }
        let ddg = b.build().unwrap();
        let g = ExtGraph::build(&ddg, &[ClusterId(0); 4], &config, &clocks);
        assert_eq!(
            schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO),
            Err(ImsFailure::BudgetExhausted)
        );
    }

    #[test]
    fn recurrence_too_tight_is_positive_cycle() {
        // Accumulator with latency 3 at II 2: recurrence cannot fit.
        let config = reference();
        let clocks = clocks_for(&config, 2.0);
        let mut b = DdgBuilder::new("acc");
        let a = b.op("acc", OpClass::FpArith);
        b.flow_carried(a, a, 1);
        let ddg = b.build().unwrap();
        let g = ExtGraph::build(&ddg, &[ClusterId(0)], &config, &clocks);
        assert_eq!(
            schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO),
            Err(ImsFailure::PositiveCycle)
        );
    }

    #[test]
    fn recurrence_fits_at_its_min_ii() {
        let config = reference();
        let clocks = clocks_for(&config, 3.0);
        let mut b = DdgBuilder::new("acc");
        let a = b.op("acc", OpClass::FpArith);
        b.flow_carried(a, a, 1);
        let ddg = b.build().unwrap();
        let g = ExtGraph::build(&ddg, &[ClusterId(0)], &config, &clocks);
        let r = schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO).unwrap();
        assert_valid(&g, &clocks, &r);
    }

    #[test]
    fn cross_cluster_communication_is_scheduled_on_the_bus() {
        let config = reference();
        let clocks = clocks_for(&config, 2.0);
        let ddg = int_chain(2);
        let g = ExtGraph::build(&ddg, &[ClusterId(0), ClusterId(1)], &config, &clocks);
        assert_eq!(g.copies().len(), 1);
        let r = schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO).unwrap();
        assert_valid(&g, &clocks, &r);
        // Copy issues after the producer's result and before the consumer.
        assert!(r.issue_ticks[2] > r.issue_ticks[0]);
        assert!(r.issue_ticks[1] > r.issue_ticks[2]);
    }

    #[test]
    fn bus_contention_serialises_copies() {
        // Two values crossing clusters with a single bus and II_icn = 1:
        // impossible; at II_icn = 2 they take distinct bus rows.
        let config = reference();
        let clocks = clocks_for(&config, 2.0);
        let mut b = DdgBuilder::new("two-comms");
        let a1 = b.op("a1", OpClass::IntArith);
        let a2 = b.op("a2", OpClass::IntArith);
        let u1 = b.op("u1", OpClass::IntArith);
        let u2 = b.op("u2", OpClass::IntArith);
        b.flow(a1, u1);
        b.flow(a2, u2);
        let ddg = b.build().unwrap();
        let g = ExtGraph::build(
            &ddg,
            &[ClusterId(0), ClusterId(0), ClusterId(1), ClusterId(1)],
            &config,
            &clocks,
        );
        assert_eq!(g.copies().len(), 2);
        let r = schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO).unwrap();
        assert_valid(&g, &clocks, &r);
        assert_ne!(r.issue_cycles[4] % 2, r.issue_cycles[5] % 2);
    }

    #[test]
    fn heterogeneous_clusters_respect_tick_arithmetic() {
        let design = MachineDesign::new(2, vliw_machine::ClusterDesign::PAPER, 1);
        let config =
            ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(1.5));
        let clocks = clocks_for(&config, 3.0);
        let ddg = int_chain(4);
        // Alternate clusters to exercise cross-domain edges.
        let g = ExtGraph::build(
            &ddg,
            &[ClusterId(0), ClusterId(1), ClusterId(0), ClusterId(1)],
            &config,
            &clocks,
        );
        let r = schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO).unwrap();
        assert_valid(&g, &clocks, &r);
        assert_eq!(g.copies().len(), 3);
    }

    #[test]
    fn register_pressure_is_reported() {
        // A cluster with 2 registers and many long-lived values.
        let design = MachineDesign::new(
            1,
            vliw_machine::ClusterDesign {
                int_fus: 4,
                fp_fus: 4,
                mem_ports: 4,
                registers: 2,
            },
            1,
        );
        let config = ClockedConfig::reference(design);
        let clocks = clocks_for(&config, 2.0);
        let mut b = DdgBuilder::new("pressure");
        // 6 producers whose values are all read late by one consumer chain.
        let producers: Vec<_> = (0..6)
            .map(|i| b.op(format!("p{i}"), OpClass::IntArith))
            .collect();
        let sink = b.op("sink", OpClass::FpDiv);
        let sink2 = b.op("sink2", OpClass::IntArith);
        b.flow(sink, sink2);
        for &p in &producers {
            b.dep_full(p, sink2, 1, 0, vliw_ir::DepKind::Flow);
        }
        let _ = sink;
        let ddg = b.build().unwrap();
        let g = ExtGraph::build(&ddg, &[ClusterId(0); 8], &config, &clocks);
        match schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO) {
            Err(ImsFailure::RegisterPressure(lv)) => assert!(lv[0] > 2),
            other => panic!("expected register pressure, got {other:?}"),
        }
    }

    #[test]
    fn heights_detect_positive_cycle() {
        let config = reference();
        let clocks = clocks_for(&config, 1.0);
        let mut b = DdgBuilder::new("tight");
        let a = b.op("a", OpClass::FpMul); // latency 6
        b.flow_carried(a, a, 1);
        let ddg = b.build().unwrap();
        let g = ExtGraph::build(&ddg, &[ClusterId(0)], &config, &clocks);
        assert!(compute_heights(&g, clocks.ticks_per_it()).is_none());
    }

    #[test]
    fn empty_graph_schedules_trivially() {
        let config = reference();
        let clocks = clocks_for(&config, 1.0);
        let ddg = DdgBuilder::new("empty").build().unwrap();
        let g = ExtGraph::build(&ddg, &[], &config, &clocks);
        let r = schedule(&g, &config, &clocks, DEFAULT_BUDGET_RATIO).unwrap();
        assert!(r.issue_cycles.is_empty());
    }

    mod regs_incremental {
        //! Pins the incrementally maintained register-pressure state
        //! (`reg_last_read`/`reg_readers`, consumed by
        //! [`crate::regs::max_lives_maintained_into`]) against the
        //! from-scratch sweep [`crate::regs::max_lives`], on random DDGs
        //! with random two-cluster assignments, at every IT the retry
        //! ladder reaches — with one warm workspace carried across
        //! attempts, exactly like the scheduling driver.

        use super::*;
        use proptest::collection::vec as pvec;
        use proptest::prelude::*;
        use vliw_ir::Ddg;

        const CLASSES: [OpClass; 8] = [
            OpClass::IntArith,
            OpClass::FpArith,
            OpClass::IntMul,
            OpClass::FpMul,
            OpClass::IntMemory,
            OpClass::FpMemory,
            OpClass::IntDiv,
            OpClass::FpDiv,
        ];

        /// Builds a random acyclic DDG: op `i` optionally reads from a
        /// random earlier op, plus an optional loop-carried self-edge on
        /// one op (a recurrence, the shape that stresses wrapped
        /// lifetimes).
        fn random_ddg(classes: &[u8], parents: &[u16], carried: Option<u8>) -> Ddg {
            let mut b = DdgBuilder::new("prop");
            let ids: Vec<_> = classes
                .iter()
                .enumerate()
                .map(|(i, &c)| b.op(format!("n{i}"), CLASSES[usize::from(c) % CLASSES.len()]))
                .collect();
            for (i, &raw) in parents.iter().enumerate().skip(1) {
                // `raw == 0` leaves op `i` an independent root.
                if raw != 0 {
                    let parent = usize::from(raw) % i;
                    b.flow(ids[parent], ids[i]);
                }
            }
            if let Some(which) = carried {
                let v = ids[usize::from(which) % ids.len()];
                b.flow_carried(v, v, 1);
            }
            b.build().unwrap()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn maintained_pressure_equals_from_scratch_at_every_it(
                classes in pvec(0u8..8, 1..12),
                parents in pvec(0u16..512, 12..13),
                clusters in pvec(0u8..2, 12..13),
                carried in proptest::option::of(0u8..12),
            ) {
                let n = classes.len();
                let ddg = random_ddg(&classes, &parents[..n], carried);
                let config =
                    ClockedConfig::reference(MachineDesign::paper_machine(2));
                let nc = config.design().num_clusters;
                let assignment: Vec<ClusterId> = clusters[..n]
                    .iter()
                    .map(|&c| ClusterId(c % nc))
                    .collect();
                // Walk the IT ladder the way the scheduling driver does,
                // reusing ONE workspace so each attempt sees the previous
                // attempt's maintained state and must reset it correctly.
                let mut ws = SchedWorkspace::new();
                let mut oks = 0;
                for it in 2..40 {
                    let clocks = clocks_for(&config, f64::from(it));
                    let g = ExtGraph::build(&ddg, &assignment, &config, &clocks);
                    if schedule_into(&g, &config, &clocks, DEFAULT_BUDGET_RATIO, &mut ws)
                        .is_err()
                    {
                        continue;
                    }
                    oks += 1;
                    let fresh = crate::regs::max_lives(&g, &clocks, nc, ws.issue_ticks());
                    prop_assert_eq!(
                        ws.max_live(),
                        fresh.as_slice(),
                        "incremental MaxLives diverged at IT {}ns",
                        it
                    );
                }
                // The ladder reaches 39ns on graphs of ≤ 11 ops (a carried
                // FpDiv recurrence needs ≥ 18ns plus synchronisation): at
                // least one attempt must succeed, else the test is vacuous.
                prop_assert!(oks > 0, "no IT in the ladder scheduled");
            }
        }
    }
}
