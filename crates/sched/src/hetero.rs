//! The top-level scheduling driver (Figure 5 of the paper).

use vliw_ir::Ddg;
use vliw_machine::{ClockedConfig, ClusterId, FrequencyMenu};
use vliw_power::PowerModel;

use crate::comm::ExtGraph;
use crate::error::SchedError;
use crate::ims;
use crate::partition::{compute_partition_ws, Partition, PartitionObjective};
use crate::profile::{commit, probe, Phase};
use crate::schedule::ScheduledLoop;
use crate::timing::{compute_mit, next_it_candidate, LoopClocks};
use crate::workspace::SchedWorkspace;

/// Knobs for [`schedule_loop`].
#[derive(Debug, Clone)]
pub struct ScheduleOptions {
    /// The frequencies the clock network supports (Figure 7 varies this).
    pub menu: FrequencyMenu,
    /// Eject-and-retry budget multiplier for the inner IMS.
    pub budget_ratio: u32,
    /// How many initiation times to try before giving up.
    pub max_it_attempts: u32,
    /// Loop trip count assumed by the partitioner's ED² objective.
    pub trip_count: u64,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            menu: FrequencyMenu::unrestricted(),
            budget_ratio: ims::DEFAULT_BUDGET_RATIO,
            max_it_attempts: 256,
            trip_count: 100,
        }
    }
}

/// Modulo schedules `ddg` on `config`, following the paper's Figure 5 flow:
/// compute `MIT`, select `(frequency, II)` pairs, partition, schedule, and
/// increase the `IT` on any failure.
///
/// Pass a [`PowerModel`] to drive the partitioner's ED² objective
/// (heterogeneous mode); `None` optimises execution time only (the
/// homogeneous baseline).
///
/// # Errors
///
/// * [`SchedError::Unschedulable`] — the DDG has a zero-distance cycle;
/// * [`SchedError::NoFeasibleIt`] — capacity can never be satisfied;
/// * [`SchedError::NoSchedule`] — the retry budget ran out.
pub fn schedule_loop(
    ddg: &Ddg,
    config: &ClockedConfig,
    power: Option<&PowerModel>,
    opts: &ScheduleOptions,
) -> Result<ScheduledLoop, SchedError> {
    let mut ws = SchedWorkspace::new();
    schedule_impl(ddg, config, power, opts, None, &mut ws)
}

/// [`schedule_loop`] with a caller-provided [`SchedWorkspace`], reused
/// across the IT-retry loop and across calls.
///
/// The workspace only changes *where* scratch memory lives: results are
/// byte-identical to [`schedule_loop`]. The exploration layer keeps one
/// workspace per worker thread so re-scheduling thousands of loops
/// performs no steady-state allocation inside the IMS.
///
/// # Example
///
/// One workspace amortised across a whole batch of loops:
///
/// ```
/// use vliw_ir::{DdgBuilder, OpClass};
/// use vliw_machine::{ClockedConfig, MachineDesign};
/// use vliw_sched::{schedule_loop_ws, SchedWorkspace, ScheduleOptions};
///
/// let config = ClockedConfig::reference(MachineDesign::paper_machine(1));
/// let opts = ScheduleOptions::default();
/// let mut ws = SchedWorkspace::new(); // created once, reused below
/// for n in 2..5 {
///     let mut b = DdgBuilder::new(format!("chain{n}"));
///     let ops: Vec<_> = (0..n).map(|i| b.op(format!("n{i}"), OpClass::FpArith)).collect();
///     for w in ops.windows(2) {
///         b.flow(w[0], w[1]);
///     }
///     let ddg = b.build()?;
///     let sched = schedule_loop_ws(&ddg, &config, None, &opts, &mut ws)?;
///     assert!(sched.it().as_ns() >= 1.0);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// As [`schedule_loop`].
pub fn schedule_loop_ws(
    ddg: &Ddg,
    config: &ClockedConfig,
    power: Option<&PowerModel>,
    opts: &ScheduleOptions,
    ws: &mut SchedWorkspace,
) -> Result<ScheduledLoop, SchedError> {
    schedule_impl(ddg, config, power, opts, None, ws)
}

/// Like [`schedule_loop`] but with a fixed, caller-provided partition —
/// used by ablation studies and tests that isolate the scheduler from the
/// partitioner.
///
/// # Errors
///
/// As [`schedule_loop`]; additionally the fixed partition may simply not
/// admit a schedule, reported as [`SchedError::NoSchedule`].
pub fn schedule_loop_with_partition(
    ddg: &Ddg,
    config: &ClockedConfig,
    partition: &Partition,
    opts: &ScheduleOptions,
) -> Result<ScheduledLoop, SchedError> {
    let mut ws = SchedWorkspace::new();
    schedule_impl(ddg, config, None, opts, Some(partition), &mut ws)
}

fn schedule_impl(
    ddg: &Ddg,
    config: &ClockedConfig,
    power: Option<&PowerModel>,
    opts: &ScheduleOptions,
    fixed: Option<&Partition>,
    ws: &mut SchedWorkspace,
) -> Result<ScheduledLoop, SchedError> {
    // Process-wide scheduling telemetry. Handles are interned once and
    // cached; the steady-state cost is one relaxed atomic add for the
    // counter and — only when a metrics consumer enabled timing — two
    // clock reads plus a lock-free histogram record. Nothing here
    // allocates after the first call, preserving the zero-alloc
    // discipline the allocator-counting test pins (with metrics on).
    use std::sync::{Arc, OnceLock};
    static LOOPS: OnceLock<Arc<vliw_obs::Counter>> = OnceLock::new();
    static NANOS: OnceLock<Arc<vliw_obs::Histogram>> = OnceLock::new();
    LOOPS
        .get_or_init(|| vliw_obs::counter("sched_loops_scheduled_total"))
        .inc();
    let start = vliw_obs::timer_start();
    let result = schedule_impl_untimed(ddg, config, power, opts, fixed, ws);
    if let Some(s) = start {
        NANOS
            .get_or_init(|| vliw_obs::histogram("sched_schedule_nanos"))
            .record(vliw_obs::elapsed_nanos(s));
    }
    result
}

fn schedule_impl_untimed(
    ddg: &Ddg,
    config: &ClockedConfig,
    power: Option<&PowerModel>,
    opts: &ScheduleOptions,
    fixed: Option<&Partition>,
    ws: &mut SchedWorkspace,
) -> Result<ScheduledLoop, SchedError> {
    ddg.validate_schedulable()
        .map_err(|_| SchedError::Unschedulable {
            loop_name: ddg.name().to_owned(),
        })?;
    if let Some(p) = fixed {
        assert_eq!(p.len(), ddg.num_ops(), "fixed partition must cover the DDG");
    }
    let clocks_start = probe(&ws.profile);
    let mit = compute_mit(ddg, config, &opts.menu);
    commit(&mut ws.profile, Phase::Clocks, clocks_start);
    let mit = mit?;
    let mut it = mit;
    let objective = PartitionObjective {
        power,
        trip_count: opts.trip_count,
    };

    for attempt in 0..opts.max_it_attempts {
        let clocks_start = probe(&ws.profile);
        let selected = LoopClocks::select(config, &opts.menu, it);
        commit(&mut ws.profile, Phase::Clocks, clocks_start);
        let Some(clocks) = selected else {
            it = next_it_candidate(config, &opts.menu, it);
            continue;
        };
        // Candidate partitions for this IT. With a power model we also try
        // the pure-time objective: the measured ED² of the best schedule is
        // never worse for trying both, and it keeps schedule quality
        // consistent between profiling (time-objective) and heterogeneous
        // (ED²-objective) runs.
        let mut candidates: Vec<Vec<ClusterId>> = Vec::new();
        let partition_start = probe(&ws.profile);
        match fixed {
            Some(p) => candidates.push(p.assignment.clone()),
            None => {
                match compute_partition_ws(ddg, config, &clocks, &objective, &mut ws.part) {
                    Ok(p) => candidates.push(p.assignment),
                    Err(SchedError::RecurrenceDoesNotFit { .. }) => {}
                    Err(e) => return Err(e),
                }
                if power.is_some() {
                    let time_objective = PartitionObjective {
                        power: None,
                        trip_count: opts.trip_count,
                    };
                    if let Ok(p) =
                        compute_partition_ws(ddg, config, &clocks, &time_objective, &mut ws.part)
                    {
                        if !candidates.contains(&p.assignment) {
                            candidates.push(p.assignment);
                        }
                    }
                }
                // The unrefined load-balance seed is a cheap third opinion
                // for every run (profiling included), keeping schedule
                // quality consistent across pipeline stages.
                if let Ok(p) = crate::partition::compute_partition_unrefined(ddg, config, &clocks) {
                    if !candidates.contains(&p.assignment) {
                        candidates.push(p.assignment);
                    }
                }
                if candidates.is_empty() {
                    commit(&mut ws.profile, Phase::Partition, partition_start);
                    it = next_it_candidate(config, &opts.menu, it);
                    continue;
                }
            }
        }
        commit(&mut ws.profile, Phase::Partition, partition_start);
        let mut best: Option<ScheduledLoop> = None;
        for assignment in candidates {
            let ext_start = probe(&ws.profile);
            let graph = ExtGraph::build(ddg, &assignment, config, &clocks);
            commit(&mut ws.profile, Phase::ExtGraph, ext_start);
            if ims::schedule_into(&graph, config, &clocks, opts.budget_ratio, ws).is_ok() {
                let scheduled = ScheduledLoop::from_ims(
                    ddg,
                    &graph,
                    clocks.clone(),
                    assignment,
                    &ws.issue_cycles,
                    &ws.issue_ticks,
                    &ws.max_live,
                    config.design().num_clusters,
                );
                // Same IT: prefer fewer communications (less bus energy),
                // then shorter iterations.
                let better = best.as_ref().is_none_or(|b| {
                    (scheduled.comms_per_iter(), scheduled.it_length_ticks())
                        < (b.comms_per_iter(), b.it_length_ticks())
                });
                if better {
                    best = Some(scheduled);
                }
            }
        }
        match best {
            Some(s) => return Ok(s),
            None => {
                let _ = attempt;
                it = next_it_candidate(config, &opts.menu, it);
            }
        }
    }
    Err(SchedError::NoSchedule {
        loop_name: ddg.name().to_owned(),
        attempts: opts.max_it_attempts,
        last_it: it,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{DdgBuilder, OpClass};
    use vliw_machine::{MachineDesign, Time};

    fn reference() -> ClockedConfig {
        ClockedConfig::reference(MachineDesign::paper_machine(1))
    }

    /// A DDG shaped like an fp stencil inner loop.
    fn stencil() -> Ddg {
        let mut b = DdgBuilder::new("stencil");
        let l0 = b.op("ld a[i-1]", OpClass::FpMemory);
        let l1 = b.op("ld a[i]", OpClass::FpMemory);
        let l2 = b.op("ld a[i+1]", OpClass::FpMemory);
        let m0 = b.op("mul0", OpClass::FpMul);
        let m1 = b.op("mul1", OpClass::FpMul);
        let s0 = b.op("add0", OpClass::FpArith);
        let s1 = b.op("add1", OpClass::FpArith);
        let st = b.op("st b[i]", OpClass::FpMemory);
        b.flow(l0, m0);
        b.flow(l1, m0);
        b.flow(l1, m1);
        b.flow(l2, m1);
        b.flow(m0, s0);
        b.flow(m1, s0);
        b.flow(s0, s1);
        b.flow(s1, st);
        b.build().unwrap()
    }

    #[test]
    fn schedules_stencil_on_reference_machine() {
        let config = reference();
        let s = schedule_loop(&stencil(), &config, None, &ScheduleOptions::default()).unwrap();
        // 3 memory ops on 4 ports fit at II 1, but dependences stretch the
        // iteration; IT must be at least the fastest conceivable.
        assert!(s.it() >= Time::from_ns(1.0));
        assert!(
            s.it_length() > s.it(),
            "software pipelining overlaps iterations"
        );
        assert_eq!(s.assignment().len(), 8);
        // Executing N iterations takes (N-1)·IT + it_length.
        let t10 = s.exec_time(10);
        let t11 = s.exec_time(11);
        assert_eq!(t11 - t10, s.it());
    }

    #[test]
    fn recurrence_bound_is_respected() {
        let config = reference();
        let mut b = DdgBuilder::new("acc");
        let a = b.op("acc", OpClass::FpArith);
        b.flow_carried(a, a, 1);
        let ddg = b.build().unwrap();
        let s = schedule_loop(&ddg, &config, None, &ScheduleOptions::default()).unwrap();
        assert!(s.it() >= Time::from_ns(3.0));
    }

    #[test]
    fn heterogeneous_machine_schedules_and_uses_fast_cluster_for_recurrence() {
        let design = MachineDesign::paper_machine(1);
        let config =
            ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(1.5));
        // Recurrence with min II 6 (fp mul self-loop).
        let mut b = DdgBuilder::new("recloop");
        let m = b.op("mul-acc", OpClass::FpMul);
        b.flow_carried(m, m, 1);
        // Independent fp work that can go anywhere.
        for i in 0..4 {
            b.op(format!("f{i}"), OpClass::FpArith);
        }
        let ddg = b.build().unwrap();
        let s = schedule_loop(&ddg, &config, None, &ScheduleOptions::default()).unwrap();
        // IT ≥ 6 fast-cluster cycles = 6 ns; at IT = 6 ns the slow clusters
        // have II 4 < 6, so the recurrence must sit in the fast cluster.
        assert!(s.it() >= Time::from_ns(6.0));
        if s.it() < Time::from_ns(9.0) {
            assert_eq!(s.assignment()[0], vliw_machine::ClusterId(0));
        }
    }

    #[test]
    fn fixed_partition_is_respected() {
        let config = reference();
        let ddg = stencil();
        let partition = Partition {
            assignment: vec![vliw_machine::ClusterId(1); 8],
        };
        let s =
            schedule_loop_with_partition(&ddg, &config, &partition, &ScheduleOptions::default())
                .unwrap();
        assert!(s
            .assignment()
            .iter()
            .all(|&c| c == vliw_machine::ClusterId(1)));
        assert_eq!(s.comms_per_iter(), 0);
    }

    #[test]
    fn unschedulable_ddg_is_reported() {
        let config = reference();
        let mut b = DdgBuilder::new("bad");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        b.dep(a, c, 1);
        b.dep(c, a, 1);
        let ddg = b.build().unwrap();
        assert!(matches!(
            schedule_loop(&ddg, &config, None, &ScheduleOptions::default()),
            Err(SchedError::Unschedulable { .. })
        ));
    }

    #[test]
    fn usage_profile_accounts_every_event() {
        let config = reference();
        let ddg = stencil();
        let s = schedule_loop(&ddg, &config, None, &ScheduleOptions::default()).unwrap();
        let usage = s.usage(50);
        let total_ins: f64 = usage.weighted_ins_per_cluster.iter().sum();
        assert!((total_ins - ddg.iteration_energy() * 50.0).abs() < 1e-9);
        assert_eq!(
            usage.mem_accesses,
            4 * 50,
            "3 loads + 1 store per iteration"
        );
        assert_eq!(usage.comms, s.comms_per_iter() * 50);
        assert_eq!(usage.exec_time, s.exec_time(50));
    }
}
