//! Register-pressure analysis of a modulo schedule (MaxLives).
//!
//! In a modulo-scheduled loop, a value defined at tick `d` and last read at
//! tick `r` is live for `r − d` ticks *in every iteration*, and iterations
//! overlap every `L` ticks (one initiation time). A lifetime of length
//! `len` therefore occupies `⌊len / L⌋` registers at every instant plus one
//! more inside the wrapped window `[d mod L, (d + len) mod L)`. The maximum
//! simultaneous count over one `L`-tick window — *MaxLives* — must not
//! exceed the cluster's register-file size for the schedule to be
//! allocatable.

use crate::comm::{ExtGraph, NodePlace};
use crate::timing::LoopClocks;
use crate::workspace::RegScratch;

/// Per-cluster MaxLives of a schedule.
///
/// `issue_ticks[n]` is the issue time of extended-graph node `n` in ticks.
/// Values are attributed to the register file that holds them: an
/// operation's result lives in its own cluster; a broadcast copy's result
/// lives in *every* cluster that consumes it.
///
/// Allocating wrapper over the scratch-based path the scheduler's
/// register check runs on every attempt; the result is identical.
///
/// # Panics
///
/// Panics if `issue_ticks.len() != graph.num_nodes()`.
#[must_use]
pub fn max_lives(
    graph: &ExtGraph,
    clocks: &LoopClocks,
    num_clusters: u8,
    issue_ticks: &[u64],
) -> Vec<u32> {
    let mut scratch = RegScratch::default();
    let mut out = Vec::new();
    max_lives_into(
        graph,
        clocks,
        num_clusters,
        issue_ticks,
        &mut scratch,
        &mut out,
    );
    out
}

/// [`max_lives`] into reusable scratch and output buffers — the from-scratch
/// path (every producer's last read found by scanning its successors). The
/// IMS itself runs on [`max_lives_maintained_into`]; this one is the public
/// API's entry point and the differential oracle the incremental state is
/// proptested against.
pub(crate) fn max_lives_into(
    graph: &ExtGraph,
    clocks: &LoopClocks,
    num_clusters: u8,
    issue_ticks: &[u64],
    scratch: &mut RegScratch,
    out: &mut Vec<u32>,
) {
    max_lives_core(graph, clocks, num_clusters, issue_ticks, None, scratch, out);
}

/// [`max_lives_into`] using the scheduler's incrementally maintained
/// per-producer `(last_read, readers)` state instead of re-scanning every
/// producer's successors — the path the IMS register check runs on every
/// attempt. Results are identical once every node is placed (pinned by the
/// `regs_incremental` proptest).
#[allow(clippy::too_many_arguments)] // mirrors the workspace's flat scratch fields
pub(crate) fn max_lives_maintained_into(
    graph: &ExtGraph,
    clocks: &LoopClocks,
    num_clusters: u8,
    issue_ticks: &[u64],
    reg_last_read: &[u64],
    reg_readers: &[u32],
    scratch: &mut RegScratch,
    out: &mut Vec<u32>,
) {
    max_lives_core(
        graph,
        clocks,
        num_clusters,
        issue_ticks,
        Some((reg_last_read, reg_readers)),
        scratch,
        out,
    );
}

#[allow(clippy::too_many_arguments)]
fn max_lives_core(
    graph: &ExtGraph,
    clocks: &LoopClocks,
    num_clusters: u8,
    issue_ticks: &[u64],
    maintained: Option<(&[u64], &[u32])>,
    scratch: &mut RegScratch,
    out: &mut Vec<u32>,
) {
    let l = clocks.ticks_per_it();
    lifetime_intervals_core(
        graph,
        clocks,
        num_clusters,
        issue_ticks,
        maintained,
        scratch,
    );
    let RegScratch {
        intervals, events, ..
    } = scratch;
    out.clear();
    out.extend(
        intervals[..usize::from(num_clusters)]
            .iter()
            .map(|iv| max_overlap_with(events, iv, l)),
    );
}

/// Sum of all register lifetimes, in ticks — the quantity the paper's §3.2
/// "lifetime slots" feasibility check consumes (`Σ lifetimes` must fit in
/// `registers · II` per cluster).
///
/// # Panics
///
/// Panics if `issue_ticks.len() != graph.num_nodes()`.
#[must_use]
pub fn lifetime_sum_ticks(
    graph: &ExtGraph,
    clocks: &LoopClocks,
    num_clusters: u8,
    issue_ticks: &[u64],
) -> u64 {
    let mut scratch = RegScratch::default();
    lifetime_intervals_core(graph, clocks, num_clusters, issue_ticks, None, &mut scratch);
    scratch.intervals[..usize::from(num_clusters)]
        .iter()
        .flatten()
        .map(|&(s, e)| e - s)
        .sum()
}

/// Per-cluster `[def, last_read)` intervals of every register value,
/// written into `scratch.intervals[..num_clusters]` (inner buffers are
/// cleared and reused, so warm calls allocate nothing).
///
/// With `maintained = Some((last_read, readers))`, a cluster producer's
/// last read comes from the scheduler's incrementally carried state
/// (`O(1)` per producer) instead of a successor scan; broadcast copies are
/// always collected by scanning (they are few, and their per-consumer-
/// cluster slot merge needs every edge anyway).
fn lifetime_intervals_core(
    graph: &ExtGraph,
    clocks: &LoopClocks,
    num_clusters: u8,
    issue_ticks: &[u64],
    maintained: Option<(&[u64], &[u32])>,
    scratch: &mut RegScratch,
) {
    assert_eq!(
        issue_ticks.len(),
        graph.num_nodes(),
        "one issue tick per node"
    );
    let l = clocks.ticks_per_it();
    let nc = usize::from(num_clusters);
    if scratch.intervals.len() < nc {
        scratch.intervals.resize_with(nc, Vec::new);
    }
    let RegScratch {
        intervals,
        per_cluster,
        ..
    } = scratch;
    let intervals = &mut intervals[..nc];
    for iv in intervals.iter_mut() {
        iv.clear();
    }

    for n in graph.nodes() {
        match graph.place(n) {
            NodePlace::Cluster(home) => {
                // A real op's value is ready after its result latency and
                // lives in its own cluster until the last local read. A
                // copy reads from this register file at its own issue,
                // which is covered because the copy is a successor of the
                // producer in the extended graph.
                let def = issue_ticks[n.index()] + graph.result_latency_ticks(n);
                let last_read: Option<u64> = match maintained {
                    Some((lr, readers)) => (readers[n.index()] > 0).then(|| lr[n.index()]),
                    None => {
                        let mut last = None;
                        for e in graph.succs(n) {
                            if !e.value {
                                continue;
                            }
                            let read = issue_ticks[e.dst.index()] + u64::from(e.distance) * l;
                            last = Some(last.map_or(read, |r: u64| r.max(read)));
                        }
                        last
                    }
                };
                if let Some(end) = last_read {
                    // A valid schedule reads after the def; clamp
                    // defensively so a broken caller sees pressure rather
                    // than underflow.
                    intervals[home.index()].push((def, end.max(def)));
                }
            }
            NodePlace::Bus => {
                // A broadcast copy lands a value in *every* consuming
                // cluster's register file: one interval per consumer
                // cluster, from the (per-cluster) arrival to the last read
                // in that cluster.
                per_cluster.clear();
                per_cluster.resize(nc, None);
                for e in graph.succs(n) {
                    if !e.value {
                        continue;
                    }
                    let NodePlace::Cluster(c) = graph.place(e.dst) else {
                        continue; // copies never feed copies
                    };
                    let def = issue_ticks[n.index()] + e.latency_ticks;
                    let read = issue_ticks[e.dst.index()] + u64::from(e.distance) * l;
                    let slot = &mut per_cluster[c.index()];
                    *slot = Some(match *slot {
                        None => (def, read.max(def)),
                        Some((d, r)) => (d.min(def), r.max(read.max(def))),
                    });
                }
                for (c, slot) in per_cluster.iter().enumerate() {
                    if let Some((def, end)) = *slot {
                        intervals[c].push((def, end.max(def)));
                    }
                }
            }
        }
    }
}

/// Maximum number of simultaneously live `[start, end)` intervals folded
/// modulo `l`, using the caller's reusable sweep-event buffer.
fn max_overlap_with(events: &mut Vec<(u64, i64)>, intervals: &[(u64, u64)], l: u64) -> u32 {
    if intervals.is_empty() {
        return 0;
    }
    // Baseline: whole wraps.
    let mut base: u64 = 0;
    // Sweep events on [0, l).
    events.clear();
    for &(start, end) in intervals {
        let len = end - start;
        base += len / l;
        let rem = len % l;
        if rem == 0 {
            continue;
        }
        let s = start % l;
        let e = (start + rem) % l;
        if s < e {
            events.push((s, 1));
            events.push((e, -1));
        } else {
            // Wrapped remainder: live on [s, l) and [0, e).
            base += 1;
            events.push((e, -1));
            events.push((s, 1));
        }
    }
    events.sort_unstable_by_key(|&(t, d)| (t, d));
    let mut current = i64::try_from(base).expect("pressure fits i64");
    let mut best = current;
    for &(_, d) in events.iter() {
        current += d;
        best = best.max(current);
    }
    u32::try_from(best.max(0)).expect("pressure fits u32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{DdgBuilder, OpClass};
    use vliw_machine::{ClockedConfig, ClusterId, FrequencyMenu, MachineDesign, Time};

    fn homogeneous_clocks(it_ns: f64) -> (ClockedConfig, LoopClocks) {
        let config = ClockedConfig::reference(MachineDesign::paper_machine(1));
        let clocks = LoopClocks::select(
            &config,
            &FrequencyMenu::unrestricted(),
            Time::from_ns(it_ns),
        )
        .unwrap();
        (config, clocks)
    }

    #[test]
    fn single_short_value() {
        // a → b in one cluster, II = 4, a at cycle 0, b at cycle 1.
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        b.flow(a, c);
        let ddg = b.build().unwrap();
        let (config, clocks) = homogeneous_clocks(4.0);
        let g = ExtGraph::build(&ddg, &[ClusterId(0), ClusterId(0)], &config, &clocks);
        // Ticks: L=4, 1 tick per cycle. a issues at 0 (ready at 1), b reads
        // at its issue, tick 2 ⇒ the value lives for 1 tick.
        let lives = max_lives(&g, &clocks, 4, &[0, 2]);
        assert_eq!(lives, vec![1, 0, 0, 0]);
    }

    #[test]
    fn long_lifetime_overlaps_iterations() {
        // Value live for 2.5 IIs ⇒ 3 overlapping copies at its busiest.
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        b.flow(a, c);
        let ddg = b.build().unwrap();
        let (config, clocks) = homogeneous_clocks(4.0);
        let g = ExtGraph::build(&ddg, &[ClusterId(0), ClusterId(0)], &config, &clocks);
        // a at 0 (ready at 1), b reads at 11: lifetime 10 ticks, L=4:
        // floor(10/4)=2 everywhere + 1 on [1, 3) ⇒ max 3.
        let lives = max_lives(&g, &clocks, 4, &[0, 11]);
        assert_eq!(lives[0], 3);
    }

    #[test]
    fn carried_read_extends_lifetime() {
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        b.flow_carried(a, c, 2);
        let ddg = b.build().unwrap();
        let (config, clocks) = homogeneous_clocks(4.0);
        let g = ExtGraph::build(&ddg, &[ClusterId(0), ClusterId(0)], &config, &clocks);
        // a ready at 1; b issues at 1 but reads the value from 2 iterations
        // back ⇒ read at 1 + 2·4 = 9; lifetime 8 ⇒ 2 everywhere.
        let lives = max_lives(&g, &clocks, 4, &[0, 1]);
        assert_eq!(lives[0], 2);
    }

    #[test]
    fn copy_value_pressures_destination_cluster() {
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        b.flow(a, c);
        let ddg = b.build().unwrap();
        let (config, clocks) = homogeneous_clocks(4.0);
        let g = ExtGraph::build(&ddg, &[ClusterId(0), ClusterId(1)], &config, &clocks);
        assert_eq!(g.copies().len(), 1);
        // a at tick 0 (C0), copy at tick 2 (bus), b at tick 4 (C1).
        let lives = max_lives(&g, &clocks, 4, &[0, 4, 2]);
        // C0 holds a's value from 1 to the copy's read at 2.
        assert_eq!(lives[0], 1);
        // C1 holds the copied value from its arrival (copy issue 2 + 1 bus
        // cycle, same-frequency domains ⇒ no sync) until b reads at 4.
        assert_eq!(lives[1], 1);
    }

    #[test]
    fn sink_without_consumers_needs_no_register() {
        let mut b = DdgBuilder::new("t");
        b.op("store", OpClass::FpMemory);
        let ddg = b.build().unwrap();
        let (config, clocks) = homogeneous_clocks(2.0);
        let g = ExtGraph::build(&ddg, &[ClusterId(0)], &config, &clocks);
        assert_eq!(max_lives(&g, &clocks, 4, &[0]), vec![0, 0, 0, 0]);
    }

    #[test]
    fn order_edges_create_no_pressure() {
        let mut b = DdgBuilder::new("t");
        let s = b.op("s", OpClass::FpMemory);
        let l = b.op("l", OpClass::FpMemory);
        b.order(s, l, 1, 0);
        let ddg = b.build().unwrap();
        let (config, clocks) = homogeneous_clocks(2.0);
        let g = ExtGraph::build(&ddg, &[ClusterId(0), ClusterId(0)], &config, &clocks);
        assert_eq!(max_lives(&g, &clocks, 4, &[0, 4]), vec![0, 0, 0, 0]);
    }

    #[test]
    fn max_overlap_exact_boundaries() {
        let mut ev = Vec::new();
        // Two abutting intervals never overlap.
        assert_eq!(max_overlap_with(&mut ev, &[(0, 2), (2, 4)], 4), 1);
        // Identical intervals stack.
        assert_eq!(max_overlap_with(&mut ev, &[(0, 3), (0, 3), (0, 3)], 4), 3);
        // Zero-length interval contributes nothing.
        assert_eq!(max_overlap_with(&mut ev, &[(1, 1)], 4), 0);
        // Exactly one full wrap counts once everywhere.
        assert_eq!(max_overlap_with(&mut ev, &[(3, 7)], 4), 1);
    }
}
