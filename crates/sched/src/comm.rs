//! The extended scheduling graph: loop operations plus the explicit
//! inter-cluster copy operations a partition induces.
//!
//! Once every operation is assigned a cluster, register values that flow
//! between clusters must travel over the interconnect: the scheduler
//! materialises one broadcast copy node per communicated producer
//! (paper §2.1: "clusters communicate register values among them using
//! special copy instructions and a set of dedicated register buses" — a
//! bus is a broadcast medium, so one transfer serves every consumer).
//!
//! All edge latencies are pre-converted to *ticks* (the exact common time
//! base of [`LoopClocks`]), folding in:
//!
//! * Table 1 latencies in the producer's execution domain — memory
//!   operations complete in cache cycles since the hierarchy is its own
//!   clock domain;
//! * one bus cycle per copy;
//! * the MCD synchronisation-queue penalty (one receiving-domain cycle) for
//!   every crossing between domains of different frequency (Figure 2).

use vliw_ir::{Ddg, DepKind, FuKind, OpClass, OpId};
use vliw_machine::{ClockedConfig, ClusterId, DomainId};

use crate::timing::LoopClocks;

/// Identifier of a node in the extended graph. Indices `< num_real` are the
/// DDG's operations (same numbering); the rest are inserted copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where a node executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodePlace {
    /// A real operation issuing in a cluster.
    Cluster(ClusterId),
    /// A copy occupying an inter-cluster bus.
    Bus,
}

/// A dependence edge of the extended graph, with latency in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtEdge {
    /// Producer node.
    pub src: NodeId,
    /// Consumer node.
    pub dst: NodeId,
    /// Latency in ticks.
    pub latency_ticks: u64,
    /// Iteration distance.
    pub distance: u32,
    /// Whether the edge carries a register value (`false` for pure ordering
    /// dependences, which need no register and no bus transfer).
    pub value: bool,
}

/// An inserted inter-cluster copy.
///
/// A register bus is a broadcast medium: one copy puts the producer's value
/// on the bus for one ICN cycle and *every* cluster that needs it latches
/// it into its register file (paying its own synchronisation queue), so
/// exactly one copy exists per communicated producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyNode {
    /// The operation whose result is transferred.
    pub producer: OpId,
}

/// The extended graph over which the iterative modulo scheduler runs.
///
/// Nodes and edges are stored densely (`NodeId` indexes every side table)
/// and adjacency is compressed sparse row, mirroring [`Ddg`]'s layout: the
/// first `num_real` node ids coincide with the DDG's `OpId`s, so issue
/// cycles, ticks and assignments computed here index straight back into
/// the IR without translation.
#[derive(Debug, Clone)]
pub struct ExtGraph {
    num_real: usize,
    places: Vec<NodePlace>,
    fu_kinds: Vec<FuKind>,
    copies: Vec<CopyNode>,
    edges: Vec<ExtEdge>,
    /// CSR offsets: out-edges of node `i` are
    /// `edges[succ_adj[succ_off[i]..succ_off[i + 1]]]`.
    succ_off: Vec<u32>,
    succ_adj: Vec<u32>,
    pred_off: Vec<u32>,
    pred_adj: Vec<u32>,
    /// Result latency of each node in ticks (used for `it_length`).
    result_latency_ticks: Vec<u64>,
}

impl ExtGraph {
    /// Builds the extended graph for `ddg` under cluster `assignment`.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != ddg.num_ops()` or an assigned cluster
    /// is out of range for the configuration.
    #[must_use]
    pub fn build(
        ddg: &Ddg,
        assignment: &[ClusterId],
        config: &ClockedConfig,
        clocks: &LoopClocks,
    ) -> Self {
        assert_eq!(assignment.len(), ddg.num_ops(), "one cluster per operation");
        for &c in assignment {
            assert!(
                c.index() < usize::from(config.design().num_clusters),
                "cluster {c} out of range"
            );
        }
        let num_real = ddg.num_ops();
        let mut places: Vec<NodePlace> =
            assignment.iter().map(|&c| NodePlace::Cluster(c)).collect();
        let mut fu_kinds: Vec<FuKind> = ddg.ops().map(|o| o.fu_kind()).collect();
        let mut result_latency_ticks: Vec<u64> = ddg
            .op_ids()
            .map(|op| result_latency(ddg.op(op).class(), assignment[op.index()], config, clocks))
            .collect();

        let mut copies: Vec<CopyNode> = Vec::new();
        // Dense per-producer copy index (one broadcast per producer).
        let mut copy_of: Vec<Option<NodeId>> = vec![None; num_real];
        let mut edges: Vec<ExtEdge> = Vec::new();

        let icn_ticks = clocks.domain_cycle_ticks(DomainId::Icn);

        for e in ddg.edges() {
            let src_cluster = assignment[e.src().index()];
            let dst_cluster = assignment[e.dst().index()];
            let src_node = NodeId(e.src().0);
            let dst_node = NodeId(e.dst().0);
            let needs_copy = e.kind() == DepKind::Flow && src_cluster != dst_cluster;
            if !needs_copy {
                // Same-cluster flow or pure ordering: a direct edge. Edge
                // latency is expressed in the producer's execution-domain
                // cycles; reuse the producer's result latency when the edge
                // carries the full Table 1 latency, otherwise scale the
                // explicit latency by the producer's cluster cycle.
                let class = ddg.op(e.src()).class();
                let lat_ticks = if e.latency() == class.latency() {
                    result_latency_ticks[e.src().index()]
                } else {
                    u64::from(e.latency())
                        * clocks.domain_cycle_ticks(DomainId::Cluster(src_cluster))
                };
                edges.push(ExtEdge {
                    src: src_node,
                    dst: dst_node,
                    latency_ticks: lat_ticks,
                    distance: e.distance(),
                    value: e.kind() == DepKind::Flow,
                });
                continue;
            }
            // Cross-cluster flow: route through a broadcast copy (one per
            // producer; every consuming cluster latches from the bus).
            let copy_node = match copy_of[e.src().index()] {
                Some(id) => id,
                None => {
                    let id = NodeId((num_real + copies.len()) as u32);
                    copies.push(CopyNode { producer: e.src() });
                    places.push(NodePlace::Bus);
                    fu_kinds.push(FuKind::Bus);
                    // A copy holds the bus for one ICN cycle.
                    result_latency_ticks.push(icn_ticks);
                    // Producer result → bus, paying the cluster→ICN sync
                    // queue.
                    let sync_in = u64::from(
                        config.sync_penalty_cycles(DomainId::Cluster(src_cluster), DomainId::Icn),
                    ) * icn_ticks;
                    edges.push(ExtEdge {
                        src: src_node,
                        dst: id,
                        latency_ticks: result_latency_ticks[e.src().index()] + sync_in,
                        distance: 0,
                        value: true,
                    });
                    copy_of[e.src().index()] = Some(id);
                    id
                }
            };
            // Bus → consumer cluster, paying the ICN→cluster sync queue.
            let sync_out = u64::from(
                config.sync_penalty_cycles(DomainId::Icn, DomainId::Cluster(dst_cluster)),
            ) * clocks.domain_cycle_ticks(DomainId::Cluster(dst_cluster));
            edges.push(ExtEdge {
                src: copy_node,
                dst: dst_node,
                latency_ticks: icn_ticks + sync_out,
                distance: e.distance(),
                value: true,
            });
        }

        let n = places.len();
        let (succ_off, succ_adj) = csr(n, &edges, |e| e.src.index());
        let (pred_off, pred_adj) = csr(n, &edges, |e| e.dst.index());
        ExtGraph {
            num_real,
            places,
            fu_kinds,
            copies,
            edges,
            succ_off,
            succ_adj,
            pred_off,
            pred_adj,
            result_latency_ticks,
        }
    }

    /// Total nodes (real operations + copies).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.places.len()
    }

    /// Number of real operations (indices `0..num_real`).
    #[must_use]
    pub fn num_real(&self) -> usize {
        self.num_real
    }

    /// The inserted copies, indexed `num_real..`.
    #[must_use]
    pub fn copies(&self) -> &[CopyNode] {
        &self.copies
    }

    /// Where node `n` executes.
    #[must_use]
    pub fn place(&self, n: NodeId) -> NodePlace {
        self.places[n.index()]
    }

    /// The functional-unit kind node `n` occupies.
    #[must_use]
    pub fn fu_kind(&self, n: NodeId) -> FuKind {
        self.fu_kinds[n.index()]
    }

    /// The clock domain node `n` issues in.
    #[must_use]
    pub fn issue_domain(&self, n: NodeId) -> DomainId {
        match self.places[n.index()] {
            NodePlace::Cluster(c) => DomainId::Cluster(c),
            NodePlace::Bus => DomainId::Icn,
        }
    }

    /// Result latency of node `n`, in ticks.
    #[must_use]
    pub fn result_latency_ticks(&self, n: NodeId) -> u64 {
        self.result_latency_ticks[n.index()]
    }

    /// All edges.
    #[must_use]
    pub fn edges(&self) -> &[ExtEdge] {
        &self.edges
    }

    /// Outgoing edges of `n`.
    pub fn succs(&self, n: NodeId) -> impl ExactSizeIterator<Item = &ExtEdge> + '_ {
        let i = n.index();
        self.succ_adj[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
            .iter()
            .map(|&e| &self.edges[e as usize])
    }

    /// Incoming edges of `n`.
    pub fn preds(&self, n: NodeId) -> impl ExactSizeIterator<Item = &ExtEdge> + '_ {
        let i = n.index();
        self.pred_adj[self.pred_off[i] as usize..self.pred_off[i + 1] as usize]
            .iter()
            .map(|&e| &self.edges[e as usize])
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.places.len() as u32).map(NodeId)
    }
}

/// Builds one CSR direction over the extended edges (stored as positional
/// edge indices), sharing `vliw_ir`'s layout contract and builder.
fn csr(
    num_nodes: usize,
    edges: &[ExtEdge],
    row: impl Fn(&ExtEdge) -> usize,
) -> (Vec<u32>, Vec<u32>) {
    vliw_ir::build_csr(num_nodes, edges, 0u32, row, |i, _| i)
}

/// Result latency of one operation class issued from `cluster`, in ticks.
///
/// Memory operations complete in the cache's clock domain (two cache cycles,
/// §5's all-hit assumption) and pay the synchronisation queues in and out of
/// that domain when the frequencies differ; everything else completes in the
/// issuing cluster's cycles.
fn result_latency(
    class: OpClass,
    cluster: ClusterId,
    config: &ClockedConfig,
    clocks: &LoopClocks,
) -> u64 {
    let cluster_dom = DomainId::Cluster(cluster);
    let cluster_ticks = clocks.domain_cycle_ticks(cluster_dom);
    if class.is_memory() {
        let cache_ticks = clocks.domain_cycle_ticks(DomainId::Cache);
        let sync_in =
            u64::from(config.sync_penalty_cycles(cluster_dom, DomainId::Cache)) * cache_ticks;
        let sync_out =
            u64::from(config.sync_penalty_cycles(DomainId::Cache, cluster_dom)) * cluster_ticks;
        u64::from(class.latency()) * cache_ticks + sync_in + sync_out
    } else {
        u64::from(class.latency()) * cluster_ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::DdgBuilder;
    use vliw_machine::{FrequencyMenu, MachineDesign, Time};

    fn two_cluster_config() -> ClockedConfig {
        let design = MachineDesign::new(2, vliw_machine::ClusterDesign::PAPER, 1);
        ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(1.5))
    }

    fn simple_ddg() -> Ddg {
        let mut b = DdgBuilder::new("t");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        b.flow(a, c);
        b.build().unwrap()
    }

    #[test]
    fn same_cluster_flow_has_no_copy() {
        let config = two_cluster_config();
        let clocks =
            LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(3.0))
                .unwrap();
        let ddg = simple_ddg();
        let g = ExtGraph::build(&ddg, &[ClusterId(0), ClusterId(0)], &config, &clocks);
        assert_eq!(g.num_nodes(), 2);
        assert!(g.copies().is_empty());
        assert_eq!(g.edges().len(), 1);
        // 1 int-arith cycle on the 1 ns cluster = 2 ticks (L=6, II=3).
        assert_eq!(g.edges()[0].latency_ticks, 2);
    }

    #[test]
    fn cross_cluster_flow_inserts_copy_with_sync() {
        let config = two_cluster_config();
        let clocks =
            LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(3.0))
                .unwrap();
        let ddg = simple_ddg();
        // Producer in fast C0, consumer in slow C1.
        let g = ExtGraph::build(&ddg, &[ClusterId(0), ClusterId(1)], &config, &clocks);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.copies().len(), 1);
        assert_eq!(g.copies()[0].producer, OpId(0));
        assert_eq!(g.place(NodeId(2)), NodePlace::Bus);
        assert_eq!(g.fu_kind(NodeId(2)), FuKind::Bus);
        // L = 6 (IIs: fast 3, slow 2, icn 3). ICN cycle = 2 ticks, slow
        // cluster cycle = 3 ticks.
        // Edge a→copy: 1 cycle × 2 ticks + sync(C0→ICN)=0 (same freq) = 2.
        let to_copy = g.preds(NodeId(2)).next().unwrap();
        assert_eq!(to_copy.latency_ticks, 2);
        // Edge copy→b: 1 ICN cycle (2) + sync(ICN→C1)=1 slow cycle (3) = 5.
        let from_copy = g.succs(NodeId(2)).next().unwrap();
        assert_eq!(from_copy.latency_ticks, 5);
    }

    #[test]
    fn copies_are_deduplicated_per_producer() {
        let mut b = DdgBuilder::new("fanout");
        let a = b.op("a", OpClass::IntArith);
        let c1 = b.op("u1", OpClass::IntArith);
        let c2 = b.op("u2", OpClass::IntArith);
        let c3 = b.op("u3", OpClass::IntArith);
        b.flow(a, c1);
        b.flow(a, c2);
        b.flow(a, c3);
        let ddg = b.build().unwrap();
        let config = two_cluster_config();
        let clocks =
            LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(3.0))
                .unwrap();
        // Two consumers in C1, one in C0 alongside the producer: one
        // broadcast serves both remote consumers.
        let g = ExtGraph::build(
            &ddg,
            &[ClusterId(0), ClusterId(1), ClusterId(1), ClusterId(0)],
            &config,
            &clocks,
        );
        assert_eq!(
            g.copies().len(),
            1,
            "one broadcast serves both C1 consumers"
        );
        // Copy has two outgoing edges.
        assert_eq!(g.succs(NodeId(4)).count(), 2);
        // A third consumer in yet another cluster still reuses the copy.
        let g = ExtGraph::build(
            &ddg,
            &[ClusterId(0), ClusterId(1), ClusterId(1), ClusterId(1)],
            &config,
            &clocks,
        );
        assert_eq!(g.copies().len(), 1);
        assert_eq!(g.succs(NodeId(4)).count(), 3);
    }

    #[test]
    fn order_edges_never_get_copies() {
        let mut b = DdgBuilder::new("order");
        let s = b.op("store", OpClass::FpMemory);
        let l = b.op("load", OpClass::FpMemory);
        b.order(s, l, 1, 1);
        let ddg = b.build().unwrap();
        let config = two_cluster_config();
        let clocks =
            LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(3.0))
                .unwrap();
        let g = ExtGraph::build(&ddg, &[ClusterId(0), ClusterId(1)], &config, &clocks);
        assert!(g.copies().is_empty());
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.edges()[0].distance, 1);
    }

    #[test]
    fn memory_latency_accrues_in_cache_cycles() {
        let mut b = DdgBuilder::new("mem");
        let l = b.op("load", OpClass::FpMemory);
        let u = b.op("use", OpClass::FpArith);
        b.flow(l, u);
        let ddg = b.build().unwrap();
        let config = two_cluster_config();
        let clocks =
            LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(3.0))
                .unwrap();
        // Load in the slow cluster: cache runs at fast frequency (2-tick
        // cycles), so 2 cache cycles = 4 ticks, plus 1 cache-cycle sync in
        // (2) + 1 slow-cluster-cycle sync out (3) = 9 ticks.
        let g = ExtGraph::build(&ddg, &[ClusterId(1), ClusterId(1)], &config, &clocks);
        assert_eq!(g.edges()[0].latency_ticks, 9);
        // Load in the fast cluster (same domain frequency as the cache):
        // just 2 × 2 = 4 ticks.
        let g = ExtGraph::build(&ddg, &[ClusterId(0), ClusterId(0)], &config, &clocks);
        assert_eq!(g.edges()[0].latency_ticks, 4);
    }

    #[test]
    fn carried_distance_moves_to_copy_consumer_edge() {
        let mut b = DdgBuilder::new("carried");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        b.flow_carried(a, c, 2);
        let ddg = b.build().unwrap();
        let config = two_cluster_config();
        let clocks =
            LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(3.0))
                .unwrap();
        let g = ExtGraph::build(&ddg, &[ClusterId(0), ClusterId(1)], &config, &clocks);
        let to_copy = g.preds(NodeId(2)).next().unwrap();
        let from_copy = g.succs(NodeId(2)).next().unwrap();
        assert_eq!(to_copy.distance, 0);
        assert_eq!(from_copy.distance, 2);
    }
}
