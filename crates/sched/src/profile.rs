//! Phase-level profiling of the scheduling pipeline.
//!
//! The paper's methodology schedules thousands of loops per design point,
//! so scheduler throughput multiplies every experiment — but optimising it
//! blind is guesswork. A [`PhaseProfile`] splits one scheduling run (or a
//! whole suite of them) into the pipeline's phases — clock selection,
//! partitioning, extended-graph construction, IMS placement, ejection,
//! the register-pressure sweep and simulator validation — each
//! cycle-counted with the monotonic [`Instant`] clock.
//!
//! Profiling is **off by default and zero-cost when off**: the workspace
//! holds an `Option<PhaseProfile>` and every probe site first tests the
//! flag, so the hot path pays one predictable branch per phase boundary
//! and no timer reads. Enable it with
//! [`SchedWorkspace::enable_profiling`], run any number of loops, and
//! read the accumulated breakdown back with
//! [`SchedWorkspace::profile`]; per-worker profiles from an exploration
//! pool merge with [`PhaseProfile::merge`]. The `paper schedbench
//! --profile` experiment surfaces the breakdown as a JSON artifact.
//!
//! [`SchedWorkspace::enable_profiling`]: crate::SchedWorkspace::enable_profiling
//! [`SchedWorkspace::profile`]: crate::SchedWorkspace::profile

use std::time::{Duration, Instant};

/// One phase of the scheduling pipeline (Figure 5's boxes, made
/// measurable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// `(frequency, II)` selection and MIT computation
    /// ([`crate::timing`]).
    Clocks,
    /// Multilevel partitioning, including the pseudo-schedule
    /// evaluations of refinement ([`crate::partition`]).
    Partition,
    /// Extended-graph construction: copy insertion and tick-latency
    /// conversion ([`crate::ExtGraph::build`]).
    ExtGraph,
    /// The IMS placement loop proper: priority pick, dependence-earliest
    /// start, window search and reservation (ejection excluded).
    Place,
    /// Forced-placement ejection and dependence re-ejection inside the
    /// IMS loop.
    Eject,
    /// The register-pressure (MaxLives) check of a complete placement.
    Regs,
    /// Independent re-validation of a finished schedule by `vliw-sim`
    /// (only runs where a caller validates, e.g. `schedbench
    /// --profile`).
    Validate,
}

impl Phase {
    /// Every phase, in pipeline order (the order reports render in).
    pub const ALL: [Phase; 7] = [
        Phase::Clocks,
        Phase::Partition,
        Phase::ExtGraph,
        Phase::Place,
        Phase::Eject,
        Phase::Regs,
        Phase::Validate,
    ];

    const COUNT: usize = Self::ALL.len();

    /// The phase's stable snake_case name (JSON keys, report rows).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Clocks => "clocks",
            Phase::Partition => "partition",
            Phase::ExtGraph => "extgraph",
            Phase::Place => "place",
            Phase::Eject => "eject",
            Phase::Regs => "regs",
            Phase::Validate => "validate",
        }
    }

    const fn index(self) -> usize {
        match self {
            Phase::Clocks => 0,
            Phase::Partition => 1,
            Phase::ExtGraph => 2,
            Phase::Place => 3,
            Phase::Eject => 4,
            Phase::Regs => 5,
            Phase::Validate => 6,
        }
    }
}

/// Accumulated per-phase wall time and entry counts.
///
/// Durations accumulate in integer nanoseconds from the monotonic clock;
/// the struct is plain data (no timers running inside), so it can be
/// cloned, merged across worker threads and serialised freely.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    nanos: [u64; Phase::COUNT],
    counts: [u64; Phase::COUNT],
}

impl PhaseProfile {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one timed entry into `phase`.
    #[inline]
    pub fn add(&mut self, phase: Phase, elapsed: Duration) {
        let i = phase.index();
        self.nanos[i] += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.counts[i] += 1;
    }

    /// Accumulates `elapsed` into `phase` without counting an entry —
    /// used when a phase's time is carved out of an enclosing
    /// measurement.
    #[inline]
    pub fn add_nanos(&mut self, phase: Phase, nanos: u64) {
        self.nanos[phase.index()] += nanos;
    }

    /// Total accumulated time of `phase`, in nanoseconds.
    #[must_use]
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Total accumulated time of `phase`, in seconds.
    #[must_use]
    pub fn seconds(&self, phase: Phase) -> f64 {
        self.nanos(phase) as f64 / 1e9
    }

    /// How many timed entries `phase` accumulated.
    #[must_use]
    pub fn count(&self, phase: Phase) -> u64 {
        self.counts[phase.index()]
    }

    /// Sum of every phase's accumulated time, in nanoseconds. Phases are
    /// disjoint by construction, so this is the pipeline time the
    /// profile accounts for; the gap to a caller's wall clock is
    /// unattributed driver overhead.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Folds another profile (e.g. a different worker thread's) into
    /// this one.
    pub fn merge(&mut self, other: &PhaseProfile) {
        for i in 0..Phase::COUNT {
            self.nanos[i] += other.nanos[i];
            self.counts[i] += other.counts[i];
        }
    }

    /// Clears every accumulator.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Starts a probe: `Some(now)` when profiling is on, `None` (no timer
/// read) when off.
#[inline]
#[must_use]
pub(crate) fn probe(profile: &Option<PhaseProfile>) -> Option<Instant> {
    if profile.is_some() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Finishes a probe started by [`probe`], attributing the elapsed time
/// to `phase`.
#[inline]
pub(crate) fn commit(profile: &mut Option<PhaseProfile>, phase: Phase, start: Option<Instant>) {
    if let (Some(p), Some(t0)) = (profile.as_mut(), start) {
        p.add(phase, t0.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_merge() {
        let mut a = PhaseProfile::new();
        a.add(Phase::Place, Duration::from_nanos(10));
        a.add(Phase::Place, Duration::from_nanos(5));
        a.add(Phase::Regs, Duration::from_nanos(7));
        assert_eq!(a.nanos(Phase::Place), 15);
        assert_eq!(a.count(Phase::Place), 2);
        assert_eq!(a.total_nanos(), 22);

        let mut b = PhaseProfile::new();
        b.add(Phase::Eject, Duration::from_nanos(3));
        b.merge(&a);
        assert_eq!(b.nanos(Phase::Place), 15);
        assert_eq!(b.nanos(Phase::Eject), 3);
        assert_eq!(b.total_nanos(), 25);

        b.reset();
        assert_eq!(b.total_nanos(), 0);
    }

    #[test]
    fn probe_is_none_when_disabled() {
        let off: Option<PhaseProfile> = None;
        assert!(probe(&off).is_none());
        let on = Some(PhaseProfile::new());
        assert!(probe(&on).is_some());
    }

    #[test]
    fn names_are_unique_and_ordered() {
        let names: Vec<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "ALL order matches index order");
        }
    }
}
