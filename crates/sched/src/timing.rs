//! Heterogeneous modulo-scheduling timing: initiation time, per-component
//! initiation intervals, and the minimum initiation time (§2.2 of the
//! paper).
//!
//! On a heterogeneous machine the elapsed time between consecutive
//! iterations — the *initiation time* `IT` — is one global constant, but
//! each clock domain sees its own integer *initiation interval*
//! `II_X = IT · f_X`. [`LoopClocks`] captures one consistent choice of
//! `(frequency, II)` pairs for every domain at a given `IT` (the "Select IIs
//! & freqs" box of Figure 5), and fixes an exact sub-cycle time unit — the
//! *tick*, `IT / L` where `L = lcm(II_X)` — in which every domain's cycle
//! length is an integer. All schedule arithmetic happens in ticks, so no
//! floating-point rounding can violate a dependence.

use vliw_ir::{Ddg, FuKind};
use vliw_machine::{ClockedConfig, ClusterId, DomainId, FrequencyMenu, Time};

use crate::SchedError;

/// A consistent clock assignment for one loop at one initiation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopClocks {
    it: Time,
    cluster_iis: Vec<u64>,
    icn_ii: u64,
    cache_ii: u64,
    ticks_per_it: u64,
}

impl LoopClocks {
    /// Upper bound on `L = lcm(II_X)` before we refuse a configuration as
    /// pathological (it would make tick arithmetic needlessly huge).
    const MAX_TICKS: u64 = 1 << 42;

    /// Selects `(frequency, II)` pairs for every domain at initiation time
    /// `it`, or `None` when some domain cannot synchronise (no supported
    /// frequency divides `it`) — the caller must then increase the `IT`
    /// ("synchronization problems", §4).
    ///
    /// # Panics
    ///
    /// Panics if `it` is zero.
    #[must_use]
    pub fn select(config: &ClockedConfig, menu: &FrequencyMenu, it: Time) -> Option<Self> {
        assert!(!it.is_zero(), "initiation time must be positive");
        let mut cluster_iis = Vec::with_capacity(usize::from(config.design().num_clusters));
        for c in config.design().clusters() {
            cluster_iis.push(menu.available_ii(config.cluster_cycle(c), it)?);
        }
        let icn_ii = menu.available_ii(config.icn_cycle(), it)?;
        let cache_ii = menu.available_ii(config.cache_cycle(), it)?;
        let mut l: u64 = 1;
        for &ii in cluster_iis.iter().chain([&icn_ii, &cache_ii]) {
            l = lcm(l, ii);
            if l > Self::MAX_TICKS {
                return None;
            }
        }
        Some(LoopClocks {
            it,
            cluster_iis,
            icn_ii,
            cache_ii,
            ticks_per_it: l,
        })
    }

    /// The initiation time.
    #[must_use]
    pub fn it(&self) -> Time {
        self.it
    }

    /// The initiation interval of cluster `c`, in that cluster's cycles.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn cluster_ii(&self, c: ClusterId) -> u64 {
        self.cluster_iis[c.index()]
    }

    /// The interconnect's initiation interval.
    #[must_use]
    pub fn icn_ii(&self) -> u64 {
        self.icn_ii
    }

    /// The memory hierarchy's initiation interval.
    #[must_use]
    pub fn cache_ii(&self) -> u64 {
        self.cache_ii
    }

    /// The initiation interval of an arbitrary domain.
    #[must_use]
    pub fn domain_ii(&self, domain: DomainId) -> u64 {
        match domain {
            DomainId::Cluster(c) => self.cluster_ii(c),
            DomainId::Icn => self.icn_ii,
            DomainId::Cache => self.cache_ii,
        }
    }

    /// Ticks per initiation time (`L`): the exact common time base.
    #[must_use]
    pub fn ticks_per_it(&self) -> u64 {
        self.ticks_per_it
    }

    /// Length of one cycle of `domain`, in ticks (exact).
    #[must_use]
    pub fn domain_cycle_ticks(&self, domain: DomainId) -> u64 {
        self.ticks_per_it / self.domain_ii(domain)
    }

    /// Converts a tick count to wall-clock time (rounded to femtoseconds).
    #[must_use]
    pub fn ticks_to_time(&self, ticks: u64) -> Time {
        let fs = u128::from(ticks) * u128::from(self.it.as_fs()) / u128::from(self.ticks_per_it);
        Time::from_fs(u64::try_from(fs).expect("schedule length fits the time representation"))
    }

    /// The effective frequency of `domain` in GHz (`II / IT`).
    #[must_use]
    pub fn effective_freq_ghz(&self, domain: DomainId) -> f64 {
        self.domain_ii(domain) as f64 / self.it.as_ns()
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

/// The recurrence-constrained minimum initiation time (§2.2):
/// `recMIT = recMII · min_C T_cyc(C)` — the critical recurrence paced by the
/// fastest cluster.
///
/// # Panics
///
/// Panics if the DDG has a zero-distance cycle.
#[must_use]
pub fn rec_mit(ddg: &Ddg, config: &ClockedConfig) -> Time {
    config.fastest_cluster_cycle() * u64::from(ddg.rec_mii())
}

/// The resource-constrained minimum initiation time: the smallest
/// synchronisable `IT` at which every functional-unit kind has enough slots
/// machine-wide (`Σ_C n_FU(C) · II_C ≥ uses`).
///
/// # Errors
///
/// Returns [`SchedError::NoFeasibleIt`] when no `IT` within the search
/// horizon satisfies the capacity constraints (e.g. a machine with no FP
/// units asked to run FP code).
pub fn res_mit(
    ddg: &Ddg,
    config: &ClockedConfig,
    menu: &FrequencyMenu,
) -> Result<Time, SchedError> {
    let design = config.design();
    for kind in FuKind::CLUSTER_KINDS {
        if ddg.count_fu(kind) > 0 && design.total_fu_count(kind) == 0 {
            return Err(SchedError::NoFeasibleIt {
                loop_name: ddg.name().to_owned(),
                reason: format!("machine has no {kind} units"),
            });
        }
    }
    let mut it = config.fastest_cluster_cycle();
    for _ in 0..MAX_IT_CANDIDATES {
        if let Some(clocks) = LoopClocks::select(config, menu, it) {
            if capacity_ok(ddg, config, &clocks) {
                return Ok(it);
            }
        }
        it = next_it_candidate(config, menu, it);
    }
    Err(SchedError::NoFeasibleIt {
        loop_name: ddg.name().to_owned(),
        reason: "no synchronisable IT with sufficient capacity within horizon".to_owned(),
    })
}

/// Maximum number of candidate `IT`s examined before giving up.
pub(crate) const MAX_IT_CANDIDATES: u32 = 100_000;

/// Whether machine-wide FU capacity covers the loop at these clocks.
#[must_use]
pub fn capacity_ok(ddg: &Ddg, config: &ClockedConfig, clocks: &LoopClocks) -> bool {
    let design = config.design();
    for kind in FuKind::CLUSTER_KINDS {
        let uses = ddg.count_fu(kind) as u64;
        let capacity: u64 = design
            .clusters()
            .map(|c| u64::from(design.cluster.fu_count(kind)) * clocks.cluster_ii(c))
            .sum();
        if uses > capacity {
            return false;
        }
    }
    true
}

/// The minimum initiation time `MIT = max(recMIT, resMIT)` (§2.2).
///
/// # Errors
///
/// Propagates [`SchedError::NoFeasibleIt`] from the resource search.
///
/// # Panics
///
/// Panics if the DDG has a zero-distance cycle.
pub fn compute_mit(
    ddg: &Ddg,
    config: &ClockedConfig,
    menu: &FrequencyMenu,
) -> Result<Time, SchedError> {
    Ok(rec_mit(ddg, config).max(res_mit(ddg, config, menu)?))
}

/// The smallest `IT' > it` at which some domain's `II` can change — the
/// next point worth re-testing when synchronisation or capacity fails.
///
/// For unrestricted menus these are the multiples of each domain's maximum-
/// frequency cycle time; for discrete menus, multiples of each supported
/// cycle time. Always returns a strictly larger time, so IT searches
/// terminate.
#[must_use]
pub fn next_it_candidate(config: &ClockedConfig, menu: &FrequencyMenu, it: Time) -> Time {
    let mut best: Option<Time> = None;
    let mut consider = |cycle: Time| {
        let next = (it + Time::from_fs(1)).round_up_to(cycle);
        best = Some(match best {
            Some(b) => b.min(next),
            None => next,
        });
    };
    for domain in config.domains() {
        let min_cycle = config.domain_cycle(domain);
        match menu.cycle_times_at_least(min_cycle) {
            None => consider(min_cycle),
            Some(cts) => {
                for ct in cts {
                    consider(ct);
                }
            }
        }
    }
    best.unwrap_or_else(|| it + Time::from_fs(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{DdgBuilder, OpClass};
    use vliw_machine::MachineDesign;

    fn hetero_2cluster(fast_ns: f64, slow_ns: f64) -> ClockedConfig {
        let design = MachineDesign::new(2, vliw_machine::ClusterDesign::PAPER, 1);
        ClockedConfig::heterogeneous(design, Time::from_ns(fast_ns), 1, Time::from_ns(slow_ns))
    }

    #[test]
    fn figure3_iis() {
        // Paper Figure 3: IT = 3 ns, C1 at 1 ns → II 3; C2 at 1.5 ns → II 2.
        let config = hetero_2cluster(1.0, 1.5);
        let clocks =
            LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(3.0))
                .unwrap();
        assert_eq!(clocks.cluster_ii(ClusterId(0)), 3);
        assert_eq!(clocks.cluster_ii(ClusterId(1)), 2);
        // ICN/cache run with the fast cluster.
        assert_eq!(clocks.icn_ii(), 3);
        assert_eq!(clocks.cache_ii(), 3);
        // L = lcm(3, 2) = 6 ticks; C1 cycles are 2 ticks, C2 cycles 3 ticks.
        assert_eq!(clocks.ticks_per_it(), 6);
        assert_eq!(
            clocks.domain_cycle_ticks(DomainId::Cluster(ClusterId(0))),
            2
        );
        assert_eq!(
            clocks.domain_cycle_ticks(DomainId::Cluster(ClusterId(1))),
            3
        );
        assert_eq!(clocks.ticks_to_time(6), Time::from_ns(3.0));
        assert_eq!(clocks.ticks_to_time(2), Time::from_ns(1.0));
    }

    /// The 5-instruction, 2-cluster example of Figure 4.
    fn figure4_ddg() -> Ddg {
        let mut b = DdgBuilder::new("fig4");
        let a = b.op("A", OpClass::IntArith);
        let bb = b.op("B", OpClass::IntArith);
        let c = b.op("C", OpClass::IntArith);
        let d = b.op("D", OpClass::IntArith);
        let e = b.op("E", OpClass::IntArith);
        b.dep(a, bb, 1).dep(bb, c, 1).dep_dist(c, a, 1, 1);
        b.dep(a, d, 1).dep(d, e, 1);
        b.build().unwrap()
    }

    #[test]
    fn figure4_mit() {
        // C1 at 1 ns, C2 at 1.67 ns; 5 single-cycle int instructions, one
        // int FU per cluster; recurrence {A,B,C} of latency 3.
        let design = MachineDesign::new(
            2,
            vliw_machine::ClusterDesign {
                int_fus: 1,
                fp_fus: 1,
                mem_ports: 1,
                registers: 16,
            },
            1,
        );
        let config =
            ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(1.67));
        let ddg = figure4_ddg();
        let menu = FrequencyMenu::unrestricted();

        // recMIT = 3 cycles × 1 ns = 3 ns.
        assert_eq!(rec_mit(&ddg, &config), Time::from_ns(3.0));

        // resMIT: need II_C1 + II_C2 ≥ 5; at IT = 2·1.67 = 3.34 ns we get
        // 3 + 2 = 5 slots (the paper's table reads "IT = 3.33" with exact
        // thirds; at femtosecond resolution the threshold is 2 × 1.67 ns).
        let res = res_mit(&ddg, &config, &menu).unwrap();
        assert_eq!(res, Time::from_ns(3.34));

        // MIT = max(3.0, 3.34).
        let mit = compute_mit(&ddg, &config, &menu).unwrap();
        assert_eq!(mit, Time::from_ns(3.34));
    }

    #[test]
    fn figure4_ii_table() {
        // The (IT → II_C1, II_C2) table of Figure 4.
        let config = hetero_2cluster(1.0, 1.67);
        let menu = FrequencyMenu::unrestricted();
        let cases = [
            (1.0, 1, 0),
            (1.67, 1, 1),
            (2.0, 2, 1),
            (3.0, 3, 1),
            (3.34, 3, 2),
        ];
        for (it_ns, ii1, ii2) in cases {
            let it = Time::from_ns(it_ns);
            match LoopClocks::select(&config, &menu, it) {
                Some(clocks) => {
                    assert!(ii2 > 0, "II=0 must fail selection (IT={it_ns})");
                    assert_eq!(clocks.cluster_ii(ClusterId(0)), ii1, "II_C1 at IT={it_ns}");
                    assert_eq!(clocks.cluster_ii(ClusterId(1)), ii2, "II_C2 at IT={it_ns}");
                }
                None => assert_eq!(ii2, 0, "selection failed only when a domain gets II=0"),
            }
        }
    }

    #[test]
    fn homogeneous_clocks_recover_classic_ms() {
        let config = ClockedConfig::reference(MachineDesign::paper_machine(1));
        let clocks =
            LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(4.0))
                .unwrap();
        for c in config.design().clusters() {
            assert_eq!(clocks.cluster_ii(c), 4);
        }
        assert_eq!(clocks.ticks_per_it(), 4);
        assert_eq!(clocks.domain_cycle_ticks(DomainId::Icn), 1);
    }

    #[test]
    fn menu_synchronisation_failure_bubbles_up() {
        let config = ClockedConfig::reference(MachineDesign::paper_machine(1));
        let menu = FrequencyMenu::uniform(4);
        // 3.7 ns is not a multiple of any eligible menu cycle time.
        assert!(LoopClocks::select(&config, &menu, Time::from_ns(3.7)).is_none());
        assert!(LoopClocks::select(&config, &menu, Time::from_ns(4.0)).is_some());
    }

    #[test]
    fn next_candidate_advances_to_cycle_multiples() {
        let config = hetero_2cluster(1.0, 1.5);
        let menu = FrequencyMenu::unrestricted();
        // After 3.0 ns, the next II change is at 3.0 + something: multiples
        // of 1.0 (→ 4.0) and of 1.5 (→ 4.5) ⇒ 4.0... but from 3.0 the next
        // multiple of 1.0 above is 4.0 and of 1.5 is 4.5; minimum is 4.0.
        assert_eq!(
            next_it_candidate(&config, &menu, Time::from_ns(3.0)),
            Time::from_ns(4.0)
        );
        // From 3.2 ns: next multiple of 1.0 is 4.0; of 1.5 is 4.5 ⇒ 4.0.
        assert_eq!(
            next_it_candidate(&config, &menu, Time::from_ns(3.2)),
            Time::from_ns(4.0)
        );
        // Strictly increasing even from a multiple of everything.
        let it = Time::from_ns(6.0);
        assert!(next_it_candidate(&config, &menu, it) > it);
    }

    #[test]
    fn res_mit_scales_with_workload() {
        let config = ClockedConfig::reference(MachineDesign::paper_machine(1));
        let menu = FrequencyMenu::unrestricted();
        // 9 int ops on 4 int FUs ⇒ needs II ≥ 3 ⇒ resMIT = 3 ns.
        let mut b = DdgBuilder::new("ints");
        for i in 0..9 {
            b.op(format!("i{i}"), OpClass::IntArith);
        }
        let ddg = b.build().unwrap();
        assert_eq!(res_mit(&ddg, &config, &menu).unwrap(), Time::from_ns(3.0));
    }

    #[test]
    fn heterogeneous_res_mit_counts_slow_cluster_slots() {
        // 2 clusters, fast 1 ns / slow 2 ns, 1 int FU each, 6 int ops.
        let config = hetero_2cluster(1.0, 2.0);
        let menu = FrequencyMenu::unrestricted();
        let mut b = DdgBuilder::new("ints");
        for i in 0..6 {
            b.op(format!("i{i}"), OpClass::IntArith);
        }
        let ddg = b.build().unwrap();
        // At IT = 4 ns: II = 4 + 2 = 6 slots ⇒ fits. At 3 ns: 3 + 1 = 4 < 6.
        assert_eq!(res_mit(&ddg, &config, &menu).unwrap(), Time::from_ns(4.0));
    }

    #[test]
    fn impossible_workload_is_an_error() {
        let design = MachineDesign::new(
            1,
            vliw_machine::ClusterDesign {
                int_fus: 1,
                fp_fus: 0,
                mem_ports: 1,
                registers: 16,
            },
            1,
        );
        let config = ClockedConfig::reference(design);
        let mut b = DdgBuilder::new("fp");
        b.op("f", OpClass::FpArith);
        let ddg = b.build().unwrap();
        let err = res_mit(&ddg, &config, &FrequencyMenu::unrestricted()).unwrap_err();
        assert!(err.to_string().contains("no fp units"));
    }

    #[test]
    fn effective_frequency() {
        let config = hetero_2cluster(1.0, 1.5);
        let clocks =
            LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(3.0))
                .unwrap();
        let f0 = clocks.effective_freq_ghz(DomainId::Cluster(ClusterId(0)));
        let f1 = clocks.effective_freq_ghz(DomainId::Cluster(ClusterId(1)));
        assert!((f0 - 1.0).abs() < 1e-9);
        assert!((f1 - 2.0 / 3.0).abs() < 1e-9);
    }
}
