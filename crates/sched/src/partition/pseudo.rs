//! Pseudo-schedules: fast `O(V + E)` estimates of the schedule a partition
//! will produce (§4.1.2, after \[3\]).
//!
//! A pseudo-schedule does not place operations in slots; it estimates the
//! two quantities the refinement objective needs:
//!
//! * the **initiation time** the partition will force — resource rows per
//!   cluster, bus rows for the communications the partition implies, and
//!   per-cluster recurrence constraints (a recurrence placed in a slow
//!   cluster stretches the `IT`; one split across clusters additionally
//!   pays bus and synchronisation latencies);
//! * the **iteration length** — an ASAP pass over the acyclic (distance-0)
//!   part of the graph with communication latencies folded in.
//!
//! Combined with the §3.1 energy model this yields the estimated ED² the
//! refiner minimises; without a power model the estimate degenerates to
//! execution time (homogeneous baseline objective).

use vliw_ir::{Ddg, DepKind, FuKind, Recurrence};
use vliw_machine::Time;
use vliw_machine::{ClockedConfig, ClusterId, DomainId};
use vliw_power::UsageProfile;

use super::{fu_slot, PartitionObjective};
use crate::timing::LoopClocks;
use crate::workspace::PartitionScratch;

/// The pseudo-schedule's estimates for one candidate partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PseudoEval {
    /// Estimated initiation time, ns.
    pub est_it_ns: f64,
    /// Estimated total execution time, ns.
    pub est_exec_ns: f64,
    /// Estimated energy (reference-run units; `1.0` when no power model).
    pub energy: f64,
    /// The objective: energy × delay².
    pub ed2: f64,
}

/// Evaluates `assignment` (one cluster per op).
///
/// Infeasible partitions (e.g. FP work in a cluster with no FP units)
/// return `ed2 = ∞` so the refiner steers away from them.
///
/// Allocating wrapper over [`evaluate_partition_ws`]; results are
/// identical.
///
/// # Panics
///
/// Panics if `assignment.len() != ddg.num_ops()`.
#[must_use]
pub fn evaluate_partition(
    ddg: &Ddg,
    assignment: &[ClusterId],
    recurrences: &[Recurrence],
    config: &ClockedConfig,
    clocks: &LoopClocks,
    objective: &PartitionObjective<'_>,
) -> PseudoEval {
    let mut scratch = PartitionScratch::new();
    evaluate_partition_ws(
        ddg,
        assignment,
        recurrences,
        config,
        clocks,
        objective,
        &mut scratch,
    )
}

/// [`evaluate_partition`] with caller-provided scratch buffers. The
/// refiner evaluates hundreds of candidate moves per loop; reusing the
/// scratch removes every per-evaluation allocation except the energy
/// model's usage profile.
///
/// # Panics
///
/// Panics if `assignment.len() != ddg.num_ops()`.
#[must_use]
pub fn evaluate_partition_ws(
    ddg: &Ddg,
    assignment: &[ClusterId],
    recurrences: &[Recurrence],
    config: &ClockedConfig,
    clocks: &LoopClocks,
    objective: &PartitionObjective<'_>,
    scratch: &mut PartitionScratch,
) -> PseudoEval {
    let mut ctx = std::mem::take(&mut scratch.ctx);
    ctx.build(ddg, config, clocks);
    let eval = evaluate_partition_ctx(
        ddg,
        assignment,
        recurrences,
        config,
        objective,
        &ctx,
        scratch,
    );
    scratch.ctx = ctx;
    eval
}

/// Everything about one (DDG, config, clocks) triple that candidate
/// evaluations share, precomputed so the `O(V + E)` body of
/// [`evaluate_partition_ctx`] is pure table lookups.
///
/// The refiner prices hundreds of candidate moves against the *same*
/// graph and clocks; only the assignment changes. Each table entry is
/// produced by the exact floating-point expression the non-cached
/// evaluation used, so evaluations through a context are bit-identical to
/// [`evaluate_partition`].
#[derive(Debug, Clone, Default)]
pub(crate) struct EvalCtx {
    /// Clusters in the design.
    nc: usize,
    /// The initiation time, ns (the `est_it` floor).
    it_ns: f64,
    /// ICN cycle, ns.
    icn_cycle_ns: f64,
    /// Cost of one cross-cluster flow edge: bus transfer plus two
    /// sync-queue cycles (`3.0 * icn_cycle_ns`).
    comm_ns: f64,
    /// Per-cluster cycle, ns.
    cycle_ns: Vec<f64>,
    /// Per-kind FU counts of the (uniform) cluster design.
    fus: [u64; 3],
    /// Per-op dense FU-kind slot.
    slot: Vec<u8>,
    /// Per-(op, cluster) operation latency, ns (`lat[op * nc + cluster]`).
    lat: Vec<f64>,
    /// `(src, dst)` of every flow edge, in edge order.
    flow_pairs: Vec<(u32, u32)>,
    /// CSR offsets into `preds` (one row per op).
    pred_off: Vec<u32>,
    /// Distance-0 predecessors as `(src, pays_comm_when_split)` pairs,
    /// rows ordered like the op's `ddg.preds` iteration.
    preds: Vec<(u32, bool)>,
    /// Assignment-independent lower bound on the ASAP iteration length:
    /// the distance-0 critical path priced with every op's *fastest*
    /// cluster latency and zero communication. Every candidate's true
    /// `itlen` is ≥ this (fp-monotone argument in
    /// [`evaluate_partition_ctx`]).
    cp_min_max: f64,
}

impl EvalCtx {
    /// (Re)builds the context in place, reusing retained buffers.
    pub(crate) fn build(&mut self, ddg: &Ddg, config: &ClockedConfig, clocks: &LoopClocks) {
        let design = config.design();
        let n = ddg.num_ops();
        self.nc = usize::from(design.num_clusters);
        self.it_ns = clocks.it().as_ns();
        self.icn_cycle_ns = self.it_ns / clocks.icn_ii() as f64;
        self.comm_ns = 3.0 * self.icn_cycle_ns;
        let cache_cycle_ns = self.it_ns / clocks.cache_ii() as f64;
        self.cycle_ns.clear();
        self.cycle_ns.extend(
            design
                .clusters()
                .map(|c| self.it_ns / clocks.cluster_ii(c) as f64),
        );
        for (ki, kind) in [FuKind::Int, FuKind::Fp, FuKind::Mem]
            .into_iter()
            .enumerate()
        {
            self.fus[ki] = u64::from(design.cluster.fu_count(kind));
        }
        self.slot.clear();
        self.slot
            .extend(ddg.ops().map(|op| fu_slot(op.fu_kind()) as u8));
        self.lat.clear();
        self.lat.reserve(n * self.nc);
        for op in ddg.ops() {
            let class = op.class();
            for c in design.clusters() {
                let lat_ns = if class.is_memory() {
                    let cluster_dom = DomainId::Cluster(c);
                    let syncs = f64::from(
                        config.sync_penalty_cycles(cluster_dom, DomainId::Cache)
                            + config.sync_penalty_cycles(DomainId::Cache, cluster_dom),
                    );
                    (f64::from(class.latency()) + syncs) * cache_cycle_ns
                } else {
                    f64::from(class.latency()) * self.cycle_ns[c.index()]
                };
                self.lat.push(lat_ns);
            }
        }
        self.flow_pairs.clear();
        self.flow_pairs.extend(
            ddg.edges()
                .filter(|e| e.kind() == DepKind::Flow)
                .map(|e| (e.src().0, e.dst().0)),
        );
        self.pred_off.clear();
        self.preds.clear();
        self.pred_off.push(0);
        for v in ddg.op_ids() {
            for e in ddg.preds(v) {
                if e.distance() != 0 {
                    continue;
                }
                self.preds.push((e.src().0, e.kind() == DepKind::Flow));
            }
            self.pred_off
                .push(u32::try_from(self.preds.len()).expect("edge count fits u32"));
        }
        // Minimum-latency critical path (see the field doc). `finish` here
        // is a local scratch-free pass over the cached topo order.
        self.cp_min_max = 0.0;
        if let Ok(order) = ddg.topo_order() {
            let mut cpmin = vec![0.0f64; n];
            for &v in order {
                let mut start = 0.0f64;
                let row = self.pred_off[v.index()] as usize..self.pred_off[v.index() + 1] as usize;
                for &(src, _) in &self.preds[row] {
                    start = start.max(cpmin[src as usize]);
                }
                let mut min_lat = f64::INFINITY;
                for c in 0..self.nc {
                    min_lat = min_lat.min(self.lat[v.index() * self.nc + c]);
                }
                cpmin[v.index()] = start + min_lat;
                self.cp_min_max = self.cp_min_max.max(cpmin[v.index()]);
            }
        }
    }
}

/// [`evaluate_partition_ws`] against a prebuilt [`EvalCtx`] — the
/// refiner's inner loop. Results are bit-identical to the other entry
/// points.
///
/// # Panics
///
/// Panics if `assignment.len() != ddg.num_ops()` or the context was built
/// for a different graph.
#[allow(clippy::too_many_lines)]
pub(crate) fn evaluate_partition_ctx(
    ddg: &Ddg,
    assignment: &[ClusterId],
    recurrences: &[Recurrence],
    config: &ClockedConfig,
    objective: &PartitionObjective<'_>,
    ctx: &EvalCtx,
    scratch: &mut PartitionScratch,
) -> PseudoEval {
    evaluate_partition_bounded(
        ddg,
        assignment,
        recurrences,
        config,
        objective,
        ctx,
        scratch,
        None,
    )
}

/// [`evaluate_partition_ctx`] with an optional rejection bar: when `bar`
/// is the ED² a candidate must *strictly beat* and a cheap lower bound on
/// the candidate's ED² already reaches the bar, the expensive ASAP pass is
/// skipped and an `ed2 = ∞` sentinel is returned.
///
/// The skip is exact for the refiner: the bound is built from the true
/// `est_it`/`comms` plus a provable lower bound on the iteration length
/// (each op's finish time is ≥ its own latency, and ≥ the min-latency
/// critical path, under IEEE-754 monotonicity of `+`, `*` by a
/// non-negative value, and `max`), so `ed2_lb ≤ ed2` holds exactly and a
/// bounded-out candidate could never have been accepted. Only the
/// time-only objective (`power = None`) uses the bound — with a power
/// model the energy term needs the ASAP result anyway.
///
/// # Panics
///
/// As [`evaluate_partition_ctx`].
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
pub(crate) fn evaluate_partition_bounded(
    ddg: &Ddg,
    assignment: &[ClusterId],
    recurrences: &[Recurrence],
    config: &ClockedConfig,
    objective: &PartitionObjective<'_>,
    ctx: &EvalCtx,
    scratch: &mut PartitionScratch,
    bar: Option<f64>,
) -> PseudoEval {
    assert_eq!(assignment.len(), ddg.num_ops(), "one cluster per operation");
    assert_eq!(ctx.slot.len(), ddg.num_ops(), "context matches the graph");
    let design = config.design();
    let it_ns = ctx.it_ns;
    let icn_cycle_ns = ctx.icn_cycle_ns;

    let mut est_it = it_ns;
    let infeasible = PseudoEval {
        est_it_ns: f64::INFINITY,
        est_exec_ns: f64::INFINITY,
        energy: f64::INFINITY,
        ed2: f64::INFINITY,
    };

    // --- Resource rows per cluster.
    let counts = &mut scratch.counts;
    counts.clear();
    counts.resize(ctx.nc, [0u64; 3]);
    for (i, &s) in ctx.slot.iter().enumerate() {
        counts[assignment[i].index()][usize::from(s)] += 1;
    }
    for (c, row) in counts.iter().enumerate() {
        for (ki, &n) in row.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let fus = ctx.fus[ki];
            if fus == 0 {
                return infeasible;
            }
            let rows = n.div_ceil(fus);
            est_it = est_it.max(rows as f64 * ctx.cycle_ns[c]);
        }
    }

    // --- Early rejection bound, before the communication sweep: the true
    // ED² is ≥ `1.0 * secs² ` with `secs` built from the (still partial,
    // only-growing) `est_it` and the min-latency critical path — all
    // fp-monotone, see `evaluate_partition_bounded`.
    let trips = objective.trip_count.max(1) as f64;
    if let (Some(bar), None) = (bar, objective.power) {
        let est_exec_lb = (trips - 1.0) * est_it + ctx.cp_min_max;
        let secs_lb = est_exec_lb * 1e-9;
        if secs_lb * secs_lb >= bar {
            return PseudoEval {
                est_it_ns: est_it,
                est_exec_ns: f64::INFINITY,
                energy: f64::INFINITY,
                ed2: f64::INFINITY,
            };
        }
    }

    // --- Bus rows for the communications this partition implies (one
    // broadcast per producer whose value leaves its cluster). Producers
    // are deduplicated through a dense mark table cleared in O(marked).
    for &i in &scratch.marked {
        scratch.comm_marked[i as usize] = false;
    }
    scratch.marked.clear();
    if scratch.comm_marked.len() < ddg.num_ops() {
        scratch.comm_marked.resize(ddg.num_ops(), false);
    }
    let mut comms = 0u64;
    for &(src, dst) in &ctx.flow_pairs {
        let (s, d) = (assignment[src as usize], assignment[dst as usize]);
        if s != d && !scratch.comm_marked[src as usize] {
            scratch.comm_marked[src as usize] = true;
            scratch.marked.push(src);
            comms += 1;
        }
    }
    if comms > 0 {
        let rows = comms.div_ceil(u64::from(design.buses));
        est_it = est_it.max(rows as f64 * icn_cycle_ns);
    }

    // --- Recurrence constraints.
    if !recurrences.is_empty() && scratch.rec_stamp.len() < ddg.num_ops() {
        scratch.rec_stamp.resize(ddg.num_ops(), 0);
    }
    for rec in recurrences {
        // One pass over the members: the slowest cluster the recurrence
        // touches, and whether it spans more than one.
        let first = assignment[rec.ops[0].index()];
        let mut split = false;
        let mut slowest_used_ns = 0.0f64;
        for &op in &rec.ops {
            let c = assignment[op.index()];
            split |= c != first;
            slowest_used_ns = slowest_used_ns.max(ctx.cycle_ns[c.index()]);
        }
        let mut needed = rec.critical_ratio.value() * slowest_used_ns;
        if split {
            // Split recurrence: every crossing inside it pays a bus
            // transfer plus two synchronisation-queue cycles. Membership
            // is answered by an epoch-stamped dense table.
            if scratch.rec_epoch == u32::MAX {
                scratch.rec_stamp.iter_mut().for_each(|s| *s = 0);
                scratch.rec_epoch = 0;
            }
            scratch.rec_epoch += 1;
            for &op in &rec.ops {
                scratch.rec_stamp[op.index()] = scratch.rec_epoch;
            }
            let epoch = scratch.rec_epoch;
            let crossings = ctx
                .flow_pairs
                .iter()
                .filter(|&&(s, d)| {
                    scratch.rec_stamp[s as usize] == epoch
                        && scratch.rec_stamp[d as usize] == epoch
                        && assignment[s as usize] != assignment[d as usize]
                })
                .count() as f64;
            needed += crossings * 3.0 * icn_cycle_ns;
        }
        est_it = est_it.max(needed);
    }

    // --- Rejection bound: skip the ASAP pass when even a lower bound on
    // this candidate's ED² reaches the bar it must strictly beat.
    if let (Some(bar), None) = (bar, objective.power) {
        let mut itlen_lb = ctx.cp_min_max;
        for (v, &c) in assignment.iter().enumerate() {
            itlen_lb = itlen_lb.max(ctx.lat[v * ctx.nc + c.index()]);
        }
        let est_exec_lb = (trips - 1.0) * est_it + itlen_lb;
        let energy = 1.0 + 0.002 * comms as f64;
        let secs_lb = est_exec_lb * 1e-9;
        if energy * secs_lb * secs_lb >= bar {
            return PseudoEval {
                est_it_ns: est_it,
                est_exec_ns: f64::INFINITY,
                energy,
                ed2: f64::INFINITY,
            };
        }
    }

    // --- Iteration length: ASAP over the distance-0 subgraph (the order
    // is cached on the DDG, so each evaluation is a linear walk over the
    // context's predecessor CSR and latency table).
    let order = ddg.topo_order().expect("validated DDG has an acyclic core");
    let finish = &mut scratch.finish;
    finish.clear();
    finish.resize(ddg.num_ops(), 0.0f64);
    let mut itlen = 0.0f64;
    for &v in order {
        let cluster = assignment[v.index()];
        let mut start = 0.0f64;
        let row = ctx.pred_off[v.index()] as usize..ctx.pred_off[v.index() + 1] as usize;
        for &(src, pays_comm) in &ctx.preds[row] {
            let mut ready = finish[src as usize];
            if pays_comm && assignment[src as usize] != cluster {
                // Bus transfer + two sync-queue cycles, as in the extended
                // graph's copy path.
                ready += ctx.comm_ns;
            }
            start = start.max(ready);
        }
        finish[v.index()] = start + ctx.lat[v.index() * ctx.nc + cluster.index()];
        itlen = itlen.max(finish[v.index()]);
    }

    let est_exec_ns = (trips - 1.0) * est_it + itlen;

    // --- Energy.
    let energy = match objective.power {
        // Time-only objective: rank by execution time, with a small
        // communication penalty as a strong tie-break — the homogeneous
        // baseline \[3\] also prefers comm-lean partitions among equals,
        // and comm-lean partitions schedule more robustly.
        None => 1.0 + 0.002 * comms as f64,
        Some(power) => {
            let mut weighted = vec![0.0f64; usize::from(design.num_clusters)];
            for op in ddg.ops() {
                weighted[assignment[op.id().index()].index()] +=
                    op.class().relative_energy() * trips;
            }
            let usage = UsageProfile {
                weighted_ins_per_cluster: weighted,
                comms: comms * objective.trip_count,
                mem_accesses: ddg.count_memory_ops() as u64 * objective.trip_count,
                exec_time: Time::from_ns(est_exec_ns),
            };
            match power.estimate_energy(config, &usage) {
                Some(e) => e,
                None => return infeasible,
            }
        }
    };
    let secs = est_exec_ns * 1e-9;
    PseudoEval {
        est_it_ns: est_it,
        est_exec_ns,
        energy,
        ed2: energy * secs * secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{condensation, DdgBuilder, OpClass};
    use vliw_machine::{FrequencyMenu, MachineDesign, Time};

    fn setup(it_ns: f64) -> (ClockedConfig, LoopClocks) {
        let config = ClockedConfig::reference(MachineDesign::paper_machine(1));
        let clocks = LoopClocks::select(
            &config,
            &FrequencyMenu::unrestricted(),
            Time::from_ns(it_ns),
        )
        .unwrap();
        (config, clocks)
    }

    fn objective() -> PartitionObjective<'static> {
        PartitionObjective {
            power: None,
            trip_count: 100,
        }
    }

    #[test]
    fn balanced_beats_overloaded() {
        // 8 int ops: all in one cluster needs 8 rows (II 2 ⇒ IT inflation);
        // spreading 2 per cluster fits.
        let mut b = DdgBuilder::new("par");
        for i in 0..8 {
            b.op(format!("n{i}"), OpClass::IntArith);
        }
        let ddg = b.build().unwrap();
        let (config, clocks) = setup(2.0);
        let recs = [];
        let all_one = vec![ClusterId(0); 8];
        let spread: Vec<ClusterId> = (0..8).map(|i| ClusterId((i % 4) as u8)).collect();
        let bad = evaluate_partition(&ddg, &all_one, &recs, &config, &clocks, &objective());
        let good = evaluate_partition(&ddg, &spread, &recs, &config, &clocks, &objective());
        assert!(good.ed2 < bad.ed2);
        assert!(bad.est_it_ns >= 8.0, "8 rows of 1 ns each");
        assert!((good.est_it_ns - 2.0).abs() < 1e-9);
    }

    #[test]
    fn communication_costs_show_up() {
        // A tight chain: splitting it across clusters adds bus latency.
        let mut b = DdgBuilder::new("chain");
        let ids: Vec<_> = (0..4)
            .map(|i| b.op(format!("n{i}"), OpClass::IntArith))
            .collect();
        for w in ids.windows(2) {
            b.flow(w[0], w[1]);
        }
        let ddg = b.build().unwrap();
        let (config, clocks) = setup(4.0);
        let recs = [];
        let together = vec![ClusterId(0); 4];
        let split = vec![ClusterId(0), ClusterId(1), ClusterId(0), ClusterId(1)];
        let t = evaluate_partition(&ddg, &together, &recs, &config, &clocks, &objective());
        let s = evaluate_partition(&ddg, &split, &recs, &config, &clocks, &objective());
        assert!(t.ed2 < s.ed2, "communication-free partition must win");
    }

    #[test]
    fn split_recurrence_is_penalised() {
        let mut b = DdgBuilder::new("rec");
        let x = b.op("x", OpClass::IntArith);
        let y = b.op("y", OpClass::IntArith);
        b.flow(x, y);
        b.flow_carried(y, x, 1);
        let ddg = b.build().unwrap();
        let (config, clocks) = setup(4.0);
        let recs = condensation(&ddg).recurrences(&ddg);
        let whole = vec![ClusterId(0); 2];
        let split = vec![ClusterId(0), ClusterId(1)];
        let w = evaluate_partition(&ddg, &whole, &recs, &config, &clocks, &objective());
        let s = evaluate_partition(&ddg, &split, &recs, &config, &clocks, &objective());
        assert!(w.est_it_ns < s.est_it_ns);
    }

    #[test]
    fn slow_cluster_recurrence_stretches_it() {
        let design = MachineDesign::paper_machine(1);
        let config =
            ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(2.0));
        let clocks =
            LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(4.0))
                .unwrap();
        let mut b = DdgBuilder::new("rec");
        let x = b.op("x", OpClass::FpArith);
        b.flow_carried(x, x, 1); // ratio 3
        let ddg = b.build().unwrap();
        let recs = condensation(&ddg).recurrences(&ddg);
        let fast = vec![ClusterId(0)];
        let slow = vec![ClusterId(1)];
        let f = evaluate_partition(&ddg, &fast, &recs, &config, &clocks, &objective());
        let s = evaluate_partition(&ddg, &slow, &recs, &config, &clocks, &objective());
        // In the fast cluster the recurrence needs 3 ns; in the slow one 6.
        assert!((f.est_it_ns - 4.0).abs() < 1e-6, "fits inside IT 4");
        assert!((s.est_it_ns - 6.0).abs() < 1e-6);
    }

    #[test]
    fn energy_model_prefers_work_in_cheap_clusters() {
        use vliw_power::{EnergyShares, PowerModel, ReferenceProfile};
        let design = MachineDesign::paper_machine(1);
        let profile = ReferenceProfile {
            weighted_ins: 10_000.0,
            comms: 500,
            mem_accesses: 2_000,
            exec_time: Time::from_ns(10_000.0),
        };
        let power = PowerModel::calibrate(design, EnergyShares::PAPER, &profile);
        let config =
            ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(1.25))
                .with_voltages(vliw_machine::Voltages {
                    clusters: vec![1.0, 0.8, 0.8, 0.8],
                    icn: 1.0,
                    cache: 1.0,
                });
        let clocks =
            LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(5.0))
                .unwrap();
        // Independent ops: either all in the fast/hot cluster or spread to
        // the cheap ones.
        let mut b = DdgBuilder::new("par");
        for i in 0..4 {
            b.op(format!("n{i}"), OpClass::FpArith);
        }
        let ddg = b.build().unwrap();
        let obj = PartitionObjective {
            power: Some(&power),
            trip_count: 100,
        };
        let hot = vec![ClusterId(0); 4];
        let cheap = vec![ClusterId(1), ClusterId(1), ClusterId(2), ClusterId(3)];
        let h = evaluate_partition(&ddg, &hot, &[], &config, &clocks, &obj);
        let c = evaluate_partition(&ddg, &cheap, &[], &config, &clocks, &obj);
        assert!(c.energy < h.energy);
        assert!(c.ed2 < h.ed2);
    }
}
