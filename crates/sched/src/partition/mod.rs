//! Multilevel DDG partitioning for heterogeneous cluster assignment
//! (§4.1 of the paper).
//!
//! The pipeline:
//!
//! 1. **Recurrence pre-placement** (`pin`): recurrences whose latency
//!    approaches or exceeds some cluster's `II` budget are placed whole —
//!    most critical first — into the *slowest* cluster that can still
//!    schedule them, keeping energy low without hurting the `IT`
//!    (§4.1.1).
//! 2. **Coarsening** (`coarsen`): heavy-edge matching fuses strongly
//!    connected macronodes until roughly one macronode per cluster
//!    remains; a greedy load-balanced seed assignment follows.
//! 3. **Refinement** (`refine`): walking the hierarchy from coarsest to
//!    finest, macronodes are greedily moved between clusters whenever the
//!    move lowers the estimated ED² of a *pseudo-schedule*
//!    ([`evaluate_partition`]) —
//!    an `O(V + E)` approximation of the final schedule combined with the
//!    §3.1 energy model.
//!
//! For homogeneous machines with no power model the ED² objective
//! degenerates to (estimated) execution time, recovering the baseline
//! partitioner of the paper's prior work \[2\]\[3\].

mod coarsen;
mod pin;
mod pseudo;
mod refine;

pub(crate) use pseudo::EvalCtx;
pub use pseudo::{evaluate_partition, evaluate_partition_ws, PseudoEval};

use vliw_ir::{Ddg, FuKind};
use vliw_machine::{ClockedConfig, ClusterId};
use vliw_power::PowerModel;

use crate::error::SchedError;
use crate::timing::LoopClocks;
use crate::workspace::PartitionScratch;

/// Dense slot index for the three cluster-resident FU kinds.
///
/// # Panics
///
/// Panics on [`FuKind::Bus`] — real operations never occupy the bus.
pub(crate) fn fu_slot(kind: FuKind) -> usize {
    match kind {
        FuKind::Int => 0,
        FuKind::Fp => 1,
        FuKind::Mem => 2,
        FuKind::Bus => unreachable!("operations never occupy the bus directly"),
    }
}

/// A cluster assignment for every operation of a DDG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `assignment[op] = cluster`.
    pub assignment: Vec<ClusterId>,
}

impl Partition {
    /// The trivial partition placing everything in cluster 0.
    #[must_use]
    pub fn all_in_first(num_ops: usize) -> Self {
        Partition {
            assignment: vec![ClusterId(0); num_ops],
        }
    }

    /// Number of operations covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the partition covers no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }
}

/// What the partitioner optimises.
#[derive(Debug, Clone, Copy)]
pub struct PartitionObjective<'a> {
    /// Energy model; `None` reduces ED² to execution time (the homogeneous
    /// baseline objective).
    pub power: Option<&'a PowerModel>,
    /// Loop trip count used when estimating execution time and energy.
    pub trip_count: u64,
}

impl Default for PartitionObjective<'_> {
    fn default() -> Self {
        PartitionObjective {
            power: None,
            trip_count: 100,
        }
    }
}

/// Computes a cluster assignment for `ddg` at the given clocks.
///
/// # Errors
///
/// Returns [`SchedError::RecurrenceDoesNotFit`] when some recurrence cannot
/// be placed in any cluster at this initiation time — the driver reacts by
/// increasing the `IT`.
pub fn compute_partition(
    ddg: &Ddg,
    config: &ClockedConfig,
    clocks: &LoopClocks,
    objective: &PartitionObjective<'_>,
) -> Result<Partition, SchedError> {
    let mut scratch = PartitionScratch::new();
    compute_partition_ws(ddg, config, clocks, objective, &mut scratch)
}

/// [`compute_partition`] with caller-provided scratch (normally the
/// partition half of a [`crate::SchedWorkspace`]), reused across the
/// refinement passes and across calls. Results are identical.
///
/// # Errors
///
/// As [`compute_partition`].
pub fn compute_partition_ws(
    ddg: &Ddg,
    config: &ClockedConfig,
    clocks: &LoopClocks,
    objective: &PartitionObjective<'_>,
    scratch: &mut PartitionScratch,
) -> Result<Partition, SchedError> {
    let num_clusters = config.design().num_clusters;
    if ddg.is_empty() {
        return Ok(Partition {
            assignment: Vec::new(),
        });
    }
    if num_clusters == 1 {
        return Ok(Partition::all_in_first(ddg.num_ops()));
    }

    let recurrences = ddg.recurrences();
    let pinned = pin::pin_recurrences(ddg, recurrences, config, clocks)?;
    let hierarchy = coarsen::coarsen(ddg, &pinned, config, clocks);
    let assignment = refine::refine(
        ddg,
        &hierarchy,
        recurrences,
        config,
        clocks,
        objective,
        scratch,
    );
    Ok(Partition { assignment })
}

/// The coarsening seed without refinement: pinned recurrences plus the
/// greedy load-balanced placement. A useful *second* candidate for the
/// scheduling driver — refinement optimises an estimate and occasionally
/// walks away from partitions the exact scheduler would prefer.
///
/// # Errors
///
/// Returns [`SchedError::RecurrenceDoesNotFit`] as [`compute_partition`]
/// does.
pub fn compute_partition_unrefined(
    ddg: &Ddg,
    config: &ClockedConfig,
    clocks: &LoopClocks,
) -> Result<Partition, SchedError> {
    let num_clusters = config.design().num_clusters;
    if ddg.is_empty() {
        return Ok(Partition {
            assignment: Vec::new(),
        });
    }
    if num_clusters == 1 {
        return Ok(Partition::all_in_first(ddg.num_ops()));
    }
    let recurrences = ddg.recurrences();
    let pinned = pin::pin_recurrences(ddg, recurrences, config, clocks)?;
    let hierarchy = coarsen::coarsen(ddg, &pinned, config, clocks);
    let coarsest = hierarchy.base_groups_at(hierarchy.num_levels() - 1);
    let mut assignment = vec![vliw_machine::ClusterId(0); ddg.num_ops()];
    for (node, bgs) in coarsest.iter().enumerate() {
        for &bg in bgs {
            for &op in &hierarchy.base_groups[bg] {
                assignment[op.index()] = hierarchy.seed[node];
            }
        }
    }
    Ok(Partition { assignment })
}
