//! Multilevel refinement (§4.1.2): greedy macronode moves guided by
//! pseudo-schedule ED².

use vliw_ir::Recurrence;
use vliw_machine::{ClockedConfig, ClusterId};

use super::coarsen::Hierarchy;
use super::pseudo::{evaluate_partition_bounded, evaluate_partition_ctx};
use super::PartitionObjective;
use crate::timing::LoopClocks;
use crate::workspace::PartitionScratch;
use vliw_ir::Ddg;

/// Maximum improvement passes per hierarchy level.
const PASS_LIMIT: usize = 6;

/// Refines the hierarchy's seed assignment from the coarsest level down to
/// the base, returning the final per-op cluster assignment.
///
/// Candidate moves are priced with [`evaluate_partition_bounded`] against the
/// shared `scratch`, and the induced per-op assignment lives in one
/// reusable buffer — the inner evaluation loop performs no steady-state
/// allocation (except the energy model's usage profile under an ED²
/// objective).
pub(crate) fn refine(
    ddg: &Ddg,
    hierarchy: &Hierarchy,
    recurrences: &[Recurrence],
    config: &ClockedConfig,
    clocks: &LoopClocks,
    objective: &PartitionObjective<'_>,
    scratch: &mut PartitionScratch,
) -> Vec<ClusterId> {
    // Assignment per *base group*, seeded from the coarsest level.
    let coarsest_level = hierarchy.num_levels() - 1;
    let coarsest = hierarchy.base_groups_at(coarsest_level);
    let mut base_assign: Vec<ClusterId> = vec![ClusterId(0); hierarchy.base_groups.len()];
    for (node, bgs) in coarsest.iter().enumerate() {
        for &bg in bgs {
            base_assign[bg] = hierarchy.seed[node];
        }
    }

    // The induced-assignment buffer is taken out of the scratch so it can
    // be borrowed alongside it (and returned before exit for reuse). It is
    // maintained *incrementally*: a candidate move rewrites only the moved
    // group's ops, not the whole array.
    let mut induced = std::mem::take(&mut scratch.induced);
    let mut group_version = std::mem::take(&mut scratch.group_version);
    // The evaluation context (latency tables, edge lists) is fixed for the
    // whole refinement run — built once, shared by every candidate pricing.
    let mut ctx = std::mem::take(&mut scratch.ctx);
    ctx.build(ddg, config, clocks);

    // Move counter for the rejection-skip below: bumped on every accepted
    // move, i.e. whenever the global assignment changes.
    let mut version: u64 = 0;

    // All level compositions in one upward pass (base_groups_at rebuilds
    // levels 0..k on every call, which is quadratic over the walk below).
    let groups_by_level = level_compositions(hierarchy);

    let clusters: Vec<ClusterId> = config.design().clusters().collect();
    // Walk levels coarsest → finest; at each level try moving whole
    // macronodes between clusters.
    for level in (0..hierarchy.num_levels()).rev() {
        let groups = &groups_by_level[level];
        group_version.clear();
        group_version.resize(groups.len(), u64::MAX);
        induce_into(ddg, hierarchy, &base_assign, &mut induced);
        let mut current_eval =
            evaluate_partition_ctx(ddg, &induced, recurrences, config, objective, &ctx, scratch);
        for _pass in 0..PASS_LIMIT {
            let mut improved = false;
            for (gi, bgs) in groups.iter().enumerate() {
                // Pinned groups are fixed (recurrence pre-placement).
                if bgs.iter().any(|&bg| hierarchy.base_pin[bg].is_some()) {
                    continue;
                }
                // Rejection skip: if every candidate move of this group was
                // rejected and no move has been accepted anywhere since,
                // the assignment — and therefore every candidate's ED² and
                // the bar it must beat — is unchanged, so re-evaluating
                // would reject again. Skipping is exact.
                if group_version[gi] == version {
                    continue;
                }
                let from = base_assign[bgs[0]];
                let mut best: Option<(ClusterId, super::pseudo::PseudoEval)> = None;
                for &to in &clusters {
                    if to == from {
                        continue;
                    }
                    move_group(hierarchy, bgs, to, &mut base_assign, &mut induced);
                    let eval = evaluate_partition_bounded(
                        ddg,
                        &induced,
                        recurrences,
                        config,
                        objective,
                        &ctx,
                        scratch,
                        Some(best.as_ref().map_or(current_eval.ed2, |(_, b)| b.ed2)),
                    );
                    if eval.ed2 < current_eval.ed2
                        && best.as_ref().is_none_or(|(_, b)| eval.ed2 < b.ed2)
                    {
                        best = Some((to, eval));
                    }
                }
                match best {
                    Some((to, eval)) => {
                        move_group(hierarchy, bgs, to, &mut base_assign, &mut induced);
                        current_eval = eval;
                        improved = true;
                        version += 1;
                    }
                    None => {
                        move_group(hierarchy, bgs, from, &mut base_assign, &mut induced);
                        group_version[gi] = version;
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }
    induce_into(ddg, hierarchy, &base_assign, &mut induced);
    let result = induced.clone();
    scratch.induced = induced;
    scratch.group_version = group_version;
    scratch.ctx = ctx;
    result
}

/// Reassigns one macronode: updates both the base-group assignment and the
/// ops it induces, keeping `induced` consistent without a full rebuild.
fn move_group(
    hierarchy: &Hierarchy,
    bgs: &[usize],
    to: ClusterId,
    base_assign: &mut [ClusterId],
    induced: &mut [ClusterId],
) {
    for &bg in bgs {
        base_assign[bg] = to;
        for &op in &hierarchy.base_groups[bg] {
            induced[op.index()] = to;
        }
    }
}

/// The base-group composition of every hierarchy level, built bottom-up in
/// one pass (level `k+1` merges level `k`, exactly as
/// [`Hierarchy::base_groups_at`] computes each level from scratch).
fn level_compositions(hierarchy: &Hierarchy) -> Vec<Vec<Vec<usize>>> {
    let mut levels: Vec<Vec<Vec<usize>>> = Vec::with_capacity(hierarchy.num_levels());
    levels.push((0..hierarchy.base_groups.len()).map(|i| vec![i]).collect());
    for merge in &hierarchy.merges {
        let prev = levels.last().expect("level 0 pushed above");
        let parents = merge.iter().copied().max().map_or(0, |m| m + 1);
        let mut next: Vec<Vec<usize>> = vec![Vec::new(); parents];
        for (child, &parent) in merge.iter().enumerate() {
            next[parent].extend(prev[child].iter().copied());
        }
        levels.push(next);
    }
    levels
}

/// Expands a base-group assignment to a per-op assignment, into a reusable
/// buffer.
fn induce_into(
    ddg: &Ddg,
    hierarchy: &Hierarchy,
    base_assign: &[ClusterId],
    out: &mut Vec<ClusterId>,
) {
    out.clear();
    out.resize(ddg.num_ops(), ClusterId(0));
    for (bg, ops) in hierarchy.base_groups.iter().enumerate() {
        for &op in ops {
            out[op.index()] = base_assign[bg];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{compute_partition, PartitionObjective};
    use vliw_ir::{DdgBuilder, OpClass};
    use vliw_machine::{FrequencyMenu, MachineDesign, Time};

    fn setup(it_ns: f64) -> (ClockedConfig, LoopClocks) {
        let config = ClockedConfig::reference(MachineDesign::paper_machine(1));
        let clocks = LoopClocks::select(
            &config,
            &FrequencyMenu::unrestricted(),
            Time::from_ns(it_ns),
        )
        .unwrap();
        (config, clocks)
    }

    #[test]
    fn partition_keeps_tight_chain_together() {
        let mut b = DdgBuilder::new("chain");
        let ids: Vec<_> = (0..3)
            .map(|i| b.op(format!("n{i}"), OpClass::IntArith))
            .collect();
        for w in ids.windows(2) {
            b.flow(w[0], w[1]);
        }
        let ddg = b.build().unwrap();
        let (config, clocks) = setup(3.0);
        let p = compute_partition(&ddg, &config, &clocks, &PartitionObjective::default()).unwrap();
        // A 3-op chain fits one cluster (II 3); splitting costs a bus trip.
        let first = p.assignment[0];
        assert!(
            p.assignment.iter().all(|&c| c == first),
            "{:?}",
            p.assignment
        );
    }

    #[test]
    fn partition_spreads_parallel_work() {
        let mut b = DdgBuilder::new("par");
        for i in 0..8 {
            b.op(format!("n{i}"), OpClass::IntArith);
        }
        let ddg = b.build().unwrap();
        let (config, clocks) = setup(2.0);
        let p = compute_partition(&ddg, &config, &clocks, &PartitionObjective::default()).unwrap();
        let mut per = [0usize; 4];
        for &c in &p.assignment {
            per[c.index()] += 1;
        }
        assert_eq!(per, [2, 2, 2, 2], "{:?}", p.assignment);
    }

    #[test]
    fn recurrence_is_pinned_to_slow_cluster_in_hetero() {
        let design = MachineDesign::paper_machine(1);
        let config =
            ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(2.0));
        let clocks =
            LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(6.0))
                .unwrap();
        let mut b = DdgBuilder::new("rec+free");
        let x = b.op("x", OpClass::FpArith);
        b.flow_carried(x, x, 1); // min II 3 ⇒ fits slow clusters (II 3)
        for i in 0..3 {
            b.op(format!("f{i}"), OpClass::IntArith);
        }
        let ddg = b.build().unwrap();
        let p = compute_partition(&ddg, &config, &clocks, &PartitionObjective::default()).unwrap();
        assert_eq!(config.cluster_cycle(p.assignment[0]), Time::from_ns(2.0));
    }

    #[test]
    fn single_cluster_machine_takes_everything() {
        let design = MachineDesign::new(1, vliw_machine::ClusterDesign::PAPER, 1);
        let config = ClockedConfig::reference(design);
        let clocks =
            LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(8.0))
                .unwrap();
        let mut b = DdgBuilder::new("all");
        for i in 0..5 {
            b.op(format!("n{i}"), OpClass::IntArith);
        }
        let ddg = b.build().unwrap();
        let p = compute_partition(&ddg, &config, &clocks, &PartitionObjective::default()).unwrap();
        assert!(p.assignment.iter().all(|&c| c == ClusterId(0)));
    }

    #[test]
    fn empty_ddg_gives_empty_partition() {
        let ddg = DdgBuilder::new("empty").build().unwrap();
        let (config, clocks) = setup(1.0);
        let p = compute_partition(&ddg, &config, &clocks, &PartitionObjective::default()).unwrap();
        assert!(p.is_empty());
    }

    /// A family of DDG shapes exercising chains, fans, recurrences and
    /// mixed FU kinds.
    fn shape_zoo() -> Vec<Ddg> {
        let mut zoo = Vec::new();

        // Chain of mixed op kinds.
        let mut b = DdgBuilder::new("chain-mixed");
        let classes = [
            OpClass::IntArith,
            OpClass::FpArith,
            OpClass::FpMemory,
            OpClass::FpMul,
            OpClass::IntArith,
            OpClass::FpArith,
            OpClass::FpMemory,
            OpClass::IntArith,
        ];
        let ids: Vec<_> = classes
            .iter()
            .enumerate()
            .map(|(i, &c)| b.op(format!("c{i}"), c))
            .collect();
        for w in ids.windows(2) {
            b.flow(w[0], w[1]);
        }
        zoo.push(b.build().unwrap());

        // Fan: one producer feeding many consumers.
        let mut b = DdgBuilder::new("fan");
        let src = b.op("src", OpClass::FpMemory);
        for i in 0..9 {
            let dst = b.op(format!("f{i}"), OpClass::FpArith);
            b.flow(src, dst);
        }
        zoo.push(b.build().unwrap());

        // Two recurrences plus free parallel work.
        let mut b = DdgBuilder::new("recs");
        let x = b.op("x", OpClass::FpArith);
        b.flow_carried(x, x, 1);
        let y0 = b.op("y0", OpClass::IntArith);
        let y1 = b.op("y1", OpClass::IntArith);
        b.flow(y0, y1);
        b.flow_carried(y1, y0, 1);
        for i in 0..7 {
            b.op(format!("free{i}"), OpClass::IntArith);
        }
        zoo.push(b.build().unwrap());

        zoo
    }

    /// Refinement starts from the coarsening seed and only accepts moves
    /// that strictly lower the pseudo-schedule ED², so the refined
    /// partition's estimated cost can never exceed the unrefined seed's.
    #[test]
    fn refinement_never_increases_estimated_cost() {
        use crate::partition::{compute_partition_unrefined, evaluate_partition};

        let design = MachineDesign::paper_machine(1);
        let configs = [
            ClockedConfig::reference(design),
            ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(1.5)),
        ];
        let objective = PartitionObjective::default();
        for ddg in shape_zoo() {
            let recurrences = vliw_ir::condensation(&ddg).recurrences(&ddg);
            for config in &configs {
                let clocks =
                    LoopClocks::select(config, &FrequencyMenu::unrestricted(), Time::from_ns(9.0))
                        .unwrap();
                let seed = compute_partition_unrefined(&ddg, config, &clocks).unwrap();
                let refined = compute_partition(&ddg, config, &clocks, &objective).unwrap();
                let seed_eval = evaluate_partition(
                    &ddg,
                    &seed.assignment,
                    &recurrences,
                    config,
                    &clocks,
                    &objective,
                );
                let refined_eval = evaluate_partition(
                    &ddg,
                    &refined.assignment,
                    &recurrences,
                    config,
                    &clocks,
                    &objective,
                );
                assert!(
                    refined_eval.ed2 <= seed_eval.ed2 * (1.0 + 1e-12),
                    "{}: refinement worsened cost ({} -> {})",
                    ddg.name(),
                    seed_eval.ed2,
                    refined_eval.ed2
                );
            }
        }
    }
}
