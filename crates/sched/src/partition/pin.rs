//! Recurrence pre-placement (§4.1.1).
//!
//! Recurrences with large latencies may be schedulable in some clusters
//! only: a slow cluster has fewer cycles per initiation time, so a
//! recurrence needing `min_ii` cycles does not fit where `II_C < min_ii`.
//! Before coarsening we walk the recurrences most-critical-first and pin
//! each to the **slowest** cluster that can still schedule it — slower
//! clusters consume less power, and an unnecessary fast-cluster placement
//! wastes the heterogeneous design's entire point.

use vliw_ir::{Ddg, FuKind, Recurrence};
use vliw_machine::{ClockedConfig, ClusterId};

use super::fu_slot;
use crate::error::SchedError;
use crate::timing::LoopClocks;

/// Per-op pinned cluster (`None` = free to move during partitioning).
pub(crate) type Pinned = Vec<Option<ClusterId>>;

/// Pins every recurrence to the slowest cluster that can schedule it.
///
/// Schedulability in cluster `C` requires:
/// * `min_ii(recurrence) ≤ II_C` — the recurrence's critical circuit fits
///   in one initiation time at `C`'s frequency, and
/// * FU capacity — the ops already pinned to `C` plus this recurrence's
///   ops fit in `C`'s functional units over `II_C` cycles.
///
/// # Errors
///
/// Returns [`SchedError::RecurrenceDoesNotFit`] when no cluster admits a
/// recurrence; the caller then increases the `IT`.
pub(crate) fn pin_recurrences(
    ddg: &Ddg,
    recurrences: &[Recurrence],
    config: &ClockedConfig,
    clocks: &LoopClocks,
) -> Result<Pinned, SchedError> {
    let mut pinned: Pinned = vec![None; ddg.num_ops()];
    // Dense `load[cluster][kind]` → ops already pinned there.
    let design = config.design();
    let mut load = vec![[0u64; 3]; usize::from(design.num_clusters)];
    let slowest_first = config.clusters_slowest_first();

    for rec in recurrences {
        let mut counts = [0u64; 3];
        for &op in &rec.ops {
            counts[fu_slot(ddg.op(op).fu_kind())] += 1;
        }
        let min_ii = u64::from(rec.min_ii());
        let home = slowest_first.iter().copied().find(|&c| {
            let ii = clocks.cluster_ii(c);
            if ii < min_ii {
                return false;
            }
            // `fu_slot` indexes `load`/`counts` in CLUSTER_KINDS order.
            FuKind::CLUSTER_KINDS.iter().enumerate().all(|(ki, &kind)| {
                let cap = u64::from(design.cluster.fu_count(kind)) * ii;
                load[c.index()][ki] + counts[ki] <= cap
            })
        });
        let Some(home) = home else {
            return Err(SchedError::RecurrenceDoesNotFit {
                loop_name: ddg.name().to_owned(),
                min_ii: rec.min_ii(),
            });
        };
        for &op in &rec.ops {
            pinned[op.index()] = Some(home);
            load[home.index()][fu_slot(ddg.op(op).fu_kind())] += 1;
        }
    }
    Ok(pinned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{condensation, DdgBuilder, OpClass};
    use vliw_machine::{FrequencyMenu, MachineDesign, Time};

    fn hetero_config() -> ClockedConfig {
        let design = MachineDesign::paper_machine(1);
        ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(2.0))
    }

    #[test]
    fn light_recurrence_lands_in_slow_cluster() {
        // Accumulator with min II 3; at IT = 6 ns the slow clusters (2 ns)
        // have II 3 ⇒ it fits there, and slow is preferred.
        let config = hetero_config();
        let clocks =
            LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(6.0))
                .unwrap();
        let mut b = DdgBuilder::new("acc");
        let a = b.op("acc", OpClass::FpArith);
        b.flow_carried(a, a, 1);
        let ddg = b.build().unwrap();
        let recs = condensation(&ddg).recurrences(&ddg);
        let pinned = pin_recurrences(&ddg, &recs, &config, &clocks).unwrap();
        let home = pinned[0].unwrap();
        assert_eq!(config.cluster_cycle(home), Time::from_ns(2.0));
    }

    #[test]
    fn tight_recurrence_requires_the_fast_cluster() {
        // min II 5 at IT = 5 ns: fast cluster (1 ns) has II 5, slow (2 ns)
        // II 2 ⇒ only the fast cluster admits it.
        let config = hetero_config();
        let clocks =
            LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(5.0))
                .unwrap();
        let mut b = DdgBuilder::new("tight");
        let a = b.op("x", OpClass::FpArith);
        let c = b.op("y", OpClass::IntArith);
        b.flow(a, c); // 3 cycles
        b.dep_full(c, a, 2, 1, vliw_ir::DepKind::Flow); // +2 ⇒ min II 5
        let ddg = b.build().unwrap();
        let recs = condensation(&ddg).recurrences(&ddg);
        assert_eq!(recs[0].min_ii(), 5);
        let pinned = pin_recurrences(&ddg, &recs, &config, &clocks).unwrap();
        assert_eq!(pinned[0].unwrap(), ClusterId(0));
        assert_eq!(pinned[1].unwrap(), ClusterId(0));
    }

    #[test]
    fn impossible_recurrence_reports_error() {
        let config = hetero_config();
        let clocks =
            LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(3.0))
                .unwrap();
        // min II 6 > fast cluster's II 3.
        let mut b = DdgBuilder::new("too-tight");
        let a = b.op("m", OpClass::FpMul);
        b.flow_carried(a, a, 1);
        let ddg = b.build().unwrap();
        let recs = condensation(&ddg).recurrences(&ddg);
        let err = pin_recurrences(&ddg, &recs, &config, &clocks).unwrap_err();
        assert!(matches!(
            err,
            SchedError::RecurrenceDoesNotFit { min_ii: 6, .. }
        ));
    }

    #[test]
    fn capacity_spreads_recurrences_across_slow_clusters() {
        // Three 2-op int recurrences, II_slow = 2, 1 int FU ⇒ each slow
        // cluster holds exactly one recurrence (2 ops fill 2 slots).
        let config = hetero_config();
        let clocks =
            LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(4.0))
                .unwrap();
        let mut b = DdgBuilder::new("three-recs");
        for i in 0..3 {
            let x = b.op(format!("x{i}"), OpClass::IntArith);
            let y = b.op(format!("y{i}"), OpClass::IntArith);
            b.flow(x, y);
            b.flow_carried(y, x, 1);
        }
        let ddg = b.build().unwrap();
        let recs = condensation(&ddg).recurrences(&ddg);
        assert_eq!(recs.len(), 3);
        let pinned = pin_recurrences(&ddg, &recs, &config, &clocks).unwrap();
        // Each recurrence stays whole…
        for i in 0..3 {
            assert_eq!(pinned[2 * i], pinned[2 * i + 1]);
        }
        // …and the three land in three different clusters (capacity).
        let homes: std::collections::HashSet<_> = (0..3).map(|i| pinned[2 * i].unwrap()).collect();
        assert_eq!(homes.len(), 3);
    }

    #[test]
    fn acyclic_graph_pins_nothing() {
        let config = hetero_config();
        let clocks =
            LoopClocks::select(&config, &FrequencyMenu::unrestricted(), Time::from_ns(2.0))
                .unwrap();
        let mut b = DdgBuilder::new("dag");
        let a = b.op("a", OpClass::IntArith);
        let c = b.op("b", OpClass::IntArith);
        b.flow(a, c);
        let ddg = b.build().unwrap();
        let recs = condensation(&ddg).recurrences(&ddg);
        let pinned = pin_recurrences(&ddg, &recs, &config, &clocks).unwrap();
        assert!(pinned.iter().all(Option::is_none));
    }
}
