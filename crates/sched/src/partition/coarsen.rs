//! Coarsening: heavy-edge matching over macronodes (§4.1's multilevel step
//! one) and the greedy seed assignment of the coarsest graph.

use vliw_ir::{Ddg, DepKind, FuKind, OpId};
use vliw_machine::{ClockedConfig, ClusterId};

use super::pin::Pinned;
use crate::timing::LoopClocks;

/// The multilevel hierarchy produced by coarsening.
///
/// Level 0 is the finest granularity: one *base group* per free operation,
/// plus one per pinned recurrence (recurrences are never split during
/// coarsening, §4.1.1). `merges[k]` maps level-`k` node indices to
/// level-`k+1` indices; `seed` assigns every coarsest-level node to a
/// cluster.
#[derive(Debug, Clone)]
pub(crate) struct Hierarchy {
    pub base_groups: Vec<Vec<OpId>>,
    pub base_pin: Vec<Option<ClusterId>>,
    pub merges: Vec<Vec<usize>>,
    pub seed: Vec<ClusterId>,
}

impl Hierarchy {
    /// Number of levels (≥ 1; level 0 is the base).
    pub(crate) fn num_levels(&self) -> usize {
        self.merges.len() + 1
    }

    /// The composition of base groups at `level`: for each level-`level`
    /// node, the list of base-group indices it contains.
    pub(crate) fn base_groups_at(&self, level: usize) -> Vec<Vec<usize>> {
        let mut groups: Vec<Vec<usize>> = (0..self.base_groups.len()).map(|i| vec![i]).collect();
        for merge in self.merges.iter().take(level) {
            let parents = merge.iter().copied().max().map_or(0, |m| m + 1);
            let mut next: Vec<Vec<usize>> = vec![Vec::new(); parents];
            for (child, &parent) in merge.iter().enumerate() {
                next[parent].extend(groups[child].iter().copied());
            }
            groups = next;
        }
        groups
    }
}

/// Builds the hierarchy: base groups, matching-based merge levels, and the
/// coarsest-level seed assignment.
pub(crate) fn coarsen(
    ddg: &Ddg,
    pinned: &Pinned,
    config: &ClockedConfig,
    clocks: &LoopClocks,
) -> Hierarchy {
    // --- Base groups: one per pinned recurrence home-set, one per free op.
    let mut base_groups: Vec<Vec<OpId>> = Vec::new();
    let mut base_pin: Vec<Option<ClusterId>> = Vec::new();
    let mut group_of_op: Vec<usize> = vec![usize::MAX; ddg.num_ops()];
    // Pinned ops: group by (pin target, SCC) — approximated by flood over
    // pinned neighbours sharing a target. Recurrences were pinned whole, so
    // grouping by connected pinned component per cluster is exact enough:
    // we simply group all pinned ops per *recurrence* using the fact that
    // pin assigns per recurrence; reconstruct via the DDG's cached SCCs.
    let sccs = ddg.sccs();
    let mut scc_group: Vec<Option<usize>> = vec![None; sccs.len()];
    for op in ddg.op_ids() {
        if let Some(home) = pinned[op.index()] {
            let scc = sccs.component_of(op);
            let g = match scc_group[scc.index()] {
                Some(g) => g,
                None => {
                    base_groups.push(Vec::new());
                    base_pin.push(Some(home));
                    let g = base_groups.len() - 1;
                    scc_group[scc.index()] = Some(g);
                    g
                }
            };
            base_groups[g].push(op);
            group_of_op[op.index()] = g;
        }
    }
    for op in ddg.op_ids() {
        if pinned[op.index()].is_none() {
            base_groups.push(vec![op]);
            base_pin.push(None);
            group_of_op[op.index()] = base_groups.len() - 1;
        }
    }

    // --- Matching levels.
    let num_clusters = usize::from(config.design().num_clusters);
    let mut merges: Vec<Vec<usize>> = Vec::new();
    // current[i] = set of base groups; cur_pin[i] = pin state.
    let mut current: Vec<Vec<usize>> = (0..base_groups.len()).map(|i| vec![i]).collect();
    let mut cur_pin: Vec<Option<ClusterId>> = base_pin.clone();

    loop {
        let free = cur_pin.iter().filter(|p| p.is_none()).count();
        if free <= num_clusters {
            break;
        }
        // Edge weights between current nodes (flow edges only: those are
        // the communications a split would cost).
        let mut node_of_op: Vec<usize> = vec![usize::MAX; ddg.num_ops()];
        for (i, bgs) in current.iter().enumerate() {
            for &bg in bgs {
                for &op in &base_groups[bg] {
                    node_of_op[op.index()] = i;
                }
            }
        }
        // Edge weights, accumulated without hashing: collect the
        // normalised endpoint pairs, sort, and run-length count.
        let mut pair_list: Vec<(usize, usize)> = Vec::new();
        for e in ddg.edges() {
            if e.kind() != DepKind::Flow {
                continue;
            }
            let (a, b) = (node_of_op[e.src().index()], node_of_op[e.dst().index()]);
            if a == b {
                continue;
            }
            pair_list.push((a.min(b), a.max(b)));
        }
        pair_list.sort_unstable();
        let mut pairs: Vec<((usize, usize), u64)> = Vec::new();
        for &p in &pair_list {
            match pairs.last_mut() {
                Some((last, w)) if *last == p => *w += 1,
                _ => pairs.push((p, 1)),
            }
        }
        // Heaviest edges first; deterministic tie-break by indices.
        pairs.sort_by_key(|&((a, b), w)| (std::cmp::Reverse(w), a, b));

        let mut matched = vec![false; current.len()];
        let mut merge_map: Vec<usize> = vec![usize::MAX; current.len()];
        let mut next_index = 0;
        let mut merged_any = false;
        for ((a, b), _) in pairs {
            if matched[a] || matched[b] || cur_pin[a].is_some() || cur_pin[b].is_some() {
                continue;
            }
            matched[a] = true;
            matched[b] = true;
            merge_map[a] = next_index;
            merge_map[b] = next_index;
            next_index += 1;
            merged_any = true;
            if current.len() - next_index <= num_clusters {
                break;
            }
        }
        if !merged_any {
            break;
        }
        for slot in &mut merge_map {
            if *slot == usize::MAX {
                *slot = next_index;
                next_index += 1;
            }
        }
        let mut next: Vec<Vec<usize>> = vec![Vec::new(); next_index];
        let mut next_pin: Vec<Option<ClusterId>> = vec![None; next_index];
        for (i, &p) in merge_map.iter().enumerate() {
            next[p].extend(current[i].iter().copied());
            if cur_pin[i].is_some() {
                next_pin[p] = cur_pin[i];
            }
        }
        merges.push(merge_map);
        current = next;
        cur_pin = next_pin;
    }

    // --- Seed assignment at the coarsest level.
    let seed = seed_assignment(ddg, &base_groups, &current, &cur_pin, config, clocks);

    Hierarchy {
        base_groups,
        base_pin,
        merges,
        seed,
    }
}

/// Greedy load-balanced assignment of the coarsest macronodes.
fn seed_assignment(
    ddg: &Ddg,
    base_groups: &[Vec<OpId>],
    coarsest: &[Vec<usize>],
    pins: &[Option<ClusterId>],
    config: &ClockedConfig,
    clocks: &LoopClocks,
) -> Vec<ClusterId> {
    let design = config.design();
    let clusters: Vec<ClusterId> = design.clusters().collect();
    // load[c][kind-index] = ops of that kind assigned so far.
    let kind_index = |k: FuKind| match k {
        FuKind::Int => 0usize,
        FuKind::Fp => 1,
        FuKind::Mem => 2,
        FuKind::Bus => unreachable!("ops never occupy the bus directly"),
    };
    let mut load = vec![[0u64; 3]; clusters.len()];
    let node_counts: Vec<[u64; 3]> = coarsest
        .iter()
        .map(|bgs| {
            let mut c = [0u64; 3];
            for &bg in bgs {
                for &op in &base_groups[bg] {
                    c[kind_index(ddg.op(op).fu_kind())] += 1;
                }
            }
            c
        })
        .collect();
    let relative_load = |load: &[u64; 3], c: ClusterId| -> f64 {
        let ii = clocks.cluster_ii(c) as f64;
        let mut worst = 0f64;
        for (i, kind) in [FuKind::Int, FuKind::Fp, FuKind::Mem]
            .into_iter()
            .enumerate()
        {
            let cap = f64::from(design.cluster.fu_count(kind)) * ii;
            let l = if cap > 0.0 {
                load[i] as f64 / cap
            } else if load[i] > 0 {
                f64::INFINITY
            } else {
                0.0
            };
            worst = worst.max(l);
        }
        worst
    };

    let mut assignment = vec![ClusterId(0); coarsest.len()];
    // Pinned first (fixed), then free nodes heaviest-first.
    let mut order: Vec<usize> = (0..coarsest.len()).collect();
    order.sort_by_key(|&i| {
        (
            pins[i].is_none(),
            std::cmp::Reverse(node_counts[i].iter().sum::<u64>()),
            i,
        )
    });
    for i in order {
        let target = match pins[i] {
            Some(c) => c,
            None => clusters
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let mut la = load[a.index()];
                    let mut lb = load[b.index()];
                    for k in 0..3 {
                        la[k] += node_counts[i][k];
                        lb[k] += node_counts[i][k];
                    }
                    relative_load(&la, a)
                        .partial_cmp(&relative_load(&lb, b))
                        .expect("loads are not NaN")
                        .then(a.cmp(&b))
                })
                .expect("at least one cluster"),
        };
        for k in 0..3 {
            load[target.index()][k] += node_counts[i][k];
        }
        assignment[i] = target;
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_ir::{DdgBuilder, OpClass};
    use vliw_machine::{FrequencyMenu, MachineDesign, Time};

    fn setup(it_ns: f64) -> (ClockedConfig, LoopClocks) {
        let config = ClockedConfig::reference(MachineDesign::paper_machine(1));
        let clocks = LoopClocks::select(
            &config,
            &FrequencyMenu::unrestricted(),
            Time::from_ns(it_ns),
        )
        .unwrap();
        (config, clocks)
    }

    #[test]
    fn coarsens_chain_to_cluster_count() {
        let mut b = DdgBuilder::new("chain");
        let ids: Vec<_> = (0..16)
            .map(|i| b.op(format!("n{i}"), OpClass::IntArith))
            .collect();
        for w in ids.windows(2) {
            b.flow(w[0], w[1]);
        }
        let ddg = b.build().unwrap();
        let (config, clocks) = setup(4.0);
        let h = coarsen(&ddg, &vec![None; 16], &config, &clocks);
        assert!(h.num_levels() > 1, "16 ops must coarsen at least once");
        let coarsest = h.base_groups_at(h.num_levels() - 1);
        assert!(coarsest.len() <= 16);
        assert!(coarsest.len() >= 4);
        assert_eq!(h.seed.len(), coarsest.len());
        // Every base group appears exactly once at every level.
        for level in 0..h.num_levels() {
            let groups = h.base_groups_at(level);
            let mut seen: Vec<usize> = groups.into_iter().flatten().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..16).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pinned_recurrence_stays_whole_and_fixed() {
        let mut b = DdgBuilder::new("rec");
        let x = b.op("x", OpClass::IntArith);
        let y = b.op("y", OpClass::IntArith);
        b.flow(x, y);
        b.flow_carried(y, x, 1);
        for i in 0..6 {
            b.op(format!("free{i}"), OpClass::IntArith);
        }
        let ddg = b.build().unwrap();
        let (config, clocks) = setup(4.0);
        let mut pinned = vec![None; 8];
        pinned[0] = Some(ClusterId(2));
        pinned[1] = Some(ClusterId(2));
        let h = coarsen(&ddg, &pinned, &config, &clocks);
        // The two pinned ops share one base group pinned to C2.
        let pinned_groups: Vec<usize> = (0..h.base_groups.len())
            .filter(|&g| h.base_pin[g].is_some())
            .collect();
        assert_eq!(pinned_groups.len(), 1);
        assert_eq!(h.base_groups[pinned_groups[0]].len(), 2);
        assert_eq!(h.base_pin[pinned_groups[0]], Some(ClusterId(2)));
        // Seed respects the pin.
        let coarsest = h.base_groups_at(h.num_levels() - 1);
        for (node, bgs) in coarsest.iter().enumerate() {
            if bgs.contains(&pinned_groups[0]) {
                assert_eq!(h.seed[node], ClusterId(2));
            }
        }
    }

    #[test]
    fn seed_balances_independent_ops() {
        // 8 independent int ops on 4 clusters with II 2 ⇒ 2 per cluster.
        let mut b = DdgBuilder::new("par");
        for i in 0..8 {
            b.op(format!("n{i}"), OpClass::IntArith);
        }
        let ddg = b.build().unwrap();
        let (config, clocks) = setup(2.0);
        let h = coarsen(&ddg, &vec![None; 8], &config, &clocks);
        let coarsest = h.base_groups_at(h.num_levels() - 1);
        let mut per_cluster = [0usize; 4];
        for (node, bgs) in coarsest.iter().enumerate() {
            per_cluster[h.seed[node].index()] += bgs.len();
        }
        assert_eq!(per_cluster, [2, 2, 2, 2]);
    }

    /// Coarsening only *groups* operations — at every level of the
    /// hierarchy the macronodes cover each base group exactly once, so the
    /// per-FU-kind op counts (the node weights the seed balancer uses) and
    /// the total iteration energy are preserved verbatim.
    #[test]
    fn coarsening_preserves_node_weights() {
        let mut b = DdgBuilder::new("weights");
        let classes = [
            OpClass::IntArith,
            OpClass::FpArith,
            OpClass::FpMemory,
            OpClass::FpMul,
            OpClass::FpDiv,
            OpClass::IntArith,
            OpClass::FpMemory,
            OpClass::FpArith,
            OpClass::IntArith,
            OpClass::FpArith,
        ];
        let ids: Vec<_> = classes
            .iter()
            .enumerate()
            .map(|(i, &c)| b.op(format!("w{i}"), c))
            .collect();
        // A couple of flow edges so matching has something to chew on,
        // plus one pinned recurrence.
        b.flow(ids[0], ids[1]);
        b.flow(ids[1], ids[2]);
        b.flow(ids[3], ids[4]);
        b.flow_carried(ids[4], ids[3], 1);
        let ddg = b.build().unwrap();
        let (config, clocks) = setup(8.0);
        let mut pinned = vec![None; ddg.num_ops()];
        pinned[3] = Some(ClusterId(1));
        pinned[4] = Some(ClusterId(1));
        let h = coarsen(&ddg, &pinned, &config, &clocks);
        assert!(h.num_levels() > 1, "10 ops must coarsen at least once");

        let kind_index = |k: FuKind| match k {
            FuKind::Int => 0usize,
            FuKind::Fp => 1,
            FuKind::Mem => 2,
            FuKind::Bus => unreachable!("ops never occupy the bus"),
        };
        let mut base_counts = [0u64; 3];
        let mut base_energy = 0.0f64;
        for op in ddg.op_ids() {
            base_counts[kind_index(ddg.op(op).fu_kind())] += 1;
            base_energy += ddg.op(op).class().relative_energy();
        }

        for level in 0..h.num_levels() {
            let groups = h.base_groups_at(level);
            let mut counts = [0u64; 3];
            let mut energy = 0.0f64;
            let mut covered = vec![0u32; h.base_groups.len()];
            for bgs in &groups {
                for &bg in bgs {
                    covered[bg] += 1;
                    for &op in &h.base_groups[bg] {
                        counts[kind_index(ddg.op(op).fu_kind())] += 1;
                        energy += ddg.op(op).class().relative_energy();
                    }
                }
            }
            assert!(
                covered.iter().all(|&c| c == 1),
                "level {level}: every base group appears exactly once"
            );
            assert_eq!(
                counts, base_counts,
                "level {level}: per-kind op counts preserved"
            );
            assert!(
                (energy - base_energy).abs() < 1e-9,
                "level {level}: iteration energy preserved ({energy} vs {base_energy})"
            );
        }
    }

    #[test]
    fn heavy_edges_merge_first() {
        // Two 2-op blobs connected internally by 3 edges, to each other by 1.
        let mut b = DdgBuilder::new("blobs");
        let a0 = b.op("a0", OpClass::IntArith);
        let a1 = b.op("a1", OpClass::IntArith);
        let c0 = b.op("b0", OpClass::IntArith);
        let c1 = b.op("b1", OpClass::IntArith);
        for _ in 0..3 {
            b.flow(a0, a1);
            b.flow(c0, c1);
        }
        b.flow(a1, c0);
        // Plus free ops so coarsening has room to run (free > 4 clusters).
        for i in 0..4 {
            b.op(format!("f{i}"), OpClass::IntArith);
        }
        let ddg = b.build().unwrap();
        let (config, clocks) = setup(4.0);
        let h = coarsen(&ddg, &vec![None; 8], &config, &clocks);
        // After the first matching level, a0+a1 are together and b0+b1 are
        // together.
        let level1 = h.base_groups_at(1);
        let find = |op: usize| {
            level1.iter().position(|g| {
                g.iter()
                    .any(|&bg| h.base_groups[bg].contains(&vliw_ir::OpId(op as u32)))
            })
        };
        assert_eq!(find(0), find(1));
        assert_eq!(find(2), find(3));
        assert_ne!(find(0), find(2));
    }
}
