//! Modulo reservation tables.
//!
//! A modulo-scheduled resource is busy at local cycle `s` in *every*
//! iteration, so it occupies row `s mod II` of a reservation table with `II`
//! rows. Each cluster owns one table per functional-unit kind; the
//! interconnect owns one table for its buses.

use vliw_ir::FuKind;
use vliw_machine::ClusterDesign;

/// Per-cluster modulo reservation table (rows × FU kinds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMrt {
    ii: u64,
    design: ClusterDesign,
    int_rows: Vec<u32>,
    fp_rows: Vec<u32>,
    mem_rows: Vec<u32>,
}

impl ClusterMrt {
    /// Creates an empty table for a cluster running at initiation interval
    /// `ii`.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    #[must_use]
    pub fn new(design: ClusterDesign, ii: u64) -> Self {
        assert!(ii > 0, "initiation interval must be positive");
        let n = usize::try_from(ii).expect("II fits in memory");
        ClusterMrt {
            ii,
            design,
            int_rows: vec![0; n],
            fp_rows: vec![0; n],
            mem_rows: vec![0; n],
        }
    }

    /// Re-initialises the table in place for a (possibly different) design
    /// and initiation interval, clearing every reservation.
    ///
    /// Row storage is retained, so resetting to an `II` the table has seen
    /// before performs no heap allocation — the scheduling workspace resets
    /// its tables once per IMS run instead of constructing fresh ones.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn reset(&mut self, design: ClusterDesign, ii: u64) {
        assert!(ii > 0, "initiation interval must be positive");
        let n = usize::try_from(ii).expect("II fits in memory");
        self.ii = ii;
        self.design = design;
        for rows in [&mut self.int_rows, &mut self.fp_rows, &mut self.mem_rows] {
            rows.clear();
            rows.resize(n, 0);
        }
    }

    /// The table's initiation interval.
    #[must_use]
    pub fn ii(&self) -> u64 {
        self.ii
    }

    fn rows(&self, kind: FuKind) -> &Vec<u32> {
        match kind {
            FuKind::Int => &self.int_rows,
            FuKind::Fp => &self.fp_rows,
            FuKind::Mem => &self.mem_rows,
            FuKind::Bus => panic!("buses are not cluster resources"),
        }
    }

    fn rows_mut(&mut self, kind: FuKind) -> &mut Vec<u32> {
        match kind {
            FuKind::Int => &mut self.int_rows,
            FuKind::Fp => &mut self.fp_rows,
            FuKind::Mem => &mut self.mem_rows,
            FuKind::Bus => panic!("buses are not cluster resources"),
        }
    }

    /// Whether a unit of `kind` is free at local cycle `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`FuKind::Bus`].
    #[must_use]
    pub fn is_free(&self, kind: FuKind, cycle: u64) -> bool {
        let row = (cycle % self.ii) as usize;
        self.rows(kind)[row] < self.design.fu_count(kind)
    }

    /// Reserves a unit of `kind` at local cycle `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if no unit is free at that row (callers check
    /// [`ClusterMrt::is_free`] first) or if `kind` is [`FuKind::Bus`].
    pub fn reserve(&mut self, kind: FuKind, cycle: u64) {
        assert!(
            self.is_free(kind, cycle),
            "reserving an occupied {kind} slot"
        );
        let ii = self.ii;
        self.rows_mut(kind)[(cycle % ii) as usize] += 1;
    }

    /// Releases a previously reserved unit.
    ///
    /// # Panics
    ///
    /// Panics if nothing was reserved at that row.
    pub fn release(&mut self, kind: FuKind, cycle: u64) {
        let ii = self.ii;
        let row = &mut self.rows_mut(kind)[(cycle % ii) as usize];
        assert!(*row > 0, "releasing an empty {kind} slot");
        *row -= 1;
    }

    /// Ops of `kind` that can still be placed (total free slot count).
    #[must_use]
    pub fn free_slots(&self, kind: FuKind) -> u64 {
        let cap = u64::from(self.design.fu_count(kind)) * self.ii;
        let used: u64 = self.rows(kind).iter().map(|&u| u64::from(u)).sum();
        cap - used
    }
}

/// The interconnect's modulo reservation table: `buses` transfers per row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusMrt {
    ii: u64,
    buses: u32,
    rows: Vec<u32>,
}

impl BusMrt {
    /// Creates an empty bus table.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0` or `buses == 0`.
    #[must_use]
    pub fn new(buses: u32, ii: u64) -> Self {
        assert!(ii > 0, "initiation interval must be positive");
        assert!(buses > 0, "at least one bus");
        BusMrt {
            ii,
            buses,
            rows: vec![0; usize::try_from(ii).expect("II fits in memory")],
        }
    }

    /// Re-initialises the table in place, clearing every reservation (see
    /// [`ClusterMrt::reset`]; row storage is likewise retained).
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0` or `buses == 0`.
    pub fn reset(&mut self, buses: u32, ii: u64) {
        assert!(ii > 0, "initiation interval must be positive");
        assert!(buses > 0, "at least one bus");
        self.ii = ii;
        self.buses = buses;
        self.rows.clear();
        self.rows
            .resize(usize::try_from(ii).expect("II fits in memory"), 0);
    }

    /// The table's initiation interval.
    #[must_use]
    pub fn ii(&self) -> u64 {
        self.ii
    }

    /// Whether a bus is free at ICN-local cycle `cycle`.
    #[must_use]
    pub fn is_free(&self, cycle: u64) -> bool {
        self.rows[(cycle % self.ii) as usize] < self.buses
    }

    /// Reserves a bus at ICN-local cycle `cycle`, returning the bus index.
    ///
    /// # Panics
    ///
    /// Panics if all buses are busy at that row.
    pub fn reserve(&mut self, cycle: u64) -> u32 {
        assert!(self.is_free(cycle), "reserving an occupied bus slot");
        let row = &mut self.rows[(cycle % self.ii) as usize];
        let bus = *row;
        *row += 1;
        bus
    }

    /// Releases a previously reserved bus slot.
    ///
    /// # Panics
    ///
    /// Panics if nothing was reserved at that row.
    pub fn release(&mut self, cycle: u64) {
        let row = &mut self.rows[(cycle % self.ii) as usize];
        assert!(*row > 0, "releasing an empty bus slot");
        *row -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_conflicts() {
        let mut mrt = ClusterMrt::new(ClusterDesign::PAPER, 3);
        assert!(mrt.is_free(FuKind::Int, 1));
        mrt.reserve(FuKind::Int, 1);
        // Cycle 4 maps to the same row (4 mod 3 = 1).
        assert!(!mrt.is_free(FuKind::Int, 4));
        // A different kind is unaffected.
        assert!(mrt.is_free(FuKind::Fp, 4));
        mrt.release(FuKind::Int, 4);
        assert!(mrt.is_free(FuKind::Int, 1));
    }

    #[test]
    fn capacity_per_row_follows_design() {
        let design = ClusterDesign {
            int_fus: 2,
            fp_fus: 1,
            mem_ports: 1,
            registers: 16,
        };
        let mut mrt = ClusterMrt::new(design, 2);
        mrt.reserve(FuKind::Int, 0);
        assert!(mrt.is_free(FuKind::Int, 0), "two int FUs");
        mrt.reserve(FuKind::Int, 0);
        assert!(!mrt.is_free(FuKind::Int, 0));
        assert_eq!(mrt.free_slots(FuKind::Int), 2); // row 1 still empty
    }

    #[test]
    #[should_panic(expected = "occupied")]
    fn double_reserve_panics() {
        let mut mrt = ClusterMrt::new(ClusterDesign::PAPER, 2);
        mrt.reserve(FuKind::Mem, 0);
        mrt.reserve(FuKind::Mem, 2);
    }

    #[test]
    fn bus_mrt_round_trip() {
        let mut bus = BusMrt::new(2, 4);
        assert_eq!(bus.reserve(1), 0);
        assert_eq!(bus.reserve(5), 1); // same row, second bus
        assert!(!bus.is_free(9));
        bus.release(1);
        assert!(bus.is_free(9));
    }

    #[test]
    #[should_panic(expected = "buses are not cluster resources")]
    fn bus_kind_in_cluster_mrt_panics() {
        let mrt = ClusterMrt::new(ClusterDesign::PAPER, 2);
        let _ = mrt.is_free(FuKind::Bus, 0);
    }
}
