//! Modulo reservation tables, backed by u64-word bitsets.
//!
//! A modulo-scheduled resource is busy at local cycle `s` in *every*
//! iteration, so it occupies row `s mod II` of a reservation table with `II`
//! rows. Each cluster owns one table per functional-unit kind; the
//! interconnect owns one table for its buses.
//!
//! # Bitset layout
//!
//! Rows are bits. For a kind with `U` units at initiation interval `II`,
//! the table keeps `U` *unit row-sets* of `⌈II/64⌉` words each (bit `r` of
//! unit `u`'s set = unit `u` busy at row `r`) plus one *row-full summary*
//! word-set per kind (bit `r` set ⇔ **every** unit of the kind is busy at
//! row `r`):
//!
//! ```text
//! rows (II = 6, 2 int FUs)      0 1 2 3 4 5
//! unit 0 row-set                1 0 1 0 0 0   words[base + 0*wpr]
//! unit 1 row-set                1 0 0 0 1 0   words[base + 1*wpr]
//! row-full summary (Int)        1 0 0 0 0 0   full[kind*wpr]
//! ```
//!
//! With that layout the hot operations are single word ops:
//!
//! * [`ClusterMrt::is_free`] — one summary bit test;
//! * [`ClusterMrt::first_free_cycle`] — `trailing_zeros` over the negated
//!   summary words, scanned circularly from `start % II`;
//! * [`ClusterMrt::free_slots`] — a counter maintained by
//!   reserve/release, not an `O(II)` re-sum.
//!
//! The pre-bitset count-per-row implementation is retained as
//! [`ReferenceClusterMrt`] / [`ReferenceBusMrt`]: the differential-testing
//! oracle the proptest suite pins the bitset tables against.

use vliw_ir::FuKind;
use vliw_machine::ClusterDesign;

/// Dense slot index of a cluster FU kind (`Int`, `Fp`, `Mem`).
///
/// # Panics
///
/// Panics if `kind` is [`FuKind::Bus`] — bus transfers are interconnect
/// resources and must be reserved on a [`BusMrt`].
#[inline]
pub(crate) fn kind_slot(kind: FuKind) -> usize {
    match kind {
        FuKind::Int => 0,
        FuKind::Fp => 1,
        FuKind::Mem => 2,
        FuKind::Bus => bus_misuse(),
    }
}

/// Diagnosable rejection of [`FuKind::Bus`] in a cluster table: a cold,
/// never-inlined panic so the misuse (a copy node routed to a cluster
/// reservation table) is visible by name in any backtrace.
#[cold]
#[inline(never)]
fn bus_misuse() -> ! {
    panic!(
        "buses are not cluster resources: FuKind::Bus reached a ClusterMrt. \
         Bus transfers belong to the interconnect's BusMrt; a copy node was \
         routed to a cluster reservation table (scheduler bug)."
    );
}

const WORD_BITS: usize = 64;

/// Words needed for one row-set of `ii` rows.
#[inline]
fn words_per_rowset(ii: u64) -> usize {
    let rows = usize::try_from(ii).expect("II fits in memory");
    rows.div_ceil(WORD_BITS)
}

/// Mask of the row bits that exist in word `w` of an `ii`-row set.
#[inline]
fn valid_mask(ii: u64, w: usize) -> u64 {
    let rows = ii as usize;
    if (w + 1) * WORD_BITS <= rows {
        !0
    } else {
        (1u64 << (rows - w * WORD_BITS)) - 1
    }
}

/// First *free* row (zero bit) of `full`, scanning circularly from `row0`;
/// `None` when every row is full.
fn first_zero_row(full: &[u64], ii: u64, row0: usize) -> Option<usize> {
    let wpr = full.len();
    let w0 = row0 / WORD_BITS;
    // Segment [row0, ii): mask off bits below row0 in the first word.
    let m = !full[w0] & valid_mask(ii, w0) & (!0u64 << (row0 % WORD_BITS));
    if m != 0 {
        return Some(w0 * WORD_BITS + m.trailing_zeros() as usize);
    }
    for (w, &word) in full.iter().enumerate().skip(w0 + 1) {
        let m = !word & valid_mask(ii, w);
        if m != 0 {
            return Some(w * WORD_BITS + m.trailing_zeros() as usize);
        }
    }
    // Wrapped segment [0, row0).
    for (w, &word) in full.iter().enumerate().take(w0 + 1) {
        let mut m = !word & valid_mask(ii, w);
        if w == w0 {
            m &= (1u64 << (row0 % WORD_BITS)) - 1;
        }
        if m != 0 {
            return Some(w * WORD_BITS + m.trailing_zeros() as usize);
        }
    }
    let _ = wpr;
    None
}

/// Converts a free row found by [`first_zero_row`] into the first cycle
/// `>= start` landing on it.
#[inline]
fn row_to_cycle(row: usize, row0: usize, ii: u64, start: u64) -> u64 {
    let offset = if row >= row0 {
        (row - row0) as u64
    } else {
        ii - row0 as u64 + row as u64
    };
    start + offset
}

/// Per-cluster modulo reservation table (unit row-sets × FU kinds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMrt {
    ii: u64,
    design: ClusterDesign,
    /// Words per row-set (`⌈II/64⌉`).
    wpr: usize,
    /// Unit row-sets, kind-major then unit-major.
    words: Vec<u64>,
    /// Start of each kind's unit row-sets in `words`.
    kind_base: [usize; 3],
    /// Row-full summary, one row-set per kind.
    full: Vec<u64>,
    /// Maintained free-slot counters per kind.
    free: [u64; 3],
}

impl ClusterMrt {
    /// Creates an empty table for a cluster running at initiation interval
    /// `ii`.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    #[must_use]
    pub fn new(design: ClusterDesign, ii: u64) -> Self {
        let mut mrt = ClusterMrt {
            ii: 1,
            design,
            wpr: 0,
            words: Vec::new(),
            kind_base: [0; 3],
            full: Vec::new(),
            free: [0; 3],
        };
        mrt.reset(design, ii);
        mrt
    }

    /// Re-initialises the table in place for a (possibly different) design
    /// and initiation interval, clearing every reservation.
    ///
    /// Word storage is retained, so resetting to an `II` the table has seen
    /// before performs no heap allocation — the scheduling workspace resets
    /// its tables once per IMS run instead of constructing fresh ones.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn reset(&mut self, design: ClusterDesign, ii: u64) {
        assert!(ii > 0, "initiation interval must be positive");
        self.ii = ii;
        self.design = design;
        self.wpr = words_per_rowset(ii);
        let mut base = 0usize;
        for (k, kind) in [FuKind::Int, FuKind::Fp, FuKind::Mem]
            .into_iter()
            .enumerate()
        {
            self.kind_base[k] = base;
            let units = usize::try_from(design.fu_count(kind)).expect("fu count fits");
            base += units * self.wpr;
            self.free[k] = u64::from(design.fu_count(kind)) * ii;
        }
        self.words.clear();
        self.words.resize(base, 0);
        self.full.clear();
        self.full.resize(3 * self.wpr, 0);
    }

    /// The table's initiation interval.
    #[must_use]
    pub fn ii(&self) -> u64 {
        self.ii
    }

    #[inline]
    fn full_words(&self, k: usize) -> &[u64] {
        &self.full[k * self.wpr..(k + 1) * self.wpr]
    }

    /// Whether a unit of `kind` is free at local cycle `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`FuKind::Bus`].
    #[must_use]
    pub fn is_free(&self, kind: FuKind, cycle: u64) -> bool {
        let k = kind_slot(kind);
        let row = (cycle % self.ii) as usize;
        self.full[k * self.wpr + row / WORD_BITS] & (1u64 << (row % WORD_BITS)) == 0
    }

    /// The first cycle `c >= start` with a free unit of `kind`, or `None`
    /// when every modulo row of the kind is full. Since rows repeat with
    /// period `II`, the search covers exactly the window
    /// `start..start + II` — a `trailing_zeros` scan over the negated
    /// row-full summary, not a per-cycle probe loop.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`FuKind::Bus`].
    #[must_use]
    pub fn first_free_cycle(&self, kind: FuKind, start: u64) -> Option<u64> {
        let k = kind_slot(kind);
        let row0 = (start % self.ii) as usize;
        first_zero_row(self.full_words(k), self.ii, row0)
            .map(|row| row_to_cycle(row, row0, self.ii, start))
    }

    /// Reserves a unit of `kind` at local cycle `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if no unit is free at that row (callers check
    /// [`ClusterMrt::is_free`] first) or if `kind` is [`FuKind::Bus`].
    pub fn reserve(&mut self, kind: FuKind, cycle: u64) {
        let k = kind_slot(kind);
        let row = (cycle % self.ii) as usize;
        let (w, bit) = (row / WORD_BITS, 1u64 << (row % WORD_BITS));
        let units = usize::try_from(self.design.fu_count(kind)).expect("fu count fits");
        let base = self.kind_base[k];
        let unit = (0..units)
            .find(|u| self.words[base + u * self.wpr + w] & bit == 0)
            .unwrap_or_else(|| panic!("reserving an occupied {kind} slot"));
        self.words[base + unit * self.wpr + w] |= bit;
        self.free[k] -= 1;
        if (0..units).all(|u| self.words[base + u * self.wpr + w] & bit != 0) {
            self.full[k * self.wpr + w] |= bit;
        }
    }

    /// Releases a previously reserved unit.
    ///
    /// # Panics
    ///
    /// Panics if nothing was reserved at that row, or if `kind` is
    /// [`FuKind::Bus`].
    pub fn release(&mut self, kind: FuKind, cycle: u64) {
        let k = kind_slot(kind);
        let row = (cycle % self.ii) as usize;
        let (w, bit) = (row / WORD_BITS, 1u64 << (row % WORD_BITS));
        let units = usize::try_from(self.design.fu_count(kind)).expect("fu count fits");
        let base = self.kind_base[k];
        let unit = (0..units)
            .find(|u| self.words[base + u * self.wpr + w] & bit != 0)
            .unwrap_or_else(|| panic!("releasing an empty {kind} slot"));
        self.words[base + unit * self.wpr + w] &= !bit;
        self.free[k] += 1;
        self.full[k * self.wpr + w] &= !bit;
    }

    /// Ops of `kind` that can still be placed (total free slot count) —
    /// a maintained counter, `O(1)`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`FuKind::Bus`].
    #[must_use]
    pub fn free_slots(&self, kind: FuKind) -> u64 {
        self.free[kind_slot(kind)]
    }
}

/// The interconnect's modulo reservation table: `buses` transfers per row,
/// bitset-backed like [`ClusterMrt`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusMrt {
    ii: u64,
    buses: u32,
    wpr: usize,
    /// Per-bus row-sets, bus-major.
    words: Vec<u64>,
    /// Row-full summary.
    full: Vec<u64>,
    /// Maintained free-slot counter.
    free: u64,
}

impl BusMrt {
    /// Creates an empty bus table.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0` or `buses == 0`.
    #[must_use]
    pub fn new(buses: u32, ii: u64) -> Self {
        let mut mrt = BusMrt {
            ii: 1,
            buses: 1,
            wpr: 0,
            words: Vec::new(),
            full: Vec::new(),
            free: 0,
        };
        mrt.reset(buses, ii);
        mrt
    }

    /// Re-initialises the table in place, clearing every reservation (see
    /// [`ClusterMrt::reset`]; word storage is likewise retained).
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0` or `buses == 0`.
    pub fn reset(&mut self, buses: u32, ii: u64) {
        assert!(ii > 0, "initiation interval must be positive");
        assert!(buses > 0, "at least one bus");
        self.ii = ii;
        self.buses = buses;
        self.wpr = words_per_rowset(ii);
        self.words.clear();
        self.words.resize(
            usize::try_from(buses).expect("bus count fits") * self.wpr,
            0,
        );
        self.full.clear();
        self.full.resize(self.wpr, 0);
        self.free = u64::from(buses) * ii;
    }

    /// The table's initiation interval.
    #[must_use]
    pub fn ii(&self) -> u64 {
        self.ii
    }

    /// Whether a bus is free at ICN-local cycle `cycle`.
    #[must_use]
    pub fn is_free(&self, cycle: u64) -> bool {
        let row = (cycle % self.ii) as usize;
        self.full[row / WORD_BITS] & (1u64 << (row % WORD_BITS)) == 0
    }

    /// The first cycle `c >= start` with a free bus, or `None` when every
    /// row is full (see [`ClusterMrt::first_free_cycle`]).
    #[must_use]
    pub fn first_free_cycle(&self, start: u64) -> Option<u64> {
        let row0 = (start % self.ii) as usize;
        first_zero_row(&self.full, self.ii, row0).map(|row| row_to_cycle(row, row0, self.ii, start))
    }

    /// Reserves a bus at ICN-local cycle `cycle`, returning the index of
    /// the lowest free bus at that row.
    ///
    /// # Panics
    ///
    /// Panics if all buses are busy at that row.
    pub fn reserve(&mut self, cycle: u64) -> u32 {
        let row = (cycle % self.ii) as usize;
        let (w, bit) = (row / WORD_BITS, 1u64 << (row % WORD_BITS));
        let buses = usize::try_from(self.buses).expect("bus count fits");
        let bus = (0..buses)
            .find(|b| self.words[b * self.wpr + w] & bit == 0)
            .expect("reserving an occupied bus slot");
        self.words[bus * self.wpr + w] |= bit;
        self.free -= 1;
        if (0..buses).all(|b| self.words[b * self.wpr + w] & bit != 0) {
            self.full[w] |= bit;
        }
        u32::try_from(bus).expect("bus index fits u32")
    }

    /// Releases a previously reserved bus slot.
    ///
    /// # Panics
    ///
    /// Panics if nothing was reserved at that row.
    pub fn release(&mut self, cycle: u64) {
        let row = (cycle % self.ii) as usize;
        let (w, bit) = (row / WORD_BITS, 1u64 << (row % WORD_BITS));
        let buses = usize::try_from(self.buses).expect("bus count fits");
        let bus = (0..buses)
            .find(|b| self.words[b * self.wpr + w] & bit != 0)
            .expect("releasing an empty bus slot");
        self.words[bus * self.wpr + w] &= !bit;
        self.free += 1;
        self.full[w] &= !bit;
    }

    /// Free bus-slot count — a maintained counter, `O(1)`.
    #[must_use]
    pub fn free_slots(&self) -> u64 {
        self.free
    }
}

// --------------------------------------------------------------------------
// Reference (count-per-row) implementations — the differential oracles.
// --------------------------------------------------------------------------

/// The pre-bitset count-per-row cluster table, retained **only** as the
/// differential-testing oracle for [`ClusterMrt`] (see the
/// `mrt_differential` proptest suite). Semantically identical, `O(II)`
/// `free_slots`, per-cycle window probing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferenceClusterMrt {
    ii: u64,
    design: ClusterDesign,
    rows: [Vec<u32>; 3],
}

impl ReferenceClusterMrt {
    /// Creates an empty reference table.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    #[must_use]
    pub fn new(design: ClusterDesign, ii: u64) -> Self {
        assert!(ii > 0, "initiation interval must be positive");
        let n = usize::try_from(ii).expect("II fits in memory");
        ReferenceClusterMrt {
            ii,
            design,
            rows: [vec![0; n], vec![0; n], vec![0; n]],
        }
    }

    /// Whether a unit of `kind` is free at local cycle `cycle`.
    #[must_use]
    pub fn is_free(&self, kind: FuKind, cycle: u64) -> bool {
        let row = (cycle % self.ii) as usize;
        self.rows[kind_slot(kind)][row] < self.design.fu_count(kind)
    }

    /// The first cycle `c >= start` with a free unit, by per-cycle probing.
    #[must_use]
    pub fn first_free_cycle(&self, kind: FuKind, start: u64) -> Option<u64> {
        (start..start + self.ii).find(|&c| self.is_free(kind, c))
    }

    /// Reserves a unit of `kind` at local cycle `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if no unit is free at that row.
    pub fn reserve(&mut self, kind: FuKind, cycle: u64) {
        assert!(
            self.is_free(kind, cycle),
            "reserving an occupied {kind} slot"
        );
        let ii = self.ii;
        self.rows[kind_slot(kind)][(cycle % ii) as usize] += 1;
    }

    /// Releases a previously reserved unit.
    ///
    /// # Panics
    ///
    /// Panics if nothing was reserved at that row.
    pub fn release(&mut self, kind: FuKind, cycle: u64) {
        let ii = self.ii;
        let row = &mut self.rows[kind_slot(kind)][(cycle % ii) as usize];
        assert!(*row > 0, "releasing an empty {kind} slot");
        *row -= 1;
    }

    /// Free slot count, by `O(II)` re-sum.
    #[must_use]
    pub fn free_slots(&self, kind: FuKind) -> u64 {
        let cap = u64::from(self.design.fu_count(kind)) * self.ii;
        let used: u64 = self.rows[kind_slot(kind)]
            .iter()
            .map(|&u| u64::from(u))
            .sum();
        cap - used
    }
}

/// The pre-bitset count-per-row bus table, retained **only** as the
/// differential-testing oracle for [`BusMrt`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferenceBusMrt {
    ii: u64,
    buses: u32,
    rows: Vec<u32>,
}

impl ReferenceBusMrt {
    /// Creates an empty reference bus table.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0` or `buses == 0`.
    #[must_use]
    pub fn new(buses: u32, ii: u64) -> Self {
        assert!(ii > 0, "initiation interval must be positive");
        assert!(buses > 0, "at least one bus");
        ReferenceBusMrt {
            ii,
            buses,
            rows: vec![0; usize::try_from(ii).expect("II fits in memory")],
        }
    }

    /// Whether a bus is free at ICN-local cycle `cycle`.
    #[must_use]
    pub fn is_free(&self, cycle: u64) -> bool {
        self.rows[(cycle % self.ii) as usize] < self.buses
    }

    /// The first cycle `c >= start` with a free bus, by per-cycle probing.
    #[must_use]
    pub fn first_free_cycle(&self, start: u64) -> Option<u64> {
        (start..start + self.ii).find(|&c| self.is_free(c))
    }

    /// Reserves a bus at ICN-local cycle `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if all buses are busy at that row.
    pub fn reserve(&mut self, cycle: u64) -> u32 {
        assert!(self.is_free(cycle), "reserving an occupied bus slot");
        let row = &mut self.rows[(cycle % self.ii) as usize];
        let bus = *row;
        *row += 1;
        bus
    }

    /// Releases a previously reserved bus slot.
    ///
    /// # Panics
    ///
    /// Panics if nothing was reserved at that row.
    pub fn release(&mut self, cycle: u64) {
        let row = &mut self.rows[(cycle % self.ii) as usize];
        assert!(*row > 0, "releasing an empty bus slot");
        *row -= 1;
    }

    /// Free slot count, by `O(II)` re-sum.
    #[must_use]
    pub fn free_slots(&self) -> u64 {
        let used: u64 = self.rows.iter().map(|&u| u64::from(u)).sum();
        u64::from(self.buses) * self.ii - used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_conflicts() {
        let mut mrt = ClusterMrt::new(ClusterDesign::PAPER, 3);
        assert!(mrt.is_free(FuKind::Int, 1));
        mrt.reserve(FuKind::Int, 1);
        // Cycle 4 maps to the same row (4 mod 3 = 1).
        assert!(!mrt.is_free(FuKind::Int, 4));
        // A different kind is unaffected.
        assert!(mrt.is_free(FuKind::Fp, 4));
        mrt.release(FuKind::Int, 4);
        assert!(mrt.is_free(FuKind::Int, 1));
    }

    #[test]
    fn capacity_per_row_follows_design() {
        let design = ClusterDesign {
            int_fus: 2,
            fp_fus: 1,
            mem_ports: 1,
            registers: 16,
        };
        let mut mrt = ClusterMrt::new(design, 2);
        mrt.reserve(FuKind::Int, 0);
        assert!(mrt.is_free(FuKind::Int, 0), "two int FUs");
        mrt.reserve(FuKind::Int, 0);
        assert!(!mrt.is_free(FuKind::Int, 0));
        assert_eq!(mrt.free_slots(FuKind::Int), 2); // row 1 still empty
    }

    #[test]
    #[should_panic(expected = "occupied")]
    fn double_reserve_panics() {
        let mut mrt = ClusterMrt::new(ClusterDesign::PAPER, 2);
        mrt.reserve(FuKind::Mem, 0);
        mrt.reserve(FuKind::Mem, 2);
    }

    #[test]
    fn bus_mrt_round_trip() {
        let mut bus = BusMrt::new(2, 4);
        assert_eq!(bus.reserve(1), 0);
        assert_eq!(bus.reserve(5), 1); // same row, second bus
        assert!(!bus.is_free(9));
        bus.release(1);
        assert!(bus.is_free(9));
    }

    #[test]
    #[should_panic(expected = "buses are not cluster resources")]
    fn bus_kind_in_cluster_mrt_panics() {
        let mrt = ClusterMrt::new(ClusterDesign::PAPER, 2);
        let _ = mrt.is_free(FuKind::Bus, 0);
    }

    #[test]
    fn first_free_cycle_wraps_the_window() {
        // II = 3, one mem port: occupy rows 1 and 2; starting at cycle 7
        // (row 1), the first free cycle is 9 — row 0 reached by wrapping.
        let design = ClusterDesign {
            int_fus: 1,
            fp_fus: 1,
            mem_ports: 1,
            registers: 16,
        };
        let mut mrt = ClusterMrt::new(design, 3);
        mrt.reserve(FuKind::Mem, 1);
        mrt.reserve(FuKind::Mem, 2);
        assert_eq!(mrt.first_free_cycle(FuKind::Mem, 7), Some(9));
        mrt.reserve(FuKind::Mem, 9);
        assert_eq!(mrt.first_free_cycle(FuKind::Mem, 7), None);
        // The other kinds are untouched.
        assert_eq!(mrt.first_free_cycle(FuKind::Int, 7), Some(7));
    }

    #[test]
    fn first_free_cycle_crosses_word_boundaries() {
        // II = 130 spans three words; fill rows 0..=128 of the single fp
        // unit so the first free row (129) sits in word 3.
        let design = ClusterDesign {
            int_fus: 1,
            fp_fus: 1,
            mem_ports: 1,
            registers: 16,
        };
        let mut mrt = ClusterMrt::new(design, 130);
        for c in 0..=128 {
            mrt.reserve(FuKind::Fp, c);
        }
        assert_eq!(mrt.first_free_cycle(FuKind::Fp, 0), Some(129));
        assert_eq!(mrt.first_free_cycle(FuKind::Fp, 130), Some(259));
        assert_eq!(mrt.free_slots(FuKind::Fp), 1);
    }

    #[test]
    fn free_slots_counter_tracks_reserve_release() {
        let mut mrt = ClusterMrt::new(ClusterDesign::PAPER, 4);
        let cap = u64::from(ClusterDesign::PAPER.fu_count(FuKind::Int)) * 4;
        assert_eq!(mrt.free_slots(FuKind::Int), cap);
        mrt.reserve(FuKind::Int, 0);
        mrt.reserve(FuKind::Int, 1);
        assert_eq!(mrt.free_slots(FuKind::Int), cap - 2);
        mrt.release(FuKind::Int, 1);
        assert_eq!(mrt.free_slots(FuKind::Int), cap - 1);
    }

    #[test]
    fn bus_first_free_cycle_matches_reference() {
        let mut bus = BusMrt::new(1, 5);
        let mut oracle = ReferenceBusMrt::new(1, 5);
        for c in [0, 2, 3] {
            bus.reserve(c);
            oracle.reserve(c);
        }
        for start in 0..10 {
            assert_eq!(bus.first_free_cycle(start), oracle.first_free_cycle(start));
        }
        assert_eq!(bus.free_slots(), oracle.free_slots());
    }
}
