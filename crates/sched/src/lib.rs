//! Heterogeneous modulo scheduling for clustered VLIW machines.
//!
//! Implements §2.2 and §4 of the CGO 2007 paper *"Heterogeneous Clustered
//! VLIW Microarchitectures"*: a modulo scheduler that targets machines whose
//! clusters run at different frequencies. The pipeline follows Figure 5 of
//! the paper:
//!
//! 1. compute the minimum initiation time `MIT = max(recMIT, resMIT)`
//!    ([`timing::compute_mit`]);
//! 2. select a `(frequency, II)` pair for every clock domain
//!    ([`timing::LoopClocks::select`]), increasing the `IT` on
//!    synchronisation failures;
//! 3. partition the data-dependence graph across clusters with a multilevel
//!    strategy whose refinement minimises estimated ED²
//!    ([`partition::compute_partition`]) — critical recurrences are
//!    pre-placed whole into the slowest cluster that can still schedule
//!    them (§4.1.1);
//! 4. schedule with a Rau-style iterative modulo scheduler over per-cluster
//!    modulo reservation tables, inserting explicit inter-cluster copies on
//!    the bus ([`ims`]);
//! 5. on failure (resources, recurrences or register pressure), increase
//!    the `IT` and retry.
//!
//! The same machinery schedules *homogeneous* machines (the paper's
//! baseline \[2\]\[3\]) — pass a homogeneous [`ClockedConfig`] and no power
//! model, and the ED² objective degenerates to execution time.
//!
//! # Workspaces and allocation discipline
//!
//! The evaluation re-runs this pipeline over thousands of loops, so the
//! scheduler is built around a reusable [`SchedWorkspace`]: reservation
//! tables, priority/placement arrays, register-pressure scratch and the
//! partitioner's evaluation buffers all live in the workspace and are
//! `clear()`ed rather than reallocated. Steady-state scheduling — a loop
//! whose size the workspace has already seen — performs **no heap
//! allocation** inside [`ims::schedule_into`] (asserted by a
//! counting-allocator test). Use [`schedule_loop_ws`] with one workspace
//! per worker thread; [`schedule_loop`] is the allocating convenience
//! wrapper.
//!
//! All side tables are dense and indexed by `vliw_ir::OpId` order — see
//! the `vliw_ir` crate docs for the index-stability invariants
//! ([`ExtGraph`] extends that numbering with copy nodes at
//! `num_real..`).
//!
//! # Example
//!
//! ```
//! use vliw_ir::{DdgBuilder, OpClass};
//! use vliw_machine::{ClockedConfig, MachineDesign, Time};
//! use vliw_sched::{schedule_loop, ScheduleOptions};
//!
//! // A small fp loop: two loads feeding a multiply-accumulate recurrence.
//! let mut b = DdgBuilder::new("saxpy-ish");
//! let lx = b.op("load x", OpClass::FpMemory);
//! let ly = b.op("load y", OpClass::FpMemory);
//! let mul = b.op("mul", OpClass::FpMul);
//! let acc = b.op("acc", OpClass::FpArith);
//! b.flow(lx, mul);
//! b.flow(ly, mul);
//! b.flow(mul, acc);
//! b.flow_carried(acc, acc, 1);
//! let ddg = b.build()?;
//!
//! let config = ClockedConfig::reference(MachineDesign::paper_machine(1));
//! let sched = schedule_loop(&ddg, &config, None, &ScheduleOptions::default())?;
//! assert!(sched.it() >= Time::from_ns(3.0)); // the accumulator recurrence
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`ClockedConfig`]: vliw_machine::ClockedConfig

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod comm;
mod error;
mod hetero;
pub mod ims;
mod mrt;
pub mod partition;
pub mod profile;
mod regs;
mod schedule;
pub mod timing;
mod workspace;

pub use comm::{ExtEdge, ExtGraph, NodeId, NodePlace};
pub use error::SchedError;
pub use hetero::{schedule_loop, schedule_loop_with_partition, schedule_loop_ws, ScheduleOptions};
pub use mrt::{BusMrt, ClusterMrt, ReferenceBusMrt, ReferenceClusterMrt};
pub use partition::{
    compute_partition, compute_partition_unrefined, compute_partition_ws, Partition,
    PartitionObjective,
};
pub use profile::{Phase, PhaseProfile};
pub use regs::{lifetime_sum_ticks, max_lives};
pub use schedule::{ScheduledCopy, ScheduledLoop};
pub use timing::LoopClocks;
pub use workspace::{PartitionScratch, SchedWorkspace};

// Scheduling inputs/outputs cross the exploration worker pool.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<ScheduleOptions>();
    _assert_send_sync::<ScheduledLoop>();
    _assert_send_sync::<SchedError>();
    _assert_send_sync::<LoopClocks>();
    _assert_send_sync::<Partition>();
    _assert_send_sync::<SchedWorkspace>();
};
