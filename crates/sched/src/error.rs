//! Scheduler error type.

use std::error::Error;
use std::fmt;

use vliw_machine::Time;

/// Errors produced while modulo scheduling a loop.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchedError {
    /// No initiation time within the search horizon satisfies the machine's
    /// synchronisation and capacity constraints.
    NoFeasibleIt {
        /// Loop being scheduled.
        loop_name: String,
        /// Why the search failed.
        reason: String,
    },
    /// The scheduler exhausted its retry budget without finding a valid
    /// schedule.
    NoSchedule {
        /// Loop being scheduled.
        loop_name: String,
        /// Number of initiation times attempted.
        attempts: u32,
        /// The last initiation time tried.
        last_it: Time,
    },
    /// The DDG cannot be modulo scheduled at any `II` (zero-distance cycle).
    Unschedulable {
        /// Loop being scheduled.
        loop_name: String,
    },
    /// A critical recurrence does not fit in any cluster at the current
    /// initiation time (the partitioner's pre-placement pass failed; the
    /// driver reacts by increasing the `IT`).
    RecurrenceDoesNotFit {
        /// Loop being scheduled.
        loop_name: String,
        /// Minimum `II` (cycles) the recurrence needs.
        min_ii: u32,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NoFeasibleIt { loop_name, reason } => {
                write!(
                    f,
                    "loop `{loop_name}`: no feasible initiation time ({reason})"
                )
            }
            SchedError::NoSchedule {
                loop_name,
                attempts,
                last_it,
            } => write!(
                f,
                "loop `{loop_name}`: no schedule after {attempts} initiation times (last {last_it})"
            ),
            SchedError::Unschedulable { loop_name } => {
                write!(f, "loop `{loop_name}`: zero-distance dependence cycle")
            }
            SchedError::RecurrenceDoesNotFit { loop_name, min_ii } => write!(
                f,
                "loop `{loop_name}`: a recurrence needing II >= {min_ii} fits in no cluster"
            ),
        }
    }
}

impl Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SchedError::NoSchedule {
            loop_name: "l".into(),
            attempts: 5,
            last_it: Time::from_ns(7.0),
        };
        let s = e.to_string();
        assert!(s.contains('l') && s.contains('5') && s.contains("7.0"));
        assert!(!SchedError::Unschedulable {
            loop_name: "x".into()
        }
        .to_string()
        .is_empty());
    }
}
