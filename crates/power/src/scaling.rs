//! Voltage/frequency scaling laws for dynamic and static energy (§3.1.1,
//! §3.1.2 of the paper).

/// Subthreshold swing `S`: volts of threshold-voltage reduction per decade
/// of leakage-current increase.
///
/// 100 mV/decade, the standard value for the paper's technology
/// generation. Together with `α = 1.36` this places the ED²-optimal
/// homogeneous design exactly at the paper's 1 GHz / 1 V reference point —
/// see EXPERIMENTS.md for the calibration discussion.
pub const SUBTHRESHOLD_SWING_V: f64 = 0.10;

/// Dynamic-energy scaling factor δ (§3.1.1).
///
/// Two identically designed components executing the same instruction burn
/// charge `p_t · C_L · V_dd²` per cycle, so at equal cycle counts
/// `E / E₀ = (V_dd / V_dd₀)²` — frequency cancels out of per-event energy.
///
/// # Panics
///
/// Panics if either voltage is not positive and finite.
///
/// # Example
///
/// ```
/// // Dropping from 1.0 V to 0.8 V saves 36 % of dynamic energy.
/// let delta = vliw_power::dynamic_scale(0.8, 1.0);
/// assert!((delta - 0.64).abs() < 1e-12);
/// ```
#[must_use]
pub fn dynamic_scale(vdd: f64, vdd_ref: f64) -> f64 {
    check_voltage(vdd, "vdd");
    check_voltage(vdd_ref, "vdd_ref");
    let r = vdd / vdd_ref;
    r * r
}

/// Static-energy scaling factor σ (§3.1.2).
///
/// Leakage power is `P_stat = I_leak · V_dd` with
/// `I_leak ∝ W · 10^(−V_th / S)`, so for two components of identical design
/// the per-second static energy ratio is
/// `σ = 10^((V_th₀ − V_th) / S) · (V_dd / V_dd₀)`.
///
/// # Panics
///
/// Panics if a voltage is not positive/finite or a threshold is not finite.
///
/// # Example
///
/// ```
/// use vliw_power::{static_scale, SUBTHRESHOLD_SWING_V};
/// // Raising Vth by one subthreshold swing cuts leakage 10×.
/// let sigma = static_scale(1.0, 0.25 + SUBTHRESHOLD_SWING_V, 1.0, 0.25, SUBTHRESHOLD_SWING_V);
/// assert!((sigma - 0.1).abs() < 1e-12);
/// ```
#[must_use]
pub fn static_scale(vdd: f64, vth: f64, vdd_ref: f64, vth_ref: f64, swing: f64) -> f64 {
    check_voltage(vdd, "vdd");
    check_voltage(vdd_ref, "vdd_ref");
    assert!(
        vth.is_finite() && vth_ref.is_finite(),
        "thresholds must be finite"
    );
    assert!(swing.is_finite() && swing > 0.0, "swing must be positive");
    10f64.powf((vth_ref - vth) / swing) * (vdd / vdd_ref)
}

fn check_voltage(v: f64, name: &str) {
    assert!(
        v.is_finite() && v > 0.0,
        "{name} must be positive and finite, got {v}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reference_point_scales_to_one() {
        assert_eq!(dynamic_scale(1.0, 1.0), 1.0);
        assert_eq!(
            static_scale(1.0, 0.25, 1.0, 0.25, SUBTHRESHOLD_SWING_V),
            1.0
        );
    }

    #[test]
    fn dynamic_is_quadratic() {
        assert!((dynamic_scale(1.2, 1.0) - 1.44).abs() < 1e-12);
        assert!((dynamic_scale(0.7, 1.0) - 0.49).abs() < 1e-12);
    }

    #[test]
    fn lower_vth_leaks_exponentially_more() {
        let one_decade = static_scale(1.0, 0.15, 1.0, 0.25, 0.1);
        assert!((one_decade - 10.0).abs() < 1e-9);
        let two_decades = static_scale(1.0, 0.05, 1.0, 0.25, 0.1);
        assert!((two_decades - 100.0).abs() < 1e-7);
    }

    #[test]
    fn static_scale_is_linear_in_vdd() {
        let a = static_scale(0.8, 0.25, 1.0, 0.25, SUBTHRESHOLD_SWING_V);
        assert!((a - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_voltage_panics() {
        let _ = dynamic_scale(0.0, 1.0);
    }

    proptest! {
        #[test]
        fn dynamic_monotone_in_vdd(v1 in 0.5f64..2.0, v2 in 0.5f64..2.0) {
            prop_assume!(v1 < v2);
            prop_assert!(dynamic_scale(v1, 1.0) < dynamic_scale(v2, 1.0));
        }

        #[test]
        fn static_monotone_decreasing_in_vth(t1 in 0.05f64..0.5, t2 in 0.05f64..0.5) {
            prop_assume!(t1 < t2);
            prop_assert!(static_scale(1.0, t1, 1.0, 0.25, 0.1) > static_scale(1.0, t2, 1.0, 0.25, 0.1));
        }

        #[test]
        fn scales_compose(v in 0.5f64..2.0) {
            // δ(v, ref) · δ(ref, v) = 1.
            let forward = dynamic_scale(v, 1.0);
            let back = dynamic_scale(1.0, v);
            prop_assert!((forward * back - 1.0).abs() < 1e-9);
        }
    }
}
