//! The α-power law linking maximum frequency, supply voltage and threshold
//! voltage (§3.3 of the paper).

/// α-power delay model:
/// `f_max = β · (V_dd − V_th)^α / (C_L · V_dd)`.
///
/// The technology constants `β` and `C_L` never appear explicitly: the model
/// is anchored at the paper's reference operating point (1 GHz at
/// `V_dd = 1 V`, `V_th = 0.25 V`), so only ratios matter:
///
/// ```text
/// f / f₀ = (V_dd₀ / V_dd) · ((V_dd − V_th) / (V_dd₀ − V_th₀))^α
/// ```
///
/// Given a target frequency and a supply, [`AlphaPowerModel::threshold_for`]
/// inverts this for the *highest* threshold voltage that still meets the
/// frequency (higher `V_th` leaks exponentially less, so it is always the
/// preferred solution), and applies the reliability constraints.
///
/// ### Note on the paper's constraint
///
/// The paper's metastability/process-variation inequality is typeset
/// corruptly (a literal reading rejects the paper's own 1 V / 0.25 V
/// baseline). We implement the standard reliability guards it gestures at:
/// a noise margin `V_dd − V_th ≥ 0.1 · V_dd` and a process-variation guard
/// band `V_th ≥ 0.1 V`. See DESIGN.md §3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaPowerModel {
    alpha: f64,
    vdd_ref: f64,
    vth_ref: f64,
    freq_ref_ghz: f64,
    swing: f64,
}

impl AlphaPowerModel {
    /// Delay exponent used throughout the evaluation. The α-power model
    /// admits α between ~1.2 (fully velocity-saturated devices) and 2
    /// (classic long-channel); we calibrate at `α = 1.36`, the value at
    /// which — with the 100 mV/decade subthreshold swing — the ED²-optimal
    /// *homogeneous* design coincides with the paper's 1 GHz / 1 V
    /// reference point, as the paper's own baseline discussion implies
    /// (see EXPERIMENTS.md).
    pub const DEFAULT_ALPHA: f64 = 1.36;

    /// The paper's reference operating point: 1 GHz at 1 V supply and
    /// 0.25 V threshold (§5).
    #[must_use]
    pub fn paper_reference() -> Self {
        Self::new(Self::DEFAULT_ALPHA, 1.0, 0.25, 1.0)
    }

    /// Builds a model anchored at (`vdd_ref`, `vth_ref`, `freq_ref_ghz`).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive/non-finite, if
    /// `vth_ref >= vdd_ref`, or if `alpha < 1`.
    #[must_use]
    pub fn new(alpha: f64, vdd_ref: f64, vth_ref: f64, freq_ref_ghz: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha >= 1.0,
            "alpha must be >= 1, got {alpha}"
        );
        assert!(
            vdd_ref.is_finite() && vdd_ref > 0.0,
            "vdd_ref must be positive"
        );
        assert!(
            vth_ref.is_finite() && vth_ref > 0.0,
            "vth_ref must be positive"
        );
        assert!(
            vth_ref < vdd_ref,
            "reference threshold must be below reference supply"
        );
        assert!(
            freq_ref_ghz.is_finite() && freq_ref_ghz > 0.0,
            "freq_ref must be positive"
        );
        Self {
            alpha,
            vdd_ref,
            vth_ref,
            freq_ref_ghz,
            swing: crate::scaling::SUBTHRESHOLD_SWING_V,
        }
    }

    /// Replaces the effective subthreshold swing (V/decade) used by the
    /// static-energy scaling paired with this model.
    ///
    /// # Panics
    ///
    /// Panics if `swing` is not positive and finite.
    #[must_use]
    pub fn with_swing(mut self, swing: f64) -> Self {
        assert!(swing.is_finite() && swing > 0.0, "swing must be positive");
        self.swing = swing;
        self
    }

    /// The effective subthreshold swing (V/decade).
    #[must_use]
    pub fn swing(&self) -> f64 {
        self.swing
    }

    /// The delay exponent α.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The reference frequency (GHz) reached at the reference operating
    /// point.
    #[must_use]
    pub fn freq_ref_ghz(&self) -> f64 {
        self.freq_ref_ghz
    }

    /// The reference threshold voltage (0.25 V for the paper's model).
    #[must_use]
    pub fn vth_ref(&self) -> f64 {
        self.vth_ref
    }

    /// The reference supply voltage.
    #[must_use]
    pub fn vdd_ref(&self) -> f64 {
        self.vdd_ref
    }

    /// Maximum frequency (GHz) at supply `vdd` and threshold `vth`.
    ///
    /// # Panics
    ///
    /// Panics if `vdd <= 0` or `vth >= vdd`.
    #[must_use]
    pub fn max_freq_ghz(&self, vdd: f64, vth: f64) -> f64 {
        assert!(vdd.is_finite() && vdd > 0.0, "vdd must be positive");
        assert!(vth < vdd, "threshold must be below supply");
        let overdrive = (vdd - vth) / (self.vdd_ref - self.vth_ref);
        self.freq_ref_ghz * (self.vdd_ref / vdd) * overdrive.powf(self.alpha)
    }

    /// The highest threshold voltage at which a component supplied with
    /// `vdd` still reaches `freq_ghz`, if any.
    ///
    /// Returns `None` when the requested frequency is unreachable at this
    /// supply or the resulting threshold violates the reliability guards
    /// (`V_th ≥ 0.1 V` and `V_dd − V_th ≥ 0.1 · V_dd`).
    ///
    /// # Panics
    ///
    /// Panics if `freq_ghz` or `vdd` is not positive and finite.
    #[must_use]
    pub fn threshold_for(&self, freq_ghz: f64, vdd: f64) -> Option<f64> {
        assert!(
            freq_ghz.is_finite() && freq_ghz > 0.0,
            "frequency must be positive"
        );
        assert!(vdd.is_finite() && vdd > 0.0, "vdd must be positive");
        // Invert f/f0 = (vdd0/vdd) * ((vdd - vth)/(vdd0 - vth0))^alpha.
        let ratio = freq_ghz / self.freq_ref_ghz * (vdd / self.vdd_ref);
        let overdrive = ratio.powf(1.0 / self.alpha) * (self.vdd_ref - self.vth_ref);
        let vth = vdd - overdrive;
        let noise_margin_ok = vdd - vth >= 0.1 * vdd - 1e-12;
        let guard_band_ok = vth >= 0.1 - 1e-12;
        (noise_margin_ok && guard_band_ok).then_some(vth)
    }
}

impl Default for AlphaPowerModel {
    fn default() -> Self {
        Self::paper_reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reference_point_round_trips() {
        let m = AlphaPowerModel::paper_reference();
        let vth = m.threshold_for(1.0, 1.0).unwrap();
        assert!(
            (vth - 0.25).abs() < 1e-9,
            "reference solve returns reference vth, got {vth}"
        );
        assert!((m.max_freq_ghz(1.0, 0.25) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lower_frequency_allows_higher_threshold() {
        let m = AlphaPowerModel::paper_reference();
        let slow = m.threshold_for(0.66, 1.0).unwrap();
        let fast = m.threshold_for(1.05, 1.0).unwrap();
        assert!(slow > 0.25);
        assert!(fast < 0.25);
    }

    #[test]
    fn higher_supply_allows_higher_threshold_at_same_freq() {
        let m = AlphaPowerModel::paper_reference();
        let low = m.threshold_for(1.0, 0.9).unwrap();
        let high = m.threshold_for(1.0, 1.2).unwrap();
        assert!(high > low);
    }

    #[test]
    fn unreachable_frequency_is_rejected() {
        let m = AlphaPowerModel::paper_reference();
        // At 0.7 V the machine cannot hit very high frequency: the solve
        // would need vth < 0.1 V guard band (or even negative).
        assert!(m.threshold_for(3.0, 0.7).is_none());
    }

    #[test]
    fn guard_band_rejects_tiny_threshold() {
        let m = AlphaPowerModel::paper_reference();
        // Find a frequency whose solve lands just under 0.1 V.
        let f_at_guard = m.max_freq_ghz(1.0, 0.1);
        assert!(m.threshold_for(f_at_guard * 1.05, 1.0).is_none());
        assert!(m.threshold_for(f_at_guard * 0.95, 1.0).is_some());
    }

    #[test]
    fn noise_margin_rejects_threshold_too_close_to_vdd() {
        let m = AlphaPowerModel::paper_reference();
        // Extremely low frequencies push vth → vdd; the margin must kick in.
        assert!(m.threshold_for(1e-6, 1.0).is_none());
    }

    proptest! {
        #[test]
        fn solve_inverts_forward_model(
            f in 0.3f64..1.4,
            vdd in 0.7f64..1.4,
        ) {
            let m = AlphaPowerModel::paper_reference();
            if let Some(vth) = m.threshold_for(f, vdd) {
                let back = m.max_freq_ghz(vdd, vth);
                prop_assert!((back - f).abs() < 1e-9 * f.max(1.0));
            }
        }

        #[test]
        fn threshold_monotone_in_frequency(vdd in 0.7f64..1.4) {
            let m = AlphaPowerModel::paper_reference();
            let mut prev: Option<f64> = None;
            for i in 1..20 {
                let f = 0.2 + 0.05 * f64::from(i);
                if let Some(vth) = m.threshold_for(f, vdd) {
                    if let Some(p) = prev {
                        prop_assert!(vth <= p + 1e-12);
                    }
                    prev = Some(vth);
                }
            }
        }
    }
}
