//! Calibration of per-event energy units from the reference homogeneous
//! machine (§3.1 of the paper).

use vliw_machine::{MachineDesign, Time};

/// Aggregate profile of one program (or loop suite) executing on the
/// reference homogeneous machine.
///
/// `weighted_ins` counts executed instructions weighted by their Table 1
/// relative energy ("integer-add units"), which realises the paper's
/// "divide the instructions into classes and assign the appropriate energy"
/// refinement while keeping a single unit energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferenceProfile {
    /// Executed instructions, weighted by relative energy (add-units).
    pub weighted_ins: f64,
    /// Inter-cluster communications (bus transfers).
    pub comms: u64,
    /// Memory-hierarchy accesses.
    pub mem_accesses: u64,
    /// Total execution time on the reference machine.
    pub exec_time: Time,
}

impl ReferenceProfile {
    /// Validates the profile: a reference run executed work in finite time.
    ///
    /// # Panics
    ///
    /// Panics if `weighted_ins` is not positive/finite or `exec_time` is
    /// zero.
    pub fn validate(&self) {
        assert!(
            self.weighted_ins.is_finite() && self.weighted_ins > 0.0,
            "reference run must execute instructions"
        );
        assert!(!self.exec_time.is_zero(), "reference run must take time");
    }
}

/// How the reference machine's total energy splits across components
/// (§5 of the paper).
///
/// `icn` and `cache` are fractions of *total* energy; the cluster share is
/// the remainder. The three `leak_*` fields give the *static* fraction
/// within each component's energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyShares {
    /// Fraction of total energy consumed by the interconnect.
    pub icn: f64,
    /// Fraction of total energy consumed by the memory hierarchy.
    pub cache: f64,
    /// Leakage fraction of cluster energy.
    pub leak_cluster: f64,
    /// Leakage fraction of ICN energy.
    pub leak_icn: f64,
    /// Leakage fraction of cache energy.
    pub leak_cache: f64,
}

impl EnergyShares {
    /// The paper's baseline: one third of energy in the memory hierarchy,
    /// 10 % in the interconnect; leakage is one third of cluster energy,
    /// 10 % of ICN energy (bus usage is very high) and two thirds of cache
    /// energy.
    pub const PAPER: EnergyShares = EnergyShares {
        icn: 0.10,
        cache: 1.0 / 3.0,
        leak_cluster: 1.0 / 3.0,
        leak_icn: 0.10,
        leak_cache: 2.0 / 3.0,
    };

    /// Builds shares with explicit ICN/cache totals (Figure 8's sweep).
    ///
    /// # Panics
    ///
    /// Panics if the shares are out of `[0, 1)` or sum to 1 or more.
    #[must_use]
    pub fn with_component_shares(icn: f64, cache: f64) -> Self {
        EnergyShares {
            icn,
            cache,
            ..Self::PAPER
        }
        .validated()
    }

    /// Builds shares with explicit leakage fractions (Figure 9's sweep).
    ///
    /// # Panics
    ///
    /// Panics if any fraction is outside `[0, 1]`.
    #[must_use]
    pub fn with_leakage(leak_cluster: f64, leak_icn: f64, leak_cache: f64) -> Self {
        EnergyShares {
            leak_cluster,
            leak_icn,
            leak_cache,
            ..Self::PAPER
        }
        .validated()
    }

    /// Fraction of total energy consumed by the clusters.
    #[must_use]
    pub fn cluster(&self) -> f64 {
        1.0 - self.icn - self.cache
    }

    fn validated(self) -> Self {
        let frac = |v: f64| v.is_finite() && (0.0..=1.0).contains(&v);
        assert!(
            frac(self.icn) && frac(self.cache),
            "component shares must be in [0,1]"
        );
        assert!(
            self.icn + self.cache < 1.0,
            "cluster share must remain positive"
        );
        assert!(
            frac(self.leak_cluster) && frac(self.leak_icn) && frac(self.leak_cache),
            "leakage fractions must be in [0,1]"
        );
        self
    }
}

impl Default for EnergyShares {
    fn default() -> Self {
        Self::PAPER
    }
}

/// Per-event and per-second unit energies calibrated so that the reference
/// run consumes exactly **1 unit of total energy** (all estimates are
/// therefore directly comparable ratios, as in the paper's figures).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyUnits {
    /// Dynamic energy of one add-unit of weighted instructions.
    pub e_ins: f64,
    /// Dynamic energy of one bus communication.
    pub e_comm: f64,
    /// Dynamic energy of one cache access.
    pub e_access: f64,
    /// Static energy per second of *one* cluster at reference voltage.
    pub e_static_cluster_per_s: f64,
    /// Static energy per second of the ICN at reference voltage.
    pub e_static_icn_per_s: f64,
    /// Static energy per second of the cache at reference voltage.
    pub e_static_cache_per_s: f64,
}

impl EnergyUnits {
    /// Calibrates unit energies from a reference profile and the energy
    /// shares.
    ///
    /// If the profile contains zero communications or memory accesses, the
    /// corresponding dynamic share is folded into leakage of that component
    /// (the component still burns its share; it just has no per-event
    /// carrier), keeping total energy exactly 1.
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid (see
    /// [`ReferenceProfile::validate`]).
    #[must_use]
    pub fn calibrate(
        design: MachineDesign,
        shares: EnergyShares,
        profile: &ReferenceProfile,
    ) -> Self {
        profile.validate();
        let secs = profile.exec_time.as_secs();
        let cluster_total = shares.cluster();
        let icn_total = shares.icn;
        let cache_total = shares.cache;

        let cluster_dynamic = cluster_total * (1.0 - shares.leak_cluster);
        let cluster_static = cluster_total * shares.leak_cluster;
        let e_ins = cluster_dynamic / profile.weighted_ins;
        let e_static_cluster_per_s = cluster_static / secs / f64::from(design.num_clusters);

        let (e_comm, icn_static) = if profile.comms > 0 {
            (
                icn_total * (1.0 - shares.leak_icn) / profile.comms as f64,
                icn_total * shares.leak_icn,
            )
        } else {
            (0.0, icn_total)
        };
        let e_static_icn_per_s = icn_static / secs;

        let (e_access, cache_static) = if profile.mem_accesses > 0 {
            (
                cache_total * (1.0 - shares.leak_cache) / profile.mem_accesses as f64,
                cache_total * shares.leak_cache,
            )
        } else {
            (0.0, cache_total)
        };
        let e_static_cache_per_s = cache_static / secs;

        EnergyUnits {
            e_ins,
            e_comm,
            e_access,
            e_static_cluster_per_s,
            e_static_icn_per_s,
            e_static_cache_per_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ReferenceProfile {
        ReferenceProfile {
            weighted_ins: 1000.0,
            comms: 100,
            mem_accesses: 250,
            exec_time: Time::from_ns(2000.0),
        }
    }

    #[test]
    fn paper_shares() {
        let s = EnergyShares::PAPER;
        assert!((s.cluster() - (1.0 - 0.1 - 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn calibration_reconstructs_unit_total() {
        let design = MachineDesign::paper_machine(1);
        let p = profile();
        let u = EnergyUnits::calibrate(design, EnergyShares::PAPER, &p);
        let secs = p.exec_time.as_secs();
        let total = u.e_ins * p.weighted_ins
            + u.e_comm * p.comms as f64
            + u.e_access * p.mem_accesses as f64
            + secs
                * (u.e_static_cluster_per_s * 4.0 + u.e_static_icn_per_s + u.e_static_cache_per_s);
        assert!((total - 1.0).abs() < 1e-12, "total = {total}");
    }

    #[test]
    fn shares_are_respected() {
        let design = MachineDesign::paper_machine(1);
        let p = profile();
        let u = EnergyUnits::calibrate(design, EnergyShares::PAPER, &p);
        let secs = p.exec_time.as_secs();
        let cache = u.e_access * p.mem_accesses as f64 + secs * u.e_static_cache_per_s;
        assert!((cache - 1.0 / 3.0).abs() < 1e-12);
        let icn = u.e_comm * p.comms as f64 + secs * u.e_static_icn_per_s;
        assert!((icn - 0.1).abs() < 1e-12);
        // Leakage split inside the cache: two thirds static.
        assert!((secs * u.e_static_cache_per_s - (1.0 / 3.0) * (2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_comms_fold_into_leakage() {
        let design = MachineDesign::paper_machine(1);
        let p = ReferenceProfile {
            comms: 0,
            ..profile()
        };
        let u = EnergyUnits::calibrate(design, EnergyShares::PAPER, &p);
        assert_eq!(u.e_comm, 0.0);
        let secs = p.exec_time.as_secs();
        assert!((secs * u.e_static_icn_per_s - 0.1).abs() < 1e-12);
    }

    #[test]
    fn figure8_constructor() {
        let s = EnergyShares::with_component_shares(0.2, 0.3);
        assert!((s.cluster() - 0.5).abs() < 1e-12);
        assert_eq!(s.leak_cache, EnergyShares::PAPER.leak_cache);
    }

    #[test]
    fn figure9_constructor() {
        let s = EnergyShares::with_leakage(0.4, 0.15, 0.7);
        assert_eq!(s.icn, EnergyShares::PAPER.icn);
        assert_eq!(s.leak_cluster, 0.4);
    }

    #[test]
    #[should_panic(expected = "cluster share must remain positive")]
    fn oversized_shares_panic() {
        let _ = EnergyShares::with_component_shares(0.6, 0.5);
    }

    #[test]
    #[should_panic(expected = "must take time")]
    fn zero_time_profile_panics() {
        let p = ReferenceProfile {
            exec_time: Time::ZERO,
            ..profile()
        };
        p.validate();
    }
}
