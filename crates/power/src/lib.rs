//! Compile-time energy model for heterogeneous clustered VLIW machines.
//!
//! Implements §3 of the CGO 2007 paper *"Heterogeneous Clustered VLIW
//! Microarchitectures"*: the energy consumption of any clocked
//! configuration is expressed **relative to a reference homogeneous
//! machine** whose total energy is decomposed into six components —
//! {clusters, interconnect, cache} × {dynamic, static} — using the paper's
//! published shares (one third of all energy in the memory hierarchy, 10 %
//! in the interconnect; leakage is one third of cluster energy, 10 % of ICN
//! energy and two thirds of cache energy).
//!
//! From those shares and a profile of the reference machine
//! ([`ReferenceProfile`]) we calibrate per-event unit energies
//! ([`EnergyUnits`]). Scaling laws then map voltage/frequency choices to
//! energy ratios:
//!
//! * dynamic: `δ = (Vdd / Vdd₀)²` ([`dynamic_scale`]),
//! * static: `σ = 10^((Vth₀ − Vth)/S) · (Vdd / Vdd₀)` ([`static_scale`]),
//! * the α-power law relating maximum frequency, supply and threshold
//!   voltage ([`AlphaPowerModel`]).
//!
//! The headline metric is the energy–delay² product ([`ed2`]).
//!
//! # Example
//!
//! ```
//! use vliw_machine::{ClockedConfig, MachineDesign, Time};
//! use vliw_power::{EnergyShares, PowerModel, ReferenceProfile, UsageProfile};
//!
//! let design = MachineDesign::paper_machine(1);
//! let reference_run = ReferenceProfile {
//!     weighted_ins: 1_000_000.0,
//!     comms: 120_000,
//!     mem_accesses: 300_000,
//!     exec_time: Time::from_ns(500_000.0),
//! };
//! let model = PowerModel::calibrate(design, EnergyShares::PAPER, &reference_run);
//!
//! // Re-estimating the reference run on the reference machine returns the
//! // normalisation point: total energy 1.
//! let usage = UsageProfile::homogeneous(&reference_run, design.num_clusters);
//! let config = ClockedConfig::reference(design);
//! let energy = model.estimate_energy(&config, &usage).unwrap();
//! assert!((energy - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alpha;
mod estimate;
mod reference;
mod scaling;

pub use alpha::AlphaPowerModel;
pub use estimate::{DomainScaling, PowerModel, UsageProfile};
pub use reference::{EnergyShares, EnergyUnits, ReferenceProfile};
pub use scaling::{dynamic_scale, static_scale, SUBTHRESHOLD_SWING_V};

/// The energy–delay² product: the paper's figure of merit for simultaneously
/// rewarding speed and energy savings.
///
/// # Example
///
/// ```
/// // Halving the delay at equal energy improves ED² by 4×.
/// assert_eq!(vliw_power::ed2(1.0, 0.5) * 4.0, vliw_power::ed2(1.0, 1.0));
/// ```
#[must_use]
pub fn ed2(energy: f64, delay_s: f64) -> f64 {
    energy * delay_s * delay_s
}

// Power models are shared by reference with the exploration worker pool.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<PowerModel>();
    _assert_send_sync::<EnergyShares>();
    _assert_send_sync::<EnergyUnits>();
    _assert_send_sync::<ReferenceProfile>();
    _assert_send_sync::<UsageProfile>();
    _assert_send_sync::<AlphaPowerModel>();
};
