//! Energy estimation for arbitrary clocked configurations (§3.1.3).

use vliw_machine::{ClockedConfig, DomainId, MachineDesign, Time};

use crate::alpha::AlphaPowerModel;
use crate::reference::{EnergyShares, EnergyUnits, ReferenceProfile};
use crate::scaling::{dynamic_scale, static_scale};

/// Resource usage of a program on some (possibly heterogeneous) machine:
/// where the instructions executed and how long the run took.
///
/// Unlike [`ReferenceProfile`], instruction work is split per cluster —
/// δ scaling is per-cluster because each cluster may use a different supply
/// voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageProfile {
    /// Energy-weighted instruction count executed in each cluster
    /// (add-units).
    pub weighted_ins_per_cluster: Vec<f64>,
    /// Inter-cluster communications.
    pub comms: u64,
    /// Memory accesses.
    pub mem_accesses: u64,
    /// Total execution time on this machine.
    pub exec_time: Time,
}

impl UsageProfile {
    /// Derives a usage profile from a reference profile assuming work is
    /// spread evenly across `num_clusters` identical clusters — exact for
    /// the reference homogeneous machine where `p_Ci = 1/n` for all `i`.
    #[must_use]
    pub fn homogeneous(profile: &ReferenceProfile, num_clusters: u8) -> Self {
        let per = profile.weighted_ins / f64::from(num_clusters);
        UsageProfile {
            weighted_ins_per_cluster: vec![per; usize::from(num_clusters)],
            comms: profile.comms,
            mem_accesses: profile.mem_accesses,
            exec_time: profile.exec_time,
        }
    }

    /// Total weighted instructions across clusters.
    #[must_use]
    pub fn total_weighted_ins(&self) -> f64 {
        self.weighted_ins_per_cluster.iter().sum()
    }
}

/// Voltage/frequency scaling factors of one clock domain relative to the
/// reference machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainScaling {
    /// Dynamic-energy ratio δ.
    pub delta: f64,
    /// Static-energy ratio σ.
    pub sigma: f64,
    /// The threshold voltage the α-power model selected.
    pub vth: f64,
}

/// The calibrated §3 energy model: estimates the energy any clocked
/// configuration spends executing a given usage profile, **in units of the
/// reference run's total energy**.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    design: MachineDesign,
    shares: EnergyShares,
    units: EnergyUnits,
    alpha: AlphaPowerModel,
}

impl PowerModel {
    /// Calibrates a model from the reference homogeneous run, using the
    /// paper's α-power reference point.
    ///
    /// # Panics
    ///
    /// Panics if the profile is degenerate (see
    /// [`ReferenceProfile::validate`]).
    #[must_use]
    pub fn calibrate(
        design: MachineDesign,
        shares: EnergyShares,
        profile: &ReferenceProfile,
    ) -> Self {
        let units = EnergyUnits::calibrate(design, shares, profile);
        PowerModel {
            design,
            shares,
            units,
            alpha: AlphaPowerModel::paper_reference(),
        }
    }

    /// Replaces the α-power model (for technology sensitivity studies).
    #[must_use]
    pub fn with_alpha_model(mut self, alpha: AlphaPowerModel) -> Self {
        self.alpha = alpha;
        self
    }

    /// The calibrated unit energies.
    #[must_use]
    pub fn units(&self) -> &EnergyUnits {
        &self.units
    }

    /// The energy shares this model was calibrated with.
    #[must_use]
    pub fn shares(&self) -> EnergyShares {
        self.shares
    }

    /// The α-power model in use.
    #[must_use]
    pub fn alpha_model(&self) -> &AlphaPowerModel {
        &self.alpha
    }

    /// The machine design this model was calibrated for.
    #[must_use]
    pub fn design(&self) -> MachineDesign {
        self.design
    }

    /// Scaling factors for one domain of `config`, or `None` when the
    /// domain's frequency is unreachable at its supply voltage (no valid
    /// threshold exists).
    #[must_use]
    pub fn domain_scaling(
        &self,
        config: &ClockedConfig,
        domain: DomainId,
    ) -> Option<DomainScaling> {
        let vdd = config.voltages().domain(domain);
        let freq = config.domain_cycle(domain).freq_ghz();
        let vth = self.alpha.threshold_for(freq, vdd)?;
        Some(DomainScaling {
            delta: dynamic_scale(vdd, self.alpha.vdd_ref()),
            sigma: static_scale(
                vdd,
                vth,
                self.alpha.vdd_ref(),
                self.alpha.vth_ref(),
                self.alpha.swing(),
            ),
            vth,
        })
    }

    /// Estimates the total energy `config` spends executing `usage`
    /// (§3.1.3):
    ///
    /// ```text
    /// E_het = Σ_c Ins_c·E_ins·δ_c + Comms·E_comm·δ_ICN
    ///       + MemIns·E_access·δ_cache
    ///       + T · (Σ_c E_s_C·σ_c + E_s_ICN·σ_ICN + E_s_cache·σ_cache)
    /// ```
    ///
    /// Returns `None` when any domain's (frequency, voltage) pair is
    /// electrically infeasible.
    ///
    /// # Panics
    ///
    /// Panics if `usage` has a different cluster count than the design.
    #[must_use]
    pub fn estimate_energy(&self, config: &ClockedConfig, usage: &UsageProfile) -> Option<f64> {
        assert_eq!(
            usage.weighted_ins_per_cluster.len(),
            usize::from(self.design.num_clusters),
            "usage profile must cover every cluster"
        );
        let secs = usage.exec_time.as_secs();
        let mut dynamic = 0.0;
        let mut static_per_s = 0.0;
        for c in self.design.clusters() {
            let s = self.domain_scaling(config, DomainId::Cluster(c))?;
            dynamic += usage.weighted_ins_per_cluster[c.index()] * self.units.e_ins * s.delta;
            static_per_s += self.units.e_static_cluster_per_s * s.sigma;
        }
        let icn = self.domain_scaling(config, DomainId::Icn)?;
        dynamic += usage.comms as f64 * self.units.e_comm * icn.delta;
        static_per_s += self.units.e_static_icn_per_s * icn.sigma;
        let cache = self.domain_scaling(config, DomainId::Cache)?;
        dynamic += usage.mem_accesses as f64 * self.units.e_access * cache.delta;
        static_per_s += self.units.e_static_cache_per_s * cache.sigma;
        Some(dynamic + static_per_s * secs)
    }

    /// A stable 64-bit fingerprint of every quantity that influences this
    /// model's estimates: the machine design, the calibration shares, the
    /// calibrated unit energies and the α-power parameters.
    ///
    /// Two models with equal fingerprints produce identical estimates for
    /// every `(config, usage)` pair, which makes the fingerprint a sound
    /// memoisation-key component for caches layered over the exploration
    /// pipeline. Floats are hashed by bit pattern, so the fingerprint is
    /// exact (no epsilon classes) and deterministic across runs.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.design.num_clusters.hash(&mut h);
        self.design.buses.hash(&mut h);
        self.design.cluster.int_fus.hash(&mut h);
        self.design.cluster.fp_fus.hash(&mut h);
        self.design.cluster.mem_ports.hash(&mut h);
        self.design.cluster.registers.hash(&mut h);
        for v in [
            self.shares.icn,
            self.shares.cache,
            self.shares.leak_cluster,
            self.shares.leak_icn,
            self.shares.leak_cache,
            self.units.e_ins,
            self.units.e_comm,
            self.units.e_access,
            self.units.e_static_cluster_per_s,
            self.units.e_static_icn_per_s,
            self.units.e_static_cache_per_s,
            self.alpha.alpha(),
            self.alpha.vdd_ref(),
            self.alpha.vth_ref(),
            self.alpha.freq_ref_ghz(),
            self.alpha.swing(),
        ] {
            v.to_bits().hash(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vliw_machine::Voltages;

    fn reference_profile() -> ReferenceProfile {
        ReferenceProfile {
            weighted_ins: 10_000.0,
            comms: 800,
            mem_accesses: 2_500,
            exec_time: Time::from_ns(20_000.0),
        }
    }

    fn model() -> PowerModel {
        PowerModel::calibrate(
            MachineDesign::paper_machine(1),
            EnergyShares::PAPER,
            &reference_profile(),
        )
    }

    #[test]
    fn reference_config_estimates_unit_energy() {
        let m = model();
        let cfg = ClockedConfig::reference(m.design());
        let usage = UsageProfile::homogeneous(&reference_profile(), 4);
        let e = m.estimate_energy(&cfg, &usage).unwrap();
        assert!((e - 1.0).abs() < 1e-12, "reference energy = {e}");
    }

    #[test]
    fn slower_run_leaks_more() {
        let m = model();
        let cfg = ClockedConfig::reference(m.design());
        let mut usage = UsageProfile::homogeneous(&reference_profile(), 4);
        usage.exec_time = Time::from_ns(40_000.0); // twice as long
        let e = m.estimate_energy(&cfg, &usage).unwrap();
        assert!(e > 1.0);
        // Static share of the reference machine: clusters 1/3·cluster-share
        // + ICN 10%·10% + cache 2/3·(1/3). Doubling time doubles it.
        let static_share = (1.0 - 0.1 - 1.0 / 3.0) / 3.0 + 0.1 * 0.1 + (1.0 / 3.0) * (2.0 / 3.0);
        assert!((e - (1.0 + static_share)).abs() < 1e-9);
    }

    #[test]
    fn lower_voltage_lower_frequency_saves_energy_at_equal_time() {
        let m = model();
        let design = m.design();
        // Same cycle count, 1.25 ns cycles at 0.9 V, same wall-clock usage
        // scaled: here simply keep the usage identical to isolate voltage.
        let slow =
            ClockedConfig::homogeneous(design, Time::from_ns(1.25)).with_voltages(Voltages {
                clusters: vec![0.9; 4],
                icn: 0.9,
                cache: 1.0,
            });
        let usage = UsageProfile::homogeneous(&reference_profile(), 4);
        let e_slow = m.estimate_energy(&slow, &usage).unwrap();
        // Dynamic scales by 0.81 on clusters and ICN; cache still 1.0 V but
        // at 0.8 GHz it can raise vth, cutting σ. Everything ≤ reference.
        assert!(e_slow < 1.0, "e_slow = {e_slow}");
    }

    #[test]
    fn infeasible_frequency_voltage_returns_none() {
        let m = model();
        let design = m.design();
        // 0.5 ns cycles (2 GHz) at 0.7 V is unreachable.
        let cfg = ClockedConfig::homogeneous(design, Time::from_ns(0.5)).with_voltages(Voltages {
            clusters: vec![0.7; 4],
            icn: 0.7,
            cache: 0.7,
        });
        let usage = UsageProfile::homogeneous(&reference_profile(), 4);
        assert!(m.estimate_energy(&cfg, &usage).is_none());
    }

    #[test]
    fn moving_work_to_low_voltage_cluster_saves_dynamic_energy() {
        let m = model();
        let design = m.design();
        // Cluster 0 fast at 1 V; clusters 1-3 at 1.25 ns and 0.8 V.
        let cfg = ClockedConfig::heterogeneous(design, Time::from_ns(1.0), 1, Time::from_ns(1.25))
            .with_voltages(Voltages {
                clusters: vec![1.0, 0.8, 0.8, 0.8],
                icn: 1.0,
                cache: 1.0,
            });
        let p = reference_profile();
        let balanced = UsageProfile::homogeneous(&p, 4);
        let mut skewed = balanced.clone();
        // Push most work into the low-voltage clusters.
        skewed.weighted_ins_per_cluster = vec![1_000.0, 3_000.0, 3_000.0, 3_000.0];
        let e_balanced = m.estimate_energy(&cfg, &balanced).unwrap();
        let e_skewed = m.estimate_energy(&cfg, &skewed).unwrap();
        assert!(e_skewed < e_balanced);
    }

    #[test]
    fn domain_scaling_reference_is_identity() {
        let m = model();
        let cfg = ClockedConfig::reference(m.design());
        for d in cfg.domains() {
            let s = m.domain_scaling(&cfg, d).unwrap();
            assert!((s.delta - 1.0).abs() < 1e-12);
            assert!((s.sigma - 1.0).abs() < 1e-9);
            assert!((s.vth - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "every cluster")]
    fn wrong_cluster_count_panics() {
        let m = model();
        let cfg = ClockedConfig::reference(m.design());
        let usage = UsageProfile {
            weighted_ins_per_cluster: vec![1.0; 2],
            comms: 0,
            mem_accesses: 0,
            exec_time: Time::from_ns(1.0),
        };
        let _ = m.estimate_energy(&cfg, &usage);
    }
}
