//! Property tests for the Pareto archive: the frontier is a pure
//! function of the *set* of inserted candidates — insertion order never
//! changes it.

use proptest::prelude::*;
use vliw_search::{ArchiveEntry, Objectives, ParetoArchive};

/// Builds an archive by inserting `entries` in the order given by `perm`
/// (a permutation encoded as successive removal positions).
fn build(entries: &[(u64, f64, f64)], order: &[usize]) -> ParetoArchive<u64> {
    let mut pool: Vec<&(u64, f64, f64)> = entries.iter().collect();
    let mut archive = ParetoArchive::new();
    for &pos in order {
        let (index, t, e) = *pool.remove(pos % pool.len().max(1));
        archive.insert(ArchiveEntry {
            index,
            point: index,
            objectives: Objectives::from_time_energy(t, e),
        });
        if pool.is_empty() {
            break;
        }
    }
    archive
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any two insertion orders of the same candidate set produce the
    /// same frontier (same indices, same objectives, same sort order).
    #[test]
    fn insertion_order_never_changes_the_frontier(
        // Coarse value grids force plenty of duplicate objectives and
        // dominance relations.
        raw in proptest::collection::vec((0u64..32, 1u32..8, 1u32..8), 1..24),
        order_a in proptest::collection::vec(0usize..64, 24..25),
        order_b in proptest::collection::vec(0usize..64, 24..25),
    ) {
        let entries: Vec<(u64, f64, f64)> = raw
            .iter()
            .map(|&(i, t, e)| (i, f64::from(t), f64::from(e)))
            .collect();
        let a = build(&entries, &order_a);
        let b = build(&entries, &order_b);
        prop_assert_eq!(a.entries(), b.entries());
        prop_assert_eq!(a.best(), b.best());
    }

    /// The frontier never contains a dominated or duplicated entry.
    #[test]
    fn frontier_is_mutually_non_dominated(
        raw in proptest::collection::vec((0u64..64, 1u32..10, 1u32..10), 1..32),
        order in proptest::collection::vec(0usize..64, 32..33),
    ) {
        let entries: Vec<(u64, f64, f64)> = raw
            .iter()
            .map(|&(i, t, e)| (i, f64::from(t), f64::from(e)))
            .collect();
        let archive = build(&entries, &order);
        let frontier = archive.entries();
        prop_assert!(!frontier.is_empty());
        for (i, x) in frontier.iter().enumerate() {
            for (j, y) in frontier.iter().enumerate() {
                if i != j {
                    prop_assert!(!x.objectives.dominates(&y.objectives));
                    prop_assert!(x.objectives != y.objectives);
                }
            }
        }
    }
}
