//! Property tests for gene-grid sharding: a search split round-robin
//! into `n` fully-covered shards, merged in any order, produces exactly
//! the unsharded frontier — the equivalence the `search merge` artifact
//! discipline rests on.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vliw_exec::Executor;
use vliw_search::{
    ArchiveEntry, Exhaustive, GridSpace, Objectives, Optimizer, ParetoArchive, SearchSpace,
    ShardedSpace, Strategy,
};

/// A deterministic synthetic objective with an infeasible pocket, like
/// the real voltage-range holes in the configuration space.
#[allow(clippy::ptr_arg)]
fn synth(genes: &Vec<u32>, _exec: &Executor) -> Option<Objectives> {
    if genes[0] == 1 && genes.get(1).is_some_and(|&g| g == 2) {
        return None;
    }
    let mut time = 2.0;
    let mut energy = 3.0;
    for (d, &g) in genes.iter().enumerate() {
        let x = f64::from(g);
        time += (x - 1.5 * d as f64).powi(2) + (0.9 * x).sin().abs();
        energy += (x - 0.7 * d as f64).powi(2) + (1.3 * x).cos().abs();
    }
    Some(Objectives::from_time_energy(time, energy))
}

/// Runs `strat` over every shard of an `n`-way split with full per-shard
/// coverage and merges the shard frontiers (local indices remapped to
/// global) in the given order.
fn merged_frontier(
    grid: &GridSpace,
    strat: Strategy,
    count: u64,
    shard_order: &[u64],
) -> ParetoArchive<Vec<u32>> {
    let mut merged = ParetoArchive::new();
    for &k in shard_order {
        let shard = ShardedSpace::new(grid, k, count);
        let outcome = strat.run(&shard, &synth, shard.size(), 5);
        assert_eq!(
            outcome.evaluations,
            shard.size(),
            "{strat}: full budget must fully cover shard {k}/{count}"
        );
        for e in outcome.archive.entries() {
            merged.insert(ArchiveEntry {
                index: shard.global_index(e.index),
                point: e.point.clone(),
                objectives: e.objectives,
            });
        }
    }
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Merged shard frontiers equal the unsharded frontier for every
    /// strategy, shard count 1..8, and either merge order.
    #[test]
    fn merged_equals_unsharded(
        dims in proptest::collection::vec(2u32..6, 2..4),
        count in 1u64..8,
        strat_i in 0usize..4,
        reverse in 0u32..2,
    ) {
        let grid = GridSpace::new(dims);
        let count = count.min(grid.size());
        let strat = Strategy::ALL[strat_i];
        let truth = Exhaustive.run(&grid, &synth, u64::MAX, 0);
        let mut order: Vec<u64> = (0..count).collect();
        if reverse == 1 {
            order.reverse();
        }
        let merged = merged_frontier(&grid, strat, count, &order);
        prop_assert_eq!(merged.entries(), truth.archive.entries());
    }

    /// The shard map `local ↔ global` round-trips and partitions.
    #[test]
    fn shard_indexing_partitions(
        dims in proptest::collection::vec(1u32..7, 1..4),
        count in 1u64..8,
    ) {
        let grid = GridSpace::new(dims);
        let count = count.min(grid.size());
        let mut covered = 0u64;
        for k in 0..count {
            let shard = ShardedSpace::new(&grid, k, count);
            covered += shard.size();
            for local in 0..shard.size() {
                let p = shard.point(local);
                prop_assert_eq!(shard.index(&p), local);
                prop_assert_eq!(grid.index(&p) % count, k);
                prop_assert_eq!(shard.local_index(shard.global_index(local)), local);
            }
        }
        prop_assert_eq!(covered, grid.size());
    }

    /// Random shard moves never leave the residue class.
    #[test]
    fn shard_moves_are_closed(
        dims in proptest::collection::vec(2u32..6, 2..4),
        count in 2u64..8,
        seed in 0u64..1024,
    ) {
        let grid = GridSpace::new(dims);
        let count = count.min(grid.size());
        let mut rng = SmallRng::seed_from_u64(seed);
        for k in 0..count {
            let shard = ShardedSpace::new(&grid, k, count);
            let a = shard.sample(&mut rng);
            let b = shard.sample(&mut rng);
            prop_assert_eq!(grid.index(&shard.mutate(&a, &mut rng)) % count, k);
            prop_assert_eq!(grid.index(&shard.crossover(&a, &b, &mut rng)) % count, k);
            let mut out = Vec::new();
            shard.neighbors(&a, &mut out);
            for n in &out {
                prop_assert_eq!(grid.index(n) % count, k);
            }
        }
    }
}
