//! The [`Optimizer`] interface, the shared evaluation state every
//! strategy runs on, and the [`SearchOutcome`] they all return.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};

use vliw_exec::Executor;

use crate::archive::{ArchiveEntry, ParetoArchive};
use crate::evaluate::{Evaluator, RacingPlan};
use crate::obs_counters;
use crate::space::{Objectives, SearchSpace};

/// Compares two evaluated candidates by `(objectives, index)`; `None`
/// (infeasible) ranks after every feasible candidate, ties on index.
/// Shared by the strategies' selection logic and the racing rung
/// ranking.
pub(crate) fn candidate_cmp(
    a: (Option<Objectives>, u64),
    b: (Option<Objectives>, u64),
) -> Ordering {
    match (a.0, b.0) {
        (Some(oa), Some(ob)) => oa.scalar_cmp(&ob).then_with(|| a.1.cmp(&b.1)),
        (Some(_), None) => Ordering::Less,
        (None, Some(_)) => Ordering::Greater,
        (None, None) => a.1.cmp(&b.1),
    }
}

/// One convergence-trace sample: the best scalar (ED²) seen after
/// `evaluations` distinct candidate evaluations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Distinct evaluations spent when this best was found.
    pub evaluations: u64,
    /// Canonical space index of the new best candidate.
    pub index: u64,
    /// Its ED².
    pub ed2: f64,
}

/// Everything one strategy run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome<P> {
    /// The strategy that ran.
    pub strategy: &'static str,
    /// The requested evaluation budget.
    pub budget: u64,
    /// The seed the run was started with.
    pub seed: u64,
    /// Size of the searched space.
    pub space_size: u64,
    /// Distinct candidate evaluations actually spent (≤ `budget`, and ≤
    /// `space_size` — memoised repeats are free).
    pub evaluations: u64,
    /// Distinct candidates screened by racing (0 when racing is off).
    /// Screens consume no budget; `evaluations + screened` is the total
    /// number of candidate dispositions the run made.
    pub screened: u64,
    /// The non-dominated frontier of everything evaluated.
    pub archive: ParetoArchive<P>,
    /// Convergence trace: every improvement of the scalar best.
    pub trace: Vec<TracePoint>,
}

impl<P: Clone> SearchOutcome<P> {
    /// The scalar winner (minimum ED², deterministic tie-breaking), if
    /// any feasible candidate was found.
    #[must_use]
    pub fn best(&self) -> Option<&ArchiveEntry<P>> {
        self.archive.best()
    }
}

/// A design-space search strategy.
///
/// Implementations must be deterministic functions of `(space, evaluate,
/// budget, seed)`: random decisions come from `seed` alone, and candidate
/// batches are fanned out through the executor's order-preserving `map`,
/// so the outcome is identical for every worker count.
pub trait Optimizer {
    /// The strategy's stable name (CLI/JSON identifier).
    fn name(&self) -> &'static str;

    /// Runs the strategy until `budget` distinct candidate evaluations
    /// are spent (or the whole space is evaluated, whichever comes
    /// first), fanning evaluation batches across `exec`.
    ///
    /// `evaluate` is any [`Evaluator`] — a plain closure via the blanket
    /// impl, or a [`crate::ScaledEvaluator`] carrying racing and
    /// warm-start hooks. It returns `None` for infeasible candidates;
    /// infeasible evaluations still consume budget (they cost the same
    /// work). Each call receives an [`Executor`] for its *internal*
    /// fan-out: the full pool when the engine has only one fresh
    /// candidate to evaluate (sequential strategies like annealing would
    /// otherwise leave every worker idle), the serial executor when
    /// candidates themselves are being fanned out in parallel.
    /// Evaluations must be deterministic for every worker count, as
    /// everything built on `Executor::map` is.
    ///
    /// Budget left over when a strategy's stochastic phase stalls (its
    /// restart/proposal/generation caps trip because random moves keep
    /// revisiting evaluated points) is spent scanning unevaluated
    /// candidates in index order. Consequently a budget of at least the
    /// space size always yields full coverage — and therefore the
    /// exhaustive-sweep optimum, the property the paper-grid validation
    /// pins.
    fn run_with<S, F>(
        &self,
        space: &S,
        evaluate: &F,
        budget: u64,
        seed: u64,
        exec: &Executor,
    ) -> SearchOutcome<S::Point>
    where
        S: SearchSpace,
        F: Evaluator<S::Point>;

    /// [`Optimizer::run_with`] on the calling thread only.
    fn run<S, F>(&self, space: &S, evaluate: &F, budget: u64, seed: u64) -> SearchOutcome<S::Point>
    where
        S: SearchSpace,
        F: Evaluator<S::Point>,
    {
        self.run_with(space, evaluate, budget, seed, &Executor::serial())
    }
}

/// The evaluation engine shared by every strategy: a memo table over
/// canonical indices, the distinct-evaluation budget, the Pareto archive
/// and the convergence trace — plus the racing screen memo and the
/// warm-start table when the evaluator provides them.
pub(crate) struct State<'a, S: SearchSpace, F> {
    space: &'a S,
    evaluate: &'a F,
    exec: &'a Executor,
    /// Effective budget: `min(requested, space size)` — once every point
    /// is evaluated there is nothing left to spend on.
    effective_budget: u64,
    requested_budget: u64,
    memo: BTreeMap<u64, Option<Objectives>>,
    evaluations: u64,
    archive: ParetoArchive<S::Point>,
    trace: Vec<TracePoint>,
    best: Option<(Objectives, u64)>,
    /// Successive-halving parameters, when the evaluator races.
    racing: Option<RacingPlan>,
    /// Screening results (racing only). Screens are free — they consume
    /// no budget — and never reach the memo, archive or trace.
    screen_memo: BTreeMap<u64, Option<Objectives>>,
    /// Distinct candidates screened (for throughput reporting).
    screened: u64,
    /// Warm-start table: persisted results consulted instead of
    /// [`Evaluator::evaluate`]. A warm hit still consumes budget and
    /// updates memo/archive/trace exactly as a measurement would.
    warm: BTreeMap<u64, Option<Objectives>>,
}

impl<'a, S, F> State<'a, S, F>
where
    S: SearchSpace,
    F: Evaluator<S::Point>,
{
    pub(crate) fn new(space: &'a S, evaluate: &'a F, budget: u64, exec: &'a Executor) -> Self {
        let mut archive = ParetoArchive::new();
        let mut warm = BTreeMap::new();
        for &(idx, obj) in evaluate.warm() {
            assert!(idx < space.size(), "warm index {idx} out of range");
            warm.insert(idx, obj);
            // Seed the archive before the first optimizer step: persisted
            // feasible results are part of the frontier even if this
            // run's walk never touches them again (resume semantics).
            if let Some(o) = obj {
                if o.is_finite()
                    && archive.insert(ArchiveEntry {
                        index: idx,
                        point: space.point(idx),
                        objectives: o,
                    })
                {
                    obs_counters::archive_inserts().inc();
                }
            }
        }
        State {
            space,
            evaluate,
            exec,
            effective_budget: budget.min(space.size()),
            requested_budget: budget,
            memo: BTreeMap::new(),
            evaluations: 0,
            archive,
            trace: Vec::new(),
            best: None,
            racing: evaluate.racing(),
            screen_memo: BTreeMap::new(),
            screened: 0,
            warm,
        }
    }

    /// Whether the run is over: the budget is spent or the space is
    /// fully evaluated.
    pub(crate) fn done(&self) -> bool {
        self.evaluations >= self.effective_budget
    }

    /// Distinct evaluations spent so far.
    pub(crate) fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// The effective budget (`min(requested, space size)`).
    pub(crate) fn effective_budget(&self) -> u64 {
        self.effective_budget
    }

    /// Evaluates a batch of points and returns their objectives in input
    /// order (`None` for infeasible candidates *and* for points left
    /// unevaluated because the budget ran out mid-batch).
    ///
    /// Already-memoised points are free; fresh points are deduplicated in
    /// first-occurrence order, truncated to the remaining budget, and
    /// fanned across the executor. Archive and trace updates happen in
    /// batch order, so the whole operation is deterministic for every
    /// worker count.
    pub(crate) fn eval_batch(&mut self, points: &[S::Point]) -> Vec<Option<Objectives>> {
        let mut fresh: Vec<(u64, S::Point)> = Vec::new();
        let remaining = (self.effective_budget - self.evaluations) as usize;
        for p in points {
            if fresh.len() >= remaining {
                break;
            }
            let idx = self.space.index(p);
            if !self.memo.contains_key(&idx) && fresh.iter().all(|(i, _)| *i != idx) {
                fresh.push((idx, p.clone()));
            }
        }
        // Racing: screen the batch on the cheap measurement and promote
        // only the most promising rung to the full measurement. Screens
        // consume no budget and never reach the archive; losers simply
        // stay un-memoised (they answer `None` this batch and remain
        // eligible for later rungs, where their cached screen is free).
        if let Some(plan) = self.racing {
            if fresh.len() >= plan.min_batch {
                let to_screen: Vec<(u64, S::Point)> = fresh
                    .iter()
                    .filter(|(i, _)| !self.screen_memo.contains_key(i))
                    .cloned()
                    .collect();
                let evaluate = self.evaluate;
                let inner = if to_screen.len() == 1 {
                    *self.exec
                } else {
                    Executor::serial()
                };
                let screens = self
                    .exec
                    .map(&to_screen, |_, (_, p)| evaluate.screen(p, &inner));
                self.screened += to_screen.len() as u64;
                obs_counters::screens().add(to_screen.len() as u64);
                for ((idx, _), obj) in to_screen.into_iter().zip(screens) {
                    self.screen_memo.insert(idx, obj);
                }
                let mut order: Vec<usize> = (0..fresh.len()).collect();
                order.sort_by(|&a, &b| {
                    candidate_cmp(
                        (self.screen_memo[&fresh[a].0], fresh[a].0),
                        (self.screen_memo[&fresh[b].0], fresh[b].0),
                    )
                });
                let keep: BTreeSet<u64> = order
                    .iter()
                    .take(plan.survivors(fresh.len()))
                    .map(|&i| fresh[i].0)
                    .collect();
                fresh.retain(|(i, _)| keep.contains(i));
                obs_counters::promotions().add(fresh.len() as u64);
            }
        }
        // With a single fresh candidate the outer map has no parallelism
        // to offer, so the evaluation itself gets the pool (annealing
        // proposals, hill-climb starts); with several, candidates fan
        // out and each evaluation stays serial to avoid oversubscribing.
        let evaluate = self.evaluate;
        let warm = &self.warm;
        let inner = if fresh.len() == 1 {
            *self.exec
        } else {
            Executor::serial()
        };
        let results = self.exec.map(&fresh, |_, (idx, p)| match warm.get(idx) {
            Some(&stored) => stored,
            None => evaluate.evaluate(p, &inner),
        });
        obs_counters::evals().add(fresh.len() as u64);
        for ((idx, p), obj) in fresh.into_iter().zip(results) {
            self.evaluations += 1;
            self.memo.insert(idx, obj);
            if let Some(o) = obj {
                if o.is_finite() {
                    if self.archive.insert(ArchiveEntry {
                        index: idx,
                        point: p,
                        objectives: o,
                    }) {
                        obs_counters::archive_inserts().inc();
                    }
                    let improved = match &self.best {
                        None => true,
                        Some((b, bi)) => {
                            o.scalar_cmp(b) == std::cmp::Ordering::Less
                                || (o.scalar_cmp(b) == std::cmp::Ordering::Equal && idx < *bi)
                        }
                    };
                    if improved {
                        self.best = Some((o, idx));
                        self.trace.push(TracePoint {
                            evaluations: self.evaluations,
                            index: idx,
                            ed2: o.ed2,
                        });
                    }
                }
            }
        }
        points
            .iter()
            .map(|p| self.memo.get(&self.space.index(p)).copied().flatten())
            .collect()
    }

    /// Evaluates one point (convenience over [`State::eval_batch`]).
    pub(crate) fn eval_one(&mut self, point: &S::Point) -> Option<Objectives> {
        self.eval_batch(std::slice::from_ref(point))[0]
    }

    /// Spends any remaining budget on unevaluated candidates in canonical
    /// index order.
    ///
    /// Strategies call this after their stochastic phase stalls (restart,
    /// proposal or generation caps): random walks revisit evaluated
    /// points ever more often as coverage grows, and this deterministic
    /// top-up turns the "budget ≥ space size finds the exhaustive
    /// optimum" property from a probabilistic one into a guarantee.
    ///
    /// Under racing each pass is one rung — a batch promotes only its
    /// screened survivors — so the sweep loops to a fixpoint: geometric
    /// promotion still reaches full coverage when the budget allows,
    /// preserving the frontier-equivalence guarantee.
    pub(crate) fn sweep_remaining(&mut self) {
        loop {
            let spent_before = self.evaluations;
            let size = self.space.size();
            let mut idx = 0u64;
            let mut batch = Vec::new();
            while !self.done() && idx < size {
                batch.clear();
                while idx < size && batch.len() < 256 {
                    if !self.memo.contains_key(&idx) {
                        batch.push(self.space.point(idx));
                    }
                    idx += 1;
                }
                if !batch.is_empty() {
                    self.eval_batch(&batch);
                }
            }
            if self.done() || self.evaluations == spent_before {
                break;
            }
        }
    }

    pub(crate) fn finish(self, strategy: &'static str, seed: u64) -> SearchOutcome<S::Point> {
        SearchOutcome {
            strategy,
            budget: self.requested_budget,
            seed,
            space_size: self.space.size(),
            evaluations: self.evaluations,
            screened: self.screened,
            archive: self.archive,
            trace: self.trace,
        }
    }
}
