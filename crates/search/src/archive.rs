//! The Pareto archive: the non-dominated frontier of everything a search
//! evaluated, with deterministic tie-breaking.

use crate::space::Objectives;

/// One archived candidate: its canonical space index, the point itself,
/// and its objectives.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveEntry<P> {
    /// Canonical index in the search space (the deterministic identity).
    pub index: u64,
    /// The candidate point.
    pub point: P,
    /// Its evaluated objectives.
    pub objectives: Objectives,
}

/// Maintains the non-dominated `(exec time, energy, ED²)` frontier of the
/// candidates inserted so far.
///
/// Determinism contract: the resulting frontier is a pure function of the
/// *set* of inserted `(index, objectives)` pairs — insertion order never
/// matters. This holds because
///
/// * dominated entries are rejected (or evicted) no matter when they
///   arrive,
/// * entries with **bit-identical objectives** are collapsed to the one
///   with the lowest space index (decoded machine configurations can
///   alias — e.g. every speed-split of a frequency-homogeneous design —
///   and the lowest index is the canonical representative),
/// * the frontier is kept sorted by `(exec time, energy, ED², index)`
///   with `total_cmp`, a total order.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoArchive<P> {
    entries: Vec<ArchiveEntry<P>>,
}

impl<P: Clone> ParetoArchive<P> {
    /// An empty archive.
    #[must_use]
    pub fn new() -> Self {
        ParetoArchive {
            entries: Vec::new(),
        }
    }

    /// Offers a candidate to the archive. Returns `true` when the entry
    /// joined the frontier (possibly evicting entries it dominates or an
    /// objective-identical entry with a higher index), `false` when it was
    /// rejected (non-finite objectives, dominated, or an identical entry
    /// with a lower-or-equal index already present).
    pub fn insert(&mut self, entry: ArchiveEntry<P>) -> bool {
        if !entry.objectives.is_finite() {
            return false;
        }
        for existing in &self.entries {
            if existing.objectives.dominates(&entry.objectives) {
                return false;
            }
            if existing.objectives == entry.objectives && existing.index <= entry.index {
                return false;
            }
        }
        self.entries.retain(|e| {
            let evicted = entry.objectives.dominates(&e.objectives)
                || (e.objectives == entry.objectives && e.index > entry.index);
            !evicted
        });
        let pos = self
            .entries
            .partition_point(|e| Self::frontier_order(e, &entry) == std::cmp::Ordering::Less);
        self.entries.insert(pos, entry);
        true
    }

    /// The frontier, sorted by `(exec time, energy, ED², index)`.
    #[must_use]
    pub fn entries(&self) -> &[ArchiveEntry<P>] {
        &self.entries
    }

    /// Number of frontier entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the frontier is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The scalar winner: the entry minimising `(ED², exec time, energy,
    /// index)` — the configuration a single-objective sweep would report.
    #[must_use]
    pub fn best(&self) -> Option<&ArchiveEntry<P>> {
        self.entries.iter().min_by(|a, b| {
            a.objectives
                .scalar_cmp(&b.objectives)
                .then_with(|| a.index.cmp(&b.index))
        })
    }

    fn frontier_order(a: &ArchiveEntry<P>, b: &ArchiveEntry<P>) -> std::cmp::Ordering {
        a.objectives
            .exec_time_ns
            .total_cmp(&b.objectives.exec_time_ns)
            .then_with(|| a.objectives.energy.total_cmp(&b.objectives.energy))
            .then_with(|| a.objectives.ed2.total_cmp(&b.objectives.ed2))
            .then_with(|| a.index.cmp(&b.index))
    }
}

impl<P: Clone> Default for ParetoArchive<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(index: u64, t: f64, e: f64) -> ArchiveEntry<u64> {
        ArchiveEntry {
            index,
            point: index,
            objectives: Objectives::from_time_energy(t, e),
        }
    }

    #[test]
    fn dominated_entries_are_rejected_and_evicted() {
        let mut a = ParetoArchive::new();
        assert!(a.insert(entry(0, 2.0, 2.0)));
        assert!(!a.insert(entry(1, 3.0, 3.0)), "dominated on arrival");
        assert!(a.insert(entry(2, 1.0, 3.0)), "incomparable joins");
        assert!(a.insert(entry(3, 1.0, 1.0)), "dominates everything");
        assert_eq!(a.len(), 1);
        assert_eq!(a.entries()[0].index, 3);
    }

    #[test]
    fn identical_objectives_keep_the_lowest_index() {
        let mut a = ParetoArchive::new();
        assert!(a.insert(entry(7, 1.0, 2.0)));
        assert!(!a.insert(entry(9, 1.0, 2.0)), "higher-index alias rejected");
        assert!(a.insert(entry(4, 1.0, 2.0)), "lower-index alias replaces");
        assert_eq!(a.len(), 1);
        assert_eq!(a.entries()[0].index, 4);
    }

    #[test]
    fn frontier_is_sorted_by_time_then_energy() {
        let mut a = ParetoArchive::new();
        a.insert(entry(0, 3.0, 1.0));
        a.insert(entry(1, 1.0, 3.0));
        a.insert(entry(2, 2.0, 2.0));
        let times: Vec<f64> = a
            .entries()
            .iter()
            .map(|e| e.objectives.exec_time_ns)
            .collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn best_minimises_ed2_with_index_tie_break() {
        let mut a = ParetoArchive::new();
        a.insert(entry(5, 1.0, 3.0));
        a.insert(entry(2, 3.0, 1.0));
        // ed2: 3e-18 vs 9e-18 — the first wins.
        assert_eq!(a.best().unwrap().index, 5);
        assert!(ParetoArchive::<u64>::new().best().is_none());
    }

    #[test]
    fn non_finite_objectives_never_enter() {
        let mut a = ParetoArchive::new();
        assert!(!a.insert(entry(0, f64::NAN, 1.0)));
        assert!(!a.insert(entry(1, f64::INFINITY, 1.0)));
        assert!(a.is_empty());
    }
}
