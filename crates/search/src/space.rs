//! Candidate spaces: the [`SearchSpace`] trait and the mixed-radix
//! [`GridSpace`] implementation, plus the [`Objectives`] every candidate
//! evaluates to.

use std::cmp::Ordering;

use rand::rngs::SmallRng;
use rand::Rng;

/// The three objectives of one evaluated candidate: execution time,
/// energy, and the paper's figure of merit ED² (energy × delay²).
///
/// ED² is carried explicitly rather than derived because suite-level
/// objectives are sums of per-benchmark terms (`Σ eᵢ·tᵢ²` is not a
/// function of `Σ eᵢ` and `Σ tᵢ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Execution time in nanoseconds (lower is better).
    pub exec_time_ns: f64,
    /// Energy in reference units (lower is better).
    pub energy: f64,
    /// Energy-delay-squared product in reference units × s² (lower is
    /// better; the scalar the strategies rank by).
    pub ed2: f64,
}

impl Objectives {
    /// Objectives for a single measurement, with `ed2 = energy · t²`
    /// (time converted from nanoseconds to seconds).
    #[must_use]
    pub fn from_time_energy(exec_time_ns: f64, energy: f64) -> Self {
        let secs = exec_time_ns * 1e-9;
        Objectives {
            exec_time_ns,
            energy,
            ed2: energy * secs * secs,
        }
    }

    /// Whether every objective is a finite number (archives reject
    /// anything else).
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.exec_time_ns.is_finite() && self.energy.is_finite() && self.ed2.is_finite()
    }

    /// Pareto dominance: `self` dominates `other` when it is no worse in
    /// every objective and strictly better in at least one.
    #[must_use]
    pub fn dominates(&self, other: &Objectives) -> bool {
        let no_worse = self.exec_time_ns <= other.exec_time_ns
            && self.energy <= other.energy
            && self.ed2 <= other.ed2;
        let better = self.exec_time_ns < other.exec_time_ns
            || self.energy < other.energy
            || self.ed2 < other.ed2;
        no_worse && better
    }

    /// The deterministic scalar ranking the strategies minimise: ED²
    /// first, execution time and energy as tie-breakers (callers break
    /// remaining ties on the candidate index). Uses `total_cmp`, so the
    /// order is total even in the presence of `-0.0`.
    #[must_use]
    pub fn scalar_cmp(&self, other: &Objectives) -> Ordering {
        self.ed2
            .total_cmp(&other.ed2)
            .then_with(|| self.exec_time_ns.total_cmp(&other.exec_time_ns))
            .then_with(|| self.energy.total_cmp(&other.energy))
    }
}

/// A finite, indexable candidate space the optimizers walk.
///
/// Every point has a canonical index in `0..size()`; the index is the
/// memoisation key, the deterministic tie-breaker, and the random-sampling
/// handle. Implementations must keep `point` and `index` mutually inverse
/// and all operations deterministic for fixed RNG state.
pub trait SearchSpace: Sync {
    /// One candidate.
    type Point: Clone + Send + Sync;

    /// Number of points in the space (finite, at least 1).
    fn size(&self) -> u64;

    /// The point with canonical index `index` (`index < size()`).
    fn point(&self, index: u64) -> Self::Point;

    /// The canonical index of `point` (inverse of [`SearchSpace::point`]).
    fn index(&self, point: &Self::Point) -> u64;

    /// Appends the deterministic neighbourhood of `point` to `out` (the
    /// moves steepest-descent hill climbing considers). Must not include
    /// `point` itself and must be symmetric enough to connect the space.
    fn neighbors(&self, point: &Self::Point, out: &mut Vec<Self::Point>);

    /// A random small move away from `point` (annealing proposals, GA
    /// mutation). Must be able to reach the whole space through repeated
    /// application.
    fn mutate(&self, point: &Self::Point, rng: &mut SmallRng) -> Self::Point;

    /// A random recombination of two parents (GA crossover).
    fn crossover(&self, a: &Self::Point, b: &Self::Point, rng: &mut SmallRng) -> Self::Point;

    /// A uniformly random point.
    fn sample(&self, rng: &mut SmallRng) -> Self::Point {
        self.point(rng.gen_range(0..self.size()))
    }
}

/// A mixed-radix grid: points are gene vectors with `genes[d] <
/// dims[d]`, indexed row-major with dimension 0 fastest.
///
/// This is the workhorse space: the exploration layer describes a machine
/// configuration as a tuple of menu positions (cycle factor, slow/fast
/// ratio, speed-group split, bus width, per-group supply voltages) and
/// lets [`GridSpace`] provide indexing, neighbourhoods (±1 step per
/// dimension), mutation (re-draw one gene) and uniform crossover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSpace {
    dims: Vec<u32>,
}

impl GridSpace {
    /// A grid with the given per-dimension sizes.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty, any dimension is zero, or the total
    /// size overflows `u64`.
    #[must_use]
    pub fn new(dims: Vec<u32>) -> Self {
        assert!(!dims.is_empty(), "a grid needs at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "dimensions must be non-empty");
        let mut size = 1u64;
        for &d in &dims {
            size = size
                .checked_mul(u64::from(d))
                .expect("grid size must fit in u64");
        }
        GridSpace { dims }
    }

    /// The per-dimension sizes.
    #[must_use]
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }
}

impl SearchSpace for GridSpace {
    type Point = Vec<u32>;

    fn size(&self) -> u64 {
        self.dims.iter().map(|&d| u64::from(d)).product()
    }

    fn point(&self, index: u64) -> Vec<u32> {
        assert!(index < self.size(), "index {index} out of range");
        let mut rest = index;
        self.dims
            .iter()
            .map(|&d| {
                let g = (rest % u64::from(d)) as u32;
                rest /= u64::from(d);
                g
            })
            .collect()
    }

    fn index(&self, point: &Vec<u32>) -> u64 {
        assert_eq!(point.len(), self.dims.len(), "gene count mismatch");
        let mut idx = 0u64;
        let mut stride = 1u64;
        for (&g, &d) in point.iter().zip(&self.dims) {
            assert!(g < d, "gene {g} out of range 0..{d}");
            idx += u64::from(g) * stride;
            stride *= u64::from(d);
        }
        idx
    }

    fn neighbors(&self, point: &Vec<u32>, out: &mut Vec<Vec<u32>>) {
        for (d, &dim) in self.dims.iter().enumerate() {
            if point[d] > 0 {
                let mut n = point.clone();
                n[d] -= 1;
                out.push(n);
            }
            if point[d] + 1 < dim {
                let mut n = point.clone();
                n[d] += 1;
                out.push(n);
            }
        }
    }

    fn mutate(&self, point: &Vec<u32>, rng: &mut SmallRng) -> Vec<u32> {
        // Re-draw one gene of a multi-valued dimension to a different
        // value (the classic "exclude current" draw), so a mutation is
        // never the identity on spaces with more than one point.
        let movable: Vec<usize> = (0..self.dims.len()).filter(|&d| self.dims[d] > 1).collect();
        if movable.is_empty() {
            return point.clone();
        }
        let d = movable[rng.gen_range(0..movable.len())];
        let mut next = point.clone();
        let draw = rng.gen_range(0..self.dims[d] - 1);
        next[d] = if draw >= point[d] { draw + 1 } else { draw };
        next
    }

    fn crossover(&self, a: &Vec<u32>, b: &Vec<u32>, rng: &mut SmallRng) -> Vec<u32> {
        a.iter()
            .zip(b)
            .map(|(&ga, &gb)| if rng.gen_bool(0.5) { ga } else { gb })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn dominance_is_strict_and_irreflexive() {
        let a = Objectives::from_time_energy(1.0, 1.0);
        let b = Objectives::from_time_energy(2.0, 1.0);
        let c = Objectives::from_time_energy(0.5, 3.0);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "equal points do not dominate");
        assert!(!a.dominates(&c) && !c.dominates(&a), "incomparable pair");
    }

    #[test]
    fn index_point_round_trip() {
        let g = GridSpace::new(vec![5, 4, 3]);
        assert_eq!(g.size(), 60);
        for idx in 0..g.size() {
            let p = g.point(idx);
            assert_eq!(g.index(&p), idx);
            assert!(p.iter().zip(g.dims()).all(|(&x, &d)| x < d));
        }
    }

    #[test]
    fn neighbors_step_one_dimension_by_one() {
        let g = GridSpace::new(vec![5, 4]);
        let mut out = Vec::new();
        g.neighbors(&vec![0, 2], &mut out);
        assert_eq!(out, vec![vec![1, 2], vec![0, 1], vec![0, 3]]);
        out.clear();
        g.neighbors(&vec![4, 3], &mut out);
        assert_eq!(out, vec![vec![3, 3], vec![4, 2]]);
    }

    #[test]
    fn mutation_changes_exactly_one_multi_valued_gene() {
        let g = GridSpace::new(vec![5, 1, 4]);
        let mut rng = SmallRng::seed_from_u64(9);
        let p = vec![2, 0, 3];
        for _ in 0..200 {
            let m = g.mutate(&p, &mut rng);
            let diffs: Vec<usize> = (0..3).filter(|&d| m[d] != p[d]).collect();
            assert_eq!(diffs.len(), 1, "{m:?}");
            assert_ne!(diffs[0], 1, "size-1 dimensions never move");
            assert!(m[diffs[0]] < g.dims()[diffs[0]]);
        }
    }

    #[test]
    fn crossover_picks_genes_from_parents() {
        let g = GridSpace::new(vec![10, 10, 10]);
        let mut rng = SmallRng::seed_from_u64(3);
        let (a, b) = (vec![1, 2, 3], vec![7, 8, 9]);
        for _ in 0..100 {
            let c = g.crossover(&a, &b, &mut rng);
            for d in 0..3 {
                assert!(c[d] == a[d] || c[d] == b[d], "{c:?}");
            }
        }
    }

    #[test]
    fn sampling_is_uniform_enough_and_in_range() {
        let g = GridSpace::new(vec![6]);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = [0u32; 6];
        for _ in 0..600 {
            seen[g.sample(&mut rng)[0] as usize] += 1;
        }
        assert!(seen.iter().all(|&c| c > 40), "{seen:?}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_dimension_panics() {
        let _ = GridSpace::new(vec![3, 0]);
    }
}
