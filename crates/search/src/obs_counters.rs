//! Process-wide search telemetry: interned-once counter handles for the
//! evaluation engine (`search_evals_total`, `search_screens_total`,
//! `search_promotions_total`, `search_archive_inserts_total`).
//!
//! Handles live in `OnceLock`s so the per-event cost is one relaxed
//! atomic add — the search hot loop never touches the registry lock
//! after the first batch.

use std::sync::{Arc, OnceLock};

use vliw_obs::Counter;

/// Distinct full-fidelity candidate evaluations.
pub(crate) fn evals() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| vliw_obs::counter("search_evals_total"))
}

/// Candidates screened by racing (cheap measurements).
pub(crate) fn screens() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| vliw_obs::counter("search_screens_total"))
}

/// Screened candidates promoted to the full measurement.
pub(crate) fn promotions() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| vliw_obs::counter("search_promotions_total"))
}

/// Candidates that joined the Pareto frontier.
pub(crate) fn archive_inserts() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| vliw_obs::counter("search_archive_inserts_total"))
}
