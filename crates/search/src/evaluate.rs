//! The [`Evaluator`] abstraction: what the optimizers call to score a
//! candidate, extended with the two scaling hooks the engine understands
//! — successive-halving **racing** (a cheap screening measurement gates
//! promotion to the full measurement) and **warm starts** (persisted
//! evaluations seed the archive and replace re-measurement).
//!
//! A plain closure `Fn(&P, &Executor) -> Option<Objectives>` is an
//! [`Evaluator`] via the blanket impl (full measurement only, no
//! screening, no warm entries), so every pre-existing call site keeps
//! working unchanged. [`ScaledEvaluator`] composes a full-measurement
//! closure with a screening closure, a [`RacingPlan`] and a warm-entry
//! table without requiring a hand-written trait impl.
//!
//! # Equivalence contract
//!
//! Racing never lets a screening result into the archive: screened
//! losers are simply *not measured this batch* (they return `None` and
//! stay un-memoised), while survivors go through the ordinary
//! full-measurement path. Combined with the engine's deterministic
//! index-order sweep of leftover budget, a budget of at least the space
//! size still reaches full coverage — so the final frontier is
//! *identical* to the non-racing frontier, a property the differential
//! tests pin per strategy. Under a partial budget racing is a heuristic
//! reallocation of measurements, not an equivalence.

use vliw_exec::Executor;

use crate::space::Objectives;

/// Successive-halving parameters for a racing evaluator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RacingPlan {
    /// Smallest fresh-candidate batch racing engages on. Below this the
    /// batch is fully measured — screening one or two candidates saves
    /// nothing and single-candidate batches (hill-climb starts,
    /// annealing proposals) must stay exact.
    pub min_batch: usize,
    /// Halving factor: `ceil(n / eta)` screened candidates survive each
    /// rung.
    pub eta: u64,
    /// Hard cap on survivors promoted per rung, derived from the budget
    /// so one oversized batch cannot swallow the whole run.
    pub max_rung: u64,
}

impl RacingPlan {
    /// The default plan for a given evaluation budget: engage at batches
    /// of 4, halve each rung (`eta = 2`), and cap rungs at a quarter of
    /// the budget (at least 1).
    #[must_use]
    pub fn from_budget(budget: u64) -> Self {
        RacingPlan {
            min_batch: 4,
            eta: 2,
            max_rung: (budget / 4).max(1),
        }
    }

    /// Survivors of a rung over `fresh` screened candidates:
    /// `min(ceil(fresh / eta), max_rung)`, at least 1.
    #[must_use]
    pub fn survivors(&self, fresh: usize) -> usize {
        let halved = (fresh as u64).div_ceil(self.eta.max(1)).max(1);
        usize::try_from(halved.min(self.max_rung.max(1))).unwrap_or(fresh)
    }
}

/// Scores candidates for the optimizers.
///
/// Implementations must be deterministic: the same point yields the
/// same objectives on every call, worker count and machine. `None`
/// means the candidate is infeasible (also deterministic).
pub trait Evaluator<P>: Sync {
    /// The full-fidelity measurement. This is the only method whose
    /// results reach the archive, memo table and convergence trace.
    fn evaluate(&self, point: &P, exec: &Executor) -> Option<Objectives>;

    /// The cheap screening measurement racing ranks by (defaults to the
    /// full measurement, which makes racing pointless but correct).
    /// Screening results never reach the archive; they only order
    /// candidates within a rung.
    fn screen(&self, point: &P, exec: &Executor) -> Option<Objectives> {
        self.evaluate(point, exec)
    }

    /// The racing plan, or `None` to measure every candidate fully.
    fn racing(&self) -> Option<RacingPlan> {
        None
    }

    /// Persisted evaluations to warm-start from, as `(canonical index,
    /// result)` pairs sorted by index. Warm entries pre-seed the Pareto
    /// archive before the first optimizer step and replace the
    /// [`evaluate`](Evaluator::evaluate) call when the walk first
    /// touches that index — the touch still consumes budget and updates
    /// memo/archive/trace exactly as a measurement would, so a warm run
    /// replays its cold counterpart byte for byte.
    fn warm(&self) -> &[(u64, Option<Objectives>)] {
        &[]
    }
}

impl<P, F> Evaluator<P> for F
where
    F: Fn(&P, &Executor) -> Option<Objectives> + Sync,
{
    fn evaluate(&self, point: &P, exec: &Executor) -> Option<Objectives> {
        self(point, exec)
    }
}

/// An [`Evaluator`] assembled from closures plus the scaling knobs:
/// a full-measurement function, an optional screening function with its
/// [`RacingPlan`], and an optional warm-entry table.
pub struct ScaledEvaluator<F, G> {
    full: F,
    screening: G,
    racing: Option<RacingPlan>,
    warm: Vec<(u64, Option<Objectives>)>,
}

impl<F, G> std::fmt::Debug for ScaledEvaluator<F, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScaledEvaluator")
            .field("racing", &self.racing)
            .field("warm_entries", &self.warm.len())
            .finish_non_exhaustive()
    }
}

impl<F> ScaledEvaluator<F, F>
where
    F: Clone,
{
    /// An evaluator that measures fully on both paths (no racing, no
    /// warm entries) — the identity wrapping of a plain closure.
    pub fn full(evaluate: F) -> Self {
        ScaledEvaluator {
            full: evaluate.clone(),
            screening: evaluate,
            racing: None,
            warm: Vec::new(),
        }
    }
}

impl<F, G> ScaledEvaluator<F, G> {
    /// An evaluator with distinct full and screening measurements
    /// (racing still off until [`with_racing`](Self::with_racing)).
    pub fn new(full: F, screening: G) -> Self {
        ScaledEvaluator {
            full,
            screening,
            racing: None,
            warm: Vec::new(),
        }
    }

    /// Enables successive-halving racing with `plan`.
    #[must_use]
    pub fn with_racing(mut self, plan: RacingPlan) -> Self {
        self.racing = Some(plan);
        self
    }

    /// Installs warm-start entries (must be sorted by index with no
    /// duplicates).
    ///
    /// # Panics
    ///
    /// Panics if `warm` is not strictly sorted by index.
    #[must_use]
    pub fn with_warm(mut self, warm: Vec<(u64, Option<Objectives>)>) -> Self {
        assert!(
            warm.windows(2).all(|w| w[0].0 < w[1].0),
            "warm entries must be strictly sorted by index"
        );
        self.warm = warm;
        self
    }
}

impl<P, F, G> Evaluator<P> for ScaledEvaluator<F, G>
where
    F: Fn(&P, &Executor) -> Option<Objectives> + Sync,
    G: Fn(&P, &Executor) -> Option<Objectives> + Sync,
{
    fn evaluate(&self, point: &P, exec: &Executor) -> Option<Objectives> {
        (self.full)(point, exec)
    }

    fn screen(&self, point: &P, exec: &Executor) -> Option<Objectives> {
        (self.screening)(point, exec)
    }

    fn racing(&self) -> Option<RacingPlan> {
        self.racing
    }

    fn warm(&self) -> &[(u64, Option<Objectives>)] {
        &self.warm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_from_budget_scales_rungs() {
        let plan = RacingPlan::from_budget(64);
        assert_eq!((plan.min_batch, plan.eta, plan.max_rung), (4, 2, 16));
        assert_eq!(RacingPlan::from_budget(0).max_rung, 1);
        assert_eq!(RacingPlan::from_budget(3).max_rung, 1);
    }

    #[test]
    fn survivors_halve_and_cap() {
        let plan = RacingPlan {
            min_batch: 4,
            eta: 2,
            max_rung: 3,
        };
        assert_eq!(plan.survivors(8), 3); // ceil(8/2)=4, capped at 3
        assert_eq!(plan.survivors(5), 3);
        assert_eq!(plan.survivors(4), 2);
        assert_eq!(plan.survivors(1), 1);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_warm_entries_panic() {
        let obj = Objectives::from_time_energy(1.0, 1.0);
        let _ = ScaledEvaluator::full(|_: &u64, _: &Executor| None::<Objectives>)
            .with_warm(vec![(3, Some(obj)), (1, None)]);
    }
}
