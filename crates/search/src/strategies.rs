//! The built-in optimizers: steepest-descent hill climbing with restarts,
//! simulated annealing, a small generational GA, and the exhaustive
//! reference scan — plus [`Strategy`], the by-name dispatcher.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vliw_exec::Executor;

use crate::evaluate::Evaluator;
use crate::optimize::{candidate_cmp, Optimizer, SearchOutcome, State};
use crate::space::{Objectives, SearchSpace};

/// Steepest-descent hill climbing with random restarts.
///
/// Each restart draws a random start, evaluates its full deterministic
/// neighbourhood, moves to the strictly best improving neighbour, and
/// repeats until a local optimum; restarts continue until the budget is
/// spent. Because duplicate evaluations are free, a budget at least the
/// space size drives the restarts into full coverage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HillClimb;

impl Optimizer for HillClimb {
    fn name(&self) -> &'static str {
        "hillclimb"
    }

    fn run_with<S, F>(
        &self,
        space: &S,
        evaluate: &F,
        budget: u64,
        seed: u64,
        exec: &Executor,
    ) -> SearchOutcome<S::Point>
    where
        S: SearchSpace,
        F: Evaluator<S::Point>,
    {
        let mut state = State::new(space, evaluate, budget, exec);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x4849_4C4C); // "HILL"
        let mut neighborhood = Vec::new();
        // Restarts that evaluate nothing new mean random sampling keeps
        // landing on covered ground; after a streak of them, hand the
        // remaining budget to the deterministic sweep below.
        let mut stale_restarts = 0u32;
        while !state.done() && stale_restarts < 256 {
            let spent_before = state.evaluations();
            let start = space.sample(&mut rng);
            let Some(mut current_obj) = state.eval_one(&start) else {
                if state.evaluations() == spent_before {
                    stale_restarts += 1;
                } else {
                    stale_restarts = 0;
                }
                continue; // infeasible start: restart
            };
            let mut current = start;
            while !state.done() {
                neighborhood.clear();
                space.neighbors(&current, &mut neighborhood);
                let objs = state.eval_batch(&neighborhood);
                let mut best: Option<(usize, Objectives)> = None;
                for (i, obj) in objs.iter().enumerate() {
                    let Some(o) = obj else { continue };
                    let idx = space.index(&neighborhood[i]);
                    let better = match best {
                        None => true,
                        Some((bi, bo)) => {
                            candidate_cmp(
                                (Some(*o), idx),
                                (Some(bo), space.index(&neighborhood[bi])),
                            ) == Ordering::Less
                        }
                    };
                    if better {
                        best = Some((i, *o));
                    }
                }
                match best {
                    Some((i, o)) if o.scalar_cmp(&current_obj) == Ordering::Less => {
                        current = neighborhood[i].clone();
                        current_obj = o;
                    }
                    _ => break, // local optimum: restart
                }
            }
            if state.evaluations() == spent_before {
                stale_restarts += 1;
            } else {
                stale_restarts = 0;
            }
        }
        state.sweep_remaining();
        state.finish(self.name(), seed)
    }
}

/// Simulated annealing with a geometric cooling schedule on *relative*
/// ED² deterioration.
///
/// Proposals are random [`SearchSpace::mutate`] moves; a worse candidate
/// with deterioration `δ = (ED²ₙₑᵥᵥ − ED²ᵪᵤᵣ)/ED²ᵪᵤᵣ` relative to the
/// chain's current point is
/// accepted with probability `exp(−δ/T)`, where `T` cools geometrically
/// from [`Anneal::t0`] to [`Anneal::t_end`] as the distinct-evaluation
/// budget is consumed. Long rejection streaks trigger a random restart
/// (re-heat), which also guarantees coverage on small spaces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Anneal {
    /// Initial relative temperature.
    pub t0: f64,
    /// Final relative temperature.
    pub t_end: f64,
}

impl Default for Anneal {
    fn default() -> Self {
        Anneal {
            t0: 0.25,
            t_end: 1e-3,
        }
    }
}

impl Optimizer for Anneal {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn run_with<S, F>(
        &self,
        space: &S,
        evaluate: &F,
        budget: u64,
        seed: u64,
        exec: &Executor,
    ) -> SearchOutcome<S::Point>
    where
        S: SearchSpace,
        F: Evaluator<S::Point>,
    {
        let mut state = State::new(space, evaluate, budget, exec);
        // 0x414E4E45414C spells "ANNEAL".
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x414E_4E45_414C);
        // Memoised proposals are free but still advance the chain; the
        // proposal cap bounds the walk when the space is nearly covered.
        let max_proposals = state.effective_budget().saturating_mul(64).max(1024);
        let mut proposals = 0u64;
        'chains: while !state.done() && proposals < max_proposals {
            let start = space.sample(&mut rng);
            proposals += 1;
            let Some(mut current_obj) = state.eval_one(&start) else {
                continue;
            };
            let mut current = start;
            let mut rejections = 0u32;
            while !state.done() && proposals < max_proposals {
                let proposal = space.mutate(&current, &mut rng);
                proposals += 1;
                let progress = if state.effective_budget() == 0 {
                    1.0
                } else {
                    state.evaluations() as f64 / state.effective_budget() as f64
                };
                let temperature = self.t0 * (self.t_end / self.t0).powf(progress.clamp(0.0, 1.0));
                match state.eval_one(&proposal) {
                    None => rejections += 1,
                    Some(o) => {
                        let accept = if o.scalar_cmp(&current_obj) != Ordering::Greater {
                            true
                        } else {
                            let scale = current_obj.ed2.abs().max(f64::MIN_POSITIVE);
                            let delta = (o.ed2 - current_obj.ed2) / scale;
                            rng.gen::<f64>() < (-delta / temperature).exp()
                        };
                        if accept {
                            current = proposal;
                            current_obj = o;
                            rejections = 0;
                        } else {
                            rejections += 1;
                        }
                    }
                }
                if rejections > 64 {
                    continue 'chains; // re-heat from a fresh random point
                }
            }
        }
        state.sweep_remaining();
        state.finish(self.name(), seed)
    }
}

/// A small generational genetic algorithm: tournament selection, uniform
/// crossover, one-gene mutation, elitism, and random immigrants.
///
/// The immigrants keep the population from collapsing onto a local
/// optimum and guarantee that, with enough budget, the whole (finite)
/// space stays reachable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Genetic {
    /// Population size (clamped to the effective budget).
    pub population: usize,
    /// Probability a child is mutated after crossover.
    pub mutation_rate: f64,
    /// Best-of-generation survivors copied verbatim.
    pub elites: usize,
    /// Fresh random points injected per generation.
    pub immigrants: usize,
}

impl Default for Genetic {
    fn default() -> Self {
        Genetic {
            population: 12,
            mutation_rate: 0.3,
            elites: 2,
            immigrants: 2,
        }
    }
}

impl Optimizer for Genetic {
    fn name(&self) -> &'static str {
        "ga"
    }

    fn run_with<S, F>(
        &self,
        space: &S,
        evaluate: &F,
        budget: u64,
        seed: u64,
        exec: &Executor,
    ) -> SearchOutcome<S::Point>
    where
        S: SearchSpace,
        F: Evaluator<S::Point>,
    {
        let mut state = State::new(space, evaluate, budget, exec);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x4745_4E45); // "GENE"
        let pop_n = self
            .population
            .max(2)
            .min(usize::try_from(state.effective_budget().max(2)).unwrap_or(usize::MAX));
        let mut population: Vec<S::Point> = (0..pop_n).map(|_| space.sample(&mut rng)).collect();
        let mut fitness = state.eval_batch(&population);
        // Generations are bounded so a fully-memoised population (every
        // child already evaluated) cannot spin forever near exhaustion.
        let max_generations = state.effective_budget().saturating_mul(16).max(64);
        let mut generation = 0u64;
        let mut stale_generations = 0u32;
        while !state.done() && generation < max_generations && stale_generations < 64 {
            generation += 1;
            let spent_before = state.evaluations();
            let mut ranked: Vec<usize> = (0..population.len()).collect();
            ranked.sort_by(|&a, &b| {
                candidate_cmp(
                    (fitness[a], space.index(&population[a])),
                    (fitness[b], space.index(&population[b])),
                )
            });
            let mut next: Vec<S::Point> = ranked
                .iter()
                .take(self.elites.min(pop_n))
                .map(|&i| population[i].clone())
                .collect();
            for _ in 0..self.immigrants.min(pop_n.saturating_sub(next.len())) {
                next.push(space.sample(&mut rng));
            }
            let tournament = |rng: &mut SmallRng| -> usize {
                let a = rng.gen_range(0..population.len());
                let b = rng.gen_range(0..population.len());
                if candidate_cmp(
                    (fitness[a], space.index(&population[a])),
                    (fitness[b], space.index(&population[b])),
                ) == Ordering::Greater
                {
                    b
                } else {
                    a
                }
            };
            while next.len() < pop_n {
                let pa = tournament(&mut rng);
                let pb = tournament(&mut rng);
                let mut child = space.crossover(&population[pa], &population[pb], &mut rng);
                if rng.gen::<f64>() < self.mutation_rate {
                    child = space.mutate(&child, &mut rng);
                }
                next.push(child);
            }
            fitness = state.eval_batch(&next);
            population = next;
            if state.evaluations() == spent_before {
                stale_generations += 1;
            } else {
                stale_generations = 0;
            }
        }
        state.sweep_remaining();
        state.finish(self.name(), seed)
    }
}

/// The exhaustive reference scan: evaluates every point of the space in
/// canonical index order (truncated to the budget). This is the ground
/// truth the metaheuristics are validated against on the paper's grid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Exhaustive;

impl Optimizer for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn run_with<S, F>(
        &self,
        space: &S,
        evaluate: &F,
        budget: u64,
        seed: u64,
        exec: &Executor,
    ) -> SearchOutcome<S::Point>
    where
        S: SearchSpace,
        F: Evaluator<S::Point>,
    {
        let mut state = State::new(space, evaluate, budget, exec);
        const CHUNK: u64 = 256;
        let mut next = 0u64;
        while !state.done() && next < space.size() {
            let end = (next + CHUNK).min(space.size());
            let batch: Vec<S::Point> = (next..end).map(|i| space.point(i)).collect();
            state.eval_batch(&batch);
            next = end;
        }
        // Under racing each chunk promotes only its screened survivors;
        // the fixpoint sweep spends the leftover budget on the losers so
        // full-budget runs still cover the whole space.
        state.sweep_remaining();
        state.finish(self.name(), seed)
    }
}

/// The built-in strategies, dispatchable by their stable CLI names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Steepest-descent hill climbing with restarts (`hillclimb`).
    HillClimb,
    /// Simulated annealing (`anneal`).
    Anneal,
    /// Generational genetic algorithm (`ga`).
    Genetic,
    /// Exhaustive index-order scan (`exhaustive`).
    Exhaustive,
}

impl Strategy {
    /// Every strategy, in canonical order.
    pub const ALL: [Strategy; 4] = [
        Strategy::HillClimb,
        Strategy::Anneal,
        Strategy::Genetic,
        Strategy::Exhaustive,
    ];

    /// The metaheuristics (everything except the exhaustive scan).
    pub const METAHEURISTICS: [Strategy; 3] =
        [Strategy::HillClimb, Strategy::Anneal, Strategy::Genetic];

    /// The strategy's stable name (`hillclimb`, `anneal`, `ga`,
    /// `exhaustive`).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Strategy::HillClimb => "hillclimb",
            Strategy::Anneal => "anneal",
            Strategy::Genetic => "ga",
            Strategy::Exhaustive => "exhaustive",
        }
    }

    /// Runs this strategy (default configuration) with the given
    /// executor.
    pub fn run_with<S, F>(
        self,
        space: &S,
        evaluate: &F,
        budget: u64,
        seed: u64,
        exec: &Executor,
    ) -> SearchOutcome<S::Point>
    where
        S: SearchSpace,
        F: Evaluator<S::Point>,
    {
        match self {
            Strategy::HillClimb => HillClimb.run_with(space, evaluate, budget, seed, exec),
            Strategy::Anneal => Anneal::default().run_with(space, evaluate, budget, seed, exec),
            Strategy::Genetic => Genetic::default().run_with(space, evaluate, budget, seed, exec),
            Strategy::Exhaustive => Exhaustive.run_with(space, evaluate, budget, seed, exec),
        }
    }

    /// Runs this strategy serially.
    pub fn run<S, F>(
        self,
        space: &S,
        evaluate: &F,
        budget: u64,
        seed: u64,
    ) -> SearchOutcome<S::Point>
    where
        S: SearchSpace,
        F: Evaluator<S::Point>,
    {
        self.run_with(space, evaluate, budget, seed, &Executor::serial())
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Strategy::ALL
            .into_iter()
            .find(|st| st.name() == s)
            .ok_or_else(|| format!("unknown strategy {s} (hillclimb|anneal|ga|exhaustive)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::GridSpace;

    /// A deterministic bumpy objective with one global optimum.
    #[allow(clippy::ptr_arg)] // must match Fn(&<GridSpace as SearchSpace>::Point, &Executor)
    fn bumpy(genes: &Vec<u32>, _exec: &Executor) -> Option<Objectives> {
        let x = f64::from(genes[0]);
        let y = f64::from(genes[1]);
        // Infeasible pocket, as real voltage ranges produce.
        if genes[0] == 3 && genes[1] < 4 {
            return None;
        }
        let time = 2.0 + (x - 13.0).powi(2) + (2.3 * x).sin().abs();
        let energy = 2.0 + (y - 5.0).powi(2) + (1.7 * y).cos().abs();
        Some(Objectives::from_time_energy(time, energy))
    }

    fn space() -> GridSpace {
        GridSpace::new(vec![24, 18])
    }

    #[test]
    fn every_strategy_with_full_budget_matches_exhaustive() {
        let s = space();
        let truth = Exhaustive.run(&s, &bumpy, u64::MAX, 0);
        assert_eq!(truth.evaluations, s.size());
        let best = truth.best().expect("feasible points exist");
        for strat in Strategy::METAHEURISTICS {
            let outcome = strat.run(&s, &bumpy, s.size(), 11);
            assert_eq!(
                outcome.evaluations,
                s.size(),
                "{strat}: full budget must reach full coverage"
            );
            let got = outcome.best().expect("feasible");
            assert_eq!(got.index, best.index, "{strat}");
            assert_eq!(got.objectives, best.objectives, "{strat}");
            assert_eq!(
                outcome.archive.entries(),
                truth.archive.entries(),
                "{strat}: full coverage implies the exact frontier"
            );
        }
    }

    #[test]
    fn budget_bounds_distinct_evaluations() {
        let s = space();
        for strat in Strategy::ALL {
            for budget in [0u64, 1, 7, 40] {
                let outcome = strat.run(&s, &bumpy, budget, 3);
                assert!(
                    outcome.evaluations <= budget,
                    "{strat}: {} evaluations for budget {budget}",
                    outcome.evaluations
                );
            }
        }
    }

    #[test]
    fn outcomes_are_deterministic_across_worker_counts() {
        let s = space();
        for strat in Strategy::ALL {
            let serial = strat.run(&s, &bumpy, 120, 42);
            let parallel = strat.run_with(&s, &bumpy, 120, 42, &Executor::new(4));
            assert_eq!(serial, parallel, "{strat}");
        }
    }

    #[test]
    fn different_seeds_explore_differently_but_stay_valid() {
        let s = space();
        let a = HillClimb.run(&s, &bumpy, 60, 1);
        let b = HillClimb.run(&s, &bumpy, 60, 2);
        // Both must produce non-empty frontiers of mutually non-dominated
        // feasible points; the walks themselves almost surely differ.
        for outcome in [&a, &b] {
            assert!(!outcome.archive.is_empty());
            let entries = outcome.archive.entries();
            for (i, x) in entries.iter().enumerate() {
                for (j, y) in entries.iter().enumerate() {
                    if i != j {
                        assert!(!x.objectives.dominates(&y.objectives));
                    }
                }
            }
        }
    }

    #[test]
    fn trace_is_monotonically_improving() {
        let s = space();
        for strat in Strategy::ALL {
            let outcome = strat.run(&s, &bumpy, 150, 5);
            let trace = &outcome.trace;
            assert!(!trace.is_empty(), "{strat}");
            for w in trace.windows(2) {
                assert!(w[0].ed2 >= w[1].ed2, "{strat}: trace must improve");
                assert!(w[0].evaluations <= w[1].evaluations, "{strat}");
            }
            let best = outcome.best().unwrap();
            let last = trace.last().unwrap();
            assert_eq!(last.index, best.index, "{strat}");
            assert_eq!(last.ed2, best.objectives.ed2, "{strat}");
        }
    }

    /// A deliberately misleading cheap proxy for [`bumpy`]: same bowls,
    /// no texture, swapped weighting — close enough to rank rungs, wrong
    /// enough that leaking it into the archive would be caught.
    #[allow(clippy::ptr_arg)]
    fn bumpy_screen(genes: &Vec<u32>, _exec: &Executor) -> Option<Objectives> {
        if genes[0] == 3 && genes[1] < 4 {
            return None;
        }
        let x = f64::from(genes[0]);
        let y = f64::from(genes[1]);
        let time = 1.0 + 0.5 * (x - 13.0).powi(2);
        let energy = 1.0 + 2.0 * (y - 5.0).powi(2);
        Some(Objectives::from_time_energy(time, energy))
    }

    #[test]
    fn racing_with_full_budget_matches_the_full_measurement_frontier() {
        use crate::evaluate::{RacingPlan, ScaledEvaluator};
        // ≤ 200 points, as the differential-test contract specifies.
        let s = GridSpace::new(vec![16, 12]);
        for strat in Strategy::ALL {
            let plain = strat.run(&s, &bumpy, s.size(), 11);
            let racing = ScaledEvaluator::new(bumpy, bumpy_screen)
                .with_racing(RacingPlan::from_budget(s.size()));
            let raced = strat.run(&s, &racing, s.size(), 11);
            assert_eq!(
                raced.evaluations,
                s.size(),
                "{strat}: racing must still reach full coverage"
            );
            // Annealing proposes one candidate at a time, and single
            // fresh candidates are always measured fully — a chain that
            // covers the space alone never forms a rung.
            if strat != Strategy::Anneal {
                assert!(raced.screened > 0, "{strat}: racing must actually screen");
            }
            assert_eq!(
                raced.archive.entries(),
                plain.archive.entries(),
                "{strat}: the racing frontier must be identical to full measurement"
            );
            assert_eq!(
                raced.best().map(|b| (b.index, b.objectives)),
                plain.best().map(|b| (b.index, b.objectives)),
                "{strat}"
            );
        }
    }

    #[test]
    fn racing_respects_budgets_and_worker_counts() {
        use crate::evaluate::{RacingPlan, ScaledEvaluator};
        let s = space();
        for strat in Strategy::ALL {
            let racing =
                ScaledEvaluator::new(bumpy, bumpy_screen).with_racing(RacingPlan::from_budget(100));
            let serial = strat.run(&s, &racing, 100, 42);
            assert!(serial.evaluations <= 100, "{strat}");
            let parallel = strat.run_with(&s, &racing, 100, 42, &Executor::new(4));
            assert_eq!(serial, parallel, "{strat}: racing must stay deterministic");
        }
    }

    #[test]
    fn warm_start_replays_the_cold_run_without_measuring() {
        use crate::evaluate::ScaledEvaluator;
        use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
        use std::sync::Mutex;
        let s = space();
        for strat in Strategy::ALL {
            // Cold run, recording every measured (index, result) pair the
            // way the persistent store would.
            let log = Mutex::new(Vec::new());
            let recording = |genes: &Vec<u32>, exec: &Executor| {
                let r = bumpy(genes, exec);
                log.lock().unwrap().push((s.index(genes), r));
                r
            };
            let cold = strat.run(&s, &recording, 90, 9);
            let mut entries = log.into_inner().unwrap();
            entries.sort_by_key(|&(i, _)| i);
            entries.dedup_by_key(|&mut (i, _)| i);
            assert_eq!(entries.len() as u64, cold.evaluations);

            // Warm run: every touch must come from the table, none from
            // the measurement function, and the outcome must be
            // byte-for-byte the cold one.
            let measured = AtomicU64::new(0);
            let counting = |genes: &Vec<u32>, exec: &Executor| {
                measured.fetch_add(1, AtomicOrdering::Relaxed);
                bumpy(genes, exec)
            };
            let warm_eval = ScaledEvaluator::full(counting).with_warm(entries);
            let warm = strat.run(&s, &warm_eval, 90, 9);
            assert_eq!(warm, cold, "{strat}: warm must replay cold exactly");
            assert_eq!(
                measured.load(AtomicOrdering::Relaxed),
                0,
                "{strat}: a fully-warmed run must not measure"
            );
        }
    }

    #[test]
    fn partial_warm_table_seeds_the_archive() {
        use crate::evaluate::ScaledEvaluator;
        let s = space();
        // Warm the table with one strong point the tiny budget would
        // never find, then search with budget 1: the archive must still
        // carry the seeded entry (resume semantics).
        let seeded_idx = {
            let truth = Exhaustive.run(&s, &bumpy, u64::MAX, 0);
            truth.best().unwrap().index
        };
        let seeded_obj = bumpy(&s.point(seeded_idx), &Executor::serial()).unwrap();
        let warm_eval =
            ScaledEvaluator::full(bumpy).with_warm(vec![(seeded_idx, Some(seeded_obj))]);
        let outcome = HillClimb.run(&s, &warm_eval, 1, 2);
        assert!(outcome
            .archive
            .entries()
            .iter()
            .any(|e| e.index == seeded_idx));
        assert_eq!(outcome.best().unwrap().index, seeded_idx);
    }

    #[test]
    fn strategy_names_round_trip() {
        for strat in Strategy::ALL {
            assert_eq!(strat.name().parse::<Strategy>().unwrap(), strat);
        }
        assert!("frobnicate".parse::<Strategy>().is_err());
    }
}
