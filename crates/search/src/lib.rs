//! Metaheuristic design-space search with a Pareto archive.
//!
//! The paper's evaluation sweeps a small hand-picked grid of
//! cluster-frequency/voltage configurations exhaustively. Beyond that
//! grid the configuration space explodes combinatorially (cycle factors ×
//! speed-group splits × per-group voltages × bus widths), so exhaustive
//! enumeration stops being an option. This crate provides the search
//! machinery that replaces it:
//!
//! * [`SearchSpace`] — a finite, indexable candidate space with neighbour
//!   generation, seeded random sampling, mutation and crossover
//!   ([`GridSpace`] is the ready-made mixed-radix implementation the
//!   exploration layer builds its configuration spaces from);
//! * [`Optimizer`] — the common strategy interface, with three
//!   metaheuristics ([`HillClimb`], [`Anneal`], [`Genetic`]) plus the
//!   [`Exhaustive`] reference scan, all dispatchable by name through
//!   [`Strategy`];
//! * [`ParetoArchive`] — the non-dominated `(exec time, energy, ED²)`
//!   frontier of everything a run evaluated, with deterministic
//!   tie-breaking;
//! * the scaling layer — [`Evaluator`]/[`ScaledEvaluator`] add
//!   successive-halving **racing** ([`RacingPlan`]) and **warm starts**
//!   from persisted evaluations, and [`ShardedSpace`] partitions a space
//!   round-robin so independent processes can search disjoint slices and
//!   merge frontiers byte-stably.
//!
//! # Determinism
//!
//! Every strategy is a deterministic function of `(space, evaluation
//! function, budget, seed)`. Random draws come from a seeded
//! `rand::rngs::SmallRng` and never depend on thread scheduling;
//! candidate batches fan out across a [`vliw_exec::Executor`] whose
//! `map` returns results in input order, so a parallel run is
//! bit-identical to a serial one. The **budget counts distinct candidate
//! evaluations** (feasible or not): repeats are served from an internal
//! memo table and cost nothing, which also means a budget at least the
//! size of a finite space makes *every* strategy degrade gracefully into
//! full coverage — and therefore find the exhaustive optimum.
//!
//! # Example
//!
//! ```
//! use vliw_search::{GridSpace, Objectives, Optimizer, SearchSpace, Strategy};
//!
//! // Minimise a bumpy bowl over a 32×32 grid.
//! let space = GridSpace::new(vec![32, 32]);
//! let eval = |genes: &Vec<u32>, _exec: &vliw_exec::Executor| {
//!     let (x, y) = (f64::from(genes[0]) - 11.0, f64::from(genes[1]) - 23.0);
//!     let time = 1.0 + x * x + (3.0 * x).sin().abs();
//!     let energy = 1.0 + y * y;
//!     Some(Objectives::from_time_energy(time, energy))
//! };
//! let outcome = Strategy::Anneal.run(&space, &eval, 400, 7);
//! let best = outcome.best().expect("the space has feasible points");
//! assert_eq!(best.point, vec![11, 23]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod archive;
mod evaluate;
mod obs_counters;
mod optimize;
mod shard;
mod space;
mod strategies;

pub use archive::{ArchiveEntry, ParetoArchive};
pub use evaluate::{Evaluator, RacingPlan, ScaledEvaluator};
pub use optimize::{Optimizer, SearchOutcome, TracePoint};
pub use shard::ShardedSpace;
pub use space::{GridSpace, Objectives, SearchSpace};
pub use strategies::{Anneal, Exhaustive, Genetic, HillClimb, Strategy};

// Outcomes cross the executor's worker threads.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<Objectives>();
    _assert_send_sync::<GridSpace>();
    _assert_send_sync::<Strategy>();
    _assert_send_sync::<SearchOutcome<Vec<u32>>>();
};
