//! Deterministic gene-grid sharding: [`ShardedSpace`] restricts a
//! [`SearchSpace`] to the residue class `global % count == shard` so `n`
//! independent processes can each search a disjoint slice of one space
//! and later merge frontiers.
//!
//! The partition is round-robin on the canonical index, which keeps
//! every shard a representative cross-section of the grid (a contiguous
//! split would hand one shard all the low-voltage configurations and
//! another all the high ones). Local indices `0..size()` map to global
//! indices by `global = local * count + shard`; the map is strictly
//! monotone, so within-shard tie-breaking on the local index agrees
//! with global tie-breaking — the property that makes a merge of
//! fully-covered shard frontiers byte-identical to the unsharded
//! frontier regardless of shard count or merge order.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::space::SearchSpace;

/// One round-robin slice of an inner space: the points whose global
/// canonical index `g` satisfies `g % count == shard`.
#[derive(Debug, Clone)]
pub struct ShardedSpace<'a, S> {
    inner: &'a S,
    shard: u64,
    count: u64,
}

impl<'a, S: SearchSpace> ShardedSpace<'a, S> {
    /// The `shard`-th of `count` slices (0-based; CLI `--shard i/n` maps
    /// to `shard = i - 1`).
    ///
    /// # Panics
    ///
    /// Panics unless `shard < count` and `count <= inner.size()` (every
    /// shard must be non-empty — an empty slice has nothing to search).
    #[must_use]
    pub fn new(inner: &'a S, shard: u64, count: u64) -> Self {
        assert!(count >= 1, "shard count must be at least 1");
        assert!(shard < count, "shard {shard} out of range 0..{count}");
        assert!(
            count <= inner.size(),
            "cannot cut a {}-point space into {count} non-empty shards",
            inner.size()
        );
        ShardedSpace {
            inner,
            shard,
            count,
        }
    }

    /// The global canonical index of local index `local`.
    #[must_use]
    pub fn global_index(&self, local: u64) -> u64 {
        local * self.count + self.shard
    }

    /// The local index of a global index in this shard's residue class.
    ///
    /// # Panics
    ///
    /// Panics if `global` does not belong to this shard.
    #[must_use]
    pub fn local_index(&self, global: u64) -> u64 {
        assert_eq!(
            global % self.count,
            self.shard,
            "global index {global} is not in shard {}/{}",
            self.shard + 1,
            self.count
        );
        global / self.count
    }

    fn in_shard(&self, global: u64) -> bool {
        global % self.count == self.shard
    }
}

impl<S: SearchSpace> SearchSpace for ShardedSpace<'_, S> {
    type Point = S::Point;

    fn size(&self) -> u64 {
        // Points g < N with g % count == shard.
        let n = self.inner.size();
        if n > self.shard {
            (n - self.shard).div_ceil(self.count)
        } else {
            0
        }
    }

    fn point(&self, index: u64) -> S::Point {
        self.inner.point(self.global_index(index))
    }

    fn index(&self, point: &S::Point) -> u64 {
        self.local_index(self.inner.index(point))
    }

    fn neighbors(&self, point: &S::Point, out: &mut Vec<S::Point>) {
        // The inner neighbourhood filtered to this shard. It may come up
        // empty (a ±1 grid step changes the index by a stride that need
        // not preserve the residue class); hill climbing then simply
        // restarts, and the index-order sweep still guarantees coverage.
        let mut inner_out = Vec::new();
        self.inner.neighbors(point, &mut inner_out);
        out.extend(
            inner_out
                .into_iter()
                .filter(|p| self.in_shard(self.inner.index(p))),
        );
    }

    fn mutate(&self, point: &S::Point, rng: &mut SmallRng) -> S::Point {
        // Try the inner mutation a few times; most draws leave the
        // residue class, so fall back to a deterministic local step that
        // always stays in-shard and still reaches the whole slice.
        for _ in 0..16 {
            let candidate = self.inner.mutate(point, rng);
            if self.in_shard(self.inner.index(&candidate)) {
                return candidate;
            }
        }
        let next_local = (self.index(point) + 1) % self.size();
        self.point(next_local)
    }

    fn crossover(&self, a: &S::Point, b: &S::Point, rng: &mut SmallRng) -> S::Point {
        // Recombine in the inner space, then snap the child to this
        // shard's residue class (nearest in-shard index at or below the
        // child's block, clamped into range).
        let child = self.inner.crossover(a, b, rng);
        let g = self.inner.index(&child);
        if self.in_shard(g) {
            return child;
        }
        let snapped = (g / self.count) * self.count + self.shard;
        let snapped = if snapped < self.inner.size() {
            snapped
        } else {
            self.global_index(self.size() - 1)
        };
        self.inner.point(snapped)
    }

    fn sample(&self, rng: &mut SmallRng) -> S::Point {
        // Uniform over the slice via the local index (the default would
        // do the same; spelled out so the determinism contract is
        // explicit: one `gen_range` draw per sample).
        self.point(rng.gen_range(0..self.size()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::GridSpace;
    use rand::SeedableRng;

    #[test]
    fn shards_partition_the_space_exactly() {
        let g = GridSpace::new(vec![7, 5]);
        for count in 1..=6u64 {
            let mut seen = vec![false; g.size() as usize];
            for shard in 0..count {
                let s = ShardedSpace::new(&g, shard, count);
                for local in 0..s.size() {
                    let global = s.global_index(local);
                    assert!(!seen[global as usize], "{global} covered twice");
                    seen[global as usize] = true;
                    assert_eq!(s.index(&s.point(local)), local);
                    assert_eq!(g.index(&s.point(local)), global);
                }
            }
            assert!(seen.iter().all(|&b| b), "{count}-way split missed points");
        }
    }

    #[test]
    fn moves_stay_in_shard() {
        let g = GridSpace::new(vec![6, 4, 3]);
        let mut rng = SmallRng::seed_from_u64(17);
        for count in [2u64, 3, 5] {
            for shard in 0..count {
                let s = ShardedSpace::new(&g, shard, count);
                for _ in 0..50 {
                    let a = s.sample(&mut rng);
                    let b = s.sample(&mut rng);
                    assert_eq!(g.index(&a) % count, shard);
                    let m = s.mutate(&a, &mut rng);
                    assert_eq!(g.index(&m) % count, shard, "mutate left the shard");
                    let c = s.crossover(&a, &b, &mut rng);
                    assert_eq!(g.index(&c) % count, shard, "crossover left the shard");
                    let mut out = Vec::new();
                    s.neighbors(&a, &mut out);
                    for n in &out {
                        assert_eq!(g.index(n) % count, shard, "neighbour left the shard");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not in shard")]
    fn foreign_point_is_rejected() {
        let g = GridSpace::new(vec![10]);
        let s = ShardedSpace::new(&g, 0, 2);
        let _ = s.index(&vec![3]); // global 3 is shard 1's
    }

    #[test]
    #[should_panic(expected = "non-empty shards")]
    fn oversharding_panics() {
        let g = GridSpace::new(vec![3]);
        let _ = ShardedSpace::new(&g, 0, 4);
    }
}
