//! Exact integer time arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A duration with femtosecond resolution, stored as an integer.
///
/// Heterogeneous modulo scheduling constantly relates wall-clock quantities
/// (the initiation time `IT`, cycle times) through exact equalities like
/// `IT = II · T_cyc`. Representing time as `u64` femtoseconds makes the
/// "does component X synchronise at this IT?" test an exact divisibility
/// check instead of a floating-point tolerance.
///
/// One nanosecond is `1_000_000` femtoseconds, so a `u64` spans ~5 hours:
/// far more than any loop schedule needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Time(u64);

impl Time {
    /// The zero duration.
    pub const ZERO: Time = Time(0);

    /// Femtoseconds per nanosecond.
    pub const FS_PER_NS: u64 = 1_000_000;

    /// Constructs from integer femtoseconds.
    #[must_use]
    pub const fn from_fs(fs: u64) -> Self {
        Time(fs)
    }

    /// Constructs from (possibly fractional) nanoseconds, rounding to the
    /// nearest femtosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative, NaN, or too large for the representation.
    #[must_use]
    pub fn from_ns(ns: f64) -> Self {
        assert!(
            ns.is_finite() && ns >= 0.0,
            "time must be finite and non-negative: {ns}"
        );
        let fs = (ns * Self::FS_PER_NS as f64).round();
        assert!(fs <= u64::MAX as f64, "time out of range: {ns} ns");
        Time(fs as u64)
    }

    /// The duration in femtoseconds.
    #[must_use]
    pub const fn as_fs(self) -> u64 {
        self.0
    }

    /// The duration in nanoseconds (lossy only beyond 2^53 fs).
    #[must_use]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / Self::FS_PER_NS as f64
    }

    /// The duration in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.as_ns() * 1e-9
    }

    /// Whether this duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `self / cycle`, rounded down: how many full cycles of length `cycle`
    /// fit in `self`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is zero.
    #[must_use]
    pub fn div_floor(self, cycle: Time) -> u64 {
        assert!(!cycle.is_zero(), "division by zero-length cycle");
        self.0 / cycle.0
    }

    /// `self / cycle`, rounded up.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is zero.
    #[must_use]
    pub fn div_ceil(self, cycle: Time) -> u64 {
        assert!(!cycle.is_zero(), "division by zero-length cycle");
        self.0.div_ceil(cycle.0)
    }

    /// Whether `self` is an exact multiple of `cycle` — the synchronisation
    /// condition `IT = II · T_cyc` for some integer `II`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is zero.
    #[must_use]
    pub fn is_multiple_of(self, cycle: Time) -> bool {
        assert!(!cycle.is_zero(), "division by zero-length cycle");
        self.0.is_multiple_of(cycle.0)
    }

    /// The smallest multiple of `cycle` that is `>= self`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is zero.
    #[must_use]
    pub fn round_up_to(self, cycle: Time) -> Time {
        Time(self.div_ceil(cycle) * cycle.0)
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Frequency in GHz corresponding to this cycle time.
    ///
    /// # Panics
    ///
    /// Panics if the duration is zero.
    #[must_use]
    pub fn freq_ghz(self) -> f64 {
        assert!(!self.is_zero(), "zero cycle time has no frequency");
        1.0 / self.as_ns()
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0.checked_add(rhs.0).expect("time overflow"))
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0.checked_sub(rhs.0).expect("time underflow"))
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    fn mul(self, rhs: u64) -> Time {
        Time(self.0.checked_mul(rhs).expect("time overflow"))
    }
}

impl Mul<Time> for u64 {
    type Output = Time;
    fn mul(self, rhs: Time) -> Time {
        rhs * self
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} ns", self.as_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ns_round_trip() {
        assert_eq!(Time::from_ns(1.0).as_fs(), 1_000_000);
        assert_eq!(Time::from_ns(0.9).as_fs(), 900_000);
        assert_eq!(Time::from_ns(1.5).as_ns(), 1.5);
        assert_eq!(Time::from_ns(3.333).as_fs(), 3_333_000);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ns(1.0);
        let b = Time::from_ns(0.5);
        assert_eq!(a + b, Time::from_ns(1.5));
        assert_eq!(a - b, b);
        assert_eq!(a * 3, Time::from_ns(3.0));
        assert_eq!(3 * a, Time::from_ns(3.0));
        assert_eq!([a, b, b].into_iter().sum::<Time>(), Time::from_ns(2.0));
    }

    #[test]
    fn divisibility_is_exact() {
        // Figure 3 of the paper: IT = 3 ns, clusters at 1 ns and 1.5 ns.
        let it = Time::from_ns(3.0);
        let c1 = Time::from_ns(1.0);
        let c2 = Time::from_ns(1.5);
        assert!(it.is_multiple_of(c1));
        assert!(it.is_multiple_of(c2));
        assert_eq!(it.div_floor(c1), 3); // II for cluster 1
        assert_eq!(it.div_floor(c2), 2); // II for cluster 2
    }

    #[test]
    fn round_up_to_cycle() {
        let c = Time::from_ns(1.5);
        assert_eq!(Time::from_ns(3.1).round_up_to(c), Time::from_ns(4.5));
        assert_eq!(Time::from_ns(3.0).round_up_to(c), Time::from_ns(3.0));
    }

    #[test]
    fn freq_conversion() {
        assert!((Time::from_ns(1.0).freq_ghz() - 1.0).abs() < 1e-12);
        assert!((Time::from_ns(0.5).freq_ghz() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = Time::from_ns(1.0) - Time::from_ns(2.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_ns_panics() {
        let _ = Time::from_ns(-0.5);
    }

    #[test]
    fn display_shows_ns() {
        assert_eq!(Time::from_ns(1.25).to_string(), "1.250000 ns");
    }

    proptest! {
        #[test]
        fn round_up_is_smallest_multiple(t in 0u64..10_000_000, c in 1u64..5_000_000) {
            let t = Time::from_fs(t);
            let c = Time::from_fs(c);
            let r = t.round_up_to(c);
            prop_assert!(r >= t);
            prop_assert!(r.is_multiple_of(c));
            prop_assert!(r.as_fs() < t.as_fs() + c.as_fs());
        }

        #[test]
        fn div_floor_ceil_consistent(t in 0u64..10_000_000, c in 1u64..5_000_000) {
            let t = Time::from_fs(t);
            let c = Time::from_fs(c);
            let fl = t.div_floor(c);
            let ce = t.div_ceil(c);
            prop_assert!(ce == fl || ce == fl + 1);
            prop_assert_eq!(ce == fl, t.is_multiple_of(c));
        }
    }
}
