//! Static resource description of the clustered machine.

use std::fmt;

use vliw_ir::FuKind;

/// Identifier of one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub u8);

impl ClusterId {
    /// The cluster's dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u8> for ClusterId {
    fn from(v: u8) -> Self {
        ClusterId(v)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Resources inside one cluster.
///
/// All clusters of a machine share one design (the paper's heterogeneity is
/// purely in frequency and voltage, §5: "all of the clusters will have the
/// same design").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterDesign {
    /// Integer functional units.
    pub int_fus: u32,
    /// Floating-point functional units.
    pub fp_fus: u32,
    /// Memory ports.
    pub mem_ports: u32,
    /// Architectural registers in the cluster's register file.
    pub registers: u32,
}

impl ClusterDesign {
    /// The per-cluster design of the paper's evaluation machine:
    /// 1 fp FU, 1 int FU, 1 memory port, 16 registers.
    pub const PAPER: ClusterDesign = ClusterDesign {
        int_fus: 1,
        fp_fus: 1,
        mem_ports: 1,
        registers: 16,
    };

    /// Number of functional units of kind `kind` (zero for [`FuKind::Bus`],
    /// which belongs to the interconnect, not a cluster).
    #[must_use]
    pub fn fu_count(&self, kind: FuKind) -> u32 {
        match kind {
            FuKind::Int => self.int_fus,
            FuKind::Fp => self.fp_fus,
            FuKind::Mem => self.mem_ports,
            FuKind::Bus => 0,
        }
    }

    /// Total issue slots per cycle in this cluster.
    #[must_use]
    pub fn issue_width(&self) -> u32 {
        self.int_fus + self.fp_fus + self.mem_ports
    }
}

impl Default for ClusterDesign {
    fn default() -> Self {
        Self::PAPER
    }
}

/// A whole machine: `num_clusters` identical clusters plus `buses`
/// inter-cluster register buses (1-cycle latency each, §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MachineDesign {
    /// Number of clusters.
    pub num_clusters: u8,
    /// Per-cluster resources.
    pub cluster: ClusterDesign,
    /// Number of inter-cluster register buses.
    pub buses: u32,
}

impl MachineDesign {
    /// The paper's evaluation machine: 4 clusters of [`ClusterDesign::PAPER`]
    /// with `buses` register buses (the paper reports 1 and 2).
    ///
    /// # Panics
    ///
    /// Panics if `buses == 0`.
    #[must_use]
    pub fn paper_machine(buses: u32) -> Self {
        assert!(buses > 0, "a clustered machine needs at least one bus");
        MachineDesign {
            num_clusters: 4,
            cluster: ClusterDesign::PAPER,
            buses,
        }
    }

    /// Creates a machine with `num_clusters` copies of `cluster` and
    /// `buses` buses.
    ///
    /// # Panics
    ///
    /// Panics if `num_clusters == 0` or `buses == 0`.
    #[must_use]
    pub fn new(num_clusters: u8, cluster: ClusterDesign, buses: u32) -> Self {
        assert!(num_clusters > 0, "a machine needs at least one cluster");
        assert!(buses > 0, "a clustered machine needs at least one bus");
        MachineDesign {
            num_clusters,
            cluster,
            buses,
        }
    }

    /// Iterate over all cluster ids.
    pub fn clusters(&self) -> impl ExactSizeIterator<Item = ClusterId> + Clone {
        (0..self.num_clusters).map(ClusterId)
    }

    /// Machine-wide count of functional units of `kind` ([`FuKind::Bus`]
    /// returns the bus count).
    #[must_use]
    pub fn total_fu_count(&self, kind: FuKind) -> u32 {
        match kind {
            FuKind::Bus => self.buses,
            k => u32::from(self.num_clusters) * self.cluster.fu_count(k),
        }
    }

    /// Machine-wide register count.
    #[must_use]
    pub fn total_registers(&self) -> u32 {
        u32::from(self.num_clusters) * self.cluster.registers
    }
}

impl Default for MachineDesign {
    fn default() -> Self {
        Self::paper_machine(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_matches_section5() {
        let m = MachineDesign::paper_machine(1);
        assert_eq!(m.num_clusters, 4);
        assert_eq!(m.total_fu_count(FuKind::Int), 4);
        assert_eq!(m.total_fu_count(FuKind::Fp), 4);
        assert_eq!(m.total_fu_count(FuKind::Mem), 4);
        assert_eq!(m.total_fu_count(FuKind::Bus), 1);
        assert_eq!(m.total_registers(), 64);
        assert_eq!(m.cluster.registers, 16);
    }

    #[test]
    fn issue_width() {
        assert_eq!(ClusterDesign::PAPER.issue_width(), 3);
    }

    #[test]
    fn cluster_iteration() {
        let m = MachineDesign::paper_machine(2);
        let ids: Vec<_> = m.clusters().collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[0], ClusterId(0));
        assert_eq!(ids[3].to_string(), "C3");
    }

    #[test]
    fn bus_is_not_a_cluster_resource() {
        assert_eq!(ClusterDesign::PAPER.fu_count(FuKind::Bus), 0);
        assert_eq!(
            MachineDesign::paper_machine(2).total_fu_count(FuKind::Bus),
            2
        );
    }

    #[test]
    #[should_panic(expected = "at least one bus")]
    fn zero_buses_panics() {
        let _ = MachineDesign::paper_machine(0);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_panics() {
        let _ = MachineDesign::new(0, ClusterDesign::PAPER, 1);
    }
}
