//! Discrete frequency synthesis: which frequencies the clock-generation
//! network (Figure 2 of the paper) can deliver to a component.
//!
//! The MCD design derives every domain clock from one generator clock with
//! multipliers and dividers, so only a limited set of frequencies exists.
//! For a loop with initiation time `IT`, a component whose voltage allows a
//! maximum frequency `f_max` must pick a supported frequency `f ≤ f_max`
//! such that `II = IT · f` is an integer — otherwise iterations of that
//! component would drift against the rest of the machine and the `IT` has
//! to be increased ("synchronization problems", §4). [`FrequencyMenu`]
//! answers exactly that query.

use crate::time::Time;

/// How many distinct frequencies the clock network supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MenuKind {
    /// Any frequency at all (the paper's "any freq" idealisation).
    Unrestricted,
    /// `n` divider-chain frequencies, `f_k = f_top / k` for `k = 1..=n`
    /// (cycle times are harmonic multiples of the generator period, so
    /// different domains can share initiation times — the paper's "support
    /// frequencies that allow for synchronization").
    Uniform(u32),
}

/// The set of cycle times a component may run at.
///
/// # Example
///
/// ```
/// use vliw_machine::{FrequencyMenu, Time};
///
/// // Unrestricted: a component capped at 1 ns cycles synchronises with any
/// // IT by running at exactly II / IT.
/// let menu = FrequencyMenu::unrestricted();
/// let it = Time::from_ns(3.5);
/// assert_eq!(menu.available_ii(Time::from_ns(1.0), it), Some(3));
///
/// // A 4-frequency divider menu (cycle times 0.5/1.0/1.5/2.0 ns) cannot
/// // always synchronise.
/// let menu4 = FrequencyMenu::uniform(4);
/// assert_eq!(menu4.available_ii(Time::from_ns(1.0), Time::from_ns(3.0)), Some(3));
/// assert_eq!(menu4.available_ii(Time::from_ns(1.0), Time::from_ns(3.7)), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequencyMenu {
    /// Sorted ascending cycle times; `None` means unrestricted.
    cycle_times: Option<Vec<Time>>,
}

impl FrequencyMenu {
    /// The fastest frequency any menu supports: 2 GHz (double the reference
    /// clock), comfortably above the fastest cluster configuration the
    /// paper explores (0.9 ns ⇒ ~1.11 GHz).
    pub const TOP_FREQ_GHZ: f64 = 2.0;

    /// A menu supporting every frequency.
    #[must_use]
    pub fn unrestricted() -> Self {
        FrequencyMenu { cycle_times: None }
    }

    /// A harmonic menu of `n` frequencies with cycle times `k · (2/n) ns`
    /// for `k = 1..=n` (Figure 7 uses n ∈ {16, 8, 4}; n = 4 yields
    /// 0.5/1.0/1.5/2.0 ns).
    ///
    /// Harmonic cycle times are what a multiplier/divider clock network
    /// actually produces, and they are what lets different domains agree
    /// on an initiation time: an `IT` divisible by a slow domain''s cycle
    /// is automatically divisible by the faster harmonics below it.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn uniform(n: u32) -> Self {
        assert!(n > 0, "a frequency menu needs at least one frequency");
        // n harmonic cycle times spanning (0, 2 ns]: a denser menu refines
        // the grid rather than extending the range.
        let base = Time::from_ns(2.0 / f64::from(n));
        let cts: Vec<Time> = (1..=u64::from(n)).map(|k| base * k).collect();
        FrequencyMenu {
            cycle_times: Some(cts),
        }
    }

    /// Builds a menu from the given [`MenuKind`].
    #[must_use]
    pub fn from_kind(kind: MenuKind) -> Self {
        match kind {
            MenuKind::Unrestricted => Self::unrestricted(),
            MenuKind::Uniform(n) => Self::uniform(n),
        }
    }

    /// Number of supported frequencies, or `None` when unrestricted.
    #[must_use]
    pub fn len(&self) -> Option<usize> {
        self.cycle_times.as_ref().map(Vec::len)
    }

    /// Whether the menu supports no frequency at all (never true for menus
    /// built with the public constructors).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cycle_times.as_ref().is_some_and(Vec::is_empty)
    }

    /// The largest initiation interval (i.e. fastest legal frequency) for a
    /// component whose maximum frequency corresponds to `min_cycle`, at
    /// initiation time `it`.
    ///
    /// Returns `None` when no supported frequency both respects the
    /// component's speed limit and divides `it` evenly — the caller must
    /// then increase the `IT` (paper §4: "we increase the IT due to
    /// synchronization problems").
    ///
    /// # Panics
    ///
    /// Panics if `min_cycle` is zero.
    #[must_use]
    pub fn available_ii(&self, min_cycle: Time, it: Time) -> Option<u64> {
        assert!(
            !min_cycle.is_zero(),
            "component cycle time must be positive"
        );
        match &self.cycle_times {
            None => {
                // Any frequency: run at exactly II / IT where II is the
                // most iterations that fit, i.e. f = II/IT ≤ 1/min_cycle.
                let ii = it.div_floor(min_cycle);
                (ii > 0).then_some(ii)
            }
            Some(cts) => cts
                .iter()
                .find(|&&ct| ct >= min_cycle && it.is_multiple_of(ct))
                .map(|&ct| it.div_floor(ct)),
        }
    }

    /// The supported cycle times this menu could clock a component at,
    /// given its `min_cycle` speed limit (unrestricted menus return `None`).
    #[must_use]
    pub fn cycle_times_at_least(&self, min_cycle: Time) -> Option<Vec<Time>> {
        self.cycle_times
            .as_ref()
            .map(|cts| cts.iter().copied().filter(|&ct| ct >= min_cycle).collect())
    }
}

impl Default for FrequencyMenu {
    fn default() -> Self {
        Self::unrestricted()
    }
}

/// The exact cycle time, in nanoseconds, a component effectively runs at
/// when it executes `ii` cycles per initiation time `it`.
#[must_use]
pub fn effective_cycle_ns(it: Time, ii: u64) -> f64 {
    assert!(ii > 0, "II must be positive");
    it.as_ns() / ii as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrestricted_always_synchronises() {
        let m = FrequencyMenu::unrestricted();
        assert_eq!(m.len(), None);
        assert!(!m.is_empty());
        // IT = 3.333 ns with a 1 ns component ⇒ II = 3 (Figure 4's table).
        assert_eq!(
            m.available_ii(Time::from_ns(1.0), Time::from_ns(3.333)),
            Some(3)
        );
        // IT = 3.333 ns with a 1.667 ns component: floor(3333000/1667000) = 1.
        assert_eq!(
            m.available_ii(Time::from_ns(1.667), Time::from_ns(3.333)),
            Some(1)
        );
    }

    #[test]
    fn figure4_table_iis() {
        // Paper Figure 4's resMIT table: C1 at 1 ns, C2 at 1.67 ns.
        let m = FrequencyMenu::unrestricted();
        let c1 = Time::from_ns(1.0);
        let c2 = Time::from_ns(1.67);
        let cases = [
            (1.0, Some(1), None),
            (1.67, Some(1), Some(1)),
            (2.0, Some(2), Some(1)),
            (3.0, Some(3), Some(1)),
            (3.34, Some(3), Some(2)),
        ];
        for (it_ns, ii1, ii2) in cases {
            let it = Time::from_ns(it_ns);
            assert_eq!(m.available_ii(c1, it), ii1, "C1 at IT={it_ns}");
            assert_eq!(m.available_ii(c2, it), ii2, "C2 at IT={it_ns}");
        }
    }

    #[test]
    fn uniform_menu_frequencies() {
        let m = FrequencyMenu::uniform(4);
        assert_eq!(m.len(), Some(4));
        let cts = m.cycle_times_at_least(Time::from_fs(1)).unwrap();
        // Divider chain off a 2 GHz generator: 0.5, 1.0, 1.5, 2.0 ns.
        assert_eq!(cts.len(), 4);
        assert_eq!(cts[0], Time::from_ns(0.5));
        assert_eq!(cts[1], Time::from_ns(1.0));
        assert_eq!(cts[2], Time::from_ns(1.5));
        assert_eq!(cts[3], Time::from_ns(2.0));
    }

    #[test]
    fn menu_respects_speed_limit() {
        let m = FrequencyMenu::uniform(4);
        // Component limited to 1.2 ns cycles may not use the 1.0 ns entry;
        // eligible cts ≥ 1.2 dividing 4.5 ns: 1.5 ns ⇒ II = 3.
        let ii = m.available_ii(Time::from_ns(1.2), Time::from_ns(4.5));
        assert_eq!(ii, Some(3));
    }

    #[test]
    fn menu_fails_on_nondivisible_it() {
        let m = FrequencyMenu::uniform(4);
        assert_eq!(m.available_ii(Time::from_ns(1.0), Time::from_ns(3.7)), None);
    }

    #[test]
    fn menu_prefers_fastest_eligible_frequency() {
        let m = FrequencyMenu::uniform(8); // cycle times 0.5·k ns, k = 1..=8
        let ii = m.available_ii(Time::from_ns(0.9), Time::from_ns(4.0));
        // Eligible and dividing 4.0 ns: 1.0 (II 4), 2.0 (II 2), 4.0 (II 1) →
        // fastest is 1.0 ns.
        assert_eq!(ii, Some(4));
    }

    #[test]
    fn denser_menus_are_no_worse() {
        let coarse = FrequencyMenu::uniform(4);
        let fine = FrequencyMenu::uniform(16);
        let min_cycle = Time::from_ns(1.0);
        for it_fs in (2_000_000..8_000_000u64).step_by(250_000) {
            let it = Time::from_fs(it_fs);
            let c = coarse.available_ii(min_cycle, it);
            let f = fine.available_ii(min_cycle, it);
            if let Some(ci) = c {
                let fi = f.expect("16-freq menu contains the 4-freq menu");
                assert!(fi >= ci, "at IT={it}: fine {fi} < coarse {ci}");
            }
        }
    }

    #[test]
    fn effective_cycle() {
        assert!((effective_cycle_ns(Time::from_ns(3.5), 3) - 3.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one frequency")]
    fn zero_sized_menu_panics() {
        let _ = FrequencyMenu::uniform(0);
    }
}
