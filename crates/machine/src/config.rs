//! Clocked machine configurations: which frequency and voltage each clock
//! domain runs at.

use std::fmt;

use crate::design::{ClusterId, MachineDesign};
use crate::time::Time;

/// One clock domain of the MCD organisation (paper Figure 2): each cluster,
/// the inter-cluster connection network, and the on-chip memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainId {
    /// A cluster domain.
    Cluster(ClusterId),
    /// The inter-cluster connection network (register buses).
    Icn,
    /// The on-chip memory hierarchy.
    Cache,
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainId::Cluster(c) => write!(f, "{c}"),
            DomainId::Icn => f.write_str("ICN"),
            DomainId::Cache => f.write_str("cache"),
        }
    }
}

/// Supply voltages per component, in volts.
#[derive(Debug, Clone, PartialEq)]
pub struct Voltages {
    /// One entry per cluster.
    pub clusters: Vec<f64>,
    /// Interconnection network supply.
    pub icn: f64,
    /// Memory hierarchy supply.
    pub cache: f64,
}

impl Voltages {
    /// Allowed cluster supply range (paper §5): 0.7 V – 1.2 V.
    pub const CLUSTER_RANGE: (f64, f64) = (0.7, 1.2);
    /// Allowed ICN supply range (paper §5): 0.8 V – 1.1 V.
    pub const ICN_RANGE: (f64, f64) = (0.8, 1.1);
    /// Allowed cache supply range (paper §5): 1.0 V – 1.4 V ("higher for the
    /// cache because its static energy consumption is large").
    pub const CACHE_RANGE: (f64, f64) = (1.0, 1.4);

    /// The reference supplies: 1 V everywhere (paper §5 baseline).
    #[must_use]
    pub fn reference(num_clusters: u8) -> Self {
        Voltages {
            clusters: vec![1.0; usize::from(num_clusters)],
            icn: 1.0,
            cache: 1.0,
        }
    }

    /// The supply of `domain`.
    ///
    /// # Panics
    ///
    /// Panics if a cluster id is out of range.
    #[must_use]
    pub fn domain(&self, domain: DomainId) -> f64 {
        match domain {
            DomainId::Cluster(c) => self.clusters[c.index()],
            DomainId::Icn => self.icn,
            DomainId::Cache => self.cache,
        }
    }

    /// Whether every supply lies inside its legal range.
    #[must_use]
    pub fn in_range(&self) -> bool {
        let ok = |v: f64, (lo, hi): (f64, f64)| v >= lo - 1e-9 && v <= hi + 1e-9;
        self.clusters.iter().all(|&v| ok(v, Self::CLUSTER_RANGE))
            && ok(self.icn, Self::ICN_RANGE)
            && ok(self.cache, Self::CACHE_RANGE)
    }
}

/// A fully clocked machine: the static [`MachineDesign`] plus a cycle time
/// and supply voltage for every clock domain.
///
/// The paper's heterogeneous scheme (§2.1, §5) constrains the shape: the
/// cache and the ICN run at the frequency of the fastest cluster; clusters
/// split into "performance-oriented" (fast) and "low-power-oriented" (slow)
/// groups. The constructors encode those conventions; arbitrary shapes can
/// still be built with [`ClockedConfig::from_parts`] for sensitivity
/// studies.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockedConfig {
    design: MachineDesign,
    cluster_cycles: Vec<Time>,
    icn_cycle: Time,
    cache_cycle: Time,
    voltages: Voltages,
}

impl ClockedConfig {
    /// The reference cycle time: 1 ns (1 GHz, paper §5).
    pub const REFERENCE_CYCLE: Time = Time::from_fs(Time::FS_PER_NS);

    /// The reference homogeneous machine: every domain at 1 GHz and 1 V.
    #[must_use]
    pub fn reference(design: MachineDesign) -> Self {
        Self::homogeneous(design, Self::REFERENCE_CYCLE)
    }

    /// A homogeneous machine: every domain at cycle time `cycle`, 1 V
    /// supplies (adjust with [`ClockedConfig::with_voltages`]).
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is zero.
    #[must_use]
    pub fn homogeneous(design: MachineDesign, cycle: Time) -> Self {
        assert!(!cycle.is_zero(), "cycle time must be positive");
        ClockedConfig {
            design,
            cluster_cycles: vec![cycle; usize::from(design.num_clusters)],
            icn_cycle: cycle,
            cache_cycle: cycle,
            voltages: Voltages::reference(design.num_clusters),
        }
    }

    /// A paper-shaped heterogeneous machine: the first `num_fast` clusters
    /// run at `fast_cycle`, the rest at `slow_cycle`; ICN and cache follow
    /// the fast clusters (§5). Voltages default to 1 V.
    ///
    /// # Panics
    ///
    /// Panics if `num_fast` is zero or exceeds the cluster count, if either
    /// cycle is zero, or if `slow_cycle < fast_cycle`.
    #[must_use]
    pub fn heterogeneous(
        design: MachineDesign,
        fast_cycle: Time,
        num_fast: u8,
        slow_cycle: Time,
    ) -> Self {
        assert!(
            !fast_cycle.is_zero() && !slow_cycle.is_zero(),
            "cycle times must be positive"
        );
        assert!(
            (1..=design.num_clusters).contains(&num_fast),
            "num_fast must be in 1..={}",
            design.num_clusters
        );
        assert!(
            slow_cycle >= fast_cycle,
            "slow clusters cannot be faster than fast ones"
        );
        let mut cluster_cycles = vec![slow_cycle; usize::from(design.num_clusters)];
        for c in cluster_cycles.iter_mut().take(usize::from(num_fast)) {
            *c = fast_cycle;
        }
        ClockedConfig {
            design,
            cluster_cycles,
            icn_cycle: fast_cycle,
            cache_cycle: fast_cycle,
            voltages: Voltages::reference(design.num_clusters),
        }
    }

    /// Builds a configuration with every field explicit.
    ///
    /// # Panics
    ///
    /// Panics if the number of cluster cycles or voltages does not match the
    /// design, or any cycle time is zero.
    #[must_use]
    pub fn from_parts(
        design: MachineDesign,
        cluster_cycles: Vec<Time>,
        icn_cycle: Time,
        cache_cycle: Time,
        voltages: Voltages,
    ) -> Self {
        assert_eq!(
            cluster_cycles.len(),
            usize::from(design.num_clusters),
            "one cycle time per cluster"
        );
        assert_eq!(
            voltages.clusters.len(),
            usize::from(design.num_clusters),
            "one supply per cluster"
        );
        assert!(
            cluster_cycles.iter().all(|c| !c.is_zero())
                && !icn_cycle.is_zero()
                && !cache_cycle.is_zero(),
            "cycle times must be positive"
        );
        ClockedConfig {
            design,
            cluster_cycles,
            icn_cycle,
            cache_cycle,
            voltages,
        }
    }

    /// Replaces the supply voltages.
    ///
    /// # Panics
    ///
    /// Panics if the cluster voltage count does not match the design.
    #[must_use]
    pub fn with_voltages(mut self, voltages: Voltages) -> Self {
        assert_eq!(
            voltages.clusters.len(),
            usize::from(self.design.num_clusters),
            "one supply per cluster"
        );
        self.voltages = voltages;
        self
    }

    /// The static resource design.
    #[must_use]
    pub fn design(&self) -> MachineDesign {
        self.design
    }

    /// Cycle time of cluster `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn cluster_cycle(&self, c: ClusterId) -> Time {
        self.cluster_cycles[c.index()]
    }

    /// Cycle time of the interconnection network.
    #[must_use]
    pub fn icn_cycle(&self) -> Time {
        self.icn_cycle
    }

    /// Cycle time of the memory hierarchy.
    #[must_use]
    pub fn cache_cycle(&self) -> Time {
        self.cache_cycle
    }

    /// Cycle time of an arbitrary domain.
    #[must_use]
    pub fn domain_cycle(&self, domain: DomainId) -> Time {
        match domain {
            DomainId::Cluster(c) => self.cluster_cycle(c),
            DomainId::Icn => self.icn_cycle,
            DomainId::Cache => self.cache_cycle,
        }
    }

    /// Supply voltages.
    #[must_use]
    pub fn voltages(&self) -> &Voltages {
        &self.voltages
    }

    /// The shortest cluster cycle time (the "fastest cluster", which also
    /// paces `recMIT`).
    ///
    /// # Panics
    ///
    /// Never panics: designs have at least one cluster.
    #[must_use]
    pub fn fastest_cluster_cycle(&self) -> Time {
        *self
            .cluster_cycles
            .iter()
            .min()
            .expect("at least one cluster")
    }

    /// The longest cluster cycle time.
    #[must_use]
    pub fn slowest_cluster_cycle(&self) -> Time {
        *self
            .cluster_cycles
            .iter()
            .max()
            .expect("at least one cluster")
    }

    /// Clusters sorted slowest-first — the pre-placement order of the
    /// heterogeneous partitioner (paper §4.1.1 places critical recurrences
    /// in the *slowest* cluster where they still fit).
    #[must_use]
    pub fn clusters_slowest_first(&self) -> Vec<ClusterId> {
        let mut ids: Vec<ClusterId> = self.design.clusters().collect();
        ids.sort_by_key(|c| std::cmp::Reverse(self.cluster_cycle(*c)));
        ids
    }

    /// Whether every domain runs at the same frequency (a traditional
    /// single-clock design; MCD synchronisation queues vanish).
    #[must_use]
    pub fn is_homogeneous(&self) -> bool {
        self.cluster_cycles.iter().all(|&c| c == self.icn_cycle)
            && self.cache_cycle == self.icn_cycle
    }

    /// Extra cycles (of the *receiving* domain) a value pays when crossing
    /// from domain `from` to domain `to` through the MCD synchronisation
    /// queues of Figure 2. Zero inside one domain or when both domains run
    /// at the same frequency (their edges align every cycle).
    #[must_use]
    pub fn sync_penalty_cycles(&self, from: DomainId, to: DomainId) -> u32 {
        if from == to || self.domain_cycle(from) == self.domain_cycle(to) {
            0
        } else {
            1
        }
    }

    /// All domains of this machine.
    #[must_use]
    pub fn domains(&self) -> Vec<DomainId> {
        let mut v: Vec<DomainId> = self.design.clusters().map(DomainId::Cluster).collect();
        v.push(DomainId::Icn);
        v.push(DomainId::Cache);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design() -> MachineDesign {
        MachineDesign::paper_machine(1)
    }

    #[test]
    fn reference_is_homogeneous_1ghz_1v() {
        let c = ClockedConfig::reference(design());
        assert!(c.is_homogeneous());
        for d in c.domains() {
            assert_eq!(c.domain_cycle(d), Time::from_ns(1.0));
            assert_eq!(c.voltages().domain(d), 1.0);
        }
    }

    #[test]
    fn heterogeneous_shape_follows_paper() {
        let c = ClockedConfig::heterogeneous(design(), Time::from_ns(0.95), 1, Time::from_ns(1.25));
        assert_eq!(c.cluster_cycle(ClusterId(0)), Time::from_ns(0.95));
        for i in 1..4 {
            assert_eq!(c.cluster_cycle(ClusterId(i)), Time::from_ns(1.25));
        }
        assert_eq!(c.icn_cycle(), Time::from_ns(0.95));
        assert_eq!(c.cache_cycle(), Time::from_ns(0.95));
        assert_eq!(c.fastest_cluster_cycle(), Time::from_ns(0.95));
        assert_eq!(c.slowest_cluster_cycle(), Time::from_ns(1.25));
        assert!(!c.is_homogeneous());
    }

    #[test]
    fn slowest_first_ordering() {
        let c = ClockedConfig::heterogeneous(design(), Time::from_ns(1.0), 2, Time::from_ns(1.5));
        let order = c.clusters_slowest_first();
        assert_eq!(c.cluster_cycle(order[0]), Time::from_ns(1.5));
        assert_eq!(c.cluster_cycle(order[1]), Time::from_ns(1.5));
        assert_eq!(c.cluster_cycle(order[2]), Time::from_ns(1.0));
        assert_eq!(c.cluster_cycle(order[3]), Time::from_ns(1.0));
    }

    #[test]
    fn sync_penalty_only_across_different_frequencies() {
        let hom = ClockedConfig::reference(design());
        assert_eq!(
            hom.sync_penalty_cycles(DomainId::Cluster(ClusterId(0)), DomainId::Icn),
            0
        );
        let het = ClockedConfig::heterogeneous(design(), Time::from_ns(1.0), 1, Time::from_ns(1.5));
        // Fast cluster ↔ ICN share a frequency: no penalty.
        assert_eq!(
            het.sync_penalty_cycles(DomainId::Cluster(ClusterId(0)), DomainId::Icn),
            0
        );
        // Slow cluster → ICN crosses frequencies: one cycle.
        assert_eq!(
            het.sync_penalty_cycles(DomainId::Cluster(ClusterId(1)), DomainId::Icn),
            1
        );
        assert_eq!(
            het.sync_penalty_cycles(
                DomainId::Cluster(ClusterId(1)),
                DomainId::Cluster(ClusterId(2))
            ),
            0,
            "two slow clusters share a frequency"
        );
    }

    #[test]
    fn voltages_ranges() {
        let mut v = Voltages::reference(4);
        assert!(v.in_range());
        v.cache = 1.4;
        assert!(v.in_range());
        v.cache = 0.9; // below the cache's 1.0 V floor
        assert!(!v.in_range());
        v.cache = 1.0;
        v.clusters[2] = 0.65;
        assert!(!v.in_range());
    }

    #[test]
    fn homogeneous_at_other_cycle() {
        let c = ClockedConfig::homogeneous(design(), Time::from_ns(1.1));
        assert!(c.is_homogeneous());
        assert_eq!(c.fastest_cluster_cycle(), Time::from_ns(1.1));
    }

    #[test]
    #[should_panic(expected = "slow clusters cannot be faster")]
    fn inverted_speeds_panic() {
        let _ = ClockedConfig::heterogeneous(design(), Time::from_ns(1.2), 1, Time::from_ns(0.9));
    }

    #[test]
    #[should_panic(expected = "num_fast")]
    fn zero_fast_clusters_panics() {
        let _ = ClockedConfig::heterogeneous(design(), Time::from_ns(1.0), 0, Time::from_ns(1.5));
    }

    #[test]
    fn domains_enumeration() {
        let c = ClockedConfig::reference(design());
        let d = c.domains();
        assert_eq!(d.len(), 6); // 4 clusters + ICN + cache
        assert!(d.contains(&DomainId::Icn));
        assert!(d.contains(&DomainId::Cache));
        assert_eq!(DomainId::Icn.to_string(), "ICN");
        assert_eq!(DomainId::Cluster(ClusterId(2)).to_string(), "C2");
    }
}
