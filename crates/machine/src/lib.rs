//! Machine description for heterogeneous clustered VLIW processors.
//!
//! Models the microarchitecture of the CGO 2007 paper *"Heterogeneous
//! Clustered VLIW Microarchitectures"* (§2.1, §5): a statically scheduled
//! processor whose resources are split into clusters (each with its own
//! functional units, memory port and register file), an inter-cluster
//! register-bus network, and a shared on-chip memory hierarchy — organised
//! as a multi-clock-domain (MCD) design where every cluster, the
//! interconnect and the cache can run at a different frequency and voltage.
//!
//! The crate provides:
//!
//! * exact integer time arithmetic ([`Time`], femtosecond resolution) so
//!   `II = IT / T_cyc` relations never suffer floating-point drift;
//! * the resource description ([`ClusterDesign`], [`MachineDesign`]) of the
//!   paper's evaluation machine (4 clusters × 1 int FU / 1 fp FU / 1 memory
//!   port / 16 registers, 1 or 2 buses);
//! * per-component clocking ([`ClockedConfig`], [`DomainId`]) with the MCD
//!   synchronisation-queue penalty of Figure 2;
//! * discrete frequency menus ([`FrequencyMenu`]) modelling the
//!   multiplier/divider clock-generation network, used by the Figure 7
//!   sensitivity study.
//!
//! # Example
//!
//! ```
//! use vliw_machine::{ClockedConfig, MachineDesign, Time};
//!
//! let design = MachineDesign::paper_machine(1); // 4 clusters, 1 bus
//! let reference = ClockedConfig::reference(design);
//! assert!(reference.is_homogeneous());
//! assert_eq!(reference.cluster_cycle(0.into()), Time::from_ns(1.0));
//!
//! // One fast cluster at 0.9 ns, three slow ones at 1.2 ns.
//! let hetero = ClockedConfig::heterogeneous(
//!     design,
//!     Time::from_ns(0.9),
//!     1,
//!     Time::from_ns(1.2),
//! );
//! assert!(!hetero.is_homogeneous());
//! assert_eq!(hetero.fastest_cluster_cycle(), Time::from_ns(0.9));
//! // ICN and cache follow the fastest cluster (paper §5).
//! assert_eq!(hetero.icn_cycle(), Time::from_ns(0.9));
//! assert_eq!(hetero.cache_cycle(), Time::from_ns(0.9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clocking;
mod config;
mod design;
mod time;

pub use clocking::{effective_cycle_ns, FrequencyMenu, MenuKind};
pub use config::{ClockedConfig, DomainId, Voltages};
pub use design::{ClusterDesign, ClusterId, MachineDesign};
pub use time::Time;

/// Re-export of the shared Table 1 ISA description (latency and relative
/// energy per operation class) that lives in [`vliw_ir`].
pub mod isa {
    pub use vliw_ir::{FuKind, OpClass};
}

// The exploration layer fans candidate evaluations out across a thread
// pool; everything it carries across threads must be `Send + Sync`. These
// compile-time assertions keep that audit from regressing silently.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<MachineDesign>();
    _assert_send_sync::<ClusterDesign>();
    _assert_send_sync::<ClusterId>();
    _assert_send_sync::<ClockedConfig>();
    _assert_send_sync::<Voltages>();
    _assert_send_sync::<DomainId>();
    _assert_send_sync::<FrequencyMenu>();
    _assert_send_sync::<MenuKind>();
    _assert_send_sync::<Time>();
};
