//! Graphviz DOT export for DDGs.

use std::fmt::Write as _;

use crate::ddg::Ddg;

/// Renders `ddg` as a Graphviz `digraph`.
///
/// Loop-carried edges are dashed and annotated with their distance; every
/// edge shows its latency. Useful for debugging partitions and for
/// documentation figures.
///
/// # Example
///
/// ```
/// use vliw_ir::{DdgBuilder, OpClass, to_dot};
/// let mut b = DdgBuilder::new("tiny");
/// let a = b.op("a", OpClass::IntArith);
/// let c = b.op("b", OpClass::FpMul);
/// b.flow(a, c);
/// let dot = to_dot(&b.build()?);
/// assert!(dot.contains("digraph"));
/// # Ok::<(), vliw_ir::BuildError>(())
/// ```
#[must_use]
pub fn to_dot(ddg: &Ddg) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", escape(ddg.name()));
    let _ = writeln!(s, "  rankdir=TB;");
    for op in ddg.ops() {
        let _ = writeln!(
            s,
            "  {} [label=\"{}\\n{} (lat {})\"];",
            op.id(),
            escape(op.name()),
            op.class(),
            op.latency()
        );
    }
    for e in ddg.edges() {
        if e.distance() == 0 {
            let _ = writeln!(
                s,
                "  {} -> {} [label=\"{}\"];",
                e.src(),
                e.dst(),
                e.latency()
            );
        } else {
            let _ = writeln!(
                s,
                "  {} -> {} [label=\"{} ({})\", style=dashed];",
                e.src(),
                e.dst(),
                e.latency(),
                e.distance()
            );
        }
    }
    s.push_str("}\n");
    s
}

fn escape(raw: &str) -> String {
    raw.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::op::OpClass;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = DdgBuilder::new("demo");
        let a = b.op("load", OpClass::FpMemory);
        let c = b.op("mul", OpClass::FpMul);
        b.flow(a, c);
        b.flow_carried(c, c, 1);
        let dot = to_dot(&b.build().unwrap());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("load"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn names_are_escaped() {
        let mut b = DdgBuilder::new("has\"quote");
        b.op("weird\"name", OpClass::IntArith);
        let dot = to_dot(&b.build().unwrap());
        assert!(dot.contains("has\\\"quote"));
        assert!(dot.contains("weird\\\"name"));
    }
}
